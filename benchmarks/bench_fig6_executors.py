"""Figure 6(i,ii) — impact of the number of serverless executors."""

from __future__ import annotations

from conftest import emit, run_measured_sweep

from repro.bench import experiments
from repro.sweep import PointSpec


def test_fig6_executors_model_sweep(benchmark, paper_setup):
    """Model sweep over 3–21 executors for both shim sizes."""
    table = benchmark(experiments.executor_scaling, paper_setup)
    emit(table)
    for shim in (8, 32):
        throughput = table.series("executors", "throughput_txn_s", system=f"SERVBFT-{shim}")
        latency = table.series("executors", "latency_s", system=f"SERVBFT-{shim}")
        counts = sorted(throughput)
        # More executors: lower throughput, higher latency (Section IX-B).
        assert throughput[counts[0]] > throughput[counts[-1]]
        assert latency[counts[0]] < latency[counts[-1]]


def test_fig6_executors_simulated(benchmark, sim_scale):
    """Measured points with 3 and 7 executors."""

    def run_points():
        return run_measured_sweep(
            "fig6-executors-simulated",
            [
                PointSpec(
                    labels={"executors": executors},
                    config={
                        "num_executors": executors,
                        "num_executor_regions": min(3, executors),
                    },
                    duration=sim_scale.duration,
                    warmup=sim_scale.warmup,
                )
                for executors in (3, 7)
            ],
            metrics=(
                ("throughput_txn_s", "throughput_txn_per_sec"),
                ("latency_s", "latency.mean"),
                ("cloud_invocations", "cloud_invocations"),
            ),
        )

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    throughput = table.series("executors", "throughput_txn_s")
    invocations = table.series("executors", "cloud_invocations")
    # Both configurations make progress; spawning more executors costs
    # proportionally more serverless invocations (and, at saturation, the
    # extra spawn/validation work lowers throughput — shown by the model
    # sweep above; this unsaturated measured point only checks the cost side).
    assert min(throughput.values()) > 0
    assert invocations[7] > 1.5 * invocations[3]
