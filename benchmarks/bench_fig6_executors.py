"""Figure 6(i,ii) — impact of the number of serverless executors."""

from __future__ import annotations

from conftest import emit

from repro.bench import experiments
from repro.bench.harness import ExperimentTable, simulate_point


def test_fig6_executors_model_sweep(benchmark, paper_setup):
    """Model sweep over 3–21 executors for both shim sizes."""
    table = benchmark(experiments.executor_scaling, paper_setup)
    emit(table)
    for shim in (8, 32):
        throughput = table.series("executors", "throughput_txn_s", system=f"SERVBFT-{shim}")
        latency = table.series("executors", "latency_s", system=f"SERVBFT-{shim}")
        counts = sorted(throughput)
        # More executors: lower throughput, higher latency (Section IX-B).
        assert throughput[counts[0]] > throughput[counts[-1]]
        assert latency[counts[0]] < latency[counts[-1]]


def test_fig6_executors_simulated(benchmark, sim_scale):
    """Measured points with 3 and 7 executors."""

    def run_points():
        table = ExperimentTable(
            name="fig6-executors-simulated",
            columns=("executors", "throughput_txn_s", "latency_s", "cloud_invocations"),
        )
        for executors in (3, 7):
            config = sim_scale.protocol_config(
                num_executors=executors, num_executor_regions=min(3, executors)
            )
            result = simulate_point(
                config,
                workload=sim_scale.workload_config(),
                duration=sim_scale.duration,
                warmup=sim_scale.warmup,
            )
            table.add(
                executors=executors,
                throughput_txn_s=result.throughput_txn_per_sec,
                latency_s=result.latency.mean,
                cloud_invocations=result.cloud_invocations,
            )
        return table

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    throughput = table.series("executors", "throughput_txn_s")
    invocations = table.series("executors", "cloud_invocations")
    # Both configurations make progress; spawning more executors costs
    # proportionally more serverless invocations (and, at saturation, the
    # extra spawn/validation work lowers throughput — shown by the model
    # sweep above; this unsaturated measured point only checks the cost side).
    assert min(throughput.values()) > 0
    assert invocations[7] > 1.5 * invocations[3]
