"""Ablation — primary vs decentralized executor spawning (Section VI-B).

Decentralized spawning defeats the byzantine-abort attack but spawns
``e × n_R`` executors instead of ``n_E``; this bench quantifies that
overhead analytically (Equation 1) and measures it in simulation.
"""

from __future__ import annotations

from conftest import emit, run_measured_sweep

from repro.bench import experiments
from repro.core.config import SpawnPolicyName
from repro.sweep import PointSpec


def test_spawning_policy_overhead_model(benchmark, paper_setup):
    """Equation (1): executors spawned per policy."""
    table = benchmark(experiments.spawning_policy_ablation, paper_setup)
    emit(table)
    for row in table.rows:
        # Decentralized spawning always spawns at least as many executors.
        assert row["decentralized_spawned"] >= row["primary_spawned"]
        assert row["overhead_factor"] >= 1.0


def test_spawning_policy_simulated(benchmark, sim_scale):
    """Measured executor counts under both policies."""

    def run_points():
        return run_measured_sweep(
            "ablation-spawning-simulated",
            [
                PointSpec(
                    labels={"policy": policy.value},
                    config={"spawn_policy": policy.value},
                    duration=sim_scale.duration,
                    warmup=sim_scale.warmup,
                )
                for policy in (SpawnPolicyName.PRIMARY, SpawnPolicyName.DECENTRALIZED)
            ],
            metrics=(
                ("spawned_executors", "spawned_executors"),
                ("throughput_txn_s", "throughput_txn_per_sec"),
            ),
        )

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    spawned = {row["policy"]: row["spawned_executors"] for row in table.rows}
    assert spawned["decentralized"] > spawned["primary"]
