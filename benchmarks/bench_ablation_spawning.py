"""Ablation — primary vs decentralized executor spawning (Section VI-B).

Decentralized spawning defeats the byzantine-abort attack but spawns
``e × n_R`` executors instead of ``n_E``; this bench quantifies that
overhead analytically (Equation 1) and measures it in simulation.
"""

from __future__ import annotations

from conftest import emit

from repro.bench import experiments
from repro.bench.harness import ExperimentTable, simulate_point
from repro.core.config import SpawnPolicyName


def test_spawning_policy_overhead_model(benchmark, paper_setup):
    """Equation (1): executors spawned per policy."""
    table = benchmark(experiments.spawning_policy_ablation, paper_setup)
    emit(table)
    for row in table.rows:
        # Decentralized spawning always spawns at least as many executors.
        assert row["decentralized_spawned"] >= row["primary_spawned"]
        assert row["overhead_factor"] >= 1.0


def test_spawning_policy_simulated(benchmark, sim_scale):
    """Measured executor counts under both policies."""

    def run_points():
        table = ExperimentTable(
            name="ablation-spawning-simulated",
            columns=("policy", "spawned_executors", "throughput_txn_s"),
        )
        for policy in (SpawnPolicyName.PRIMARY, SpawnPolicyName.DECENTRALIZED):
            config = sim_scale.protocol_config(spawn_policy=policy)
            result = simulate_point(
                config,
                workload=sim_scale.workload_config(),
                duration=sim_scale.duration,
                warmup=sim_scale.warmup,
            )
            table.add(
                policy=policy.value,
                spawned_executors=result.spawned_executors,
                throughput_txn_s=result.throughput_txn_per_sec,
            )
        return table

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    spawned = {row["policy"]: row["spawned_executors"] for row in table.rows}
    assert spawned["decentralized"] > spawned["primary"]
