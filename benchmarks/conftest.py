"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one figure of the paper: it evaluates the
analytical model over the paper's full parameter sweep (printed as a table,
recorded in EXPERIMENTS.md) and times either that evaluation or a scaled-down
message-level simulation point with pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.bench.defaults import PAPER, SCALE
from repro.bench.harness import format_table


@pytest.fixture(scope="session")
def paper_setup():
    """The paper's experimental setup constants."""
    return PAPER


@pytest.fixture(scope="session")
def sim_scale():
    """Scaled-down deployment used for measured simulation points."""
    return SCALE


def emit(table) -> None:
    """Print an experiment table so it appears in the benchmark output."""
    print()
    print(format_table(table, float_format="{:,.3f}"))
