"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one figure of the paper: it evaluates the
analytical model over the paper's full parameter sweep (printed as a table,
recorded in EXPERIMENTS.md) and times either that evaluation or a scaled-down
message-level simulation point with pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.bench.defaults import PAPER, SCALE
from repro.bench.harness import format_table
from repro.sweep import DEFAULT_METRICS, SweepSpec, run_sweep


@pytest.fixture(scope="session")
def paper_setup():
    """The paper's experimental setup constants."""
    return PAPER


@pytest.fixture(scope="session")
def sim_scale():
    """Scaled-down deployment used for measured simulation points."""
    return SCALE


def emit(table) -> None:
    """Print an experiment table so it appears in the benchmark output."""
    print()
    print(format_table(table, float_format="{:,.3f}"))


def run_measured_sweep(name, points, metrics=DEFAULT_METRICS):
    """Run measured simulation points through the sweep subsystem.

    Every bench's measured points go through the same execution path as
    ``python -m repro.sweep`` (resolution, content addressing, execution),
    so what the benches measure is exactly what sweeps run at scale.
    """
    report = run_sweep(SweepSpec(name=name, points=tuple(points)))
    assert report.failed == 0, report.summary()
    return report.table(metrics=tuple(metrics))
