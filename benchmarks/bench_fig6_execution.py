"""Figure 6(v,vi) — impact of expensive (compute-intensive) execution."""

from __future__ import annotations

from conftest import emit, run_measured_sweep

from repro.bench import experiments
from repro.sweep import PointSpec


def test_fig6_execution_model_sweep(benchmark, paper_setup):
    """Model sweep over execution lengths 0–8 seconds."""
    table = benchmark(experiments.expensive_execution, paper_setup)
    emit(table)
    for shim in (8, 32):
        throughput = table.series("execution_s", "throughput_txn_s", system=f"SERVBFT-{shim}")
        latency = table.series("execution_s", "latency_s", system=f"SERVBFT-{shim}")
        # Longer execution: much lower throughput and latency dominated by the
        # execution time itself (the shim's own cost becomes insignificant).
        assert throughput[0.0] > throughput[8.0]
        assert latency[8.0] > latency[0.0]
        assert latency[8.0] >= 8.0


def test_fig6_execution_simulated(benchmark, sim_scale):
    """Measured points with no compute phase and with a 200 ms compute phase."""

    def run_points():
        return run_measured_sweep(
            "fig6-execution-simulated",
            [
                PointSpec(
                    labels={"execution_s": seconds},
                    workload={"execution_seconds": seconds},
                    duration=sim_scale.duration,
                    warmup=sim_scale.warmup,
                )
                for seconds in (0.0, 0.2)
            ],
            metrics=(
                ("throughput_txn_s", "throughput_txn_per_sec"),
                ("latency_s", "latency.mean"),
            ),
        )

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    latency = table.series("execution_s", "latency_s")
    assert latency[0.2] > latency[0.0]
    assert latency[0.2] >= 0.2
