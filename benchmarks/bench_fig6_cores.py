"""Figure 6(ix,x) — impact of the computing power of edge devices."""

from __future__ import annotations

from conftest import emit, run_measured_sweep

from repro.bench import experiments
from repro.sweep import PointSpec


def test_fig6_cores_model_sweep(benchmark, paper_setup):
    """Model sweep over 2–16 cores per shim node."""
    table = benchmark(experiments.computing_power, paper_setup)
    emit(table)
    for shim in (8, 32):
        throughput = table.series("cores", "throughput_txn_s", system=f"SERVBFT-{shim}")
        latency = table.series("cores", "latency_s", system=f"SERVBFT-{shim}")
        # More cores: higher throughput, lower latency (multi-threaded pipeline).
        assert throughput[16] > throughput[2]
        assert latency[16] < latency[2]
        assert throughput[16] / throughput[2] >= 3.0


def test_fig6_cores_simulated(benchmark, sim_scale):
    """Measured points with 2 and 16 cores per shim node under load."""

    def run_points():
        return run_measured_sweep(
            "fig6-cores-simulated",
            [
                PointSpec(
                    labels={"cores": cores},
                    config={
                        "shim_cores": cores,
                        "num_clients": 2000,
                        "client_groups": 8,
                        "batch_size": 100,
                    },
                    workload={"clients": 2000},
                    duration=sim_scale.duration,
                    warmup=sim_scale.warmup,
                )
                for cores in (2, 16)
            ],
            metrics=(
                ("throughput_txn_s", "throughput_txn_per_sec"),
                ("latency_s", "latency.mean"),
            ),
        )

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    throughput = table.series("cores", "throughput_txn_s")
    assert throughput[16] >= throughput[2]
