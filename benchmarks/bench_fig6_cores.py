"""Figure 6(ix,x) — impact of the computing power of edge devices."""

from __future__ import annotations

from conftest import emit

from repro.bench import experiments
from repro.bench.harness import ExperimentTable, simulate_point


def test_fig6_cores_model_sweep(benchmark, paper_setup):
    """Model sweep over 2–16 cores per shim node."""
    table = benchmark(experiments.computing_power, paper_setup)
    emit(table)
    for shim in (8, 32):
        throughput = table.series("cores", "throughput_txn_s", system=f"SERVBFT-{shim}")
        latency = table.series("cores", "latency_s", system=f"SERVBFT-{shim}")
        # More cores: higher throughput, lower latency (multi-threaded pipeline).
        assert throughput[16] > throughput[2]
        assert latency[16] < latency[2]
        assert throughput[16] / throughput[2] >= 3.0


def test_fig6_cores_simulated(benchmark, sim_scale):
    """Measured points with 2 and 16 cores per shim node under load."""

    def run_points():
        table = ExperimentTable(
            name="fig6-cores-simulated",
            columns=("cores", "throughput_txn_s", "latency_s"),
        )
        for cores in (2, 16):
            config = sim_scale.protocol_config(
                shim_cores=cores, num_clients=2000, client_groups=8, batch_size=100
            )
            result = simulate_point(
                config,
                workload=sim_scale.workload_config(clients=2000),
                duration=sim_scale.duration,
                warmup=sim_scale.warmup,
            )
            table.add(
                cores=cores,
                throughput_txn_s=result.throughput_txn_per_sec,
                latency_s=result.latency.mean,
            )
        return table

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    throughput = table.series("cores", "throughput_txn_s")
    assert throughput[16] >= throughput[2]
