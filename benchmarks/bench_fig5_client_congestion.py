"""Figure 5 — impact of client congestion (latency vs throughput).

Regenerates the latency/throughput curves for SERVBFT-8 and SERVBFT-32 while
the client population grows from 2 k to 88 k, and measures one scaled-down
message-level simulation point for each shim size.
"""

from __future__ import annotations

from conftest import emit, run_measured_sweep

from repro.bench import experiments
from repro.sweep import PointSpec


def test_fig5_model_sweep(benchmark, paper_setup):
    """Model-based sweep over the paper's client counts."""
    table = benchmark(experiments.client_congestion, paper_setup)
    emit(table)

    for shim in (8, 32):
        series = table.series("clients", "throughput_txn_s", system=f"SERVBFT-{shim}")
        latencies = table.series("clients", "latency_s", system=f"SERVBFT-{shim}")
        clients = sorted(series)
        # Throughput grows with the client population and then saturates.
        assert series[clients[0]] < series[clients[-1]] or series[clients[0]] < max(series.values())
        assert max(series.values()) == series[clients[-1]] or series[clients[-1]] >= 0.9 * max(series.values())
        # Latency keeps increasing once the system saturates.
        assert latencies[clients[-1]] >= latencies[clients[0]]

    # The smaller shim outperforms the larger one, as in the paper.
    small = table.series("clients", "throughput_txn_s", system="SERVBFT-8")
    large = table.series("clients", "throughput_txn_s", system="SERVBFT-32")
    assert max(small.values()) > max(large.values())


def test_fig5_simulated_points(benchmark, sim_scale):
    """Measured (message-level) points: small vs larger shim under load."""

    def run_points():
        return run_measured_sweep(
            "fig5-simulated-points",
            [
                PointSpec(
                    labels={
                        "system": f"SERVBFT-{shim_nodes}",
                        "clients": sim_scale.num_clients,
                    },
                    config={"shim_nodes": shim_nodes},
                    duration=sim_scale.duration,
                    warmup=sim_scale.warmup,
                )
                for shim_nodes in (4, 8)
            ],
            metrics=(
                ("throughput_txn_s", "throughput_txn_per_sec"),
                ("latency_s", "latency.mean"),
            ),
        )

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    small = table.series("clients", "throughput_txn_s", system="SERVBFT-4")
    large = table.series("clients", "throughput_txn_s", system="SERVBFT-8")
    # The smaller shim sustains at least as much throughput as the larger one.
    assert max(small.values()) >= 0.8 * max(large.values())
