"""Figure 8 — task offloading: serverless-edge vs edge-only PBFT.

Compares peak throughput and monetary cost (cents per kilo-transaction) as
the transactions' execution time grows, for SERVBFT-32 with 3 executors and
an edge-only PBFT shim of 32 nodes with 1, 8, or 16 execution threads.
"""

from __future__ import annotations

from conftest import emit, run_measured_sweep

from repro.bench import experiments
from repro.sweep import PointSpec


def test_fig8_model_sweep(benchmark, paper_setup):
    """Model sweep over execution times 0–2000 ms."""
    table = benchmark(experiments.task_offloading, paper_setup)
    emit(table)

    serverless = table.series("execution_ms", "throughput_txn_s", system="SERVBFT-32")
    pbft_1 = table.series("execution_ms", "throughput_txn_s", system="PBFT-1-ET")
    pbft_16 = table.series("execution_ms", "throughput_txn_s", system="PBFT-16-ET")
    for milliseconds in (500, 1000, 2000):
        # With compute-heavy transactions the serverless-edge model keeps a
        # large throughput advantage over the resource-bounded edge-only PBFT.
        assert serverless[milliseconds] > 10 * pbft_16[milliseconds]
        # More execution threads help the edge-only deployment.
        assert pbft_16[milliseconds] > pbft_1[milliseconds]

    serverless_cost = table.series("execution_ms", "cents_per_ktxn", system="SERVBFT-32")
    pbft_1_cost = table.series("execution_ms", "cents_per_ktxn", system="PBFT-1-ET")
    for milliseconds in (500, 1000, 2000):
        # Resource-boundedness also increases monetary cost per transaction.
        assert pbft_1_cost[milliseconds] > serverless_cost[milliseconds]


def test_fig8_simulated_points(benchmark, sim_scale):
    """Measured points: 100 ms execution, serverless vs edge-only (1 thread)."""

    def run_points():
        return run_measured_sweep(
            "fig8-simulated-points",
            [
                PointSpec(
                    labels={"system": label},
                    system=system,
                    config={"shim_nodes": 4},
                    workload={"execution_seconds": 0.1},
                    execution_threads=threads,
                    duration=sim_scale.duration,
                    warmup=sim_scale.warmup,
                )
                for label, system, threads in (
                    ("SERVERLESSBFT", "serverless_bft", 16),
                    ("PBFT-1-ET", "pbft_replicated", 1),
                )
            ],
            metrics=(
                ("throughput_txn_s", "throughput_txn_per_sec"),
                ("cents_per_ktxn", "cents_per_kilo_txn"),
            ),
        )

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    throughput = {row["system"]: row["throughput_txn_s"] for row in table.rows}
    # Offloading the 100 ms compute phase to the serverless cloud beats
    # executing it on the (single-threaded) edge devices.
    assert throughput["SERVERLESSBFT"] > throughput["PBFT-1-ET"]
