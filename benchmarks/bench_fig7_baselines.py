"""Figure 7 — shim scalability and baseline comparison.

SERVERLESSBFT vs SERVERLESSCFT (Paxos shim) vs PBFT (replicated execution)
vs NOSHIM, for shim sizes 4–128.
"""

from __future__ import annotations

from conftest import emit

from repro.baselines import (
    PBFTReplicatedSimulation,
    build_noshim_simulation,
    build_serverless_cft_simulation,
)
from repro.bench import experiments
from repro.bench.harness import ExperimentTable
from repro.core.runner import ServerlessBFTSimulation


def test_fig7_model_sweep(benchmark, paper_setup):
    """Model sweep over 4–128 replicas for all four systems."""
    table = benchmark(experiments.baseline_comparison, paper_setup)
    emit(table)

    for replicas in paper_setup.replica_sweep:
        by_system = {
            system: table.series("replicas", "throughput_txn_s", system=system)[replicas]
            for system in ("SERVERLESSBFT", "SERVERLESSCFT", "PBFT", "NOSHIM")
        }
        # The paper's ordering: SERVERLESSBFT < PBFT < SERVERLESSCFT < NOSHIM.
        assert by_system["SERVERLESSBFT"] < by_system["PBFT"]
        assert by_system["PBFT"] < by_system["SERVERLESSCFT"]
        assert by_system["SERVERLESSCFT"] < by_system["NOSHIM"]

    # Consensus-based systems degrade as the shim grows; NOSHIM stays flat.
    sbft = experiments_series(table, "SERVERLESSBFT")
    noshim = experiments_series(table, "NOSHIM")
    assert sbft[4] > sbft[128]
    assert abs(noshim[4] - noshim[128]) <= 0.05 * noshim[4]


def experiments_series(table, system):
    return table.series("replicas", "throughput_txn_s", system=system)


def test_fig7_simulated_points(benchmark, sim_scale):
    """Measured points: all four systems on a 4-node shim."""

    def run_points():
        table = ExperimentTable(
            name="fig7-simulated-points",
            columns=("system", "throughput_txn_s", "latency_s"),
        )
        # Smaller than the usual measured scale: this point runs four full
        # deployments back to back.
        config = sim_scale.protocol_config(shim_nodes=4, num_clients=100, client_groups=4)
        workload = sim_scale.workload_config(clients=100)
        duration, warmup = 1.0, 0.2

        runs = {
            "SERVERLESSBFT": ServerlessBFTSimulation(config, workload=workload, tracer_enabled=False),
            "SERVERLESSCFT": build_serverless_cft_simulation(config, workload, tracer_enabled=False),
            "NOSHIM": build_noshim_simulation(config, workload, tracer_enabled=False),
        }
        for label, simulation in runs.items():
            result = simulation.run(duration=duration, warmup=warmup)
            table.add(
                system=label,
                throughput_txn_s=result.throughput_txn_per_sec,
                latency_s=result.latency.mean,
            )
        replicated = PBFTReplicatedSimulation(config, workload=workload, tracer_enabled=False)
        result = replicated.run(duration=duration, warmup=warmup)
        table.add(
            system="PBFT",
            throughput_txn_s=result.throughput_txn_per_sec,
            latency_s=result.latency.mean,
        )
        return table

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    throughput = {row["system"]: row["throughput_txn_s"] for row in table.rows}
    # Every system makes progress, and removing consensus (NOSHIM) is at
    # least as fast as running BFT consensus at the shim.
    assert all(value > 0 for value in throughput.values())
    assert throughput["NOSHIM"] >= 0.8 * throughput["SERVERLESSBFT"]
