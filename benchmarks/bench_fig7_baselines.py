"""Figure 7 — shim scalability and baseline comparison.

SERVERLESSBFT vs SERVERLESSCFT (Paxos shim) vs PBFT (replicated execution)
vs NOSHIM, for shim sizes 4–128.
"""

from __future__ import annotations

from conftest import emit, run_measured_sweep

from repro.api import all_systems
from repro.bench import experiments
from repro.sweep import PointSpec


def test_fig7_model_sweep(benchmark, paper_setup):
    """Model sweep over 4–128 replicas for all four systems."""
    table = benchmark(experiments.baseline_comparison, paper_setup)
    emit(table)

    for replicas in paper_setup.replica_sweep:
        by_system = {
            system: table.series("replicas", "throughput_txn_s", system=system)[replicas]
            for system in ("SERVERLESSBFT", "SERVERLESSCFT", "PBFT", "NOSHIM")
        }
        # The paper's ordering: SERVERLESSBFT < PBFT < SERVERLESSCFT < NOSHIM.
        assert by_system["SERVERLESSBFT"] < by_system["PBFT"]
        assert by_system["PBFT"] < by_system["SERVERLESSCFT"]
        assert by_system["SERVERLESSCFT"] < by_system["NOSHIM"]

    # Consensus-based systems degrade as the shim grows; NOSHIM stays flat.
    sbft = experiments_series(table, "SERVERLESSBFT")
    noshim = experiments_series(table, "NOSHIM")
    assert sbft[4] > sbft[128]
    assert abs(noshim[4] - noshim[128]) <= 0.05 * noshim[4]


def experiments_series(table, system):
    return table.series("replicas", "throughput_txn_s", system=system)


def test_fig7_simulated_points(benchmark, sim_scale):
    """Measured points: all four systems on a 4-node shim."""

    def run_points():
        # Smaller than the usual measured scale: this sweep runs four full
        # deployments back to back.
        shared = {"shim_nodes": 4, "num_clients": 100, "client_groups": 4}
        return run_measured_sweep(
            "fig7-simulated-points",
            [
                PointSpec(
                    labels={"system": label},
                    system=system,
                    config=shared,
                    workload={"clients": 100},
                    duration=1.0,
                    warmup=0.2,
                )
                # The comparison set comes from the system registry: every
                # adapter the analytical model also covers participates.
                for label, system in (
                    (adapter.display_name, adapter.name)
                    for adapter in all_systems()
                    if adapter.model_kind is not None
                )
            ],
            metrics=(
                ("throughput_txn_s", "throughput_txn_per_sec"),
                ("latency_s", "latency.mean"),
            ),
        )

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    throughput = {row["system"]: row["throughput_txn_s"] for row in table.rows}
    # Every system makes progress, and removing consensus (NOSHIM) is at
    # least as fast as running BFT consensus at the shim.
    assert all(value > 0 for value in throughput.values())
    assert throughput["NOSHIM"] >= 0.8 * throughput["SERVERLESSBFT"]
