"""Figure 6(xi,xii) — impact of conflicting transactions (unknown rw-sets)."""

from __future__ import annotations

from conftest import emit, run_measured_sweep

from repro.bench import experiments
from repro.sweep import PointSpec


def test_fig6_conflicts_model_sweep(benchmark, paper_setup):
    """Model sweep over 0–50 % conflicting transactions."""
    table = benchmark(experiments.conflicting_transactions, paper_setup)
    emit(table)
    for shim in (8, 32):
        throughput = table.series("conflict_pct", "throughput_txn_s", system=f"SERVBFT-{shim}")
        latency = table.series("conflict_pct", "latency_s", system=f"SERVBFT-{shim}")
        # Goodput decreases with the conflict rate; latency stays flat.
        assert throughput[0] > throughput[50]
        drop = 1.0 - throughput[50] / throughput[0]
        assert 0.2 <= drop <= 0.7  # the paper reports 43–46 %
        assert abs(latency[50] - latency[0]) <= 0.25 * latency[0]


def test_fig6_conflicts_simulated(benchmark, sim_scale):
    """Measured points at 0 % and 40 % conflicts (optimistic execution)."""

    def run_points():
        return run_measured_sweep(
            "fig6-conflicts-simulated",
            [
                PointSpec(
                    labels={"conflict_pct": percent},
                    workload={
                        "conflict_fraction": percent / 100.0,
                        "rw_sets_known": False,
                    },
                    duration=sim_scale.duration,
                    warmup=sim_scale.warmup,
                )
                for percent in (0, 40)
            ],
            metrics=(
                ("committed", "committed_txns"),
                ("aborted", "aborted_txns"),
                ("abort_rate", "abort_rate"),
            ),
        )

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    aborts = table.series("conflict_pct", "abort_rate")
    # Conflicting transactions lead to verifier-side aborts.
    assert aborts[40] > aborts[0]
