"""Figure 6(iii,iv) — impact of batching client transactions."""

from __future__ import annotations

from conftest import emit, run_measured_sweep

from repro.bench import experiments
from repro.sweep import PointSpec


def test_fig6_batching_model_sweep(benchmark, paper_setup):
    """Model sweep over batch sizes 10 to 8000."""
    table = benchmark(experiments.batching, paper_setup)
    emit(table)
    for shim in (8, 32):
        throughput = table.series("batch_size", "throughput_txn_s", system=f"SERVBFT-{shim}")
        sizes = sorted(throughput)
        # Throughput first increases with the batch size, then decreases
        # (too-large batches become expensive to communicate and process).
        assert throughput[100] > throughput[10]
        peak = max(throughput.values())
        assert peak > throughput[sizes[0]]
        assert throughput[sizes[-1]] < peak


def test_fig6_batching_simulated(benchmark, sim_scale):
    """Measured points with small and medium batches."""

    def run_points():
        return run_measured_sweep(
            "fig6-batching-simulated",
            [
                PointSpec(
                    labels={"batch_size": batch_size},
                    config={"batch_size": batch_size},
                    duration=sim_scale.duration,
                    warmup=sim_scale.warmup,
                )
                for batch_size in (5, 25)
            ],
            metrics=(
                ("throughput_txn_s", "throughput_txn_per_sec"),
                ("latency_s", "latency.mean"),
            ),
        )

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    throughput = table.series("batch_size", "throughput_txn_s")
    # Larger batches amortise consensus cost in this (unsaturated) regime.
    assert throughput[25] >= throughput[5] * 0.8
