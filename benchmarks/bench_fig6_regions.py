"""Figure 6(vii,viii) — spawning a fixed number of executors across more regions."""

from __future__ import annotations

from conftest import emit, run_measured_sweep

from repro.bench import experiments
from repro.sweep import PointSpec


def test_fig6_regions_model_sweep(benchmark, paper_setup):
    """Model sweep: 11 executors over 5, 7, 9, and 11 regions."""
    table = benchmark(experiments.region_distribution, paper_setup)
    emit(table)
    for shim in (8, 32):
        throughput = table.series("regions", "throughput_txn_s", system=f"SERVBFT-{shim}")
        latency = table.series("regions", "latency_s", system=f"SERVBFT-{shim}")
        values = list(throughput.values())
        # Throughput and latency stay (roughly) constant: the verifier only
        # waits for the f_E+1 nearest executors (Section IX-E).
        assert max(values) <= 1.1 * min(values)
        assert max(latency.values()) <= 1.2 * min(latency.values())


def test_fig6_regions_simulated(benchmark, sim_scale):
    """Measured points: 5 executors spread over 1 vs 5 regions."""

    def run_points():
        return run_measured_sweep(
            "fig6-regions-simulated",
            [
                PointSpec(
                    labels={"regions": regions},
                    config={"num_executors": 5, "num_executor_regions": regions},
                    duration=sim_scale.duration,
                    warmup=sim_scale.warmup,
                )
                for regions in (1, 5)
            ],
            metrics=(
                ("throughput_txn_s", "throughput_txn_per_sec"),
                ("latency_s", "latency.mean"),
            ),
        )

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    throughput = table.series("regions", "throughput_txn_s")
    assert min(throughput.values()) > 0
