"""Ablation — optimistic execution vs best-effort conflict avoidance (Section VI).

With unknown read-write sets the shim spawns optimistically and the verifier
aborts stale transactions; with known read-write sets the primary's logical
lock map avoids most aborts at the cost of delaying conflicting batches.
"""

from __future__ import annotations

from conftest import emit, run_measured_sweep

from repro.bench import experiments
from repro.core.config import ConflictMode
from repro.sweep import PointSpec


def test_conflict_avoidance_model(benchmark, paper_setup):
    """Analytical comparison of abort fractions in both modes."""
    table = benchmark(experiments.conflict_avoidance_ablation, paper_setup)
    emit(table)
    for percent in (10, 30, 50):
        optimistic = table.series(
            "conflict_pct", "abort_fraction", mode=ConflictMode.OPTIMISTIC.value
        )[percent]
        avoidance = table.series(
            "conflict_pct", "abort_fraction", mode=ConflictMode.CONFLICT_AVOIDANCE.value
        )[percent]
        assert avoidance < optimistic


def test_conflict_avoidance_simulated(benchmark, sim_scale):
    """Measured abort rates at 40 % conflicts for both modes."""

    def run_points():
        return run_measured_sweep(
            "ablation-conflict-avoidance-simulated",
            [
                PointSpec(
                    labels={"mode": mode.value},
                    config={"conflict_mode": mode.value},
                    workload={"conflict_fraction": 0.4, "rw_sets_known": rw_known},
                    duration=sim_scale.duration,
                    warmup=sim_scale.warmup,
                )
                for mode, rw_known in (
                    (ConflictMode.OPTIMISTIC, False),
                    (ConflictMode.CONFLICT_AVOIDANCE, True),
                )
            ],
            metrics=(
                ("committed", "committed_txns"),
                ("aborted", "aborted_txns"),
                ("abort_rate", "abort_rate"),
            ),
        )

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    rates = {row["mode"]: row["abort_rate"] for row in table.rows}
    # The lock map removes (nearly) all aborts.
    assert rates["conflict_avoidance"] <= rates["optimistic"]
