"""Ablation — optimistic execution vs best-effort conflict avoidance (Section VI).

With unknown read-write sets the shim spawns optimistically and the verifier
aborts stale transactions; with known read-write sets the primary's logical
lock map avoids most aborts at the cost of delaying conflicting batches.
"""

from __future__ import annotations

from conftest import emit

from repro.bench import experiments
from repro.bench.harness import ExperimentTable, simulate_point
from repro.core.config import ConflictMode


def test_conflict_avoidance_model(benchmark, paper_setup):
    """Analytical comparison of abort fractions in both modes."""
    table = benchmark(experiments.conflict_avoidance_ablation, paper_setup)
    emit(table)
    for percent in (10, 30, 50):
        optimistic = table.series(
            "conflict_pct", "abort_fraction", mode=ConflictMode.OPTIMISTIC.value
        )[percent]
        avoidance = table.series(
            "conflict_pct", "abort_fraction", mode=ConflictMode.CONFLICT_AVOIDANCE.value
        )[percent]
        assert avoidance < optimistic


def test_conflict_avoidance_simulated(benchmark, sim_scale):
    """Measured abort rates at 40 % conflicts for both modes."""

    def run_points():
        table = ExperimentTable(
            name="ablation-conflict-avoidance-simulated",
            columns=("mode", "committed", "aborted", "abort_rate"),
        )
        for mode, rw_known in (
            (ConflictMode.OPTIMISTIC, False),
            (ConflictMode.CONFLICT_AVOIDANCE, True),
        ):
            config = sim_scale.protocol_config(conflict_mode=mode)
            workload = sim_scale.workload_config(conflict_fraction=0.4, rw_sets_known=rw_known)
            result = simulate_point(
                config,
                workload=workload,
                duration=sim_scale.duration,
                warmup=sim_scale.warmup,
            )
            table.add(
                mode=mode.value,
                committed=result.committed_txns,
                aborted=result.aborted_txns,
                abort_rate=result.abort_rate,
            )
        return table

    table = benchmark.pedantic(run_points, rounds=1, iterations=1)
    emit(table)
    rates = {row["mode"]: row["abort_rate"] for row in table.rows}
    # The lock map removes (nearly) all aborts.
    assert rates["conflict_avoidance"] <= rates["optimistic"]
