"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_events_run_in_timestamp_order():
    sim = Simulator()
    order = []
    sim.schedule(0.3, order.append, "c")
    sim.schedule(0.1, order.append, "a")
    sim.schedule(0.2, order.append, "b")
    sim.run_until_idle()
    assert order == ["a", "b", "c"]
    assert sim.now == pytest.approx(0.3)


def test_ties_broken_by_scheduling_order():
    sim = Simulator()
    order = []
    sim.schedule(0.5, order.append, "first")
    sim.schedule(0.5, order.append, "second")
    sim.schedule(0.5, order.append, "third")
    sim.run_until_idle()
    assert order == ["first", "second", "third"]


def test_priority_overrides_insertion_order():
    sim = Simulator()
    order = []
    sim.schedule(0.5, order.append, "low", priority=1)
    sim.schedule(0.5, order.append, "high", priority=0)
    sim.run_until_idle()
    assert order == ["high", "low"]


def test_cancelled_event_does_not_run():
    sim = Simulator()
    hits = []
    event = sim.schedule(0.1, hits.append, "cancelled")
    sim.schedule(0.2, hits.append, "kept")
    event.cancel()
    sim.run_until_idle()
    assert hits == ["kept"]


def test_run_until_stops_at_deadline():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, hits.append, "early")
    sim.schedule(5.0, hits.append, "late")
    sim.run(until=2.0)
    assert hits == ["early"]
    assert sim.now == pytest.approx(2.0)
    assert sim.pending_events == 1


def test_run_advances_clock_to_until_when_queue_drains():
    sim = Simulator()
    sim.schedule(0.5, lambda: None)
    sim.run(until=3.0)
    assert sim.now == pytest.approx(3.0)


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    seen = []

    def chain(step):
        seen.append(step)
        if step < 3:
            sim.schedule(0.1, chain, step + 1)

    sim.schedule(0.0, chain, 0)
    sim.run_until_idle()
    assert seen == [0, 1, 2, 3]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until_idle()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_max_events_limit():
    sim = Simulator()
    hits = []
    for index in range(10):
        sim.schedule(0.1 * (index + 1), hits.append, index)
    sim.run(max_events=4)
    assert hits == [0, 1, 2, 3]


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(0.1, lambda: None)
    assert sim.step() is True
    assert sim.events_processed == 1


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(0.1, nested)
    sim.run_until_idle()
    assert len(errors) == 1
