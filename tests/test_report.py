"""Tests for the replicate-aggregation and EXPERIMENTS.md rendering layer.

The load-bearing guarantees (ISSUE 4 acceptance criteria):

* percentiles are **never averaged** across seeds — the renderer reports
  the per-seed spread, and the pooled-percentile helper demonstrates why
  the mean of per-seed p99s is the wrong statistic;
* rendering the same store twice produces byte-identical documents;
* rendering is purely a store read — no simulation can be triggered.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.report import (
    aggregate_records,
    latency_stats,
    load_store_points,
    markdown_table,
    metric_stats,
    pooled_mean,
    pooled_percentile,
    render_markdown,
)
from repro.report.cli import main as report_cli
from repro.sweep.store import ResultStore


def fake_result(throughput=100.0, committed=100, aborted=0, count=50,
                mean=0.05, p50=0.05, p95=0.08, p99=0.09,
                minimum=0.01, maximum=0.1):
    return {
        "throughput_txn_per_sec": throughput,
        "committed_txns": committed,
        "aborted_txns": aborted,
        "latency": {
            "count": count, "mean": mean, "p50": p50, "p95": p95,
            "p99": p99, "minimum": minimum, "maximum": maximum,
        },
    }


def fake_record(digest, sweep="unit", labels=None, system="serverless_bft",
                scenario="baseline", **result_kwargs):
    return {
        "digest": digest,
        "sweep": sweep,
        "labels": dict(labels or {}),
        "point": {"system": system, "scenario": scenario},
        "result": fake_result(**result_kwargs),
    }


# ------------------------------------------------------------------ statistics


def test_metric_stats_mean_and_sample_std():
    stats = metric_stats([10.0, 14.0])
    assert stats.n == 2 and stats.mean == 12.0
    assert stats.std == pytest.approx(2.0 ** 0.5 * 2.0)  # ddof=1
    assert (stats.minimum, stats.maximum) == (10.0, 14.0)
    single = metric_stats([7.0])
    assert single.std == 0.0 and single.mean == 7.0


def test_latency_mean_is_pooled_not_averaged():
    # Seed A: 10 samples at mean 0.1; seed B: 90 samples at mean 0.2.
    # The pooled mean is 0.19 — an unweighted average would claim 0.15.
    stats = latency_stats([
        {"count": 10, "mean": 0.1, "p50": 0.1, "p95": 0.1, "p99": 0.1,
         "minimum": 0.1, "maximum": 0.1},
        {"count": 90, "mean": 0.2, "p50": 0.2, "p95": 0.2, "p99": 0.2,
         "minimum": 0.2, "maximum": 0.2},
    ])
    assert stats.mean == pytest.approx(0.19)
    assert stats.mean != pytest.approx(0.15)
    assert stats.samples == 100 and stats.seeds == 2
    assert pooled_mean([10, 90], [0.1, 0.2]) == pytest.approx(0.19)


def test_percentiles_are_spreads_never_averages():
    """The mean-of-percentiles bug must be impossible to reintroduce.

    Per-seed p99s of 0.1 and 0.5: the aggregate must carry the envelope
    (0.1, 0.5) — there is no field anywhere in which the misleading 0.3
    average could even be stored.
    """
    stats = latency_stats([
        {"count": 100, "mean": 0.05, "p50": 0.04, "p95": 0.08, "p99": 0.1,
         "minimum": 0.01, "maximum": 0.12},
        {"count": 100, "mean": 0.06, "p50": 0.05, "p95": 0.2, "p99": 0.5,
         "minimum": 0.01, "maximum": 0.6},
    ])
    p99 = stats.spreads[-1]
    assert p99.name == "p99" and (p99.low, p99.high) == (0.1, 0.5)
    # Exact pooled extrema.
    assert stats.minimum == 0.01 and stats.maximum == 0.6
    # LatencyStats has no averaged-percentile field at all.
    assert not any("p99" in field and "mean" in field
                   for field in type(stats).__dataclass_fields__)


def test_pooled_percentile_differs_from_mean_of_percentiles():
    # One well-behaved seed, one heavy-tailed seed.  The p99 of the pooled
    # distribution sits near the tail seed's p99; the mean of per-seed p99s
    # splits the difference and understates the tail.
    calm = [0.01] * 99 + [0.02]
    spiky = [0.01] * 50 + [1.0] * 50
    from repro.sim.stats import _percentile

    per_seed_p99 = [_percentile(sorted(seed), 0.99) for seed in (calm, spiky)]
    mean_of_p99 = sum(per_seed_p99) / 2
    pooled = pooled_percentile([calm, spiky], 0.99)
    assert pooled == pytest.approx(1.0)
    assert mean_of_p99 == pytest.approx(0.51, abs=0.01)
    assert pooled > mean_of_p99 * 1.9


def test_pooled_percentile_of_one_seed_matches_recorder_summary():
    from repro.sim.stats import LatencyRecorder

    recorder = LatencyRecorder()
    samples = [0.001 * index for index in range(1, 200)]
    for sample in samples:
        recorder.record_value(sample)
    summary = recorder.summary()
    assert pooled_percentile([samples], 0.99) == pytest.approx(summary.p99)
    assert pooled_percentile([samples], 0.50) == pytest.approx(summary.p50)


# ------------------------------------------------------------------ grouping


def test_aggregate_groups_replicates_and_strips_the_label():
    records = [
        fake_record("d0", labels={"batch_size": 5, "replicate": 0}, throughput=100.0),
        fake_record("d1", labels={"batch_size": 5, "replicate": 1}, throughput=120.0),
        fake_record("d2", labels={"batch_size": 25}, throughput=300.0),
    ]
    points = aggregate_records(records)
    assert len(points) == 2
    replicated = points[0]
    assert replicated.labels == (("batch_size", 5),)
    assert replicated.replicates == 2
    assert replicated.digests == ("d0", "d1")
    assert replicated.metrics["throughput_txn_s"].mean == pytest.approx(110.0)
    single = points[1]
    assert single.replicates == 1
    assert single.metrics["throughput_txn_s"].std == 0.0


def test_aggregate_orders_by_content_not_insertion():
    # Completion-order stores (parallel sweeps) must render identically to
    # serial ones: 25 arrives first here but sorts after 5 numerically.
    records = [
        fake_record("d-b", labels={"batch_size": 25}),
        fake_record("d-a", labels={"batch_size": 5}),
    ]
    points = aggregate_records(records)
    assert [point.label("batch_size") for point in points] == [5, 25]


def test_aggregate_never_pools_different_configs_with_same_labels():
    """Regression: a replicate family is (labels AND resolved config minus
    seeds).  Two ad-hoc runs with different knobs but identical (empty)
    labels must render as two rows, not one bogus 2-seed average."""
    records = [
        dict(fake_record("d0", sweep="api-run", throughput=100.0),
             point={"system": "serverless_bft", "scenario": "baseline",
                    "config": {"batch_size": 5, "seed": 1},
                    "workload": {"seed": 2}}),
        dict(fake_record("d1", sweep="api-run", throughput=900.0),
             point={"system": "serverless_bft", "scenario": "baseline",
                    "config": {"batch_size": 25, "seed": 1},
                    "workload": {"seed": 2}}),
    ]
    points = aggregate_records(records)
    assert len(points) == 2
    assert all(point.replicates == 1 for point in points)
    # True replicates — same config, different materialised seeds — still pool.
    replicates = [
        dict(fake_record(f"r{i}", sweep="api-run",
                         labels={"replicate": i}, throughput=100.0 + i),
             point={"system": "serverless_bft", "scenario": "baseline",
                    "config": {"batch_size": 5, "seed": 10 + i},
                    "workload": {"seed": 20 + i}})
        for i in range(2)
    ]
    assert len(aggregate_records(replicates)) == 1


def test_aggregate_separates_systems_with_identical_labels():
    records = [
        fake_record("d0", labels={"clients": 40}, system="serverless_bft"),
        fake_record("d1", labels={"clients": 40}, system="noshim"),
    ]
    points = aggregate_records(records)
    assert len(points) == 2
    assert {point.system for point in points} == {"serverless_bft", "noshim"}


# ------------------------------------------------------------------ rendering


def _store_with_replicates(tmp_path):
    store = ResultStore(str(tmp_path / "results.jsonl"))
    for index, (throughput, p99) in enumerate(((100.0, 0.1), (120.0, 0.5))):
        record = fake_record(
            f"digest-{index}",
            labels={"batch_size": 5, "replicate": index},
            throughput=throughput,
            p99=p99,
        )
        store.put(record["digest"], {"labels": record["labels"],
                                     **{"system": "serverless_bft",
                                        "scenario": "baseline"}},
                  record["result"], sweep_name="unit")
    return store


def test_render_shows_spread_not_averaged_p99(tmp_path):
    store = _store_with_replicates(tmp_path)
    document = render_markdown(store)
    # The spread of the two per-seed p99s...
    assert "0.1000–0.5000" in document
    # ...and under no circumstances their average.
    assert "0.3000" not in document
    assert "mean ± std" in document  # the legend explains the error bars
    assert "never averaged" in document


def test_render_is_byte_stable_across_renders(tmp_path):
    store = _store_with_replicates(tmp_path)
    first = render_markdown(store)
    second = render_markdown(ResultStore(store.path))  # fresh load from disk
    assert first == second
    assert first.encode("utf-8") == second.encode("utf-8")


def test_render_single_run_has_no_error_bars(tmp_path):
    store = ResultStore(str(tmp_path / "single.jsonl"))
    record = fake_record("d0", labels={"batch_size": 5}, throughput=100.0)
    store.put("d0", {"labels": record["labels"], "system": "serverless_bft",
                     "scenario": "baseline"}, record["result"], sweep_name="solo")
    document = render_markdown(store)
    data_rows = [line for line in document.splitlines()
                 if line.startswith("| 5 |")]
    assert len(data_rows) == 1
    assert "100.0" in data_rows[0] and "±" not in data_rows[0]
    assert "–" not in data_rows[0]  # no spread for a single seed either


def test_recovery_metrics_aggregate_only_when_present():
    plain = fake_record("d-plain", labels={"batch_size": 5})
    fault = fake_record("d-fault", labels={"batch_size": 25})
    fault["result"]["view_changes"] = 3
    fault["result"]["extra"] = {
        "unavailability_seconds": 1.25,
        "time_to_recovery_seconds": 0.4,
        "checkpoints_sent": 7,
    }
    points = aggregate_records([plain, fault])
    by_batch = {point.label("batch_size"): point for point in points}
    assert "unavailability_s" not in by_batch[5].metrics
    assert by_batch[25].metrics["unavailability_s"].mean == pytest.approx(1.25)
    assert by_batch[25].metrics["recovery_ttr_s"].mean == pytest.approx(0.4)
    assert by_batch[25].metrics["view_changes"].mean == pytest.approx(3.0)
    assert by_batch[25].metrics["checkpoints"].mean == pytest.approx(7.0)


def test_render_recovery_columns_only_for_fault_runs(tmp_path):
    # A store with no fault-timeline records renders exactly as before...
    plain_store = ResultStore(str(tmp_path / "plain.jsonl"))
    plain = fake_record("d-plain", labels={"batch_size": 5})
    plain_store.put("d-plain", {"labels": plain["labels"],
                                "system": "serverless_bft",
                                "scenario": "baseline"},
                    plain["result"], sweep_name="chaos")
    assert "unavailability_s" not in render_markdown(plain_store)
    # ...while a fault run adds the watchdog columns, and rows without the
    # metrics render empty cells.
    store = ResultStore(str(tmp_path / "chaos.jsonl"))
    store.put("d-plain", {"labels": plain["labels"],
                          "system": "serverless_bft",
                          "scenario": "baseline"},
              plain["result"], sweep_name="chaos")
    fault = fake_record("d-fault", labels={"batch_size": 25})
    fault["result"]["extra"] = {
        "unavailability_seconds": 1.25,
        "time_to_recovery_seconds": 0.4,
        "checkpoints_sent": 7,
    }
    store.put("d-fault", {"labels": fault["labels"],
                          "system": "serverless_bft",
                          "scenario": "primary-crash"},
              fault["result"], sweep_name="chaos")
    document = render_markdown(store)
    assert "unavailability_s" in document and "recovery_ttr_s" in document
    fault_rows = [line for line in document.splitlines() if line.startswith("| 25 |")]
    assert len(fault_rows) == 1 and "1.250" in fault_rows[0]
    plain_rows = [line for line in document.splitlines() if line.startswith("| 5 |")]
    assert len(plain_rows) == 1 and "|  |" in plain_rows[0]


def test_markdown_table_renders_experiment_table():
    from repro.bench.harness import ExperimentTable

    table = ExperimentTable(name="demo", columns=("a", "b"))
    table.add(a="x", b=1.5)
    table.add(a="y", b=2.0)
    rendered = markdown_table(table)
    assert rendered.startswith("| a | b |")
    assert "| x | 1.500 |" in rendered and "| y | 2.000 |" in rendered


def test_model_preset_tables_cover_the_figures():
    from repro.bench.experiments import MODEL_PRESETS, model_preset_tables

    assert {"fig5-client-congestion", "fig7-baseline-comparison",
            "fig8-task-offloading", "ablation-spawning-policy"} <= set(MODEL_PRESETS)
    tables = model_preset_tables(["fig5-client-congestion"])
    assert len(tables) == 1 and len(tables[0]) > 0
    with pytest.raises(ConfigurationError):
        model_preset_tables(["fig99-imaginary"])
    # markdown_report is the section renderer the report CLI embeds.
    from repro.bench.experiments import markdown_report

    fragment = markdown_report(["fig5-client-congestion"])
    assert fragment.startswith("## fig5-client-congestion")
    assert "| system | clients |" in fragment


# ------------------------------------------------------------------ CLI


def test_report_cli_renders_and_fail_empty(tmp_path, capsys):
    store = _store_with_replicates(tmp_path)
    output = tmp_path / "EXPERIMENTS.md"
    assert report_cli(["--store", store.path, "--output", str(output),
                       "--fail-empty"]) == 0
    document = output.read_text()
    assert "## unit" in document and "0.1000–0.5000" in document

    empty = str(tmp_path / "empty.jsonl")
    open(empty, "w").close()
    assert report_cli(["--store", empty, "--fail-empty"]) == 4
    assert "no " in capsys.readouterr().err


def test_fail_empty_not_masked_by_model_presets_or_bad_filter(tmp_path, capsys):
    """--fail-empty judges the measured tables: the always-populated model
    presets (and a --sweep filter matching nothing) must not mask an empty
    store render."""
    empty = str(tmp_path / "empty.jsonl")
    open(empty, "w").close()
    assert report_cli(["--store", empty, "--fail-empty", "--model-presets"]) == 4
    capsys.readouterr()

    store = _store_with_replicates(tmp_path)
    assert report_cli(["--store", store.path, "--fail-empty",
                       "--sweep", "no-such-sweep"]) == 4
    assert "--sweep filter" in capsys.readouterr().err


def test_sweep_cli_report_alias(tmp_path, capsys):
    from repro.sweep.cli import main as sweep_cli

    store = _store_with_replicates(tmp_path)
    assert sweep_cli(["report", "--store", store.path, "--fail-empty"]) == 0
    assert "## unit" in capsys.readouterr().out


def test_replicated_run_to_report_cycle(tmp_path, capsys):
    """The CI report-smoke flow: replicated sweep -> cached re-run -> render."""
    from repro.sweep.cli import main as sweep_cli

    store = str(tmp_path / "cycle.jsonl")
    run_args = ["run", "smoke", "--duration", "0.3", "--warmup", "0.05",
                "--replicates", "2", "--store", store, "--quiet"]
    assert sweep_cli(run_args) == 0
    assert "simulated=8 cached=0 failed=0" in capsys.readouterr().out
    assert sweep_cli(run_args + ["--expect-all-cached"]) == 0
    capsys.readouterr()

    output = tmp_path / "EXPERIMENTS.md"
    assert report_cli(["--store", store, "--output", str(output),
                       "--fail-empty"]) == 0
    document = output.read_text()
    assert "## smoke" in document
    # 4 grid points aggregated from 8 stored runs, 2 seeds each.
    assert "8 stored run(s)" in document and "4 aggregated point(s)" in document
    assert document.count("| 2 |") >= 4  # the seeds column


def test_report_never_simulates(tmp_path, monkeypatch):
    """Rendering must be a pure store read: block every construction path."""
    import repro.api.facade as facade

    def explode(*_args, **_kwargs):
        raise AssertionError("report rendering tried to build a deployment")

    monkeypatch.setattr(facade, "build_deployment", explode)
    monkeypatch.setattr(facade, "run", explode)
    store = _store_with_replicates(tmp_path)
    document = render_markdown(ResultStore(store.path))
    assert "## unit" in document
