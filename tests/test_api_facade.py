"""Tests for the ``repro.api`` front door (ISSUE 3 acceptance criteria).

* registry parity smoke — one deterministic point through **every**
  registered system, twice, with bit-identical result digests,
* scenario composition — ``["region-outage", "skewed-ycsb"]`` applies both
  presets in list order, conflicting compositions fail loudly,
* one validation path for unsupported knobs (registry capabilities),
* runtime-registered systems work end-to-end (``PointSpec`` validation,
  ``repro.api.run``, sweeps, CLI),
* legacy entry points still work but emit ``DeprecationWarning``; the
  facade itself never does.
"""

import warnings

import pytest

from repro.api import (
    RunSpec,
    ScenarioConflictError,
    SystemAdapter,
    UnsupportedKnobError,
    build_deployment,
    compose_scenarios,
    register_system,
    replicate_specs,
    resolve,
    result_digest,
    route_key,
    run,
    run_replicates,
    spec_digest,
    system_names,
)
from repro.errors import ConfigurationError
from repro.sweep import PointSpec, Scenario, SweepSpec, register_scenario, run_sweep
from repro.sweep.cli import main as sweep_cli

#: Small, fast deployment every test here reuses.
FAST_OVERRIDES = {
    "crypto_backend": "fast",
    "num_clients": 40,
    "client_groups": 2,
    "workload.clients": 40,
}


def _spec(**kwargs) -> RunSpec:
    kwargs.setdefault("overrides", FAST_OVERRIDES)
    kwargs.setdefault("duration", 0.4)
    kwargs.setdefault("warmup", 0.1)
    return RunSpec(**kwargs)


# ------------------------------------------------------------------ registry parity


def test_every_registered_system_runs_deterministically():
    """One deterministic point through every system, twice: equal digests."""
    assert {"serverless_bft", "serverless_cft", "pbft_replicated", "noshim"} <= set(
        system_names()
    )
    for system in system_names():
        first = run(_spec(system=system, seed=3, execution_threads=2))
        second = run(_spec(system=system, seed=3, execution_threads=2))
        assert first.committed_txns > 0, system
        assert result_digest(first) == result_digest(second), system


def test_facade_matches_legacy_constructor_bit_for_bit():
    """repro.api.run == building the same resolved configs by hand."""
    from repro.api import protocol_config_from_dict, workload_config_from_dict
    from repro.core.runner import ServerlessBFTSimulation

    spec = _spec(seed=7)
    resolved = resolve(spec)
    facade_result = run(spec)

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = ServerlessBFTSimulation(
            protocol_config_from_dict(resolved["config"]),
            workload=workload_config_from_dict(resolved["workload"]),
            tracer_enabled=False,
        )
    legacy_result = legacy.run(duration=0.4, warmup=0.1)
    assert result_digest(facade_result) == result_digest(legacy_result)


# ------------------------------------------------------------------ scenario composition


def test_composed_scenarios_apply_in_list_order():
    spec = _spec(scenarios=["region-outage", "skewed-ycsb"], seed=5)
    resolved = resolve(spec)
    assert resolved["scenarios"] == ["region-outage", "skewed-ycsb"]
    assert resolved["scenario"] == "region-outage+skewed-ycsb"
    # skewed-ycsb's workload contribution survives the merge...
    assert resolved["workload"]["zipfian_theta"] == 0.9
    # ...and region-outage's fault plan is built and bound at deploy time.
    deployment = build_deployment(resolved)
    plan = deployment.network.fault_plan
    deployment.network.register("probe-endpoint", "us-east-2", lambda *_args: None)
    assert plan.is_partitioned("probe-endpoint", "verifier")
    # Resolution is deterministic: same spec, same resolved dict.
    assert resolve(spec) == resolved


def test_composed_scenario_point_runs_through_sweep_and_facade():
    scenario_list = ("region-outage", "skewed-ycsb")
    facade_result = run(_spec(scenarios=list(scenario_list), seed=11))
    assert facade_result.committed_txns > 0

    point = PointSpec(
        labels={"drill": "composed"},
        scenario=scenario_list,
        config={"num_clients": 40, "client_groups": 2},
        workload={"clients": 40},
        duration=0.4,
        warmup=0.1,
    )
    assert point.scenario_label == "region-outage+skewed-ycsb"
    report = run_sweep(SweepSpec(name="composed", points=(point,)))
    assert report.failed == 0
    assert report.outcomes[0].resolved["scenarios"] == list(scenario_list)
    assert report.outcomes[0].result.committed_txns > 0


def test_overlapping_scenario_keys_conflict():
    register_scenario(
        Scenario(
            name="unit-test-mild-writes",
            description="conflicts with write-heavy on purpose",
            workload_overrides={"write_fraction": 0.1},
        ),
        replace=True,
    )
    with pytest.raises(ScenarioConflictError) as excinfo:
        compose_scenarios(["write-heavy", "unit-test-mild-writes"])
    assert "write_fraction" in str(excinfo.value)
    # Agreeing values are not a conflict.
    composed = compose_scenarios(["write-heavy", "write-heavy"])
    assert composed.workload_overrides == {"write_fraction": 0.9}
    # Point overrides still sit on top of the composed contribution.
    resolved = resolve(
        _spec(
            scenarios=["write-heavy", "skewed-ycsb"],
            overrides={**FAST_OVERRIDES, "write_fraction": 0.5},
        )
    )
    assert resolved["workload"]["write_fraction"] == 0.5
    assert resolved["workload"]["zipfian_theta"] == 0.9


def test_direct_fault_knobs_merge_with_scenarios_on_disjoint_nodes():
    from repro.api import build_deployment
    from repro.faults.byzantine import CrashBehaviour

    # request-suppression attaches a behaviour to node-0; the spec adds one
    # for node-3 — disjoint, so the dicts merge.
    spec = _spec(
        scenarios=["request-suppression"], node_behaviours={"node-3": CrashBehaviour()}
    )
    deployment = build_deployment(
        resolve(spec), extra_runner_kwargs=spec.direct_runner_kwargs()
    )
    behaviours = {
        node.name for node in deployment.nodes if node._behaviour is not None
    }
    assert behaviours == {"node-0", "node-3"}
    # The same node from both sources is a conflict.
    clashing = _spec(
        scenarios=["request-suppression"], node_behaviours={"node-0": CrashBehaviour()}
    )
    with pytest.raises(ScenarioConflictError):
        build_deployment(
            resolve(clashing), extra_runner_kwargs=clashing.direct_runner_kwargs()
        )


def test_constructor_extra_knobs_pass_through():
    # preload_storage is not a capability knob but a constructor switch the
    # serverless systems accept; the registry passes it through.
    from repro.bench.harness import simulate_point
    from repro.core.config import ProtocolConfig

    result = simulate_point(
        ProtocolConfig(
            crypto_backend="fast", num_clients=40, client_groups=2,
            storage_records=200,
        ),
        duration=0.3,
        warmup=0.05,
        report_perf=False,
        preload_storage=True,
    )
    assert result.committed_txns > 0
    with pytest.raises(UnsupportedKnobError):
        run(_spec(system="pbft_replicated", network_fault_plan=object()))


def test_overlapping_runner_knobs_conflict():
    # Both presets build a network fault plan: composing them is ambiguous.
    with pytest.raises(ScenarioConflictError):
        run(_spec(scenarios=["lossy-network", "region-outage"]))
    # A direct fault object clashing with a scenario's knob is caught too.
    from repro.sim.network import NetworkFaultPlan

    with pytest.raises(ScenarioConflictError):
        run(_spec(scenarios=["lossy-network"], network_fault_plan=NetworkFaultPlan()))


# ------------------------------------------------------------------ capability validation


def test_unsupported_knobs_error_from_one_path():
    # Scenario-injected knob the system cannot host...
    with pytest.raises(UnsupportedKnobError) as excinfo:
        run(_spec(system="pbft_replicated", scenarios=["region-outage"]))
    assert "network_fault_plan" in str(excinfo.value)
    # ...and a directly-attached one produce the same error type.
    from repro.faults.injector import PerBatchExecutorFaults
    from repro.faults.byzantine import WrongResultBehaviour

    with pytest.raises(UnsupportedKnobError):
        run(
            _spec(
                system="pbft_replicated",
                executor_behaviour_factory=PerBatchExecutorFaults(
                    1, WrongResultBehaviour
                ),
            )
        )


def test_run_spec_validation():
    with pytest.raises(ConfigurationError):
        RunSpec(system="martian")
    with pytest.raises(ConfigurationError):
        RunSpec(duration=0.0)
    with pytest.raises(ConfigurationError):
        RunSpec(overrides={"duration": 1.0})  # run-level key: use the field
    with pytest.raises(ConfigurationError):
        RunSpec(overrides={"warp_factor": 9})


# ------------------------------------------------------------------ dotted keys


def test_route_key_routing():
    assert route_key("protocol.batch_size") == ("config", "batch_size")
    assert route_key("config.batch_size") == ("config", "batch_size")
    assert route_key("workload.write_fraction") == ("workload", "write_fraction")
    assert route_key("batch_size") == ("config", "batch_size")
    assert route_key("write_fraction") == ("workload", "write_fraction")
    assert route_key("seed") == ("config", "seed")  # historical axis routing
    assert route_key("system") == ("run", "system")
    assert route_key("scenarios") == ("run", "scenario")
    with pytest.raises(ConfigurationError):
        route_key("protocol.write_fraction")  # YCSB field, wrong prefix
    with pytest.raises(ConfigurationError):
        route_key("mystery.knob")
    with pytest.raises(ConfigurationError):
        route_key("warp_factor")


def test_dotted_overrides_reach_the_configs():
    resolved = resolve(
        _spec(
            overrides={
                **FAST_OVERRIDES,
                "protocol.batch_size": 7,
                "workload.write_fraction": 0.75,
            }
        )
    )
    assert resolved["config"]["batch_size"] == 7
    assert resolved["config"]["num_clients"] == 40
    assert resolved["workload"]["write_fraction"] == 0.75


# ------------------------------------------------------------------ pluggable systems


def _build_tuned_noshim(config, workload=None, *, tracer_enabled=False, **kwargs):
    """A third-party system: NOSHIM with a cheaper ingest path."""
    from repro.baselines.noshim import build_noshim_simulation

    tuned = config.with_overrides(txn_ingest_cost=5e-6)
    return build_noshim_simulation(
        tuned, workload=workload, tracer_enabled=tracer_enabled, **kwargs
    )


def test_runtime_registered_system_end_to_end():
    register_system(
        SystemAdapter(
            name="unit-test-tuned-noshim",
            description="runtime-registered system for the registry test",
            builder=_build_tuned_noshim,
        ),
        replace=True,
    )
    # PointSpec validation defers to the registry (the frozen-SYSTEMS fix).
    point = PointSpec(
        labels={"system": "unit-test-tuned-noshim"},
        system="unit-test-tuned-noshim",
        config={"crypto_backend": "fast", "num_clients": 40, "client_groups": 2},
        workload={"clients": 40},
        duration=0.4,
        warmup=0.1,
    )
    report = run_sweep(SweepSpec(name="custom-system", points=(point,)))
    assert report.failed == 0 and report.outcomes[0].result.committed_txns > 0
    # The facade drives it by name like any built-in, deterministically.
    first = run(_spec(system="unit-test-tuned-noshim", seed=2))
    second = run(_spec(system="unit-test-tuned-noshim", seed=2))
    assert result_digest(first) == result_digest(second)
    # The legacy SYSTEMS module attribute reflects the registry now.
    from repro.sweep import spec as sweep_spec_module

    assert "unit-test-tuned-noshim" in sweep_spec_module.SYSTEMS
    with pytest.raises(ConfigurationError):
        PointSpec(system="still-not-a-system")


def test_runtime_registered_system_ships_to_workers():
    from repro.api.registry import custom_systems
    from repro.sweep.runner import _register_worker_state

    adapters = custom_systems()
    # Idempotent re-registration (what the pool initializer does in workers).
    _register_worker_state([], adapters)
    assert {adapter.name for adapter in adapters} <= set(system_names())


# ------------------------------------------------------------------ deprecation shims


def test_legacy_entry_points_emit_deprecation_warnings():
    from repro.baselines import (
        PBFTReplicatedSimulation,
        build_noshim_simulation,
        build_serverless_cft_simulation,
    )
    from repro.core.config import ProtocolConfig
    from repro.core.runner import ServerlessBFTSimulation

    config = ProtocolConfig(num_clients=8, client_groups=2, crypto_backend="fast")
    with pytest.warns(DeprecationWarning, match="ServerlessBFTSimulation"):
        ServerlessBFTSimulation(config, tracer_enabled=False)
    with pytest.warns(DeprecationWarning, match="build_noshim_simulation"):
        build_noshim_simulation(config, tracer_enabled=False)
    with pytest.warns(DeprecationWarning, match="build_serverless_cft_simulation"):
        build_serverless_cft_simulation(config, tracer_enabled=False)
    with pytest.warns(DeprecationWarning, match="PBFTReplicatedSimulation"):
        PBFTReplicatedSimulation(config, tracer_enabled=False)


def test_facade_construction_never_warns():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        for system in ("serverless_bft", "serverless_cft", "pbft_replicated", "noshim"):
            result = run(_spec(system=system))
            assert result.committed_txns > 0


# ------------------------------------------------------------------ CLI


# ------------------------------------------------------------------ per-run store + replicates


def test_run_with_store_caches_and_resumes(tmp_path):
    from repro.sweep.store import ResultStore

    store_path = str(tmp_path / "api.jsonl")
    spec = _spec()
    first = run(spec, store=store_path)  # a path is accepted directly
    store = ResultStore(store_path)
    assert len(store) == 1 and spec_digest(spec) in store

    # Second run: served from the store, bit-identical simulated metrics.
    second = run(spec, store=store)
    assert result_digest(second) == result_digest(first)

    # The store only intercepts matching specs; a different spec simulates.
    other = run(_spec(overrides={**FAST_OVERRIDES, "batch_size": 7}), store=store)
    assert result_digest(other) != result_digest(first)
    assert len(ResultStore(store_path)) == 2


def test_run_store_shares_addresses_with_sweeps(tmp_path):
    """An ad-hoc facade run and a sweep point with the same resolved config
    share one cache entry — same content-address space."""
    from repro.sweep.store import ResultStore

    store = ResultStore(str(tmp_path / "shared.jsonl"))
    spec = _spec(seed=11)
    run(spec, store=store)
    point = PointSpec(
        labels={},
        config={key: value for key, value in FAST_OVERRIDES.items()
                if not key.startswith("workload.")},
        workload={"clients": 40},
        seed=11,
        duration=0.4,
        warmup=0.1,
    )
    report = run_sweep(SweepSpec(name="shared", points=(point,)), store=store)
    assert report.cached == 1 and report.simulated == 0


def test_run_with_store_rejects_bespoke_fault_objects(tmp_path):
    from repro.faults.byzantine import CrashBehaviour

    spec = _spec(node_behaviours={"node-3": CrashBehaviour()})
    with pytest.raises(ConfigurationError, match="scenario preset"):
        run(spec, store=str(tmp_path / "never.jsonl"))
    # Without a store the bespoke objects remain fully supported.
    assert run(spec).committed_txns > 0


def test_run_replicates_expands_caches_and_differs_per_seed(tmp_path):
    from repro.sweep.store import ResultStore

    store = ResultStore(str(tmp_path / "family.jsonl"))
    spec = _spec(replicates=2)
    family = run_replicates(spec, store=store)
    assert len(family) == 2
    assert result_digest(family[0]) != result_digest(family[1])
    assert len(store) == 2

    # Re-run: 100% cache hit, same results.
    again = run_replicates(spec, store=ResultStore(store.path))
    assert [result_digest(r) for r in again] == [result_digest(r) for r in family]

    # run() refuses a multi-replicate spec instead of silently running one.
    with pytest.raises(ConfigurationError, match="run_replicates"):
        run(spec)
    # Expansion is the single-spec identity for replicates=1.
    single = _spec()
    assert replicate_specs(single) == (single,)


def test_cli_list_systems(capsys):
    assert sweep_cli(["list-systems"]) == 0
    output = capsys.readouterr().out
    for name in ("serverless_bft", "serverless_cft", "pbft_replicated", "noshim"):
        assert name in output
    assert "capabilities:" in output


def test_cli_set_overrides(tmp_path, capsys):
    store = str(tmp_path / "set.jsonl")
    args = [
        "run",
        "smoke",
        "--duration",
        "0.3",
        "--warmup",
        "0.05",
        "--store",
        store,
        "--set",
        "protocol.batch_size=7",
        "--set",
        "workload.write_fraction=0.9",
    ]
    assert sweep_cli(args) == 0
    assert "simulated=4 cached=0 failed=0" in capsys.readouterr().out
    # Same overrides hit the cache; different overrides are fresh points.
    assert sweep_cli(args + ["--expect-all-cached"]) == 0
    capsys.readouterr()


def test_cli_set_rejects_malformed_pairs(capsys):
    assert sweep_cli(["run", "smoke", "--set", "no-equals-sign"]) == 2
    assert "--set expects key=value" in capsys.readouterr().err
    assert sweep_cli(["run", "smoke", "--set", "warp_factor=9"]) == 2
