"""Unit tests for the verifier's quorum matching, ordering, and recovery logic.

These tests drive a :class:`Verifier` directly with hand-built VERIFY and
client-request messages over a minimal network, without the rest of the
deployment, so each rule of Figure 3 (Lines 21–35) and Figure 4 (Lines 6–14)
can be exercised in isolation.
"""

from typing import List, Tuple

import pytest

from repro.core.certificates import CommitCertificate
from repro.core.messages import AbortMsg, AckMsg, ClientRequestMsg, ErrorMsg, ReplaceMsg, ResponseMsg, VerifyMsg
from repro.core.verifier import Verifier
from repro.crypto.costs import CryptoCostModel
from repro.crypto.hashing import digest
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import SignatureService
from repro.sim.engine import Simulator
from repro.sim.network import Network, UniformLatencyModel
from repro.sim.rng import DeterministicRNG
from repro.storage.kvstore import VersionedKVStore
from repro.workload.transactions import Operation, Transaction, TransactionBatch, execute_batch


class Harness:
    """A verifier plus captured traffic to clients and shim nodes."""

    def __init__(self, match_quorum=2, executor_faults=1, expected_executors=3,
                 quorum_timeout=0.5):
        self.sim = Simulator()
        self.network = Network(
            self.sim, UniformLatencyModel(base_delay=0.0005, jitter=0.0), DeterministicRNG(1)
        )
        self.keystore = KeyStore()
        self.store = VersionedKVStore()
        self.shim_names = ["node-0", "node-1", "node-2", "node-3"]
        self.to_clients: List[Tuple[str, object]] = []
        self.to_nodes: List[Tuple[str, object]] = []
        for name in self.shim_names:
            self.network.register(
                name, "us-west-1",
                lambda msg, sender, name=name: self.to_nodes.append((name, msg)),
            )
        self.network.register(
            "client-group-0", "us-west-1",
            lambda msg, sender: self.to_clients.append(("client-group-0", msg)),
        )
        self.verifier = Verifier(
            sim=self.sim,
            network=self.network,
            name="verifier",
            region="us-west-1",
            cores=8,
            store=self.store,
            signer=SignatureService(self.keystore, "verifier"),
            costs=CryptoCostModel(),
            shim_node_names=self.shim_names,
            match_quorum=match_quorum,
            executor_faults=executor_faults,
            expected_executors=expected_executors,
            quorum_timeout=quorum_timeout,
        )

    def make_batch(self, seq, keys=("k1",), request_id=None):
        request_id = request_id or f"req-{seq}"
        txn = Transaction(
            txn_id=f"txn-{seq}",
            client_id="client-0",
            operations=tuple(Operation(key=key, is_write=True, value="v") for key in keys),
            origin="client-group-0",
            request_id=request_id,
        )
        return TransactionBatch(batch_id=f"batch-{seq}", transactions=(txn,))

    def make_verify(self, seq, executor, batch=None, stale=False, corrupt=False):
        batch = batch or self.make_batch(seq)
        versions = {key: (99 if stale else self.store.read(key).version) for key in batch.keys}
        values = {key: self.store.read(key).value for key in batch.keys}
        result = execute_batch(batch, values, versions)
        if corrupt:
            from dataclasses import replace

            result = replace(result, result_digest=f"corrupt-{executor}")
        certificate = CommitCertificate(view=0, seq=seq, digest=digest(batch))
        unsigned = VerifyMsg(
            seq=seq, batch=batch, digest=digest(batch), certificate=certificate,
            result=result, executor=executor,
        )
        signature = SignatureService(self.keystore, executor).sign(unsigned.canonical())
        return VerifyMsg(
            seq=seq, batch=batch, digest=digest(batch), certificate=certificate,
            result=result, executor=executor, signature=signature,
        )

    def deliver(self, message, sender):
        self.verifier.on_message(message, sender)
        self.sim.run_until_idle()

    def run(self, until=None):
        self.sim.run(until=until) if until else self.sim.run_until_idle()

    def client_messages(self, kind):
        return [msg for _origin, msg in self.to_clients if isinstance(msg, kind)]

    def node_messages(self, kind):
        return [msg for _node, msg in self.to_nodes if isinstance(msg, kind)]


def test_matching_quorum_validates_and_replies():
    harness = Harness()
    batch = harness.make_batch(1)
    harness.deliver(harness.make_verify(1, "executor-0", batch), "executor-0")
    assert harness.client_messages(ResponseMsg) == []  # one VERIFY is not enough
    harness.deliver(harness.make_verify(1, "executor-1", batch), "executor-1")
    responses = harness.client_messages(ResponseMsg)
    assert len(responses) == 1
    assert responses[0].committed_txn_ids == ("txn-1",)
    assert harness.verifier.kmax == 2
    assert harness.store.read("k1").version == 1
    # Every shim node gets the "sequence verified" notice.
    notices = [msg for msg in harness.node_messages(ResponseMsg) if msg.seq == 1]
    assert len(notices) == len(harness.shim_names)


def test_out_of_order_sequences_wait_in_pi_until_kmax_advances():
    harness = Harness()
    batch2 = harness.make_batch(2, keys=("a",))
    harness.deliver(harness.make_verify(2, "executor-0", batch2), "executor-0")
    harness.deliver(harness.make_verify(2, "executor-1", batch2), "executor-1")
    # Sequence 2 matched but k_max = 1 is missing: nothing is applied yet.
    assert harness.client_messages(ResponseMsg) == []
    assert harness.store.write_count == 0
    batch1 = harness.make_batch(1, keys=("b",))
    harness.deliver(harness.make_verify(1, "executor-2", batch1), "executor-2")
    harness.deliver(harness.make_verify(1, "executor-3", batch1), "executor-3")
    # Both sequence numbers are now validated, in order.
    assert harness.verifier.kmax == 3
    assert len(harness.client_messages(ResponseMsg)) == 2


def test_mismatching_results_do_not_form_a_quorum():
    harness = Harness()
    batch = harness.make_batch(1)
    harness.deliver(harness.make_verify(1, "executor-0", batch), "executor-0")
    harness.deliver(harness.make_verify(1, "executor-1", batch, corrupt=True), "executor-1")
    assert harness.client_messages(ResponseMsg) == []
    # A third, honest executor completes the quorum of matching results.
    harness.deliver(harness.make_verify(1, "executor-2", batch), "executor-2")
    assert len(harness.client_messages(ResponseMsg)) == 1


def test_stale_reads_abort_the_transaction():
    harness = Harness()
    batch = harness.make_batch(1)
    harness.deliver(harness.make_verify(1, "executor-0", batch, stale=True), "executor-0")
    harness.deliver(harness.make_verify(1, "executor-1", batch, stale=True), "executor-1")
    responses = harness.client_messages(ResponseMsg)
    assert len(responses) == 1
    assert responses[0].aborted_txn_ids == ("txn-1",)
    assert harness.store.write_count == 0
    assert harness.verifier.aborted_txns == 1


def test_duplicate_and_post_quorum_verify_messages_are_ignored():
    harness = Harness()
    batch = harness.make_batch(1)
    verify = harness.make_verify(1, "executor-0", batch)
    harness.deliver(verify, "executor-0")
    harness.deliver(verify, "executor-0")  # duplicate from the same executor
    harness.deliver(harness.make_verify(1, "executor-1", batch), "executor-1")
    harness.deliver(harness.make_verify(1, "executor-2", batch), "executor-2")  # post-quorum
    assert harness.verifier.ignored_verify_messages >= 2
    assert len(harness.client_messages(ResponseMsg)) == 1


def test_invalid_signature_or_relayed_verify_rejected():
    harness = Harness()
    batch = harness.make_batch(1)
    verify = harness.make_verify(1, "executor-0", batch)
    # Relayed by a different sender than the claimed executor: rejected.
    harness.deliver(verify, "executor-9")
    # Unsigned message: rejected.
    from dataclasses import replace

    harness.deliver(replace(verify, signature=None), "executor-0")
    assert harness.verifier.kmax == 1
    assert len(harness.client_messages(ResponseMsg)) == 0


def test_client_retransmission_for_unknown_request_broadcasts_error():
    harness = Harness()
    request = ClientRequestMsg(
        request_id="req-lost", origin="client-group-0",
        transactions=harness.make_batch(9, request_id="req-lost").transactions,
    )
    harness.deliver(request, "client-group-0")
    errors = harness.node_messages(ErrorMsg)
    assert len(errors) == len(harness.shim_names)
    assert errors[0].request.request_id == "req-lost"
    assert harness.verifier.error_messages_sent == 1


def test_client_retransmission_after_response_resends_cached_reply():
    harness = Harness()
    batch = harness.make_batch(1, request_id="req-1")
    harness.deliver(harness.make_verify(1, "executor-0", batch), "executor-0")
    harness.deliver(harness.make_verify(1, "executor-1", batch), "executor-1")
    assert len(harness.client_messages(ResponseMsg)) == 1
    request = ClientRequestMsg(
        request_id="req-1", origin="client-group-0", transactions=batch.transactions
    )
    harness.deliver(request, "client-group-0")
    assert len(harness.client_messages(ResponseMsg)) == 2  # cached reply resent


def test_client_retransmission_for_stuck_sequence_reports_kmax_and_acks_later():
    harness = Harness()
    batch2 = harness.make_batch(2, request_id="req-2")
    harness.deliver(harness.make_verify(2, "executor-0", batch2), "executor-0")
    harness.deliver(harness.make_verify(2, "executor-1", batch2), "executor-1")
    request = ClientRequestMsg(
        request_id="req-2", origin="client-group-0", transactions=batch2.transactions
    )
    harness.deliver(request, "client-group-0")
    errors = harness.node_messages(ErrorMsg)
    assert errors and errors[0].missing_seq == 1
    # Once sequence 1 arrives and is validated, the verifier ACKs the shim.
    batch1 = harness.make_batch(1, request_id="req-1")
    harness.deliver(harness.make_verify(1, "executor-2", batch1), "executor-2")
    harness.deliver(harness.make_verify(1, "executor-3", batch1), "executor-3")
    assert harness.node_messages(AckMsg)
    assert harness.verifier.kmax == 3


def test_quorum_timeout_with_few_reports_blames_the_primary():
    harness = Harness(quorum_timeout=0.2)
    batch = harness.make_batch(1)
    harness.deliver(harness.make_verify(1, "executor-0", batch), "executor-0")
    harness.run(until=1.0)
    replaces = harness.node_messages(ReplaceMsg)
    assert len(replaces) >= len(harness.shim_names)
    assert harness.verifier.replace_messages_sent >= 1


def test_live_version_map_tracks_commits_and_matches_store():
    """Incremental validation: the live map mirrors the store across commits."""
    harness = Harness()
    for seq in (1, 2, 3):
        batch = harness.make_batch(seq, keys=("k1", f"k{seq}x"))
        harness.deliver(harness.make_verify(seq, "executor-0", batch), "executor-0")
        harness.deliver(harness.make_verify(seq, "executor-1", batch), "executor-1")
    assert harness.verifier.kmax == 4
    assert harness.store.read("k1").version == 3  # bumped by every batch
    live = harness.verifier._live_versions
    for key, version in live.items():
        assert version == harness.store.version_of(key), key


def test_live_version_map_consistent_after_aborts():
    """An aborted sequence leaves the store and live map untouched."""
    harness = Harness()
    batch1 = harness.make_batch(1, keys=("k1",))
    harness.deliver(harness.make_verify(1, "executor-0", batch1), "executor-0")
    harness.deliver(harness.make_verify(1, "executor-1", batch1), "executor-1")
    assert harness.store.read("k1").version == 1
    # Stale reads on the same key: the transaction aborts, no version bump.
    batch2 = harness.make_batch(2, keys=("k1",))
    harness.deliver(harness.make_verify(2, "executor-0", batch2, stale=True), "executor-0")
    harness.deliver(harness.make_verify(2, "executor-1", batch2, stale=True), "executor-1")
    assert harness.verifier.aborted_txns == 1
    assert harness.store.read("k1").version == 1
    assert harness.verifier._live_versions["k1"] == 1
    # A later, fresh batch on the same key validates against the live map.
    batch3 = harness.make_batch(3, keys=("k1",))
    harness.deliver(harness.make_verify(3, "executor-0", batch3), "executor-0")
    harness.deliver(harness.make_verify(3, "executor-1", batch3), "executor-1")
    assert harness.store.read("k1").version == 2
    assert harness.verifier._live_versions["k1"] == 2


def test_live_version_map_consistent_after_replace_timeout_abort():
    """The timeout-abort path (REPLACE machinery) keeps the map exact."""
    harness = Harness(quorum_timeout=0.2, executor_faults=1, expected_executors=4)
    batch = harness.make_batch(1, keys=("k1",))
    harness.deliver(harness.make_verify(1, "executor-0", batch), "executor-0")
    harness.deliver(harness.make_verify(1, "executor-1", batch, corrupt=True), "executor-1")
    harness.deliver(harness.make_verify(1, "executor-2", batch, stale=True), "executor-2")
    harness.run(until=1.0)
    assert harness.client_messages(AbortMsg)  # abort-tagged via the timer
    assert harness.store.write_count == 0
    # The next sequence on the same key still validates and bumps correctly.
    batch2 = harness.make_batch(2, keys=("k1",))
    harness.deliver(harness.make_verify(2, "executor-0", batch2), "executor-0")
    harness.deliver(harness.make_verify(2, "executor-1", batch2), "executor-1")
    assert harness.store.read("k1").version == 1
    live = harness.verifier._live_versions
    assert live.get("k1") == 1


def test_foreign_store_write_invalidates_live_map():
    """A write bypassing the verifier is detected via the mutation counter."""
    harness = Harness()
    batch1 = harness.make_batch(1, keys=("k1",))
    harness.deliver(harness.make_verify(1, "executor-0", batch1), "executor-0")
    harness.deliver(harness.make_verify(1, "executor-1", batch1), "executor-1")
    assert harness.store.read("k1").version == 1
    # Poke the store directly (no verifier involvement).
    harness.store.apply_writes({"k1": "foreign"})
    assert harness.store.read("k1").version == 2
    # Executors that observed the foreign version still commit...
    batch2 = harness.make_batch(2, keys=("k1",))
    harness.deliver(harness.make_verify(2, "executor-0", batch2), "executor-0")
    harness.deliver(harness.make_verify(2, "executor-1", batch2), "executor-1")
    assert harness.store.read("k1").version == 3
    # ...and the reseeded live map is exact again.
    assert harness.verifier._live_versions["k1"] == 3


def test_fabricated_read_version_outside_batch_aborts():
    """Matching results reporting a key outside the batch must still abort.

    The old per-batch snapshot aborted such transactions because the key
    was missing from the snapshot; the incremental check must reproduce
    that via the batch-key containment test even when the fabricated
    version happens to equal the store's current version.
    """
    import hashlib
    from dataclasses import replace

    from repro.workload.transactions import ExecutionResult, TransactionResult

    harness = Harness()
    # Commit a first batch so the foreign key has a live, nonzero version.
    batch1 = harness.make_batch(1, keys=("zz",))
    harness.deliver(harness.make_verify(1, "executor-0", batch1), "executor-0")
    harness.deliver(harness.make_verify(1, "executor-1", batch1), "executor-1")
    assert harness.store.read("zz").version == 1

    batch2 = harness.make_batch(2, keys=("k1",))

    def fabricated_verify(executor: str) -> VerifyMsg:
        txn = batch2.transactions[0]
        fabricated = TransactionResult(
            txn_id=txn.txn_id,
            writes={"k1": "v"},
            # Correct version for k1 AND the true current version of the
            # foreign key zz — every (key, version) pair matches the store.
            read_versions={"k1": 0, "zz": 1},
        )
        result = ExecutionResult(
            batch_id=batch2.batch_id,
            result_digest=hashlib.sha256(b"fabricated").hexdigest(),
            txn_results=(fabricated,),
        )
        certificate = CommitCertificate(view=0, seq=2, digest=digest(batch2))
        unsigned = VerifyMsg(
            seq=2, batch=batch2, digest=digest(batch2), certificate=certificate,
            result=result, executor=executor,
        )
        signature = SignatureService(harness.keystore, executor).sign(unsigned.canonical())
        return replace(unsigned, signature=signature)

    harness.deliver(fabricated_verify("executor-0"), "executor-0")
    harness.deliver(fabricated_verify("executor-1"), "executor-1")
    responses = harness.client_messages(ResponseMsg)
    aborted = [r for r in responses if r.aborted_txn_ids]
    assert aborted and aborted[0].aborted_txn_ids == ("txn-2",)
    assert harness.store.read("k1").version == 0  # fabricated write rejected


def test_quorum_timeout_with_conflicting_reports_aborts():
    harness = Harness(quorum_timeout=0.2, executor_faults=1, expected_executors=4)
    batch = harness.make_batch(1)
    # 2 f_E + 1 = 3 executors answered, but their results never match.
    harness.deliver(harness.make_verify(1, "executor-0", batch), "executor-0")
    harness.deliver(harness.make_verify(1, "executor-1", batch, corrupt=True), "executor-1")
    harness.deliver(harness.make_verify(1, "executor-2", batch, stale=True), "executor-2")
    harness.run(until=1.0)
    aborts = harness.client_messages(AbortMsg)
    assert len(aborts) == 1
    assert harness.verifier.kmax == 2  # the aborted sequence still advances k_max
