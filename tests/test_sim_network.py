"""Unit tests for the network model."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkFaultPlan, UniformLatencyModel
from repro.sim.rng import DeterministicRNG


def build_network(fault_plan=None, base_delay=0.001, jitter=0.0, bandwidth=0.0):
    sim = Simulator()
    network = Network(
        sim,
        UniformLatencyModel(base_delay=base_delay, jitter=jitter, bandwidth_bytes_per_sec=bandwidth),
        DeterministicRNG(1),
        fault_plan=fault_plan,
    )
    return sim, network


def test_message_delivered_with_latency():
    sim, network = build_network(base_delay=0.005)
    received = []
    network.register("a", "us-west-1", lambda msg, sender: received.append((msg, sender, sim.now)))
    network.register("b", "us-west-1", lambda msg, sender: None)
    network.send("b", "a", "hello", size_bytes=10)
    sim.run_until_idle()
    assert received == [("hello", "b", pytest.approx(0.005))]
    assert network.messages_sent == 1
    assert network.messages_delivered == 1


def test_bandwidth_adds_serialisation_delay():
    sim, network = build_network(base_delay=0.0, bandwidth=1000.0)
    received = []
    network.register("a", "r", lambda msg, sender: received.append(sim.now))
    network.register("b", "r", lambda msg, sender: None)
    network.send("b", "a", "payload", size_bytes=500)
    sim.run_until_idle()
    assert received == [pytest.approx(0.5)]


def test_unknown_sender_rejected():
    _sim, network = build_network()
    network.register("a", "r", lambda msg, sender: None)
    with pytest.raises(SimulationError):
        network.send("ghost", "a", "boo")


def test_unknown_destination_counts_as_drop():
    sim, network = build_network()
    network.register("a", "r", lambda msg, sender: None)
    network.send("a", "ghost", "boo")
    sim.run_until_idle()
    assert network.messages_dropped == 1
    assert network.messages_delivered == 0


def test_drop_probability_one_drops_everything():
    sim, network = build_network(fault_plan=NetworkFaultPlan(drop_probability=1.0))
    received = []
    network.register("a", "r", lambda msg, sender: received.append(msg))
    network.register("b", "r", lambda msg, sender: None)
    for _ in range(5):
        network.send("b", "a", "x")
    sim.run_until_idle()
    assert received == []
    assert network.messages_dropped == 5


def test_duplicate_probability_duplicates_messages():
    sim, network = build_network(fault_plan=NetworkFaultPlan(duplicate_probability=1.0))
    received = []
    network.register("a", "r", lambda msg, sender: received.append(msg))
    network.register("b", "r", lambda msg, sender: None)
    network.send("b", "a", "x")
    sim.run_until_idle()
    assert received == ["x", "x"]


def test_partition_blocks_directed_traffic_and_heals():
    plan = NetworkFaultPlan()
    plan.partition("a", "b", bidirectional=False)
    sim, network = build_network(fault_plan=plan)
    received = {"a": [], "b": []}
    network.register("a", "r", lambda msg, sender: received["a"].append(msg))
    network.register("b", "r", lambda msg, sender: received["b"].append(msg))
    network.send("a", "b", "blocked")
    network.send("b", "a", "allowed")
    sim.run_until_idle()
    assert received["b"] == []
    assert received["a"] == ["allowed"]
    plan.heal()
    network.send("a", "b", "after-heal")
    sim.run_until_idle()
    assert received["b"] == ["after-heal"]


def test_muted_endpoint_cannot_send():
    plan = NetworkFaultPlan(muted_endpoints={"a"})
    sim, network = build_network(fault_plan=plan)
    received = []
    network.register("a", "r", lambda msg, sender: None)
    network.register("b", "r", lambda msg, sender: received.append(msg))
    network.send("a", "b", "silenced")
    sim.run_until_idle()
    assert received == []


def test_broadcast_skips_sender():
    sim, network = build_network()
    received = {"a": [], "b": [], "c": []}
    for name in received:
        network.register(name, "r", lambda msg, sender, name=name: received[name].append(msg))
    network.broadcast("a", ["a", "b", "c"], "hello")
    sim.run_until_idle()
    assert received["a"] == []
    assert received["b"] == ["hello"]
    assert received["c"] == ["hello"]


def test_region_lookup_and_unregister():
    _sim, network = build_network()
    network.register("a", "eu-west-1", lambda msg, sender: None)
    assert network.region_of("a") == "eu-west-1"
    assert network.has_endpoint("a")
    network.unregister("a")
    assert not network.has_endpoint("a")
    with pytest.raises(SimulationError):
        network.region_of("a")


def test_bytes_accounted():
    sim, network = build_network()
    network.register("a", "r", lambda msg, sender: None)
    network.register("b", "r", lambda msg, sender: None)
    network.send("a", "b", "x", size_bytes=100)
    network.send("a", "b", "y", size_bytes=250)
    sim.run_until_idle()
    assert network.bytes_sent == 350


def test_down_endpoint_drops_both_directions_silently():
    sim, network = build_network()
    received = []
    network.register("a", "r", lambda msg, sender: received.append(msg))
    network.register("b", "r", lambda msg, sender: received.append(msg))
    network.set_endpoint_down("b")
    assert network.is_endpoint_down("b")
    network.send("a", "b", "to-down")  # into the crashed node
    network.send("b", "a", "from-down")  # late send out of it
    sim.run_until_idle()
    assert received == []
    assert network.messages_dropped == 2
    network.set_endpoint_down("b", down=False)
    network.send("a", "b", "after-recovery")
    sim.run_until_idle()
    assert received == ["after-recovery"]


def test_cut_links_are_directed_and_healable():
    sim, network = build_network()
    received = []
    network.register("a", "r", lambda msg, sender: received.append((msg, sender)))
    network.register("b", "r", lambda msg, sender: received.append((msg, sender)))
    network.cut_links([("a", "b")])
    network.send("a", "b", "cut")  # severed direction
    network.send("b", "a", "open")  # reverse stays open
    sim.run_until_idle()
    assert received == [("open", "b")]
    assert network.messages_dropped == 1
    network.heal_links([("a", "b")])
    network.send("a", "b", "healed")
    sim.run_until_idle()
    assert ("healed", "a") in received
