"""Tests for ``repro.lint``: rules, suppression, baseline, CLI, clean tree.

Layers covered:

* every registered rule fails its ``tests/lint_fixtures/<code>_bad.py``
  fixture and passes its ``_good.py`` twin (parametrised over the registry,
  so adding a rule without fixtures fails here);
* the PR 2 ``hash()`` bug reconstruction is caught by DET001;
* inline ``# lint: ignore[RULE]`` suppression and the baseline round trip
  (write → unexplained entries still fail → justified entries pass →
  stale entries reported);
* the JSON output schema and the CLI's stable exit codes;
* the shipped tree itself lints clean (``check src`` exits 0) — the
  acceptance gate CI's static-analysis job re-runs;
* the DIG002 declarations match ``dataclasses.fields`` at runtime, so the
  AST view and the live classes cannot drift;
* mypy on the typed core, when mypy is installed (CI installs it; the
  offline dev container skips).
"""

from __future__ import annotations

import dataclasses
import json
import os
import textwrap

import pytest

from repro.lint import Baseline, run_lint
from repro.lint.cli import main
from repro.lint.rules import RULES, FileRule, ProjectRule

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")
SRC = os.path.join(REPO_ROOT, "src")


def codes(result, status="error"):
    return {f.rule for f in result.findings if f.status == status}


# ------------------------------------------------------------------ fixtures


@pytest.mark.parametrize("code", sorted(RULES))
def test_bad_fixture_fails(code):
    path = os.path.join(FIXTURES, f"{code.lower()}_bad.py")
    assert os.path.exists(path), f"rule {code} has no bad fixture"
    result = run_lint([path])
    assert code in codes(result), f"{code} did not fire on its bad fixture"


@pytest.mark.parametrize("code", sorted(RULES))
def test_good_fixture_passes(code):
    path = os.path.join(FIXTURES, f"{code.lower()}_good.py")
    assert os.path.exists(path), f"rule {code} has no good fixture"
    result = run_lint([path])
    assert code not in codes(result), (
        f"{code} fired on its good fixture: "
        + "; ".join(f.message for f in result.errors)
    )


def test_every_rule_has_kind_and_rationale():
    for code, rule in RULES.items():
        assert issubclass(rule, (FileRule, ProjectRule))
        assert rule.summary, f"{code} has no summary"
        assert "why this rule exists" in rule.rationale().lower(), (
            f"{code}'s docstring must explain why it exists"
        )


def test_pr2_hash_bug_reconstruction_caught():
    """The exact incident DET001 exists for: builtin hash() in the
    decentralized spawn-policy region stagger (shipped in PR 2, silently
    per-process-random until the serial-vs-pool A/B suite hit it)."""
    result = run_lint([os.path.join(FIXTURES, "det001_bad.py")])
    hash_findings = [
        f
        for f in result.errors
        if f.rule == "DET001" and "hash()" in f.message
    ]
    assert hash_findings, "the PR 2 hash() stagger was not caught"
    assert any("stagger" in f.snippet for f in hash_findings)


# ------------------------------------------------------------------ engine


def test_one_parse_many_rules(tmp_path):
    """A file violating several rules yields all of them from one scan."""
    path = tmp_path / "multi.py"
    path.write_text(
        textwrap.dedent(
            """
            import time

            def f(items):
                try:
                    started = time.time()
                except Exception:
                    pass
                return started
            """
        )
    )
    result = run_lint([str(path)])
    assert codes(result) == {"DET001", "EXC005"}


def test_syntax_error_is_a_finding_not_a_crash(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def f(:\n")
    result = run_lint([str(path)])
    assert codes(result) == {"SYNTAX"}


def test_inline_suppression_and_preceding_line(tmp_path):
    path = tmp_path / "suppressed.py"
    path.write_text(
        textwrap.dedent(
            """
            import time

            a = time.time()  # lint: ignore[DET001] host accounting
            # lint: ignore[DET001] justified on the line above
            b = time.time()
            c = time.time()
            """
        )
    )
    result = run_lint([str(path)])
    by_status = {f.status for f in result.findings}
    assert by_status == {"suppressed", "error"}
    assert len(result.errors) == 1  # only `c` still fires
    assert result.errors[0].snippet.startswith("c = ")


def test_suppression_is_rule_specific(tmp_path):
    path = tmp_path / "wrong_code.py"
    path.write_text("import time\na = time.time()  # lint: ignore[EXC005]\n")
    result = run_lint([str(path)])
    assert len(result.errors) == 1  # DET001 is not covered by EXC005's ignore


# ------------------------------------------------------------------ baseline


def test_baseline_round_trip(tmp_path):
    bad = os.path.join(FIXTURES, "exc005_bad.py")
    findings = run_lint([bad]).errors
    assert findings

    baseline = Baseline.from_findings(findings)
    baseline_path = tmp_path / "baseline.json"
    baseline.save(str(baseline_path))

    # Unexplained entries do NOT suppress — and are themselves errors.
    loaded = Baseline.load(str(baseline_path))
    result = run_lint([bad], baseline=loaded)
    assert result.errors and result.unexplained_baseline
    assert not result.ok

    # Justify every entry: findings become `baselined`, check passes.
    for entry in loaded.entries:
        entry.reason = "pre-existing; tracked in cleanup issue #99"
    loaded.save(str(baseline_path))
    rejustified = Baseline.load(str(baseline_path))
    result = run_lint([bad], baseline=rejustified)
    assert result.ok
    assert not result.errors
    assert codes(result, status="baselined") == {"EXC005"}
    assert not result.stale_baseline

    # A baseline entry whose code was fixed shows up as stale.
    good_only = run_lint([os.path.join(FIXTURES, "exc005_good.py")], baseline=rejustified)
    assert len(good_only.stale_baseline) == len(rejustified.entries)


def test_baseline_matches_by_snippet_not_line(tmp_path):
    source = "import time\na = time.time()\n"
    path = tmp_path / "drift.py"
    path.write_text(source)
    baseline = Baseline.from_findings(run_lint([str(path)]).errors)
    for entry in baseline.entries:
        entry.reason = "legacy wall-clock site"
    # Shift the finding down two lines; the snippet still matches.
    path.write_text("import time\n\n\na = time.time()\n")
    result = run_lint([str(path)], baseline=baseline)
    assert result.ok


# ------------------------------------------------------------------ JSON + CLI


def test_json_output_schema(capsys):
    bad = os.path.join(FIXTURES, "mut004_bad.py")
    exit_code = main(["check", bad, "--no-baseline", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert payload["version"] == 1
    assert payload["ok"] is False
    assert payload["files_scanned"] == 1
    assert set(payload["counts"]) == {"error", "suppressed", "baselined"}
    assert payload["counts"]["error"] == len(payload["findings"])
    for finding in payload["findings"]:
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "snippet", "status",
        }
        assert finding["rule"] == "MUT004"
        assert finding["line"] > 0
    assert payload["stale_baseline"] == []
    assert payload["unexplained_baseline"] == []


def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["check", str(clean), "--no-baseline"]) == 0
    assert main(["check", os.path.join(FIXTURES, "det001_bad.py"), "--no-baseline"]) == 1
    assert main(["check", str(clean), "--rules", "NOPE999"]) == 2
    assert main(["check", str(clean), "--baseline", str(tmp_path / "missing.json")]) == 2
    capsys.readouterr()


def test_cli_rules_listing(capsys):
    assert main(["rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out
    assert main(["rules", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert {entry["code"] for entry in payload} == set(RULES)
    assert all(entry["rationale"] for entry in payload)


def test_cli_rule_selection(capsys):
    bad = os.path.join(FIXTURES, "det001_bad.py")
    # Restricting to another rule means the DET001 findings vanish.
    assert main(["check", bad, "--no-baseline", "--rules", "EXC005"]) == 0
    capsys.readouterr()


def test_cli_baseline_subcommand(tmp_path, capsys, monkeypatch):
    bad = os.path.join(FIXTURES, "exc005_bad.py")
    out = tmp_path / "baseline.json"
    assert main(["baseline", bad, "--output", str(out)]) == 0
    capsys.readouterr()
    # The freshly written baseline has blank reasons: check still fails.
    assert main(["check", bad, "--baseline", str(out)]) == 1
    capsys.readouterr()
    # Justify, re-check: passes.  --update keeps the justified reasons.
    loaded = Baseline.load(str(out))
    for entry in loaded.entries:
        entry.reason = "legacy; to be fixed"
    loaded.save(str(out))
    assert main(["check", bad, "--baseline", str(out)]) == 0
    capsys.readouterr()
    assert main(["baseline", bad, "--output", str(out), "--update"]) == 0
    capsys.readouterr()
    reloaded = Baseline.load(str(out))
    assert all(entry.reason == "legacy; to be fixed" for entry in reloaded.entries)


# ------------------------------------------------------------------ the tree


def test_shipped_tree_is_clean():
    """The acceptance gate: ``python -m repro.lint check src/`` exits 0."""
    result = run_lint([SRC])
    messages = [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.errors
    ]
    assert not messages, "shipped tree has lint errors:\n" + "\n".join(messages)
    # The wall-clock accounting sites are suppressed with justifications,
    # not silently absent.
    assert result.counts()["suppressed"] >= 10


def test_dig002_declarations_match_runtime():
    """The AST-checked partitions equal ``dataclasses.fields`` live."""
    from repro.api.spec import (
        ADDRESSED_RUNSPEC_FIELDS,
        NON_ADDRESSED_RUNSPEC_FIELDS,
        RunSpec,
    )
    from repro.core.runner import SimulationResult
    from repro.sweep.serialization import HOST_SPEED_FIELDS, SIMULATED_RESULT_FIELDS

    spec_fields = {f.name for f in dataclasses.fields(RunSpec)}
    declared = set(ADDRESSED_RUNSPEC_FIELDS) | set(NON_ADDRESSED_RUNSPEC_FIELDS)
    assert spec_fields == declared
    assert not set(ADDRESSED_RUNSPEC_FIELDS) & set(NON_ADDRESSED_RUNSPEC_FIELDS)

    result_fields = {f.name for f in dataclasses.fields(SimulationResult)}
    declared = set(SIMULATED_RESULT_FIELDS) | set(HOST_SPEED_FIELDS)
    assert result_fields == declared
    assert not set(SIMULATED_RESULT_FIELDS) & set(HOST_SPEED_FIELDS)

    from repro.store.record import (
        ADDRESSED_RECORD_FIELDS,
        HOST_SIDE_RECORD_FIELDS,
        StoreRecord,
    )

    record_fields = {f.name for f in dataclasses.fields(StoreRecord)}
    declared = set(ADDRESSED_RECORD_FIELDS) | set(HOST_SIDE_RECORD_FIELDS)
    assert record_fields == declared
    assert not set(ADDRESSED_RECORD_FIELDS) & set(HOST_SIDE_RECORD_FIELDS)


def test_dig002_requires_whole_tree_context(tmp_path):
    """A RunSpec parsed without its declarations is an explicit finding,
    not a silent pass."""
    path = tmp_path / "orphan.py"
    path.write_text(
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class RunSpec:\n"
        "    seed: int = 1\n"
    )
    result = run_lint([str(path)])
    assert codes(result) == {"DIG002"}
    assert "not in the scanned file set" in result.errors[0].message


# ------------------------------------------------------------------ mypy gate


def test_mypy_typed_core():
    """Run mypy over the typed core when available (CI installs it)."""
    mypy_api = pytest.importorskip("mypy.api", reason="mypy not installed")
    stdout, stderr, status = mypy_api.run(
        ["--config-file", os.path.join(REPO_ROOT, "mypy.ini")]
    )
    assert status == 0, f"mypy failed:\n{stdout}\n{stderr}"
