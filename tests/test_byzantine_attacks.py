"""Integration tests for the attacks of Section V/VI and their recovery."""

from tests.helpers import make_config, make_workload, run_simulation
from repro.faults.byzantine import (
    CrashBehaviour,
    DelaySpawningBehaviour,
    DuplicateSpawningBehaviour,
    DuplicateVerifyBehaviour,
    FewerExecutorsBehaviour,
    RequestIgnoranceBehaviour,
    SilentExecutorBehaviour,
    WrongResultBehaviour,
)
from repro.faults.injector import PerBatchExecutorFaults


def attack_config(**overrides):
    """Config with aggressive timers so recovery happens within the test run."""
    params = dict(
        client_timeout=0.4,
        node_request_timeout=0.6,
        retransmission_timeout=0.4,
        verifier_quorum_timeout=0.4,
    )
    params.update(overrides)
    return make_config(**params)


# ------------------------------------------------------------------ request suppression


def test_request_ignorance_triggers_view_change_and_progress():
    simulation, result = run_simulation(
        config=attack_config(),
        node_behaviours={"node-0": RequestIgnoranceBehaviour(drop_every=1)},
        duration=5.0,
        warmup=0.0,
    )
    # The byzantine primary is eventually replaced and clients make progress.
    assert result.view_changes > 0
    assert result.committed_txns > 0
    assert result.client_retransmissions > 0
    assert result.verifier_errors_sent > 0
    assert simulation.nodes[1].current_primary != "node-0"


def test_fewer_executors_attack_detected_by_verifier():
    simulation, result = run_simulation(
        config=attack_config(),
        node_behaviours={"node-0": FewerExecutorsBehaviour(spawn_at_most=1)},
        duration=5.0,
        warmup=0.0,
    )
    # The verifier cannot gather f_E+1 matching VERIFYs, blames the primary,
    # and the shim installs a new view; afterwards transactions flow again.
    assert result.verifier_replace_sent > 0
    assert result.view_changes > 0
    assert result.committed_txns > 0


def test_crashed_backup_node_does_not_stop_the_shim():
    _simulation, result = run_simulation(
        config=attack_config(),
        node_behaviours={"node-2": CrashBehaviour()},
        duration=3.0,
        warmup=0.0,
    )
    assert result.committed_txns > 0
    assert result.view_changes == 0  # the primary is honest, no replacement needed


# ------------------------------------------------------------------ byzantine executors


def test_wrong_result_executors_cannot_corrupt_storage():
    byz_sim, byz_result = run_simulation(
        duration=2.0,
        warmup=0.0,
        executor_behaviour_factory=PerBatchExecutorFaults(
            count=1, behaviour_factory=WrongResultBehaviour
        ),
    )
    # With f_E byzantine executors the matching quorum still validates the
    # honest result and the run commits transactions normally.
    assert byz_result.committed_txns > 0
    # Safety: the fabricated writes (tagged "byzantine-corrupted") never make
    # it into the on-premise data store — only the honest quorum's result does.
    values = [byz_sim.store.read(key).value for key in byz_sim.store.keys()]
    assert values
    assert not any("byzantine-corrupted" in value for value in values)


def test_silent_executors_tolerated_up_to_f():
    _simulation, result = run_simulation(
        duration=2.0,
        warmup=0.0,
        executor_behaviour_factory=PerBatchExecutorFaults(
            count=1, behaviour_factory=SilentExecutorBehaviour
        ),
    )
    assert result.committed_txns > 0


def test_verify_flooding_is_ignored_by_the_verifier():
    _simulation, result = run_simulation(
        duration=2.0,
        warmup=0.0,
        executor_behaviour_factory=PerBatchExecutorFaults(
            count=1, behaviour_factory=lambda: DuplicateVerifyBehaviour(copies=8)
        ),
    )
    assert result.committed_txns > 0
    assert result.verifier_ignored_verify > 0


# ------------------------------------------------------------------ verifier flooding by nodes


def test_duplicate_spawning_costs_the_byzantine_node_money():
    simulation, result = run_simulation(
        config=attack_config(),
        node_behaviours={"node-0": DuplicateSpawningBehaviour(extra_per_batch=2)},
        duration=2.0,
        warmup=0.0,
    )
    assert result.committed_txns > 0
    # Flooding is self-penalising: the byzantine spawner pays for every extra
    # executor it spawned (Section V-C).
    per_spawner = result.billing.per_spawner_cost
    assert per_spawner.get("node-0", 0.0) > 0
    honest_costs = [cost for name, cost in per_spawner.items() if name != "node-0"]
    assert all(per_spawner["node-0"] >= cost for cost in honest_costs)


# ------------------------------------------------------------------ byzantine aborts


def test_delayed_spawning_with_decentralized_policy_still_executes():
    from repro.core.config import SpawnPolicyName

    config = attack_config(spawn_policy=SpawnPolicyName.DECENTRALIZED)
    _simulation, result = run_simulation(
        config=config,
        workload=make_workload(conflict_fraction=0.2, rw_sets_known=False),
        node_behaviours={"node-0": DelaySpawningBehaviour(delay_seconds=10.0, delay_every=1)},
        duration=4.0,
        warmup=0.0,
    )
    # Even though the primary delays its own spawns indefinitely, the other
    # nodes' executors provide the f_E+1 matching results.
    assert result.committed_txns > 0
