"""Integration tests for the attacks of Section V/VI and their recovery.

The node-level drills run through *scenario presets*
(``request-suppression``, ``fewer-executors``, ``duplicate-spawning``,
``verify-flooding``, ``delayed-spawning``) — the same registry path sweeps
and composed ``RunSpec``s take — so these tests also pin down that the
presets inject exactly the behaviours the bespoke fault objects used to.
Attacks without a preset (crashing a specific backup, equivocation-style
setups) keep the direct-constructor path.
"""

from tests.helpers import make_config, make_workload, run_drill, run_simulation
from repro.faults.byzantine import (
    CrashBehaviour,
    DelaySpawningBehaviour,
    DuplicateVerifyBehaviour,
    FewerExecutorsBehaviour,
    RequestIgnoranceBehaviour,
    SilentExecutorBehaviour,
    WrongResultBehaviour,
)
from repro.faults.injector import PerBatchExecutorFaults


def attack_config(**overrides):
    """Config with aggressive timers so recovery happens within the test run."""
    params = dict(
        client_timeout=0.4,
        node_request_timeout=0.6,
        retransmission_timeout=0.4,
        verifier_quorum_timeout=0.4,
    )
    params.update(overrides)
    return make_config(**params)


# ------------------------------------------------------------------ request suppression


def test_request_ignorance_triggers_view_change_and_progress():
    simulation, result = run_drill("request-suppression", duration=5.0)
    # The byzantine primary is eventually replaced and clients make progress.
    assert result.view_changes > 0
    assert result.committed_txns > 0
    assert result.client_retransmissions > 0
    assert result.verifier_errors_sent > 0
    assert simulation.nodes[1].current_primary != "node-0"


def test_fewer_executors_attack_detected_by_verifier():
    simulation, result = run_drill("fewer-executors", duration=5.0)
    # The verifier cannot gather f_E+1 matching VERIFYs, blames the primary,
    # and the shim installs a new view; afterwards transactions flow again.
    assert result.verifier_replace_sent > 0
    assert result.view_changes > 0
    assert result.committed_txns > 0


def test_drill_scenario_matches_bespoke_fault_objects():
    """The preset injects exactly what the bespoke spec used to.

    Same seed, same overrides: a run whose faults come from the
    ``request-suppression`` scenario must be bit-identical (result digest)
    to one with ``RequestIgnoranceBehaviour`` attached directly — the
    guarantee that migrating the drills onto the registry changed nothing
    about the simulated runs.
    """
    from repro.api import RunSpec, run
    from repro.api.facade import result_digest
    from tests.helpers import DRILL_OVERRIDES

    timers = {
        "protocol.client_timeout": 0.4,
        "protocol.node_request_timeout": 0.6,
        "protocol.retransmission_timeout": 0.4,
        "protocol.verifier_quorum_timeout": 0.4,
    }
    via_scenario = run(RunSpec(
        base="default",
        overrides={**DRILL_OVERRIDES, **timers},
        scenarios=["request-suppression"],
        duration=2.0,
        warmup=0.0,
    ))
    via_bespoke = run(RunSpec(
        base="default",
        overrides={**DRILL_OVERRIDES, **timers},
        node_behaviours={"node-0": RequestIgnoranceBehaviour(drop_every=1)},
        duration=2.0,
        warmup=0.0,
    ))
    assert result_digest(via_scenario) == result_digest(via_bespoke)


def test_drill_scenarios_compose_with_workload_presets():
    """Node drills are ordinary presets now: compositions can include them."""
    _simulation, result = run_drill(
        ["fewer-executors", "skewed-ycsb"], duration=3.0
    )
    assert result.verifier_replace_sent > 0
    assert result.committed_txns > 0


def test_crashed_backup_node_does_not_stop_the_shim():
    _simulation, result = run_simulation(
        config=attack_config(),
        node_behaviours={"node-2": CrashBehaviour()},
        duration=3.0,
        warmup=0.0,
    )
    assert result.committed_txns > 0
    assert result.view_changes == 0  # the primary is honest, no replacement needed


# ------------------------------------------------------------------ byzantine executors


def test_wrong_result_executors_cannot_corrupt_storage():
    byz_sim, byz_result = run_simulation(
        duration=2.0,
        warmup=0.0,
        executor_behaviour_factory=PerBatchExecutorFaults(
            count=1, behaviour_factory=WrongResultBehaviour
        ),
    )
    # With f_E byzantine executors the matching quorum still validates the
    # honest result and the run commits transactions normally.
    assert byz_result.committed_txns > 0
    # Safety: the fabricated writes (tagged "byzantine-corrupted") never make
    # it into the on-premise data store — only the honest quorum's result does.
    values = [byz_sim.store.read(key).value for key in byz_sim.store.keys()]
    assert values
    assert not any("byzantine-corrupted" in value for value in values)


def test_silent_executors_tolerated_up_to_f():
    _simulation, result = run_simulation(
        duration=2.0,
        warmup=0.0,
        executor_behaviour_factory=PerBatchExecutorFaults(
            count=1, behaviour_factory=SilentExecutorBehaviour
        ),
    )
    assert result.committed_txns > 0


def test_verify_flooding_is_ignored_by_the_verifier():
    _simulation, result = run_drill("verify-flooding", duration=2.0)
    assert result.committed_txns > 0
    assert result.verifier_ignored_verify > 0


# ------------------------------------------------------------------ verifier flooding by nodes


def test_duplicate_spawning_costs_the_byzantine_node_money():
    _simulation, result = run_drill("duplicate-spawning", duration=2.0)
    assert result.committed_txns > 0
    # Flooding is self-penalising: the byzantine spawner pays for every extra
    # executor it spawned (Section V-C).
    per_spawner = result.billing.per_spawner_cost
    assert per_spawner.get("node-0", 0.0) > 0
    honest_costs = [cost for name, cost in per_spawner.items() if name != "node-0"]
    assert all(per_spawner["node-0"] >= cost for cost in honest_costs)


# ------------------------------------------------------------------ byzantine aborts


def test_delayed_spawning_with_decentralized_policy_still_executes():
    _simulation, result = run_drill(
        "delayed-spawning",
        duration=4.0,
        overrides={
            "protocol.spawn_policy": "decentralized",
            "workload.conflict_fraction": 0.2,
            "workload.rw_sets_known": False,
        },
    )
    # Even though the primary delays its own spawns indefinitely, the other
    # nodes' executors provide the f_E+1 matching results.
    assert result.committed_txns > 0
