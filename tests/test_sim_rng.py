"""Unit tests for the deterministic RNG utilities."""

import pytest

from repro.sim.rng import DeterministicRNG, derive_seed, spread_evenly


def test_same_seed_same_stream():
    first = DeterministicRNG(42)
    second = DeterministicRNG(42)
    assert [first.random() for _ in range(10)] == [second.random() for _ in range(10)]


def test_different_seeds_differ():
    first = DeterministicRNG(1)
    second = DeterministicRNG(2)
    assert [first.random() for _ in range(5)] != [second.random() for _ in range(5)]


def test_child_streams_are_independent_and_deterministic():
    root = DeterministicRNG(7)
    child_a = root.child("network")
    child_b = root.child("cloud")
    assert child_a.seed != child_b.seed
    again = DeterministicRNG(7).child("network")
    assert [child_a.random() for _ in range(5)] == [again.random() for _ in range(5)]


def test_derive_seed_depends_on_labels():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)
    assert derive_seed(1, "a") == derive_seed(1, "a")


def test_chance_edges():
    rng = DeterministicRNG(3)
    assert rng.chance(0.0) is False
    assert rng.chance(1.0) is True
    assert rng.chance(-0.5) is False
    assert rng.chance(1.5) is True


def test_chance_probability_roughly_respected():
    rng = DeterministicRNG(11)
    hits = sum(1 for _ in range(5000) if rng.chance(0.3))
    assert 0.25 < hits / 5000 < 0.35


def test_zipf_index_within_range():
    rng = DeterministicRNG(5)
    for _ in range(500):
        value = rng.zipf_index(100, 0.9)
        assert 0 <= value < 101  # the YCSB approximation can return the boundary
    uniform = rng.zipf_index(100, 0.0)
    assert 0 <= uniform < 100


def test_zipf_skews_towards_small_indices():
    rng = DeterministicRNG(5)
    draws = [rng.zipf_index(1000, 0.99) for _ in range(2000)]
    small = sum(1 for value in draws if value < 100)
    assert small > len(draws) * 0.4


def test_zipf_population_must_be_positive():
    rng = DeterministicRNG(5)
    with pytest.raises(ValueError):
        rng.zipf_index(0, 0.9)


def test_spread_evenly_round_robin():
    buckets = spread_evenly(list(range(7)), 3)
    assert buckets == [[0, 3, 6], [1, 4], [2, 5]]
    assert sum(len(bucket) for bucket in buckets) == 7


def test_spread_evenly_rejects_zero_buckets():
    with pytest.raises(ValueError):
        spread_evenly([1, 2, 3], 0)


def test_sample_and_choice_draw_from_options():
    rng = DeterministicRNG(9)
    options = ["a", "b", "c", "d"]
    assert rng.choice(options) in options
    sample = rng.sample(options, 2)
    assert len(sample) == 2
    assert set(sample) <= set(options)
