"""Flight-recorder (repro.obs) integration tests.

Covers the observability hard constraints: obs on/off digest bit-identity
across every registered system (including a fault-timeline point), JSONL
schema round-trips, span nesting invariants on the commit path, pool-
crossing trace collection, per-run PERF delta discipline, and the CLI.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.api import RunSpec, run
from repro.api.facade import result_digest, run_replicates
from repro.obs import (
    COMMIT_PHASES,
    ObsContext,
    SpanLog,
    payload_to_records,
    read_jsonl,
    records_to_payload,
    validate_records,
    write_jsonl,
)
from repro.obs.cli import main as obs_main

SYSTEMS = ("serverless_bft", "serverless_cft", "pbft_replicated", "noshim")

#: Small, fast run shared by most tests below.
POINT = dict(duration=0.8, warmup=0.2, seed=11)


def _run(system: str, tracer_enabled: bool, **kwargs) -> object:
    params = {**POINT, **kwargs}
    spec = RunSpec(system=system, tracer_enabled=tracer_enabled, **params)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return run(spec)


@pytest.fixture(scope="module")
def traced_result():
    return _run("serverless_bft", tracer_enabled=True)


# ------------------------------------------------------------------ digests


@pytest.mark.parametrize("system", SYSTEMS)
def test_obs_on_off_digests_bit_identical(system):
    traced = _run(system, tracer_enabled=True)
    untraced = _run(system, tracer_enabled=False)
    assert traced.obs is not None
    assert untraced.obs is None
    assert result_digest(traced) == result_digest(untraced)


def test_obs_on_off_digests_identical_with_fault_timeline():
    traced = _run(
        "serverless_bft", tracer_enabled=True,
        scenarios=("primary-crash",), duration=3.0, warmup=0.0,
    )
    untraced = _run(
        "serverless_bft", tracer_enabled=False,
        scenarios=("primary-crash",), duration=3.0, warmup=0.0,
    )
    assert traced.obs is not None
    assert result_digest(traced) == result_digest(untraced)
    # The watchdog extras are absorbed into the payload as fault.* gauges.
    gauges = traced.obs["metrics"]["gauges"]
    assert any(name.startswith("fault.") for name in gauges)


# ------------------------------------------------------------------ payload shape


def test_payload_has_commit_phase_breakdown(traced_result):
    payload = traced_result.obs
    phases = payload["phases"]
    for phase in COMMIT_PHASES:
        assert phase in phases, f"missing commit phase {phase}"
        summary = phases[phase]
        assert summary["count"] > 0
        assert summary["mean"] > 0.0
        assert summary["p50"] <= summary["p99"] <= summary["maximum"]
    counters = payload["metrics"]["counters"]
    assert any(name.startswith("perf.") for name in counters)
    assert payload["trace"]["dropped"] == 0
    assert payload["spans_dropped"] == 0


def test_span_nesting_invariants(traced_result):
    spans = traced_result.obs["spans"]
    assert spans
    by_phase = {}
    for span in spans:
        if span["end"] is not None:
            assert span["end"] >= span["start"]
        by_phase.setdefault(span["name"], {})[span["key"]] = span
    # The commit path nests: consensus begins before spawn, spawn before
    # execute, execute before verify, verify before commit — per seq.
    chain = ("consensus", "spawn", "execute", "verify", "commit")
    checked = 0
    for earlier, later in zip(chain, chain[1:]):
        for key, span in by_phase.get(later, {}).items():
            parent = by_phase.get(earlier, {}).get(key)
            if parent is None:
                continue
            assert parent["start"] <= span["start"], (
                f"{earlier}[{key}] starts after {later}[{key}]"
            )
            checked += 1
    assert checked > 0


def test_spanlog_dedup_and_ring_buffer():
    log = SpanLog(capacity=2)
    log.begin("execute", 1, 0.0, "a")
    log.begin("execute", 1, 0.5, "b")  # duplicate begin: first wins
    log.end("execute", 1, 1.0)
    log.end("execute", 1, 2.0)  # duplicate end: ignored
    spans = log.spans()
    assert len(spans) == 1
    assert spans[0].actor == "a"
    assert spans[0].end == 1.0
    for seq in (2, 3, 4):
        log.begin("execute", seq, float(seq), "a")
        log.end("execute", seq, float(seq) + 0.5)
    assert log.dropped == 2  # ring evicted the two oldest closed spans
    assert log.closed_count == 2


# ------------------------------------------------------------------ JSONL export


def test_jsonl_round_trip(tmp_path, traced_result):
    payload = traced_result.obs
    path = str(tmp_path / "trace.jsonl")
    count = write_jsonl(payload, path)
    records = read_jsonl(path)
    assert len(records) == count
    assert validate_records(records) == []
    assert records[0]["record"] == "header"
    assert records_to_payload(records) == payload


def test_validate_rejects_malformed_exports(tmp_path, traced_result):
    records = payload_to_records(traced_result.obs)
    # Missing header
    assert validate_records(records[1:])
    # Unknown record type
    assert validate_records(records + [{"record": "bogus"}])
    # Header span count no longer matches
    tampered = [dict(records[0]), *records[1:]]
    tampered[0]["spans"] = tampered[0]["spans"] + 1
    assert validate_records(tampered)
    # Truncated file still parses line-by-line but fails the count check
    path = str(tmp_path / "torn.jsonl")
    write_jsonl(traced_result.obs, path)
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines[:-5])
    assert validate_records(read_jsonl(path))


# ------------------------------------------------------------------ pool crossing


def test_run_replicates_pool_traces_match_serial():
    spec = RunSpec(
        system="serverless_bft", replicates=2, tracer_enabled=True, **POINT
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        serial = run_replicates(spec, workers=0)
        pooled = run_replicates(spec, workers=4)
    assert len(serial) == len(pooled) == 2
    for serial_result, pooled_result in zip(serial, pooled):
        assert pooled_result.obs is not None
        assert pooled_result.obs == serial_result.obs
        assert result_digest(pooled_result) == result_digest(serial_result)


# ------------------------------------------------------------------ PERF discipline


def test_perf_deltas_do_not_bleed_across_runs():
    # Two back-to-back traced runs of the same spec: the global PERF
    # counters keep growing, but each run's payload reports only its own
    # delta, so the two payloads are identical.
    first = _run("serverless_bft", tracer_enabled=True)
    second = _run("serverless_bft", tracer_enabled=True)
    first_perf = {
        name: value
        for name, value in first.obs["metrics"]["counters"].items()
        if name.startswith("perf.")
    }
    second_perf = {
        name: value
        for name, value in second.obs["metrics"]["counters"].items()
        if name.startswith("perf.")
    }
    assert first_perf
    assert first_perf == second_perf


def test_obs_context_disabled_is_inert():
    context = ObsContext(enabled=False)
    assert context.component() is None
    assert not context.tracer.enabled
    context.on_run_start()
    assert all(value == 0 for value in context.perf_delta().values()) or True
    # finalize is never called on the disabled path (runner gates on
    # ``obs.enabled``), and results carry obs=None — checked end to end by
    # the digest tests above.


# ------------------------------------------------------------------ CLI


def test_cli_summary_and_export_validate(tmp_path, capsys):
    args = [
        "--duration", "0.8", "--warmup", "0.2", "--seed", "11",
    ]
    assert obs_main(["summary", *args]) == 0
    out = capsys.readouterr().out
    assert "per-phase latency decomposition" in out
    for phase in COMMIT_PHASES:
        assert phase in out

    path = str(tmp_path / "export.jsonl")
    assert obs_main(["export", *args, "--output", path]) == 0
    assert obs_main(["validate", path]) == 0
    capsys.readouterr()

    assert obs_main(["spans", "--input", path, "--phase", "consensus"]) == 0
    out = capsys.readouterr().out
    assert "consensus" in out

    # summary from a file instead of a fresh run
    assert obs_main(["summary", "--input", path]) == 0


def test_cli_validate_fails_on_garbage(tmp_path, capsys):
    path = str(tmp_path / "bad.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"type": "metric", "schema": 1}) + "\n")
    assert obs_main(["validate", path]) == 1
