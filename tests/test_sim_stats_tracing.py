"""Unit tests for statistics recorders and the tracer."""

import warnings

import pytest

from repro.sim.stats import LatencyRecorder, ThroughputRecorder
from repro.sim.tracing import Tracer


def test_latency_summary_basic():
    recorder = LatencyRecorder()
    for latency in (0.1, 0.2, 0.3, 0.4):
        recorder.record_value(latency)
    summary = recorder.summary()
    assert summary.count == 4
    assert summary.mean == pytest.approx(0.25)
    assert summary.minimum == pytest.approx(0.1)
    assert summary.maximum == pytest.approx(0.4)
    assert summary.p50 == pytest.approx(0.25)
    assert summary.p99 <= summary.maximum


def test_latency_warmup_excludes_early_samples():
    recorder = LatencyRecorder(warmup=1.0)
    recorder.record(start_time=0.5, end_time=0.9)   # started during warm-up
    recorder.record(start_time=1.5, end_time=1.8)
    summary = recorder.summary()
    assert summary.count == 1
    assert summary.mean == pytest.approx(0.3)


def test_latency_empty_summary_is_zero():
    summary = LatencyRecorder().summary()
    assert summary.count == 0
    assert summary.mean == 0.0
    assert summary.p99 == 0.0


def test_latency_never_negative():
    recorder = LatencyRecorder()
    recorder.record(start_time=2.0, end_time=1.0)
    assert recorder.summary().minimum == 0.0


def test_throughput_counts_and_window():
    recorder = ThroughputRecorder(warmup=1.0)
    recorder.record_commit(0.5, count=100)  # inside warm-up: ignored
    recorder.record_commit(1.5, count=10)
    recorder.record_commit(2.5, count=20)
    assert recorder.completed == 30
    assert recorder.throughput(duration=3.0) == pytest.approx(10.0)
    assert recorder.throughput() == pytest.approx(30 / 1.0)


def test_throughput_abort_tracking():
    recorder = ThroughputRecorder()
    recorder.record_commit(1.0, count=8)
    recorder.record_abort(1.0, count=2)
    assert recorder.aborted == 2
    assert recorder.abort_rate() == pytest.approx(0.2)


def test_throughput_per_second_series():
    recorder = ThroughputRecorder()
    recorder.record_commit(0.2, count=5)
    recorder.record_commit(0.9, count=5)
    recorder.record_commit(1.1, count=3)
    assert recorder.per_second_series() == {0: 10, 1: 3}


def test_throughput_empty():
    recorder = ThroughputRecorder()
    assert recorder.throughput() == 0.0
    assert recorder.abort_rate() == 0.0


def test_tracer_records_and_filters():
    tracer = Tracer()
    tracer.record(0.1, "pbft.committed", "node-0", seq=1)
    tracer.record(0.2, "pbft.committed", "node-1", seq=1)
    tracer.record(0.3, "verifier.validated", "verifier", seq=1)
    assert len(tracer) == 3
    assert tracer.count("pbft.committed") == 2
    assert len(tracer.events(category="pbft.committed", actor="node-0")) == 1
    assert tracer.last("verifier.validated").details["seq"] == 1
    assert tracer.last("missing") is None


def test_tracer_disabled_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.record(0.1, "anything", "actor")
    assert len(tracer) == 0


def test_tracer_capacity_limit():
    tracer = Tracer(capacity=2)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for index in range(5):
            tracer.record(index, "cat", "actor")
    assert len(tracer) == 2


def test_tracer_counts_drops_and_warns_once():
    tracer = Tracer(capacity=2)
    assert tracer.dropped == 0
    tracer.record(0.0, "cat", "actor")
    tracer.record(0.1, "cat", "actor")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        tracer.record(0.2, "cat", "actor")
        tracer.record(0.3, "cat", "actor")
    assert tracer.dropped == 2
    assert len(tracer) == 2  # keep-first-N semantics unchanged
    runtime_warnings = [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert len(runtime_warnings) == 1  # warned exactly once, on the first drop
    assert "trace capacity" in str(runtime_warnings[0].message)
