"""Tests for the declarative sweep layer: grids, resolution, digests."""

import pytest

from repro.errors import ConfigurationError
from repro.sweep import (
    GridSpec,
    PointSpec,
    SweepSpec,
    expand_replicates,
    get_scenario,
    point_digest,
    resolve_point,
    scenario_names,
    sweep_from_dict,
    sweep_from_grid,
    with_replicates,
)
from repro.sweep.spec import point_seed


# ------------------------------------------------------------------ grids


def test_grid_expands_row_major():
    grid = GridSpec({"a": (1, 2), "b": ("x", "y", "z")})
    combos = grid.combinations()
    assert len(grid) == 6 and len(combos) == 6
    assert combos[0] == {"a": 1, "b": "x"}
    assert combos[1] == {"a": 1, "b": "y"}
    assert combos[3] == {"a": 2, "b": "x"}
    assert grid.axis_names == ("a", "b")


def test_grid_rejects_empty_axis_and_duplicates():
    with pytest.raises(ConfigurationError):
        GridSpec({"a": ()})
    with pytest.raises(ConfigurationError):
        GridSpec((("a", (1,)), ("a", (2,))))


def test_point_spec_validation():
    with pytest.raises(ConfigurationError):
        PointSpec(system="martian")
    with pytest.raises(ConfigurationError):
        PointSpec(duration=0.0)
    with pytest.raises(ConfigurationError):
        PointSpec(duration=1.0, warmup=1.0)


def test_sweep_spec_validation():
    with pytest.raises(ConfigurationError):
        SweepSpec(name="", points=(PointSpec(),))
    with pytest.raises(ConfigurationError):
        SweepSpec(name="empty", points=())
    with pytest.raises(ConfigurationError):
        SweepSpec(name="s", points=(PointSpec(),), base="nope")


# ------------------------------------------------------------------ resolution


def _sweep(**kwargs):
    point = PointSpec(
        labels={"batch_size": 5},
        config={"batch_size": 5},
        duration=0.5,
        warmup=0.1,
        **kwargs,
    )
    return SweepSpec(name="unit", points=(point,)), point


def test_resolution_pins_every_config_field():
    sweep, point = _sweep()
    resolved = resolve_point(sweep, point)
    assert resolved["config"]["batch_size"] == 5
    # The base "scale" deployment fills in the remaining fields.
    assert resolved["config"]["shim_nodes"] == 4
    assert resolved["workload"]["num_records"] == 5_000
    assert resolved["duration"] == 0.5
    # The derived per-point seed is materialised into both configs.
    assert resolved["config"]["seed"] == point_seed(sweep, point)
    assert resolved["workload"]["seed"] != resolved["config"]["seed"]


def test_point_seed_is_stable_and_label_dependent():
    sweep, point = _sweep()
    assert point_seed(sweep, point) == point_seed(sweep, point)
    other = PointSpec(labels={"batch_size": 6}, config={"batch_size": 6})
    assert point_seed(sweep, point) != point_seed(sweep, other)
    pinned = PointSpec(labels={"batch_size": 5}, seed=77)
    assert point_seed(sweep, pinned) == 77


def test_digest_stable_and_covers_only_simulated_knobs():
    sweep, point = _sweep()
    resolved = resolve_point(sweep, point)
    digest_one = point_digest(resolved)
    digest_two = point_digest(resolve_point(sweep, point))
    assert digest_one == digest_two
    # Labels themselves never enter the address (seed already materialised).
    relabelled = dict(resolved, labels={"renamed": True})
    assert point_digest(relabelled) == digest_one
    # Any simulated knob does change the address.
    changed = dict(resolved, duration=0.6)
    assert point_digest(changed) != digest_one


def test_relabelling_shares_cache_only_with_pinned_seeds():
    # Pinned seed: labels are pure presentation, the address is unchanged.
    pinned_a = PointSpec(labels={"batch_size": 5}, config={"batch_size": 5}, seed=7)
    pinned_b = PointSpec(labels={"bs": 5}, config={"batch_size": 5}, seed=7)
    sweep = SweepSpec(name="unit", points=(pinned_a, pinned_b))
    assert point_digest(resolve_point(sweep, pinned_a)) == point_digest(
        resolve_point(sweep, pinned_b)
    )
    # Derived seed: different labels mean a different derived seed, hence a
    # different address (independent replicates, not cache-sharing aliases).
    derived_a = PointSpec(labels={"batch_size": 5}, config={"batch_size": 5})
    derived_b = PointSpec(labels={"bs": 5}, config={"batch_size": 5})
    assert point_digest(resolve_point(sweep, derived_a)) != point_digest(
        resolve_point(sweep, derived_b)
    )


def test_digest_survives_json_round_trip():
    import json

    sweep, point = _sweep()
    resolved = resolve_point(sweep, point)
    round_tripped = json.loads(json.dumps(resolved))
    assert point_digest(round_tripped) == point_digest(resolved)


def test_scenario_overrides_sit_under_point_overrides():
    point = PointSpec(
        labels={},
        scenario="conflict-heavy",
        workload={"conflict_fraction": 0.5},
        duration=0.5,
        warmup=0.1,
    )
    sweep = SweepSpec(name="unit", points=(point,))
    resolved = resolve_point(sweep, point)
    # The point override wins over the scenario's 0.3 default.
    assert resolved["workload"]["conflict_fraction"] == 0.5
    assert resolved["workload"]["rw_sets_known"] is False


# ------------------------------------------------------------------ replicates


def test_replicates_one_leaves_sweep_untouched():
    sweep, point = _sweep()
    assert point.replicates == 1
    # Same object back: resolution and digests are bit-identical to a world
    # where the replicates field does not exist.
    assert expand_replicates(sweep) is sweep


def test_replicates_expand_to_distinct_stable_digests():
    point = PointSpec(
        labels={"batch_size": 5},
        config={"batch_size": 5},
        duration=0.5,
        warmup=0.1,
        replicates=3,
    )
    sweep = SweepSpec(name="rep", points=(point,))
    expanded = expand_replicates(sweep)
    assert len(expanded) == 3
    assert [p.labels["replicate"] for p in expanded.points] == [0, 1, 2]
    assert all(p.replicates == 1 for p in expanded.points)
    digests = [point_digest(resolve_point(expanded, p)) for p in expanded.points]
    assert len(set(digests)) == 3  # N distinct per-seed content addresses
    # Expansion is deterministic: a second expansion shares every address.
    again = expand_replicates(sweep)
    assert [point_digest(resolve_point(again, p)) for p in again.points] == digests


def test_replicate_seeds_derive_from_the_point_seed_chain():
    from repro.sim.rng import derive_seed

    sweep, point = _sweep()
    replicated = with_replicates(sweep, 2)
    expanded = expand_replicates(replicated)
    base = point_seed(sweep, point)
    assert [p.seed for p in expanded.points] == [
        derive_seed(base, "replicate", 0),
        derive_seed(base, "replicate", 1),
    ]


def test_replicates_validation():
    with pytest.raises(ConfigurationError):
        PointSpec(replicates=0)
    with pytest.raises(ConfigurationError):
        with_replicates(SweepSpec(name="s", points=(PointSpec(),)), 0)


def test_replicates_route_as_a_run_field():
    sweep = sweep_from_grid(
        name="rep-axis",
        grid=GridSpec({"batch_size": (5,), "replicates": (2,)}),
        duration=0.5,
        warmup=0.1,
    )
    assert sweep.points[0].replicates == 2
    assert len(expand_replicates(sweep)) == 2


# ------------------------------------------------------------------ seed-label hygiene


def test_derive_seed_slash_collision_is_documented():
    """Regression: derive_seed joins labels with '/' and no escaping.

    ``("a/b",)`` and ``("a", "b")`` therefore collide — this is why spec
    validation rejects ``/`` in the components that reach seed derivation
    (changing the derivation itself would invalidate every
    content-addressed store, so the guard is the fix).
    """
    from repro.sim.rng import derive_seed

    assert derive_seed(1, "a/b") == derive_seed(1, "a", "b")
    assert derive_seed(1, "a/b", "c") == derive_seed(1, "a", "b/c")


def test_scenario_names_with_slash_are_rejected():
    from repro.api.spec import normalize_scenarios
    from repro.sweep.scenarios import Scenario, register_scenario

    with pytest.raises(ConfigurationError, match="must not contain '/'"):
        register_scenario(Scenario(name="outage/us-east", description="bad"))
    with pytest.raises(ConfigurationError, match="must not contain '/'"):
        normalize_scenarios("a/b")
    with pytest.raises(ConfigurationError, match="must not contain '/'"):
        PointSpec(scenario=["baseline", "x/y"])
    with pytest.raises(ConfigurationError, match="must not contain '/'"):
        from repro.api import RunSpec

        RunSpec(scenarios=["x/y"])


# ------------------------------------------------------------------ scenarios


def test_scenario_registry_contents():
    names = scenario_names()
    for expected in (
        "baseline",
        "region-outage",
        "network-partition",
        "byzantine-executors",
        "skewed-ycsb",
    ):
        assert expected in names
    with pytest.raises(ConfigurationError):
        get_scenario("not-a-scenario")


# ------------------------------------------------------------------ grid -> sweep


def test_sweep_from_grid_routes_axes():
    sweep = sweep_from_grid(
        name="routing",
        grid=GridSpec(
            {
                "batch_size": (5, 10),
                "write_fraction": (0.5,),
                "scenario": ("baseline", "lossy-network"),
            }
        ),
        duration=0.5,
        warmup=0.1,
    )
    assert len(sweep) == 4
    first = sweep.points[0]
    assert first.config == {"batch_size": 5}
    assert first.workload == {"write_fraction": 0.5}
    assert {point.scenario for point in sweep.points} == {"baseline", "lossy-network"}


def test_sweep_from_grid_rejects_unknown_axis_and_shadowed_constant():
    with pytest.raises(ConfigurationError):
        sweep_from_grid(name="bad", grid=GridSpec({"warp_factor": (9,)}))
    with pytest.raises(ConfigurationError):
        sweep_from_grid(
            name="bad",
            grid=GridSpec({"batch_size": (5,)}),
            config={"batch_size": 10},
        )


def test_sweep_from_dict():
    sweep = sweep_from_dict(
        {
            "name": "filed",
            "seed": 9,
            "duration": 0.5,
            "warmup": 0.1,
            "grid": {"num_executors": [3, 5]},
            "config": {"crypto_backend": "fast"},
        }
    )
    assert sweep.name == "filed" and sweep.seed == 9 and len(sweep) == 2
    assert sweep.points[0].config["crypto_backend"] == "fast"
    with pytest.raises(ConfigurationError):
        sweep_from_dict({"name": "no-grid"})
    with pytest.raises(ConfigurationError):
        sweep_from_dict({"grid": {"batch_size": [5]}})
