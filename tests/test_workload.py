"""Unit tests for the YCSB workload generator and the transaction model."""

import pytest

from repro.errors import WorkloadError
from repro.workload.transactions import (
    Operation,
    Transaction,
    TransactionBatch,
    execute_batch,
    merge_batches,
    transactions_conflict,
)
from repro.workload.ycsb import YCSBConfig, YCSBWorkload


# ------------------------------------------------------------------ transaction model


def make_txn(txn_id, reads=(), writes=(), execution=0.0):
    operations = [Operation(key=key, is_write=False) for key in reads]
    operations += [Operation(key=key, is_write=True, value="v") for key in writes]
    return Transaction(
        txn_id=txn_id, client_id="c", operations=tuple(operations), execution_seconds=execution
    )


def test_read_and_write_sets():
    txn = make_txn("t1", reads=("a", "b"), writes=("b", "c"))
    assert txn.read_set == {"a", "b"}
    assert txn.write_set == {"b", "c"}
    assert txn.keys == {"a", "b", "c"}


def test_conflict_detection_requires_a_write():
    reader_a = make_txn("t1", reads=("x",))
    reader_b = make_txn("t2", reads=("x",))
    writer = make_txn("t3", writes=("x",))
    unrelated = make_txn("t4", writes=("y",))
    assert not transactions_conflict(reader_a, reader_b)
    assert transactions_conflict(reader_a, writer)
    assert transactions_conflict(writer, reader_a)
    assert not transactions_conflict(writer, unrelated)


def test_write_operation_gets_default_value():
    op = Operation(key="k", is_write=True)
    assert op.value == ""


def test_batch_aggregates_and_conflicts():
    batch_a = TransactionBatch("b1", (make_txn("t1", writes=("x",)),))
    batch_b = TransactionBatch("b2", (make_txn("t2", reads=("x",)),))
    batch_c = TransactionBatch("b3", (make_txn("t3", reads=("z",)),))
    assert batch_a.conflicts_with(batch_b)
    assert not batch_a.conflicts_with(batch_c)
    assert len(batch_a) == 1
    assert batch_a.write_set == {"x"}


def test_batch_execution_seconds_is_the_max_not_the_sum():
    batch = TransactionBatch(
        "b1",
        (make_txn("t1", execution=0.5), make_txn("t2", execution=2.0), make_txn("t3")),
    )
    assert batch.execution_seconds == pytest.approx(2.0)
    assert TransactionBatch("empty", ()).execution_seconds == 0.0


def test_execute_batch_is_deterministic_and_per_transaction():
    batch = TransactionBatch(
        "b1",
        (
            make_txn("t1", reads=("a",), writes=("b",)),
            make_txn("t2", writes=("c",)),
        ),
    )
    values = {"a": "va", "b": "vb", "c": "vc"}
    versions = {"a": 3, "b": 1, "c": 2}
    first = execute_batch(batch, values, versions)
    second = execute_batch(batch, values, versions)
    assert first == second
    assert first.result_digest == second.result_digest
    assert len(first.txn_results) == 2
    t1 = first.result_for("t1")
    assert set(t1.writes) == {"b"}
    assert t1.read_versions == {"a": 3, "b": 1}
    assert first.result_for("missing") is None


def test_execute_batch_result_changes_with_storage_state():
    batch = TransactionBatch("b1", (make_txn("t1", reads=("a",), writes=("b",)),))
    first = execute_batch(batch, {"a": "old"}, {"a": 1})
    second = execute_batch(batch, {"a": "new"}, {"a": 2})
    assert first.result_digest != second.result_digest


def test_merge_batches():
    batch_a = TransactionBatch("b1", (make_txn("t1"),))
    batch_b = TransactionBatch("b2", (make_txn("t2"), make_txn("t3")))
    merged = merge_batches([batch_a, batch_b], "merged")
    assert len(merged) == 3
    assert merged.batch_id == "merged"


# ------------------------------------------------------------------ YCSB generator


def test_config_validation():
    with pytest.raises(WorkloadError):
        YCSBConfig(num_records=0)
    with pytest.raises(WorkloadError):
        YCSBConfig(write_fraction=1.5)
    with pytest.raises(WorkloadError):
        YCSBConfig(conflict_fraction=-0.1)
    with pytest.raises(WorkloadError):
        YCSBConfig(operations_per_transaction=0)
    with pytest.raises(WorkloadError):
        YCSBConfig(clients=0)
    with pytest.raises(WorkloadError):
        YCSBConfig(hot_keys=0)


def test_same_seed_generates_identical_workload():
    config = YCSBConfig(num_records=1000, clients=8, seed=99)
    first = [txn.canonical() for txn in YCSBWorkload(config).transactions(50)]
    second = [txn.canonical() for txn in YCSBWorkload(config).transactions(50)]
    assert first == second


def test_write_fraction_controls_writes():
    config = YCSBConfig(num_records=1000, operations_per_transaction=4, write_fraction=0.5)
    workload = YCSBWorkload(config)
    txn = workload.next_transaction()
    assert len(txn.write_set) >= 1
    read_only = YCSBWorkload(
        YCSBConfig(num_records=1000, operations_per_transaction=4, write_fraction=0.0)
    ).next_transaction()
    assert read_only.write_set == frozenset()


def test_non_conflicting_transactions_from_distinct_clients_never_overlap():
    config = YCSBConfig(num_records=10_000, clients=8, conflict_fraction=0.0, seed=5)
    workload = YCSBWorkload(config)
    txns_client0 = workload.transactions(30, client_index=0)
    txns_client1 = workload.transactions(30, client_index=1)
    keys0 = set().union(*(txn.keys for txn in txns_client0))
    keys1 = set().union(*(txn.keys for txn in txns_client1))
    assert keys0.isdisjoint(keys1)


def test_conflicting_transactions_touch_the_hot_set():
    config = YCSBConfig(num_records=10_000, clients=8, conflict_fraction=1.0, hot_keys=4, seed=5)
    workload = YCSBWorkload(config)
    hot_keys = {f"user{i}" for i in range(4)}
    for txn in workload.transactions(20):
        assert txn.write_set & hot_keys


def test_conflict_fraction_roughly_respected():
    config = YCSBConfig(num_records=10_000, clients=8, conflict_fraction=0.3, hot_keys=4, seed=7)
    workload = YCSBWorkload(config)
    hot_keys = {f"user{i}" for i in range(4)}
    conflicting = sum(
        1 for txn in workload.transactions(500) if txn.write_set & hot_keys
    )
    assert 0.2 < conflicting / 500 < 0.4


def test_batches_have_unique_ids_and_requested_size():
    workload = YCSBWorkload(YCSBConfig(num_records=1000))
    batches = workload.batches(3, batch_size=20)
    assert len(batches) == 3
    assert all(len(batch) == 20 for batch in batches)
    assert len({batch.batch_id for batch in batches}) == 3
    with pytest.raises(WorkloadError):
        workload.next_batch(0)


def test_execution_seconds_and_rw_flags_propagate():
    config = YCSBConfig(num_records=1000, execution_seconds=1.5, rw_sets_known=False)
    txn = YCSBWorkload(config).next_transaction()
    assert txn.execution_seconds == pytest.approx(1.5)
    assert txn.rw_sets_known is False


def test_transaction_stream_is_infinite_generator():
    workload = YCSBWorkload(YCSBConfig(num_records=1000))
    stream = workload.transaction_stream()
    first = next(stream)
    second = next(stream)
    assert first.txn_id != second.txn_id
