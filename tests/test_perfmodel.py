"""Tests for the analytical performance model and its calibration."""

import pytest

from tests.helpers import make_config, make_workload
from repro.core.config import ConflictMode, ProtocolConfig
from repro.errors import ConfigurationError
from repro.perfmodel.calibration import calibration_ratio
from repro.perfmodel.model import AnalyticalModel, SystemKind
from repro.workload.ycsb import YCSBConfig


def paper_config(**overrides) -> ProtocolConfig:
    params = dict(shim_nodes=8, batch_size=100, num_executors=3, num_executor_regions=3,
                  num_clients=80_000, client_groups=32)
    params.update(overrides)
    return ProtocolConfig(**params)


def paper_workload(**overrides) -> YCSBConfig:
    params = dict(num_records=600_000, clients=256)
    params.update(overrides)
    return YCSBConfig(**params)


def test_breakdown_is_positive_and_names_a_bottleneck():
    model = AnalyticalModel(paper_config(), paper_workload())
    breakdown = model.breakdown()
    assert breakdown.primary_cpu_seconds > 0
    assert breakdown.replica_cpu_seconds > 0
    assert breakdown.verifier_cpu_seconds > 0
    assert breakdown.executor_seconds > 0
    assert breakdown.base_latency_seconds > 0.02
    assert breakdown.max_batches_per_second > 0
    assert breakdown.bottleneck in (
        "primary-cpu", "replica-cpu", "verifier-cpu", "executor-pool", "primary-nic",
    )


def test_throughput_saturates_with_clients():
    model = AnalyticalModel(paper_config(), paper_workload())
    low, low_latency = model.throughput_latency(1_000)
    mid, _ = model.throughput_latency(20_000)
    high, high_latency = model.throughput_latency(80_000)
    assert low < mid <= high * 1.001
    assert high_latency > low_latency
    with pytest.raises(ConfigurationError):
        model.throughput_latency(0)


def test_more_shim_nodes_reduce_throughput():
    small = AnalyticalModel(paper_config(shim_nodes=8), paper_workload())
    large = AnalyticalModel(paper_config(shim_nodes=32), paper_workload())
    assert small.throughput_latency()[0] > large.throughput_latency()[0]


def test_more_cores_increase_throughput():
    few = AnalyticalModel(paper_config(shim_cores=2), paper_workload())
    many = AnalyticalModel(paper_config(shim_cores=16), paper_workload())
    assert many.throughput_latency()[0] > few.throughput_latency()[0]


def test_more_executors_reduce_throughput():
    few = AnalyticalModel(paper_config(num_executors=3), paper_workload())
    many = AnalyticalModel(paper_config(num_executors=21, num_executor_regions=7), paper_workload())
    assert few.throughput_latency()[0] > many.throughput_latency()[0]


def test_execution_time_dominates_latency():
    heavy = AnalyticalModel(paper_config(), paper_workload(execution_seconds=8.0))
    _tput, latency = heavy.throughput_latency()
    assert latency >= 8.0


def test_system_ordering_matches_figure7():
    throughputs = {}
    for system in SystemKind:
        config = paper_config(shim_nodes=32)
        if system in (SystemKind.SERVERLESS_CFT, SystemKind.NOSHIM):
            config = config.with_overrides(txn_ingest_cost=15e-6)
        model = AnalyticalModel(config, paper_workload(), system=system)
        throughputs[system] = model.throughput_latency()[0]
    assert throughputs[SystemKind.SERVERLESS_BFT] < throughputs[SystemKind.PBFT_REPLICATED]
    assert throughputs[SystemKind.PBFT_REPLICATED] < throughputs[SystemKind.SERVERLESS_CFT]
    assert throughputs[SystemKind.SERVERLESS_CFT] < throughputs[SystemKind.NOSHIM]


def test_conflicts_reduce_goodput_but_avoidance_recovers_it():
    optimistic = AnalyticalModel(
        paper_config(conflict_mode=ConflictMode.OPTIMISTIC),
        paper_workload(conflict_fraction=0.5, rw_sets_known=False),
    )
    avoidance = AnalyticalModel(
        paper_config(conflict_mode=ConflictMode.CONFLICT_AVOIDANCE),
        paper_workload(conflict_fraction=0.5),
    )
    clean = AnalyticalModel(paper_config(), paper_workload())
    assert optimistic.throughput_latency()[0] < clean.throughput_latency()[0]
    assert avoidance.throughput_latency()[0] > optimistic.throughput_latency()[0]


def test_offloading_cost_model():
    heavy = paper_workload(execution_seconds=1.0)
    serverless = AnalyticalModel(paper_config(shim_nodes=32), heavy)
    edge_1_thread = AnalyticalModel(
        paper_config(shim_nodes=32), heavy, system=SystemKind.PBFT_REPLICATED, execution_threads=1
    )
    assert serverless.cost_cents_per_kilo_txn() < edge_1_thread.cost_cents_per_kilo_txn()
    assert serverless.cost_cents_per_kilo_txn() > 0


def test_region_spread_leaves_throughput_roughly_constant():
    narrow = AnalyticalModel(
        paper_config(num_executors=11, num_executor_regions=5), paper_workload()
    )
    wide = AnalyticalModel(
        paper_config(num_executors=11, num_executor_regions=11), paper_workload()
    )
    narrow_tput = narrow.throughput_latency()[0]
    wide_tput = wide.throughput_latency()[0]
    assert abs(narrow_tput - wide_tput) <= 0.1 * narrow_tput


def test_sweep_clients_produces_rows():
    model = AnalyticalModel(paper_config(), paper_workload())
    rows = model.sweep_clients([1_000, 10_000])
    assert len(rows) == 2
    assert set(rows[0]) == {"clients", "throughput", "latency"}


def test_calibration_simulator_and_model_agree_within_an_order_of_magnitude():
    config = make_config(num_clients=200, client_groups=8, batch_size=25)
    workload = make_workload(clients=200, num_records=20_000)
    calibration = calibration_ratio(config, workload, duration=2.0, warmup=0.4)
    assert calibration.simulated_throughput > 0
    assert calibration.modelled_throughput > 0
    # The model ignores queueing jitter and batching delay, so we only require
    # agreement within an order of magnitude on this small configuration.
    assert 0.1 <= calibration.throughput_ratio <= 10.0
    assert 0.1 <= calibration.latency_ratio <= 10.0
