"""Factories shared by the integration tests."""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.runner import ServerlessBFTSimulation
from repro.workload.ycsb import YCSBConfig


def make_config(**overrides) -> ProtocolConfig:
    """A small deployment that simulates quickly in tests."""
    params = dict(
        shim_nodes=4,
        num_executors=3,
        num_executor_regions=3,
        batch_size=10,
        num_clients=40,
        client_groups=4,
        storage_records=2_000,
    )
    params.update(overrides)
    return ProtocolConfig(**params)


def make_workload(**overrides) -> YCSBConfig:
    params = dict(num_records=2_000, clients=40, operations_per_transaction=4, write_fraction=0.5)
    params.update(overrides)
    return YCSBConfig(**params)


def run_simulation(
    config: ProtocolConfig = None,
    workload: YCSBConfig = None,
    duration: float = 2.0,
    warmup: float = 0.2,
    **runner_kwargs,
):
    """Build, run, and return ``(simulation, result)`` for integration tests."""
    config = config or make_config()
    workload = workload or make_workload()
    simulation = ServerlessBFTSimulation(config, workload=workload, **runner_kwargs)
    result = simulation.run(duration=duration, warmup=warmup)
    return simulation, result


#: ``make_config()``/``make_workload()`` as dotted facade overrides, for
#: drills that go through scenario presets instead of bespoke fault objects.
DRILL_OVERRIDES = {
    "protocol.shim_nodes": 4,
    "protocol.num_executors": 3,
    "protocol.num_executor_regions": 3,
    "protocol.batch_size": 10,
    "protocol.num_clients": 40,
    "protocol.client_groups": 4,
    "protocol.storage_records": 2_000,
    "workload.num_records": 2_000,
    "workload.clients": 40,
    "workload.operations_per_transaction": 4,
    "workload.write_fraction": 0.5,
}


def run_drill(
    scenario,
    duration: float = 2.0,
    warmup: float = 0.0,
    overrides: dict = None,
):
    """Run a scenario-preset drill through the facade.

    Returns ``(simulation, result)`` like :func:`run_simulation`, but the
    fault machinery comes from the named scenario preset(s) — the path a
    sweep point or a composed ``RunSpec`` takes — rather than from bespoke
    fault objects attached to the constructor.
    """
    from repro.api import RunSpec
    from repro.api.facade import build_deployment, resolve

    spec = RunSpec(
        system="serverless_bft",
        base="default",
        scenarios=[scenario] if isinstance(scenario, str) else list(scenario),
        overrides={**DRILL_OVERRIDES, **(overrides or {})},
        duration=duration,
        warmup=warmup,
    )
    resolved = resolve(spec)
    simulation = build_deployment(resolved)
    result = simulation.run(duration=duration, warmup=warmup)
    return simulation, result
