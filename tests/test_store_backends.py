"""Result-warehouse tests: backend neutrality, sharded merge, query layer.

The load-bearing guarantees (ISSUE 9 acceptance criteria):

* the same sweep produces identical digests and 100% cache hits whether
  the store is JSONL, sqlite, or merged shards — backend choice is
  host-side, never content-addressed;
* a shard merge's output bytes are a pure function of the record set,
  independent of which worker wrote what in which order, and same-digest
  records disagreeing on *addressed* fields are a hard error;
* ``get`` hands out copies (mutating a cache hit cannot corrupt later
  hits), stale-schema skips are counted and surfaced, and two processes
  appending to one store (JSONL under ``flock``, sqlite under WAL) lose
  no records.
"""

import json
import multiprocessing
import os

import pytest

from repro.errors import StoreError
from repro.store import (
    JsonlBackend,
    ShardedStore,
    SqliteBackend,
    canonical_line,
    compact_shards,
    make_record,
    merge_shards,
    open_store,
)
from repro.store.cli import main as store_cli
from repro.sweep import PointSpec, SweepSpec, run_sweep


def _tiny_sweep(name="warehouse"):
    """Two fast points (fast crypto, 60 clients, 0.4 s virtual)."""
    shared = {"crypto_backend": "fast", "num_clients": 60, "client_groups": 4}
    return SweepSpec(
        name=name,
        points=tuple(
            PointSpec(
                labels={"batch_size": batch_size},
                config=dict(shared, batch_size=batch_size),
                workload={"clients": 60},
                duration=0.4,
                warmup=0.1,
            )
            for batch_size in (5, 20)
        ),
    )


def _fake_record(digest, sweep="smoke", batch=5, throughput=100.0):
    """A well-formed synthetic record (current schema tag, no simulation)."""
    point = {
        "labels": {"batch_size": batch},
        "system": "serverless",
        "scenario": "baseline",
        "config": {"batch_size": batch},
    }
    result = {
        "throughput_txn_per_sec": throughput,
        "committed_txns": 10,
        "aborted_txns": 0,
        "latency": {
            "count": 10,
            "mean": 0.5,
            "p50": 0.5,
            "p95": 0.6,
            "p99": 0.7,
            "minimum": 0.4,
            "maximum": 0.8,
        },
    }
    return make_record(digest, point, result, sweep_name=sweep)


def _backends(tmp_path):
    return {
        "jsonl": JsonlBackend(str(tmp_path / "store.jsonl")),
        "sqlite": SqliteBackend(str(tmp_path / "store.db")),
        "shard": ShardedStore(str(tmp_path / "shards"), shard="t0"),
    }


# ------------------------------------------------------------------ protocol


@pytest.mark.parametrize("kind", ["jsonl", "sqlite", "shard"])
def test_get_returns_a_copy_not_the_cache(tmp_path, kind):
    """Regression: mutating a cache hit must not corrupt later hits."""
    store = _backends(tmp_path)[kind]
    store.put_record(_fake_record("d" * 64))
    first = store.get("d" * 64)
    first["result"]["throughput_txn_per_sec"] = -1.0
    first["labels"]["edited"] = True
    second = store.get("d" * 64)
    assert second["result"]["throughput_txn_per_sec"] == 100.0
    assert "edited" not in second["labels"]


@pytest.mark.parametrize("kind", ["jsonl", "sqlite", "shard"])
def test_backend_protocol_surface(tmp_path, kind):
    store = _backends(tmp_path)[kind]
    a, b = "a" * 64, "b" * 64
    store.put_record(_fake_record(a, sweep="one", batch=5))
    store.put_record(_fake_record(b, sweep="two", batch=20))
    assert len(store) == 2
    assert a in store and "f" * 64 not in store
    assert sorted(store.digests()) == [a, b]
    assert store.get("f" * 64) is None
    assert [r["digest"] for r in store.iter_records(sweeps=["two"])] == [b]
    hits = list(store.select(where={"labels.batch_size": 5}))
    assert [r["digest"] for r in hits] == [a]
    assert list(store.select(where={"labels.batch_size": 99})) == []
    stat = store.stat()
    assert stat.records == 2 and stat.sweeps == {"one": 1, "two": 1}


def test_select_semantics_identical_across_backends(tmp_path):
    """The shared matcher defines the result set; SQL only narrows."""
    stores = _backends(tmp_path)
    records = [
        _fake_record("a" * 64, sweep="one", batch=5),
        _fake_record("b" * 64, sweep="one", batch=20),
        _fake_record("c" * 64, sweep="two", batch=5, throughput=50.0),
    ]
    for store in stores.values():
        for record in records:
            store.put_record(record)
    for where in (
        None,
        {"sweep": "one"},
        {"labels.batch_size": 5},
        {"sweep": "one", "labels.batch_size": 5},
        {"point.system": "serverless"},
        {"result.throughput_txn_per_sec": 50.0},  # not an indexed column
        {"labels.batch_size": "5"},  # string never equals int 5
    ):
        results = {
            kind: sorted(r["digest"] for r in store.select(where=where))
            for kind, store in stores.items()
        }
        assert results["jsonl"] == results["sqlite"] == results["shard"], where


# ------------------------------------------------------------------ schema skips


def test_schema_skips_are_counted_and_surfaced(tmp_path, capsys):
    """Satellite: stale-schema records are countable, not a silent cold cache."""
    path = tmp_path / "store.jsonl"
    good = _fake_record("a" * 64)
    stale = _fake_record("b" * 64)
    stale["result_schema"] = "0" * 12
    stale2 = dict(stale, digest="c" * 64)
    with open(path, "w", encoding="utf-8") as handle:
        for record in (good, stale, stale2):
            handle.write(canonical_line(record) + "\n")
    store = JsonlBackend(str(path))
    assert len(store) == 1
    assert store.schema_skips == 2
    assert store.stat().schema_skips == 2

    # The sqlite backend keeps stale rows in the table but hides and counts them.
    db = SqliteBackend(str(tmp_path / "store.db"))
    for record in (good, stale, stale2):
        db.put_record(record)
    assert len(db) == 1 and "b" * 64 not in db
    assert db.stat().schema_skips == 2

    # And `repro.store stat` surfaces the count.
    assert store_cli(["stat", str(path)]) == 0
    out = capsys.readouterr().out
    assert "schema-skips:  2" in out


def test_stale_schema_records_are_cache_misses_not_crashes(tmp_path):
    path = tmp_path / "store.jsonl"
    store = JsonlBackend(str(path))
    record = _fake_record("a" * 64)
    record["result_schema"] = "deadbeefcafe"
    store.put_record(record)
    assert "a" * 64 not in JsonlBackend(str(path))


# ------------------------------------------------------------------ concurrency

_WRITERS = 2
_RECORDS_PER_WRITER = 20


def _append_records(url, writer_index):
    """Worker for the multi-process append tests (must be module level)."""
    store = open_store(url)
    for i in range(_RECORDS_PER_WRITER):
        digest = f"{writer_index}{i:02d}".ljust(64, "e")
        store.put_record(_fake_record(digest, sweep=f"w{writer_index}"))


@pytest.mark.parametrize(
    "url_for",
    [
        pytest.param(lambda d: str(d / "conc.jsonl"), id="jsonl-flock"),
        pytest.param(lambda d: "sqlite://" + str(d / "conc.db"), id="sqlite-wal"),
    ],
)
def test_two_processes_appending_lose_no_records(tmp_path, url_for):
    """Satellite: concurrent writers interleave whole records, never bytes."""
    url = url_for(tmp_path)
    processes = [
        multiprocessing.Process(target=_append_records, args=(url, index))
        for index in range(_WRITERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=60)
        assert process.exitcode == 0
    store = open_store(url)
    assert len(store) == _WRITERS * _RECORDS_PER_WRITER
    stat = store.stat()
    assert stat.torn_skips == 0 and stat.schema_skips == 0


# ------------------------------------------------------------------ sharded merge


def test_merge_bytes_independent_of_write_order(tmp_path):
    """The tentpole determinism claim: merge output is a pure function of
    the record set — shard names, assignment, and write order are invisible."""
    records = [_fake_record(ch * 64, batch=i) for i, ch in enumerate("abcd")]
    twin = dict(records[1], sweep="other-host")  # host-side-only duplicate

    dir_one = tmp_path / "one"
    store_a = ShardedStore(str(dir_one), shard="host-a")
    store_b = ShardedStore(str(dir_one), shard="host-b")
    for record in records[:2]:
        store_a.put_record(record)
    for record in records[2:]:
        store_b.put_record(record)
    store_b.put_record(twin)

    dir_two = tmp_path / "two"
    store_c = ShardedStore(str(dir_two), shard="zz-completely-different")
    store_d = ShardedStore(str(dir_two), shard="aa")
    store_c.put_record(twin)
    for record in reversed(records):
        (store_c if record["digest"][0] in "ad" else store_d).put_record(record)

    out_one, out_two = tmp_path / "m1.jsonl", tmp_path / "m2.jsonl"
    stats_one = merge_shards(str(dir_one), str(out_one))
    stats_two = merge_shards(str(dir_two), str(out_two))
    assert out_one.read_bytes() == out_two.read_bytes()
    assert stats_one.records == stats_two.records == 4
    assert stats_one.duplicates == stats_two.duplicates == 1

    # The open-time union view agrees with the merge byte-for-byte.
    merged = JsonlBackend(str(out_one))
    union = ShardedStore(str(dir_one), shard="reader")
    assert [r for r in merged.iter_records()] == [r for r in union.iter_records()]


def test_merge_refuses_addressed_field_conflicts(tmp_path):
    directory = tmp_path / "shards"
    ShardedStore(str(directory), shard="a").put_record(
        _fake_record("a" * 64, throughput=100.0)
    )
    # Write the conflicting shard file directly: opening a ShardedStore on the
    # directory would already refuse (its union view applies the same rule).
    JsonlBackend(str(directory / "shard-b.jsonl")).put_record(
        _fake_record("a" * 64, throughput=999.0)  # result differs: nondeterminism
    )
    with pytest.raises(StoreError, match="disagree on addressed fields"):
        merge_shards(str(directory), str(tmp_path / "out.jsonl"))
    with pytest.raises(StoreError, match="disagree on addressed fields"):
        ShardedStore(str(directory), shard="reader")
    # Host-side disagreement (sweep name) is a tie, not a conflict.
    directory2 = tmp_path / "shards2"
    ShardedStore(str(directory2), shard="a").put_record(_fake_record("a" * 64))
    ShardedStore(str(directory2), shard="b").put_record(
        _fake_record("a" * 64, sweep="re-run")
    )
    stats = merge_shards(str(directory2), str(tmp_path / "out2.jsonl"))
    assert stats.records == 1 and stats.duplicates == 1


def test_compact_collapses_shards_idempotently(tmp_path):
    directory = tmp_path / "shards"
    for token, digest in (("a", "a" * 64), ("b", "b" * 64)):
        ShardedStore(str(directory), shard=token).put_record(_fake_record(digest))
    stats, target = compact_shards(str(directory))
    assert stats.records == 2
    assert sorted(os.listdir(directory)) == ["shard-compacted.jsonl"]
    first = open(target, "rb").read()
    compact_shards(str(directory))
    assert open(target, "rb").read() == first
    # Compacted shard is an ordinary peer for later writers.
    store = ShardedStore(str(directory), shard="later")
    assert len(store) == 2


# ------------------------------------------------------------------ URL scheme


def test_open_store_url_scheme(tmp_path):
    assert isinstance(open_store(str(tmp_path / "r.jsonl")), JsonlBackend)
    assert isinstance(open_store("jsonl://" + str(tmp_path / "r2.db")), JsonlBackend)
    assert isinstance(open_store(str(tmp_path / "r.db")), SqliteBackend)
    assert isinstance(open_store("sqlite://" + str(tmp_path / "r2.db")), SqliteBackend)
    sharded = open_store("shard://" + str(tmp_path / "dir"), shard="t")
    assert isinstance(sharded, ShardedStore)
    # A bare path naming an existing directory selects sharding too.
    assert isinstance(open_store(str(tmp_path / "dir"), shard="t"), ShardedStore)


# ------------------------------------------------------------------ migrate / CLI


def test_migrate_round_trips_between_backends(tmp_path, capsys):
    jsonl_path = tmp_path / "src.jsonl"
    source = JsonlBackend(str(jsonl_path))
    for i, ch in enumerate("abc"):
        source.put_record(_fake_record(ch * 64, batch=i))
    db_url = "sqlite://" + str(tmp_path / "dst.db")
    assert store_cli(["migrate", str(jsonl_path), db_url]) == 0
    back_path = tmp_path / "back.jsonl"
    assert store_cli(["migrate", db_url, str(back_path)]) == 0
    capsys.readouterr()
    assert list(JsonlBackend(str(back_path)).iter_records()) == list(
        source.iter_records()
    )


def test_store_cli_query_and_stat(tmp_path, capsys):
    path = tmp_path / "store.jsonl"
    store = JsonlBackend(str(path))
    store.put_record(_fake_record("a" * 64, batch=5))
    store.put_record(_fake_record("b" * 64, batch=20))
    assert store_cli(["query", str(path), "--where", "labels.batch_size=5",
                      "--count"]) == 0
    assert capsys.readouterr().out.strip() == "1"
    assert store_cli(["query", str(path), "--jsonl"]) == 0
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    assert [json.loads(l)["digest"] for l in lines] == ["a" * 64, "b" * 64]
    assert store_cli(["query", str(tmp_path / "missing-dir") + "/x.jsonl",
                      "--count"]) == 0  # empty store, not an error
    assert store_cli(["stat", str(path)]) == 0


# ------------------------------------------------------------------ A/B neutrality


@pytest.fixture(scope="module")
def warehouse_run(tmp_path_factory):
    """One real sweep persisted to a JSONL store, shared by the A/B tests."""
    path = tmp_path_factory.mktemp("warehouse") / "baseline.jsonl"
    report = run_sweep(_tiny_sweep(), store=JsonlBackend(str(path)))
    assert report.simulated == 2 and report.failed == 0
    return str(path), [outcome.digest for outcome in report.outcomes]


def test_backend_neutrality_digests_and_cache_hits(warehouse_run, tmp_path):
    """The same sweep yields identical digests and 100% cache hits on every
    backend — store choice is host-side, never content-addressed."""
    jsonl_path, digests = warehouse_run
    sqlite_store = SqliteBackend(str(tmp_path / "ab.db"))
    shard_store = ShardedStore(str(tmp_path / "ab-shards"), shard="ab")

    report_db = run_sweep(_tiny_sweep(), store=sqlite_store)
    report_shard = run_sweep(_tiny_sweep(), store=shard_store)
    assert [o.digest for o in report_db.outcomes] == digests
    assert [o.digest for o in report_shard.outcomes] == digests

    for store in (JsonlBackend(jsonl_path), sqlite_store, shard_store):
        rerun = run_sweep(_tiny_sweep(), store=store)
        assert rerun.cached == 2 and rerun.simulated == 0

    # Migrating never changes hits either: jsonl -> sqlite serves the same runs.
    migrated = SqliteBackend(str(tmp_path / "migrated.db"))
    for record in JsonlBackend(jsonl_path).iter_records():
        migrated.put_record(record)
    rerun = run_sweep(_tiny_sweep(), store=migrated)
    assert rerun.cached == 2 and rerun.simulated == 0


def test_sharded_grid_split_merges_to_full_cache(warehouse_run, tmp_path):
    """Two hosts each run half the grid into their own shard; the merged
    store serves the whole grid back as 100% cache hits."""
    from repro.sweep.cli import _grid_shard

    _, digests = warehouse_run
    directory = str(tmp_path / "split")
    sweep = _tiny_sweep()
    for index, token in ((0, "host-a"), (1, "host-b")):
        half = _grid_shard(sweep, index, 2)
        assert len(half.points) == 1
        report = run_sweep(half, store=ShardedStore(directory, shard=token))
        assert report.failed == 0
    merged_path = str(tmp_path / "merged.jsonl")
    stats = merge_shards(directory, merged_path)
    assert stats.records == 2 and stats.torn_skips == 0
    rerun = run_sweep(sweep, store=JsonlBackend(merged_path))
    assert rerun.cached == 2 and rerun.simulated == 0
    assert sorted(o.digest for o in rerun.outcomes) == sorted(digests)


def test_report_bytes_identical_across_backends(warehouse_run, tmp_path, capsys):
    """repro.report renders byte-identical markdown from JSONL and sqlite."""
    from repro.report.cli import main as report_cli

    jsonl_path, _ = warehouse_run
    db_url = "sqlite://" + str(tmp_path / "report.db")
    assert store_cli(["migrate", jsonl_path, db_url]) == 0
    capsys.readouterr()
    assert report_cli(["--store", jsonl_path, "--fail-empty"]) == 0
    from_jsonl = capsys.readouterr().out
    assert report_cli(["--store", db_url, "--fail-empty"]) == 0
    from_sqlite = capsys.readouterr().out
    assert from_jsonl == from_sqlite
    assert "| " in from_jsonl  # actually rendered table rows


def test_facade_run_accepts_any_backend_url(warehouse_run, tmp_path):
    """repro.api.run(store=...) speaks the same URL scheme as the CLIs."""
    from repro.api import RunSpec, run

    spec = RunSpec(
        overrides={
            "crypto_backend": "fast",
            "num_clients": 40,
            "client_groups": 2,
            "workload.clients": 40,
        },
        duration=0.4,
        warmup=0.1,
    )
    url = "sqlite://" + str(tmp_path / "facade.db")
    first = run(spec, store=url)
    store = open_store(url)
    assert len(store) == 1
    again = run(spec, store=url)
    assert again == first
