"""Integration tests for transactional conflicts (Section VI)."""

from tests.helpers import make_config, make_workload, run_simulation
from repro.core.config import ConflictMode, SpawnPolicyName


def conflict_workload(fraction, rw_known=False):
    return make_workload(
        conflict_fraction=fraction,
        rw_sets_known=rw_known,
        num_records=5_000,
        hot_keys=8,
    )


def test_conflicting_transactions_cause_aborts_under_optimistic_execution():
    low_sim, low = run_simulation(
        workload=conflict_workload(0.0), duration=2.0, warmup=0.0, tracer_enabled=False
    )
    high_sim, high = run_simulation(
        workload=conflict_workload(0.5), duration=2.0, warmup=0.0, tracer_enabled=False
    )
    assert high.committed_txns > 0
    assert high.aborted_txns > low.aborted_txns
    assert high.abort_rate > low.abort_rate


def test_goodput_decreases_with_conflict_rate():
    _s0, result_0 = run_simulation(
        workload=conflict_workload(0.0), duration=2.0, warmup=0.2, tracer_enabled=False
    )
    _s50, result_50 = run_simulation(
        workload=conflict_workload(0.5), duration=2.0, warmup=0.2, tracer_enabled=False
    )
    assert result_50.committed_txns < result_0.committed_txns
    # Latency stays in the same ballpark (the paper reports it unchanged).
    assert result_50.latency.mean < 3.0 * result_0.latency.mean


def test_optimistic_mode_uses_3f_plus_1_executors_for_unknown_rw_sets():
    config = make_config(num_executors=7, conflict_mode=ConflictMode.OPTIMISTIC)
    assert config.derived_executor_faults == 2
    assert config.executor_match_quorum == 3
    simulation, result = run_simulation(
        config=config, workload=conflict_workload(0.3), duration=1.5, warmup=0.0,
        tracer_enabled=False,
    )
    assert result.committed_txns > 0
    # Every committed batch spawned 7 executors.
    assert result.cloud_invocations >= 7 * len(simulation.verifier.validated_sequence_numbers)


def test_conflict_avoidance_reduces_aborts():
    optimistic_config = make_config(conflict_mode=ConflictMode.OPTIMISTIC)
    avoidance_config = make_config(conflict_mode=ConflictMode.CONFLICT_AVOIDANCE)
    _so, optimistic = run_simulation(
        config=optimistic_config,
        workload=conflict_workload(0.4, rw_known=False),
        duration=2.0,
        warmup=0.0,
        tracer_enabled=False,
    )
    _sa, avoidance = run_simulation(
        config=avoidance_config,
        workload=conflict_workload(0.4, rw_known=True),
        duration=2.0,
        warmup=0.0,
        tracer_enabled=False,
    )
    assert avoidance.committed_txns > 0
    assert avoidance.abort_rate <= optimistic.abort_rate
    assert avoidance.abort_rate <= 0.05


def test_conflict_avoidance_still_parallelises_non_conflicting_batches():
    config = make_config(conflict_mode=ConflictMode.CONFLICT_AVOIDANCE)
    _sim, result = run_simulation(
        config=config,
        workload=conflict_workload(0.0, rw_known=True),
        duration=2.0,
        warmup=0.2,
        tracer_enabled=False,
    )
    # Without conflicts the lock map never blocks anything, so throughput is
    # comparable to optimistic execution.
    _sim2, optimistic = run_simulation(
        workload=conflict_workload(0.0), duration=2.0, warmup=0.2, tracer_enabled=False
    )
    assert result.committed_txns >= 0.6 * optimistic.committed_txns


def test_decentralized_spawning_with_conflicts_overspawns_but_commits():
    config = make_config(
        spawn_policy=SpawnPolicyName.DECENTRALIZED, conflict_mode=ConflictMode.OPTIMISTIC
    )
    simulation, result = run_simulation(
        config=config,
        workload=conflict_workload(0.2),
        duration=2.0,
        warmup=0.0,
        tracer_enabled=False,
    )
    assert result.committed_txns > 0
    batches = len(simulation.verifier.validated_sequence_numbers)
    # e × n_R executors per batch instead of n_E (Equation 1: e = 1, n_R = 4).
    assert result.cloud_invocations >= batches * config.shim_nodes
