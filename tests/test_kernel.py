"""Compiled-kernel gate: chooser semantics and C-vs-Python bit identity.

The pure-Python implementations of the three hot floors (batch execution,
YCSB generation, canonical-bytes/digest) stay authoritative; the compiled
kernel is only allowed to exist because every observable it produces —
digests, canonical strings, RNG draw sequences, end-to-end result digests —
is bit-identical.  These tests are that gate.

Tests that need the extension *importable* are marked ``needs_compiled``
(they drive subprocesses with their own ``REPRO_KERNEL``); tests that need
the C path *active in this process* are marked ``needs_active_c`` and skip
under ``REPRO_KERNEL=py`` or when the extension was never built — CI's
``kernel-smoke`` job runs them with the extension in place, and the plain
tier-1 lane proves everything else passes without it.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro import kernel
from repro.errors import KernelUnavailableError

needs_compiled = pytest.mark.skipif(
    not kernel.compiled_available(),
    reason="compiled kernel extension not built (python setup.py build_ext --inplace)",
)
needs_active_c = pytest.mark.skipif(
    kernel.active_variant() != "c",
    reason="compiled kernel not active in this process",
)

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _run_py(code: str, **env_overrides: str) -> "subprocess.CompletedProcess":
    """Run a snippet in a fresh interpreter with ``src`` on the path."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_overrides)
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(code)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


# ---------------------------------------------------------------- chooser


def test_env_py_forces_pure_python():
    proc = _run_py(
        """
        from repro import kernel
        assert kernel.active_variant() == "py"
        assert "REPRO_KERNEL=py" in kernel.inactive_reason()
        """,
        REPRO_KERNEL="py",
    )
    assert proc.returncode == 0, proc.stderr


def test_env_invalid_mode_raises():
    proc = _run_py(
        """
        try:
            from repro import kernel
        except Exception as exc:
            assert type(exc).__name__ == "KernelUnavailableError", exc
            assert "bogus" in str(exc)
        else:
            raise AssertionError("invalid REPRO_KERNEL mode was accepted")
        """,
        REPRO_KERNEL="bogus",
    )
    assert proc.returncode == 0, proc.stderr


#: Meta-path hook that makes the extension unimportable in a subprocess, so
#: the missing-.so fallback is testable even on machines that built it.
_BLOCK_EXTENSION = """
import sys
class _Block:
    def find_spec(self, name, path=None, target=None):
        if name == "repro._ckernel._impl":
            raise ImportError("blocked for test")
        return None
sys.meta_path.insert(0, _Block())
"""


def test_auto_missing_extension_warns_and_falls_back():
    proc = _run_py(
        _BLOCK_EXTENSION
        + textwrap.dedent("""
        import warnings
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            from repro import kernel
        assert kernel.active_variant() == "py"
        assert "blocked for test" in kernel.inactive_reason()
        fallback = [w for w in caught if "falling back to pure Python" in str(w.message)]
        assert len(fallback) == 1, [str(w.message) for w in caught]
        assert issubclass(fallback[0].category, RuntimeWarning)
        # The simulator still runs end to end on the fallback path.
        from repro.api import RunSpec, run
        result = run(RunSpec(duration=0.2, warmup=0.05, seed=3))
        assert result.events_processed > 0
        """),
        REPRO_KERNEL="auto",
    )
    assert proc.returncode == 0, proc.stderr


def test_c_mode_missing_extension_raises():
    proc = _run_py(
        _BLOCK_EXTENSION
        + textwrap.dedent("""
        try:
            from repro import kernel
        except Exception as exc:
            assert type(exc).__name__ == "KernelUnavailableError", exc
            assert "unavailable" in str(exc)
        else:
            raise AssertionError("REPRO_KERNEL=c succeeded without the extension")
        """),
        REPRO_KERNEL="c",
    )
    assert proc.returncode == 0, proc.stderr


@needs_compiled
def test_build_tag_mismatch_treated_as_absent(monkeypatch):
    monkeypatch.setattr(kernel, "KERNEL_BUILD_TAG", "repro-ckernel-from-the-future")
    compiled, reason = kernel._load_compiled()
    assert compiled is None
    assert "build-tag mismatch" in reason
    assert "repro-ckernel-1" in reason  # the extension's actual tag is named
    assert not kernel.compiled_available()


@needs_compiled
def test_c_mode_activates_compiled_kernel():
    proc = _run_py(
        """
        from repro import kernel
        assert kernel.active_variant() == "c"
        assert kernel.inactive_reason() == ""
        assert kernel.c_execute_batch() is not None
        assert kernel.c_generate_transactions() is not None
        """,
        REPRO_KERNEL="c",
    )
    assert proc.returncode == 0, proc.stderr


def test_chooser_relays_are_noops_on_python_path():
    # Regardless of the active variant, the c_* accessors agree with it.
    active = kernel.active_variant()
    assert active in ("c", "py")
    have_callables = kernel.c_execute_batch() is not None
    assert have_callables == (active == "c")


# ---------------------------------------------------------- sha256 parity


@needs_compiled
def test_soft_sha256_matches_hashlib():
    proc = _run_py(
        """
        import hashlib
        from repro import kernel
        sha = kernel.c_sha256_hex()
        assert sha is not None
        for size in (0, 1, 3, 55, 56, 63, 64, 65, 100, 1000, 10000):
            payload = bytes((i * 7 + size) % 256 for i in range(size))
            assert sha(payload) == hashlib.sha256(payload).hexdigest(), size
        assert sha("text") == hashlib.sha256(b"text").hexdigest()
        """,
        REPRO_KERNEL="c",
    )
    assert proc.returncode == 0, proc.stderr


# ------------------------------------------------- floor 1: execute_batch


def _zip_config(**overrides):
    from repro.workload.ycsb import YCSBConfig

    params = dict(num_records=400, clients=6, conflict_fraction=0.3, zipfian_theta=0.9)
    params.update(overrides)
    return YCSBConfig(**params)


@needs_active_c
def test_execute_batch_ab_identity():
    from repro.workload import transactions as T
    from repro.workload.transactions import TransactionBatch
    from repro.workload.ycsb import YCSBWorkload

    wl_c = YCSBWorkload(_zip_config())
    wl_p = YCSBWorkload(_zip_config())
    wl_p._c_generate = None  # pure-Python generation for the B side
    txns_c = wl_c.next_transactions(40, client_index_offset=2, origin="o", request_id="r")
    txns_p = wl_p.next_transactions(40, client_index_offset=2, origin="o", request_id="r")

    read_values = {f"user{i}": f"val-{i}" for i in range(0, 400, 3)}
    read_versions = {f"user{i}": i % 7 for i in range(0, 400, 2)}
    res_c = T._execute_batch_c(
        TransactionBatch(batch_id="b-1", transactions=txns_c),
        dict(read_values),
        dict(read_versions),
    )
    res_p = T._execute_batch_py(
        TransactionBatch(batch_id="b-1", transactions=txns_p),
        dict(read_values),
        dict(read_versions),
    )
    assert res_c.result_digest == res_p.result_digest
    assert res_c.txn_results == res_p.txn_results
    assert res_c.canonical() == res_p.canonical()
    # The C loop memoises sorted_keys exactly as the property would.
    for txn_c, txn_p in zip(txns_c, txns_p):
        memo = txn_c.__dict__.get("_sorted_keys")
        assert isinstance(memo, tuple)
        assert memo == txn_p.sorted_keys


@needs_active_c
def test_execute_batch_exotic_mapping_falls_back():
    from collections import UserDict

    from repro.workload import transactions as T
    from repro.workload.transactions import TransactionBatch
    from repro.workload.ycsb import YCSBWorkload

    wl = YCSBWorkload(_zip_config())
    batch = TransactionBatch(batch_id="b-2", transactions=wl.next_transactions(5))
    values = UserDict({"user17": "val-17"})
    versions = UserDict({"user17": 4})
    via_c_path = T._execute_batch_c(batch, values, versions)
    direct_py = T._execute_batch_py(batch, values, versions)
    assert via_c_path.result_digest == direct_py.result_digest
    assert via_c_path.txn_results == direct_py.txn_results


@needs_active_c
def test_canonical_strings_ab_identity():
    from repro.workload import transactions as T
    from repro.workload.transactions import TransactionBatch
    from repro.workload.ycsb import YCSBWorkload

    c_txn = T._transaction_canonical
    c_batch = T._batch_canonical
    assert c_txn is not T._transaction_canonical_py

    wl = YCSBWorkload(_zip_config(execution_seconds=0.25))
    txns = wl.next_transactions(20)
    for txn in txns:
        assert c_txn(txn) == T._transaction_canonical_py(txn)
    batch = TransactionBatch(batch_id="b-3", transactions=txns)
    assert c_batch(batch) == T._batch_canonical_py(batch)
    # And the memoising public entry points agree with both.
    assert batch.canonical() == T._batch_canonical_py(batch)
    for txn in txns:
        assert txn.canonical() == T._transaction_canonical_py(txn)


# -------------------------------------------- floor 2: YCSB draw identity

_YCSB_VARIANTS = {
    "default": dict(),
    "conflicts": dict(conflict_fraction=0.4),
    "zipfian": dict(conflict_fraction=0.0, zipfian_theta=0.95),
    "conflicts-zipfian": dict(conflict_fraction=0.4, zipfian_theta=0.95),
}


@needs_active_c
@pytest.mark.parametrize("variant", sorted(_YCSB_VARIANTS))
def test_ycsb_generation_draw_identity(variant):
    """C sampler vs hoisted next_transactions vs per-call next_transaction.

    All three must be draw-for-draw identical: same transactions, same
    canonicals, and the same RNG state afterwards (checked by generating a
    second wave from each workload).
    """
    from repro.workload.ycsb import YCSBWorkload

    overrides = _YCSB_VARIANTS[variant]
    wl_c = YCSBWorkload(_zip_config(num_records=600, **overrides))
    wl_hoisted = YCSBWorkload(_zip_config(num_records=600, **overrides))
    wl_hoisted._c_generate = None
    wl_single = YCSBWorkload(_zip_config(num_records=600, **overrides))
    wl_single._c_generate = None

    for wave in range(3):
        offset = wave % 2
        from_c = wl_c.next_transactions(30, offset, origin="g", request_id=f"q{wave}")
        from_hoisted = wl_hoisted.next_transactions(30, offset, origin="g", request_id=f"q{wave}")
        from_single = tuple(
            wl_single.next_transaction(offset + slot, origin="g", request_id=f"q{wave}")
            for slot in range(30)
        )
        assert [t.canonical() for t in from_c] == [t.canonical() for t in from_hoisted]
        assert [t.canonical() for t in from_c] == [t.canonical() for t in from_single]
        assert from_c == from_hoisted == from_single
        for txn in from_c:
            assert txn.origin == "g" and txn.request_id == f"q{wave}"


@needs_active_c
def test_ycsb_next_batch_draw_identity():
    from repro.workload.ycsb import YCSBWorkload

    wl_c = YCSBWorkload(_zip_config(conflict_fraction=0.5))
    wl_p = YCSBWorkload(_zip_config(conflict_fraction=0.5))
    wl_p._c_generate = None
    for _ in range(4):
        batch_c = wl_c.next_batch(17)
        batch_p = wl_p.next_batch(17)
        assert batch_c.batch_id == batch_p.batch_id
        assert batch_c.canonical() == batch_p.canonical()
        assert batch_c.transactions == batch_p.transactions


# ------------------------------------- floor 3: canonical bytes / digests

#: Payload shapes the simulator actually hashes, plus the awkward corners
#: the pure-Python canonicaliser is documented to handle.
def _hashing_payloads():
    from repro.workload.ycsb import YCSBWorkload

    txn = YCSBWorkload(_zip_config()).next_transaction(0)
    return [
        b"raw-bytes",
        "plain string",
        "",
        {"type": "PREPREPARE", "view": 3, "seq": 41, "digest": "a" * 64},
        {"nested": {"z": 1, "a": [2, 3, {"k": None}]}},
        {1: "int-key", "1": "str-key"},  # mixed-type keys
        {True: "bool", 2.5: "float"},
        [1, 2, ("tuple", "leg")],
        {"set": {3, 1, 2}},
        frozenset({"x", "y"}),
        txn,  # canonical() method chain
        {"txn": txn, "meta": {"origin": ""}},
    ]


def _reference_canonical_bytes(value):
    """The documented semantics, spelled out independently of hashing.py."""
    from repro.crypto.hashing import _canonical_json_fallback

    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    canonical = getattr(value, "canonical", None)
    if callable(canonical):
        return _reference_canonical_bytes(canonical())
    return _canonical_json_fallback(value)


@needs_active_c
def test_canonical_bytes_and_digest_ab_identity():
    from repro.crypto import hashing

    for payload in _hashing_payloads():
        expected = _reference_canonical_bytes(payload)
        assert hashing.canonical_bytes(payload) == expected
        assert hashing.digest(payload) == hashlib.sha256(expected).hexdigest()


@needs_active_c
def test_cached_digest_memoises_like_python():
    from repro.crypto import hashing
    from repro.workload.ycsb import YCSBWorkload

    txn = YCSBWorkload(_zip_config()).next_transaction(0)
    first = hashing.cached_digest(txn)
    assert txn.__dict__.get(hashing._DIGEST_ATTR) == first
    assert hashing.cached_digest(txn) == first
    assert first == hashlib.sha256(_reference_canonical_bytes(txn)).hexdigest()
    # Seeding still cooperates with the C reader.
    hashing.seed_cached_digest(txn, "f" * 64)
    assert hashing.cached_digest(txn) == "f" * 64
    # Objects that cannot carry the memo still digest correctly.
    assert hashing.cached_digest("payload") == hashing.digest("payload")


# ---------------------------------------------------- end-to-end A/B gate

_AB_PROGRAM = """
import json, warnings
warnings.simplefilter("ignore")
from repro.api import RunSpec, run
from repro.api.facade import result_digest
from repro import kernel
points = [
    ("serverless_bft", [], 7),
    ("serverless_cft", [], 7),
    ("pbft_replicated", [], 7),
    ("noshim", [], 7),
    ("serverless_bft", ["byzantine-executors"], 5),
    ("serverless_bft", ["primary-crash"], 11),
]
out = {"variant": kernel.active_variant(), "points": []}
for system, scenarios, seed in points:
    r = run(RunSpec(system=system, duration=0.4, warmup=0.1, seed=seed,
                    scenarios=scenarios))
    out["points"].append([system, scenarios, result_digest(r),
                          r.events_processed, r.committed_txns])
print(json.dumps(out))
"""


@needs_compiled
def test_end_to_end_digests_bit_identical_c_vs_python():
    """The whole simulator, both kernels: result digests, event counts, and
    commit counts must match on all four systems plus a byzantine scenario
    and a crash fault timeline."""
    proc_py = _run_py(_AB_PROGRAM, REPRO_KERNEL="py")
    assert proc_py.returncode == 0, proc_py.stderr
    proc_c = _run_py(_AB_PROGRAM, REPRO_KERNEL="c")
    assert proc_c.returncode == 0, proc_c.stderr
    report_py = json.loads(proc_py.stdout)
    report_c = json.loads(proc_c.stdout)
    assert report_py["variant"] == "py"
    assert report_c["variant"] == "c"
    for point_py, point_c in zip(report_py["points"], report_c["points"]):
        assert point_py == point_c, f"C/python divergence at {point_py[:2]}"


# ------------------------------------------------------------ PERF counters


@needs_active_c
def test_perf_counters_attribute_work_to_compiled_kernel():
    from repro.perf import PERF
    from repro.workload.transactions import TransactionBatch, execute_batch
    from repro.workload.ycsb import YCSBWorkload

    wl = YCSBWorkload(_zip_config())
    baseline = PERF.snapshot()
    txns = wl.next_transactions(10)
    batch = TransactionBatch(batch_id="b-9", transactions=txns)
    execute_batch(batch, {"user20": "v"}, {"user20": 1})
    delta = PERF.delta_since(baseline)
    assert delta.get("ckernel_txns_generated", 0) >= 10
    assert delta.get("ckernel_batches_executed", 0) >= 1
    assert delta.get("batch_executions", 0) >= 1
