"""Unit tests for the crash-fault-tolerant Paxos shim (SERVERLESSCFT baseline)."""

from typing import Dict, List

import pytest

from repro.consensus.paxos import PaxosConfig, PaxosReplica
from repro.crypto.costs import CryptoCostModel
from repro.errors import ProtocolViolation
from repro.sim.engine import Simulator


class _Host:
    def __init__(self, sim: Simulator) -> None:
        self._sim = sim

    def process(self, cost, callback, *args):
        callback(*args)

    def process_parallel(self, cost, parallelism, callback, *args):
        callback(*args)

    def set_timer(self, delay, callback, *args):
        return self._sim.schedule(delay, callback, *args)

    @property
    def now(self):
        return self._sim.now


class _Transport:
    def __init__(self, cluster, owner):
        self._cluster = cluster
        self._owner = owner

    def send(self, dst, message, size_bytes):
        self._cluster.route(self._owner, dst, message)

    def broadcast(self, message, size_bytes, targets=None):
        recipients = targets if targets is not None else [
            name for name in self._cluster.names if name != self._owner
        ]
        for dst in recipients:
            self._cluster.route(self._owner, dst, message)


class PaxosCluster:
    def __init__(self, n: int = 3) -> None:
        self.sim = Simulator()
        self.names = [f"node-{index}" for index in range(n)]
        self.committed: Dict[str, List] = {name: [] for name in self.names}
        self.crashed = set()
        self.replicas = {
            name: PaxosReplica(
                replica_id=name,
                replicas=self.names,
                config=PaxosConfig(),
                transport=_Transport(self, name),
                cost_model=CryptoCostModel(),
                host=_Host(self.sim),
                on_committed=lambda entry, name=name: self.committed[name].append(entry),
            )
            for name in self.names
        }

    def route(self, src, dst, message):
        if dst in self.crashed or src in self.crashed:
            return
        self.sim.schedule(0.001, self.replicas[dst].handle, message, src)

    def leader(self) -> PaxosReplica:
        return self.replicas[self.names[0]]

    def run(self, until: float = 0.5) -> None:
        self.sim.run(until=until)


def test_leader_orders_batches_on_all_replicas():
    cluster = PaxosCluster(n=3)
    cluster.leader().propose("batch-1")
    cluster.leader().propose("batch-2")
    cluster.run()
    for name in cluster.names:
        assert [entry.seq for entry in cluster.committed[name]] == [1, 2]
        assert [entry.batch for entry in cluster.committed[name]] == ["batch-1", "batch-2"]


def test_commits_carry_no_certificate():
    cluster = PaxosCluster(n=3)
    cluster.leader().propose("batch-1")
    cluster.run()
    assert cluster.committed["node-1"][0].certificate == ()


def test_non_leader_cannot_propose():
    cluster = PaxosCluster(n=3)
    with pytest.raises(ProtocolViolation):
        cluster.replicas["node-1"].propose("rogue")


def test_majority_is_enough_despite_one_crash():
    cluster = PaxosCluster(n=3)
    cluster.crashed.add("node-2")
    cluster.leader().propose("batch-1")
    cluster.run()
    assert len(cluster.committed["node-0"]) == 1
    assert len(cluster.committed["node-1"]) == 1
    assert cluster.committed["node-2"] == []


def test_minority_cannot_commit():
    cluster = PaxosCluster(n=3)
    cluster.crashed.add("node-1")
    cluster.crashed.add("node-2")
    cluster.leader().propose("batch-1")
    cluster.run()
    assert cluster.committed["node-0"] == []


def test_quorum_sizes():
    cluster = PaxosCluster(n=5)
    replica = cluster.leader()
    assert replica.n == 5
    assert replica.majority == 3
    assert replica.is_leader
    assert not cluster.replicas["node-1"].is_leader


def test_accept_from_non_leader_is_ignored():
    from repro.consensus.messages import PaxosAcceptMsg

    cluster = PaxosCluster(n=3)
    replica = cluster.replicas["node-1"]
    replica.on_accept(
        PaxosAcceptMsg(ballot=0, seq=1, digest="d", batch="rogue"), sender="node-2"
    )
    cluster.run()
    assert cluster.committed["node-1"] == []
