"""Sweep execution tests: parallel determinism, caching, serialization, CLI.

The load-bearing guarantees (ISSUE 2 acceptance criteria):

* a sweep run with ``workers=4`` produces byte-identical point digests and
  simulated metrics to the same sweep run in-process, and
* a second run against the same result store is a 100% cache hit — zero
  points re-simulated.
"""

import json

import pytest

from repro.sweep import (
    PointSpec,
    ResultStore,
    SweepSpec,
    result_from_dict,
    result_to_dict,
    run_sweep,
    simulate_resolved_point,
    simulated_fingerprint,
)
from repro.sweep.cli import main as sweep_cli
from repro.sweep.runner import build_simulation


def _tiny_sweep(name="tiny"):
    """Two fast points (fast crypto, 60 clients, 0.4 s virtual)."""
    shared = {"crypto_backend": "fast", "num_clients": 60, "client_groups": 4}
    return SweepSpec(
        name=name,
        points=tuple(
            PointSpec(
                labels={"batch_size": batch_size},
                config=dict(shared, batch_size=batch_size),
                workload={"clients": 60},
                duration=0.4,
                warmup=0.1,
            )
            for batch_size in (5, 20)
        ),
    )


# ------------------------------------------------------------------ serial


def test_serial_run_produces_results():
    report = run_sweep(_tiny_sweep())
    assert report.simulated == 2 and report.cached == 0 and report.failed == 0
    for outcome in report.outcomes:
        assert outcome.ok
        assert outcome.result.committed_txns > 0
        assert len(outcome.digest) == 64
    table = report.table()
    assert table.column("batch_size") == [5, 20]
    assert all(value > 0 for value in table.column("throughput_txn_s"))


def test_result_round_trips_through_dict():
    report = run_sweep(_tiny_sweep())
    original = report.outcomes[0].result
    rebuilt = result_from_dict(result_to_dict(original))
    assert rebuilt == original


def test_failed_points_are_reported_not_raised():
    good = _tiny_sweep().points[0]
    # Rejected at resolution time (ProtocolConfig.validate).
    bad_config = PointSpec(
        labels={"kind": "bad-config"},
        config={"client_groups": 0},
        duration=0.4,
        warmup=0.1,
    )
    # Resolves fine but blows up when the deployment is built.
    bad_engine = PointSpec(
        labels={"kind": "bad-engine"},
        consensus_engine="raft",
        duration=0.4,
        warmup=0.1,
    )
    report = run_sweep(SweepSpec(name="mixed", points=(good, bad_config, bad_engine)))
    assert report.simulated == 1 and report.failed == 2
    assert report.outcomes[1].error is not None
    assert "raft" in report.outcomes[2].error
    # Failed points contribute no table rows.
    assert len(report.table()) == 1


# ------------------------------------------------------------------ parallel determinism


def test_parallel_matches_serial_bit_for_bit_and_caches():
    """ISSUE 2 acceptance: workers=4 == in-process, then 100% cache hits."""
    sweep = _tiny_sweep("determinism")
    serial = run_sweep(sweep)

    store_path_free_run = run_sweep(sweep, workers=4)
    assert store_path_free_run.simulated == 2 and store_path_free_run.failed == 0

    # Identical digests in identical order...
    serial_digests = [outcome.digest for outcome in serial.outcomes]
    parallel_digests = [outcome.digest for outcome in store_path_free_run.outcomes]
    assert serial_digests == parallel_digests

    # ...and byte-identical simulated metrics (host wall-clock excluded).
    for left, right in zip(serial.outcomes, store_path_free_run.outcomes):
        assert json.dumps(
            simulated_fingerprint(left.result_dict), sort_keys=True
        ) == json.dumps(simulated_fingerprint(right.result_dict), sort_keys=True)


def test_second_run_is_full_cache_hit(tmp_path):
    sweep = _tiny_sweep("cache-hit")
    store = ResultStore(str(tmp_path / "results.jsonl"))
    first = run_sweep(sweep, store=store)
    assert first.simulated == 2 and first.cached == 0

    # Fresh store instance: must reload the JSONL records from disk.
    reloaded = ResultStore(str(tmp_path / "results.jsonl"))
    assert len(reloaded) == 2
    second = run_sweep(sweep, workers=4, store=reloaded)
    assert second.simulated == 0 and second.cached == 2 and second.failed == 0
    for left, right in zip(first.outcomes, second.outcomes):
        assert simulated_fingerprint(left.result_dict) == simulated_fingerprint(
            right.result_dict
        )


def test_interrupted_sweep_resumes(tmp_path):
    sweep = _tiny_sweep("resume")
    store = ResultStore(str(tmp_path / "results.jsonl"))
    # Simulate an interruption: only the first point made it into the store.
    only_first = SweepSpec(name="resume", points=(sweep.points[0],), seed=sweep.seed)
    run_sweep(only_first, store=store)
    report = run_sweep(sweep, store=store)
    assert report.cached == 1 and report.simulated == 1


def test_store_ignores_records_with_stale_result_schema(tmp_path):
    path = tmp_path / "results.jsonl"
    sweep = _tiny_sweep("schema")
    run_sweep(sweep, store=ResultStore(str(path)))
    # Rewrite the records as if produced by an older SimulationResult layout:
    # they must register as cache misses, not deserialisation crashes.
    lines = [json.loads(line) for line in open(path, encoding="utf-8")]
    with open(path, "w", encoding="utf-8") as handle:
        for record in lines:
            record["result_schema"] = "0" * 12
            handle.write(json.dumps(record) + "\n")
    stale = ResultStore(str(path))
    assert len(stale) == 0
    report = run_sweep(sweep, store=stale)
    assert report.simulated == 2 and report.cached == 0


def test_duplicate_digest_points_simulate_once():
    # Two pinned-seed points with identical configs share a digest: only the
    # representative runs, the twin is served from its result.
    twin_points = tuple(
        PointSpec(
            labels={"replicate": index},
            config={"crypto_backend": "fast", "num_clients": 60, "client_groups": 4},
            workload={"clients": 60},
            seed=5,
            duration=0.4,
            warmup=0.1,
        )
        for index in range(2)
    )
    report = run_sweep(SweepSpec(name="twins", points=twin_points))
    assert report.outcomes[0].digest == report.outcomes[1].digest
    assert report.simulated == 1 and report.cached == 1 and report.failed == 0
    assert simulated_fingerprint(report.outcomes[0].result_dict) == (
        simulated_fingerprint(report.outcomes[1].result_dict)
    )


def test_runtime_registered_scenario_works_in_parallel_workers():
    from repro.sweep import Scenario, register_scenario

    register_scenario(
        Scenario(
            name="unit-test-custom",
            description="runtime-registered preset for the worker-init test",
            workload_overrides={"write_fraction": 0.25},
        ),
        replace=True,
    )
    points = tuple(
        PointSpec(
            labels={"b": batch_size},
            scenario="unit-test-custom",
            config={"batch_size": batch_size, "crypto_backend": "fast"},
            duration=0.4,
            warmup=0.1,
        )
        for batch_size in (5, 10)
    )
    report = run_sweep(SweepSpec(name="custom-scenario", points=points), workers=2)
    assert report.failed == 0 and report.simulated == 2


def test_store_skips_torn_trailing_line(tmp_path):
    path = tmp_path / "results.jsonl"
    sweep = _tiny_sweep("torn")
    run_sweep(sweep, store=ResultStore(str(path)))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"digest": "truncated-')
    reloaded = ResultStore(str(path))
    assert len(reloaded) == 2


def test_store_skips_torn_record_in_the_middle(tmp_path):
    """A torn record mid-file must not take the valid records after it down."""
    path = tmp_path / "results.jsonl"
    sweep = _tiny_sweep("torn-middle")
    run_sweep(sweep, store=ResultStore(str(path)))
    lines = open(path, encoding="utf-8").read().splitlines()
    assert len(lines) == 2
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(lines[0] + "\n")
        handle.write(lines[1][: len(lines[1]) // 2] + "\n")  # torn in the middle
        handle.write(lines[1] + "\n")  # valid record after the debris
    reloaded = ResultStore(str(path))
    assert len(reloaded) == 2
    assert run_sweep(sweep, store=reloaded).cached == 2


def test_store_append_repairs_a_torn_tail(tmp_path):
    """Appending after a crash mid-write must not weld onto the debris.

    Without the newline repair, the next record would concatenate onto the
    torn line and *both* would be unparseable — a crash would silently cost
    a point that was later reported as persisted.
    """
    path = tmp_path / "results.jsonl"
    sweep = _tiny_sweep("torn-tail")
    first = run_sweep(SweepSpec(name="torn-tail", points=(sweep.points[0],)))
    store = ResultStore(str(path))
    store.put("aaaa", {"labels": {}}, first.outcomes[0].result_dict, "torn-tail")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"digest": "torn-')  # crash mid-append, no newline
    resumed = ResultStore(str(path))
    resumed.put("bbbb", {"labels": {}}, first.outcomes[0].result_dict, "torn-tail")
    reloaded = ResultStore(str(path))
    assert "aaaa" in reloaded and "bbbb" in reloaded


def test_store_put_fsyncs_every_append(tmp_path, monkeypatch):
    """Durability is fsync, not flush: a reported point must survive a host
    crash, so every append must reach the disk before ``put`` returns."""
    import os as os_module

    import repro.store.jsonl as jsonl_module

    synced = []
    real_fsync = os_module.fsync
    monkeypatch.setattr(
        jsonl_module.os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
    )
    store = ResultStore(str(tmp_path / "fsync.jsonl"))
    sweep = _tiny_sweep("fsync")
    report = run_sweep(sweep, store=store)
    assert report.simulated == 2
    assert len(synced) == 2  # one fsync per persisted point


def test_parallel_stall_timeout_fails_running_points_promptly():
    import time

    points = tuple(
        PointSpec(
            labels={"b": batch_size},
            config={"batch_size": batch_size, "crypto_backend": "fast"},
            duration=2.0,
            warmup=0.2,
        )
        for batch_size in (5, 10)
    )
    started = time.perf_counter()
    report = run_sweep(
        SweepSpec(name="stall", points=points), workers=2, timeout=0.05
    )
    elapsed = time.perf_counter() - started
    assert report.failed == 2
    assert all("no result within" in outcome.error for outcome in report.outcomes)
    # The hung workers are terminated instead of blocking pool shutdown: the
    # call must return long before the 2 s points would have finished.
    assert elapsed < 10.0


# ------------------------------------------------------------------ replicates end-to-end


def test_replicated_sweep_simulates_distinct_seeds_and_caches(tmp_path):
    """ISSUE 4 acceptance: replicates=N yields N distinct per-seed digests
    that are 100% cache hits on re-run."""
    from repro.sweep import with_replicates

    sweep = with_replicates(_tiny_sweep("replicated"), 2)
    store = ResultStore(str(tmp_path / "rep.jsonl"))
    first = run_sweep(sweep, store=store)
    assert first.simulated == 4 and first.failed == 0  # 2 points x 2 seeds
    digests = [outcome.digest for outcome in first.outcomes]
    assert len(set(digests)) == 4
    # Replicates are genuinely different runs, not copies of one seed.
    fingerprints = {
        json.dumps(simulated_fingerprint(outcome.result_dict), sort_keys=True)
        for outcome in first.outcomes
    }
    assert len(fingerprints) == 4

    second = run_sweep(sweep, workers=2, store=ResultStore(store.path))
    assert second.simulated == 0 and second.cached == 4
    assert [outcome.digest for outcome in second.outcomes] == digests


def test_replicate_expansion_reaches_the_report_table():
    from repro.sweep import with_replicates

    report = run_sweep(with_replicates(_tiny_sweep("labelled"), 2))
    table = report.table()
    assert "replicate" in table.columns
    assert table.column("replicate") == [0, 1, 0, 1]


# ------------------------------------------------------------------ scenarios end-to-end


@pytest.mark.parametrize("scenario", ["region-outage", "byzantine-executors"])
def test_scenario_points_simulate(scenario):
    point = PointSpec(
        labels={"scenario": scenario},
        scenario=scenario,
        config={"num_clients": 40, "client_groups": 2},
        workload={"clients": 40},
        duration=0.4,
        warmup=0.1,
    )
    report = run_sweep(SweepSpec(name="drill", points=(point,)))
    assert report.failed == 0
    assert report.outcomes[0].result.committed_txns > 0


def test_baseline_system_points_simulate():
    points = tuple(
        PointSpec(
            labels={"system": system},
            system=system,
            config={"crypto_backend": "fast", "num_clients": 40, "client_groups": 2},
            workload={"clients": 40},
            execution_threads=2,
            duration=0.4,
            warmup=0.1,
        )
        for system in ("serverless_cft", "pbft_replicated", "noshim")
    )
    report = run_sweep(SweepSpec(name="systems", points=points))
    assert report.failed == 0
    assert all(outcome.result.committed_txns > 0 for outcome in report.outcomes)


def test_region_outage_plan_drops_executor_region_traffic():
    from repro.sweep import resolve_point

    sweep = _tiny_sweep("outage-probe")
    point = sweep.points[0]
    resolved = dict(
        resolve_point(sweep, point),
        scenario="region-outage",
        scenarios=["region-outage"],
    )
    simulation = build_simulation(resolved)
    plan = simulation.network.fault_plan
    simulation.network.register("probe-endpoint", "us-east-2", lambda *_args: None)
    assert plan.is_partitioned("probe-endpoint", "verifier")
    assert not plan.is_partitioned("node-0", "verifier")


# ------------------------------------------------------------------ CLI


def test_cli_run_and_cache_cycle(tmp_path, capsys):
    store = str(tmp_path / "cli.jsonl")
    args = ["run", "smoke", "--duration", "0.3", "--warmup", "0.05", "--store", store]
    assert sweep_cli(args) == 0
    output = capsys.readouterr().out
    assert "simulated=4 cached=0 failed=0" in output

    # Second run: everything cached, --expect-all-cached passes.
    assert sweep_cli(args + ["--expect-all-cached"]) == 0
    output = capsys.readouterr().out
    assert "simulated=0 cached=4 failed=0" in output


def test_cli_expect_all_cached_fails_on_cold_store(tmp_path, capsys):
    store = str(tmp_path / "cold.jsonl")
    code = sweep_cli(
        [
            "run",
            "smoke",
            "--duration",
            "0.3",
            "--warmup",
            "0.05",
            "--store",
            store,
            "--expect-all-cached",
            "--quiet",
        ]
    )
    assert code == 3


def test_cli_runs_sweep_file(tmp_path, capsys):
    sweep_file = tmp_path / "custom.json"
    sweep_file.write_text(
        json.dumps(
            {
                "name": "custom-file-sweep",
                "duration": 0.3,
                "warmup": 0.05,
                "config": {
                    "crypto_backend": "fast",
                    "num_clients": 40,
                    "client_groups": 2,
                },
                "workload": {"clients": 40},
                "grid": {"batch_size": [5, 10]},
            }
        )
    )
    assert sweep_cli(["run", str(sweep_file), "--quiet"]) == 0
    assert "custom-file-sweep" in capsys.readouterr().out


def test_cli_list_and_scenarios(capsys):
    assert sweep_cli(["list"]) == 0
    assert "smoke" in capsys.readouterr().out
    assert sweep_cli(["scenarios"]) == 0
    assert "region-outage" in capsys.readouterr().out


def test_cli_unknown_sweep_errors(capsys):
    assert sweep_cli(["run", "definitely-not-a-sweep"]) == 2
