"""Fault-timeline engine: DSL, watchdog, presets, and end-to-end recovery.

Covers the crash–recovery tentpole from the outside in: the timeline DSL
round-trips and rejects malformed clauses, the liveness watchdog turns a
commit stream into unavailability/TTR numbers, the chaos presets wire the
timeline through the facade, a primary crash actually recovers (commits
resume, metrics land in ``SimulationResult.extra``), and the sweep
runner's worker-death retry plumbing behaves.
"""

import concurrent.futures

import pytest

from repro.api import RunSpec, run
from repro.errors import ConfigurationError
from repro.faults.timeline import (
    CrashEvent,
    LivenessWatchdog,
    PartitionEvent,
    RecoverEvent,
    SlowEvent,
    format_timeline,
    parse_timeline,
)
from repro.sweep.runner import _should_retry
from repro.sweep.scenarios import get_scenario


# ------------------------------------------------------------------ DSL


def test_parse_timeline_all_clause_kinds():
    events = parse_timeline(
        "crash:node-0@0.5; recover:node-0@1.5;"
        "slow:node-1@0.2-0.8x3; partition:node-2,node-3|node-0@0.1-0.9"
    )
    assert [type(event) for event in events] == [
        PartitionEvent,
        SlowEvent,
        CrashEvent,
        RecoverEvent,
    ]  # sorted by activation time
    crash = next(e for e in events if isinstance(e, CrashEvent))
    assert crash.node == "node-0" and crash.at == 0.5
    slow = next(e for e in events if isinstance(e, SlowEvent))
    assert (slow.at, slow.until, slow.factor) == (0.2, 0.8, 3.0)
    partition = next(e for e in events if isinstance(e, PartitionEvent))
    assert partition.groups == (("node-2", "node-3"), ("node-0",))
    assert (partition.at, partition.heal_at) == (0.1, 0.9)


def test_format_timeline_round_trips():
    text = "crash:primary@0.3;recover:primary@1.2;slow:node-1@0.2-0.8x3"
    events = parse_timeline(text)
    assert parse_timeline(format_timeline(events)) == events


@pytest.mark.parametrize(
    "bad",
    [
        "crash:node-0",  # no @time
        "crash:@0.5",  # no target
        "crash:node-0@soon",  # unparseable time
        "crash:node-0@-1",  # negative time
        "explode:node-0@0.5",  # unknown kind
        "slow:node-0@0.5-0.1x2",  # window ends before it starts
        "slow:node-0@0.1-0.5x0",  # non-positive factor
        "partition:node-0|@0.1-0.5",  # empty group
        "partition:node-0|node-1@0.5-0.1",  # heals before it starts
    ],
)
def test_parse_timeline_rejects_malformed_clauses(bad):
    with pytest.raises(ConfigurationError):
        parse_timeline(bad)


def test_config_validation_rejects_bad_timeline():
    with pytest.raises(ConfigurationError):
        run(RunSpec(duration=0.5, overrides={"fault_timeline": "crash:node-0"}))


# ------------------------------------------------------------------ watchdog


def test_watchdog_counts_long_gaps_and_tail():
    watchdog = LivenessWatchdog(stall_threshold=0.25)
    watchdog.on_commit(0.1)
    watchdog.on_commit(0.2)  # small gap: not a stall
    watchdog.on_commit(1.0)  # 0.8s gap: stall
    watchdog.finalize(duration=2.0)  # 1.0s tail gap: stall
    assert watchdog.stall_count == 2
    assert watchdog.unavailability_seconds == pytest.approx(1.8)


def test_watchdog_time_to_recovery_is_worst_case():
    watchdog = LivenessWatchdog()
    watchdog.note_fault(1.0)
    watchdog.note_fault(1.5)
    watchdog.on_commit(1.8)  # resolves both: TTR 0.8 and 0.3
    watchdog.finalize(duration=3.0)
    assert watchdog.time_to_recovery_seconds == pytest.approx(0.8)


def test_watchdog_censors_unresolved_fault_at_run_end():
    watchdog = LivenessWatchdog()
    watchdog.on_commit(0.5)
    watchdog.note_fault(1.0)  # never followed by a commit
    watchdog.finalize(duration=3.0)
    assert watchdog.time_to_recovery_seconds == pytest.approx(2.0)


# ------------------------------------------------------------------ presets


def test_shim_crash_preset_is_timeline_alias():
    assert get_scenario("shim-crash").config_overrides == {
        "fault_timeline": "crash:last@0"
    }


def test_chaos_presets_carry_timelines():
    for name in (
        "primary-crash",
        "rolling-restart",
        "view-change-storm",
        "checkpoint-lag",
        "region-outage-heal",
    ):
        overrides = get_scenario(name).config_overrides
        parse_timeline(str(overrides["fault_timeline"]))  # must be well-formed


# ------------------------------------------------------------------ end to end


def test_primary_crash_recovers_and_records_metrics():
    result = run(
        RunSpec(
            system="serverless_bft",
            scenarios=["primary-crash"],
            duration=2.0,
            warmup=0.0,
            seed=3,
        )
    )
    # Commits resume after the crash window: the run commits far more than
    # what fits before the 0.3s crash point.
    assert result.committed_txns > 0
    assert result.view_changes >= 1
    extra = result.extra
    assert extra["fault_crashes"] == 1
    assert extra["fault_recoveries"] == 1
    assert extra["unavailability_seconds"] > 0
    assert extra["time_to_recovery_seconds"] > 0
    assert extra["checkpoints_sent"] >= 1


def test_fault_free_run_has_no_recovery_metrics():
    result = run(RunSpec(duration=0.5, warmup=0.0, seed=3))
    assert "unavailability_seconds" not in result.extra
    assert "fault_events" not in result.extra


def test_pbft_replicated_rejects_fault_timeline():
    with pytest.raises(ConfigurationError):
        run(
            RunSpec(
                system="pbft_replicated",
                duration=0.5,
                overrides={"fault_timeline": "crash:node-0@0.1"},
            )
        )


# ------------------------------------------------------------------ sweep retry


def test_should_retry_only_on_worker_death():
    broken = concurrent.futures.process.BrokenProcessPool("worker died")
    assert _should_retry(broken, retries=0)
    assert not _should_retry(broken, retries=1)  # one retry only
    assert not _should_retry(ValueError("simulation bug"), retries=0)
    assert not _should_retry(concurrent.futures.TimeoutError(), retries=0)


def test_store_records_retry_count_only_when_nonzero(tmp_path):
    from repro.sweep.store import ResultStore

    store = ResultStore(str(tmp_path / "store.jsonl"))
    clean = store.put("d1", {"labels": {}}, {"committed_txns": 1})
    retried = store.put("d2", {"labels": {}}, {"committed_txns": 1}, retries=1)
    assert "retries" not in clean
    assert retried["retries"] == 1
    reloaded = ResultStore(str(tmp_path / "store.jsonl"))
    assert reloaded.get("d2")["retries"] == 1
