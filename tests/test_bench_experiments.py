"""Tests for the benchmark harness and per-figure experiment definitions."""

import warnings

import pytest

from repro.bench import experiments
from repro.bench.defaults import PAPER, SCALE
from repro.bench.harness import (
    DuplicateSeriesKeyWarning,
    ExperimentTable,
    format_table,
    simulate_point,
)


# ------------------------------------------------------------------ harness


def test_experiment_table_series_and_filters():
    table = ExperimentTable(name="t", columns=("system", "x", "y"))
    table.add(system="A", x=1, y=10.0)
    table.add(system="A", x=2, y=20.0)
    table.add(system="B", x=1, y=5.0)
    assert len(table) == 3
    assert table.column("x") == [1, 2, 1]
    assert table.series("x", "y", system="A") == {1: 10.0, 2: 20.0}
    assert table.series("x", "y", system="B") == {1: 5.0}


def test_series_warns_on_duplicate_keys():
    table = ExperimentTable(name="dups", columns=("system", "x", "y"))
    table.add(system="A", x=1, y=10.0)
    table.add(system="B", x=1, y=5.0)
    # Without a system filter both rows collapse onto key 1: that silently
    # dropped data before — now it must warn (last row still wins)...
    with pytest.warns(DuplicateSeriesKeyWarning, match="duplicate series key 1"):
        series = table.series("x", "y")
    assert series == {1: 5.0}
    # ...or raise in strict mode.
    with pytest.raises(ValueError, match="duplicate series key"):
        table.series("x", "y", strict=True)
    # A filter that uniquely identifies rows stays silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert table.series("x", "y", system="A") == {1: 10.0}


def test_format_table_renders_all_rows():
    table = ExperimentTable(name="demo", columns=("a", "b"))
    table.add(a="x", b=1.5)
    table.add(a="longer-value", b=2.25)
    rendered = format_table(table)
    assert "demo" in rendered
    assert "longer-value" in rendered
    assert rendered.count("\n") >= 4


def test_paper_setup_constants_match_the_paper():
    assert PAPER.medium_shim == 8
    assert PAPER.large_shim == 32
    assert PAPER.default_batch_size == 100
    assert PAPER.max_regions == 11
    assert PAPER.ycsb_records == 600_000
    assert max(PAPER.replica_sweep) == 128
    assert max(PAPER.executor_sweep) == 21
    config = PAPER.protocol_config(8)
    assert config.shim_nodes == 8 and config.batch_size == 100
    workload = PAPER.workload_config()
    assert workload.num_records == 600_000


def test_simulation_scale_runs_fast_configs():
    config = SCALE.protocol_config()
    workload = SCALE.workload_config()
    assert config.shim_nodes <= 8
    assert workload.num_records <= 10_000


def test_simulate_point_returns_result():
    result = simulate_point(
        SCALE.protocol_config(num_clients=50, client_groups=4),
        workload=SCALE.workload_config(clients=50),
        duration=1.0,
        warmup=0.2,
    )
    assert result.committed_txns > 0


# ------------------------------------------------------------------ per-figure experiments


@pytest.mark.parametrize(
    "factory,key_column",
    [
        (experiments.client_congestion, "clients"),
        (experiments.executor_scaling, "executors"),
        (experiments.batching, "batch_size"),
        (experiments.expensive_execution, "execution_s"),
        (experiments.region_distribution, "regions"),
        (experiments.computing_power, "cores"),
        (experiments.conflicting_transactions, "conflict_pct"),
    ],
)
def test_figure6_style_experiments_cover_both_shim_sizes(factory, key_column):
    table = factory()
    assert key_column in table.columns
    systems = {row["system"] for row in table.rows}
    assert systems == {"SERVBFT-8", "SERVBFT-32"}
    for row in table.rows:
        assert row["throughput_txn_s"] > 0


def test_figure5_has_all_client_counts():
    table = experiments.client_congestion()
    assert len(table) == 2 * len(PAPER.client_sweep)


def test_figure7_covers_all_systems_and_replica_counts():
    table = experiments.baseline_comparison()
    systems = {row["system"] for row in table.rows}
    assert systems == {"SERVERLESSBFT", "SERVERLESSCFT", "PBFT", "NOSHIM"}
    assert len(table) == 4 * len(PAPER.replica_sweep)


def test_figure8_covers_serverless_and_thread_variants():
    table = experiments.task_offloading()
    systems = {row["system"] for row in table.rows}
    assert systems == {"SERVBFT-32", "PBFT-1-ET", "PBFT-8-ET", "PBFT-16-ET"}
    assert all(row["cents_per_ktxn"] >= 0 for row in table.rows)


def test_spawning_ablation_matches_equation_one():
    table = experiments.spawning_policy_ablation(shim_nodes=4, executor_counts=(3, 21))
    rows = {row["executors"]: row for row in table.rows}
    assert rows[3]["decentralized_spawned"] == 4     # e = 1, n_R = 4
    assert rows[21]["decentralized_spawned"] == 28   # e = ceil(21/3) = 7, n_R = 4


def test_conflict_avoidance_ablation_rows():
    table = experiments.conflict_avoidance_ablation()
    modes = {row["mode"] for row in table.rows}
    assert modes == {"optimistic", "conflict_avoidance"}
