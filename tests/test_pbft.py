"""Unit tests for the PBFT ordering engine.

The tests wire ``n`` :class:`PBFTReplica` instances together through a small
in-test transport that routes messages over the discrete-event simulator, so
the protocol runs exactly as it would inside shim nodes but without the
serverless machinery.
"""

from typing import Dict, List, Optional, Set, Tuple

import pytest

from repro.consensus.messages import PrePrepareMsg
from repro.consensus.pbft import PBFTConfig, PBFTReplica, ReplicaTransport
from repro.crypto.costs import CryptoCostModel
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import SignatureService
from repro.errors import ProtocolViolation
from repro.faults.byzantine import NodesInDarkBehaviour, UnsuccessfulConsensusBehaviour
from repro.sim.engine import Simulator


class _Host:
    """Zero-cost host adapter used by the consensus engine in unit tests."""

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim

    def process(self, cost, callback, *args):
        callback(*args)

    def process_parallel(self, cost, parallelism, callback, *args):
        callback(*args)

    def set_timer(self, delay, callback, *args):
        return self._sim.schedule(delay, callback, *args)

    @property
    def now(self):
        return self._sim.now


class _Transport(ReplicaTransport):
    def __init__(self, cluster: "Cluster", owner: str) -> None:
        self._cluster = cluster
        self._owner = owner

    def send(self, dst: str, message, size_bytes: int) -> None:
        self._cluster.route(self._owner, dst, message)

    def broadcast(self, message, size_bytes: int, targets=None) -> None:
        recipients = targets if targets is not None else [
            name for name in self._cluster.names if name != self._owner
        ]
        for dst in recipients:
            self._cluster.route(self._owner, dst, message)


class Cluster:
    """A shim of PBFT replicas connected by an in-memory network."""

    def __init__(
        self,
        n: int = 4,
        request_timeout: float = 1.0,
        behaviours=None,
        checkpoint_interval: int = 1000,
    ) -> None:
        self.sim = Simulator()
        self.keystore = KeyStore()
        self.names = [f"node-{index}" for index in range(n)]
        self.committed: Dict[str, List] = {name: [] for name in self.names}
        self.blocked_links: Set[Tuple[str, str]] = set()
        behaviours = behaviours or {}
        self.replicas: Dict[str, PBFTReplica] = {}
        for name in self.names:
            self.replicas[name] = PBFTReplica(
                replica_id=name,
                replicas=self.names,
                config=PBFTConfig(
                    request_timeout=request_timeout,
                    checkpoint_interval=checkpoint_interval,
                ),
                transport=_Transport(self, name),
                signer=SignatureService(self.keystore, name),
                cost_model=CryptoCostModel(),
                host=_Host(self.sim),
                on_committed=lambda entry, name=name: self.committed[name].append(entry),
                behaviour=behaviours.get(name),
            )

    def route(self, src: str, dst: str, message) -> None:
        if (src, dst) in self.blocked_links:
            return
        self.sim.schedule(0.001, self.replicas[dst].handle, message, src)

    def block(self, src: str, dst: str) -> None:
        self.blocked_links.add((src, dst))

    def primary(self) -> PBFTReplica:
        return self.replicas[self.names[0]]

    def run(self, until: float = 0.5) -> None:
        self.sim.run(until=until)


def test_single_batch_commits_on_all_replicas():
    cluster = Cluster()
    cluster.primary().propose("batch-1")
    cluster.run()
    for name in cluster.names:
        assert len(cluster.committed[name]) == 1
        entry = cluster.committed[name][0]
        assert entry.seq == 1
        assert entry.batch == "batch-1"


def test_commit_certificate_has_quorum_of_valid_signatures():
    cluster = Cluster()
    cluster.primary().propose("batch-1")
    cluster.run()
    entry = cluster.committed["node-1"][0]
    assert len(entry.certificate) >= cluster.primary().quorum_size
    signers = {signature.signer for signature in entry.certificate}
    assert len(signers) >= cluster.primary().quorum_size


def test_multiple_batches_commit_in_the_same_order_everywhere():
    cluster = Cluster()
    for index in range(5):
        cluster.primary().propose(f"batch-{index}")
    cluster.run()
    reference = [(entry.seq, entry.digest) for entry in cluster.committed["node-0"]]
    assert len(reference) == 5
    for name in cluster.names:
        assert [(entry.seq, entry.digest) for entry in cluster.committed[name]] == reference


def test_non_primary_cannot_propose():
    cluster = Cluster()
    with pytest.raises(ProtocolViolation):
        cluster.replicas["node-1"].propose("rogue-batch")


def test_progress_with_one_silent_replica():
    cluster = Cluster()
    # node-3 never receives anything (crashed): 3 of 4 replicas remain.
    for name in cluster.names:
        cluster.block(name, "node-3")
        cluster.block("node-3", name)
    cluster.primary().propose("batch-1")
    cluster.run()
    for name in ("node-0", "node-1", "node-2"):
        assert len(cluster.committed[name]) == 1
    assert cluster.committed["node-3"] == []


def test_preprepare_with_wrong_digest_is_ignored():
    cluster = Cluster()
    replica = cluster.replicas["node-1"]
    bogus = PrePrepareMsg(view=0, seq=1, digest="not-the-digest", batch="batch")
    replica.on_preprepare(bogus, "node-0")
    cluster.run()
    assert cluster.committed["node-1"] == []


def test_preprepare_from_non_primary_is_ignored():
    cluster = Cluster()
    from repro.crypto.hashing import digest as H

    replica = cluster.replicas["node-1"]
    rogue = PrePrepareMsg(view=0, seq=1, digest=H("batch"), batch="batch")
    replica.on_preprepare(rogue, "node-2")
    cluster.run()
    assert cluster.committed["node-1"] == []


def test_view_change_replaces_unresponsive_primary():
    cluster = Cluster(request_timeout=0.2)
    # The primary goes silent after sending a PREPREPARE to only two replicas:
    # they can never gather 2f+1 PREPAREs, time out, and request a view change;
    # the remaining replica joins after seeing f+1 view-change requests.
    for name in cluster.names[1:]:
        cluster.block("node-0", name)
    from repro.crypto.hashing import digest as H

    preprepare = PrePrepareMsg(view=0, seq=1, digest=H("lost-batch"), batch="lost-batch")
    for name in ("node-1", "node-2"):
        cluster.replicas[name].on_preprepare(preprepare, "node-0")
    cluster.run(until=3.0)
    for name in cluster.names[1:]:
        assert cluster.replicas[name].view >= 1
        assert cluster.replicas[name].primary != "node-0"


def test_view_change_requires_quorum():
    cluster = Cluster(request_timeout=10.0)
    cluster.replicas["node-1"].request_view_change(reason="unilateral")
    cluster.run(until=2.0)
    # A single node cannot force a view change.
    assert all(replica.view == 0 for replica in cluster.replicas.values())


def test_unsuccessful_consensus_behaviour_stalls_but_triggers_timeouts():
    behaviours = {"node-0": UnsuccessfulConsensusBehaviour(max_targets=1)}
    cluster = Cluster(request_timeout=0.2, behaviours=behaviours)
    cluster.primary().propose("starved-batch")
    cluster.run(until=3.0)
    # Only one other node saw the proposal, so it cannot gather 2f+1 prepares;
    # eventually the nodes that saw it time out and the view moves on.
    committed_counts = [len(entries) for entries in cluster.committed.values()]
    assert max(committed_counts) == 0 or cluster.replicas["node-1"].view >= 1


def test_equivocation_is_not_committed_twice_at_same_sequence():
    cluster = Cluster()
    from repro.crypto.hashing import digest as H

    # A byzantine primary sends batch-A to nodes 1,2 and batch-B to node 3.
    msg_a = PrePrepareMsg(view=0, seq=1, digest=H("batch-A"), batch="batch-A")
    msg_b = PrePrepareMsg(view=0, seq=1, digest=H("batch-B"), batch="batch-B")
    cluster.replicas["node-1"].on_preprepare(msg_a, "node-0")
    cluster.replicas["node-2"].on_preprepare(msg_a, "node-0")
    cluster.replicas["node-3"].on_preprepare(msg_b, "node-0")
    cluster.run(until=2.0)
    digests_at_seq1 = set()
    for name in cluster.names:
        for entry in cluster.committed[name]:
            if entry.seq == 1:
                digests_at_seq1.add(entry.digest)
    # Shim non-divergence: at most one digest can ever commit at sequence 1.
    assert len(digests_at_seq1) <= 1


def test_featherweight_checkpoint_brings_dark_node_up_to_date():
    behaviours = {"node-0": NodesInDarkBehaviour(dark_nodes={"node-3"})}
    cluster = Cluster(request_timeout=50.0, behaviours=behaviours)
    # node-3 is fully in the dark: it misses the PREPREPAREs (byzantine primary
    # excludes it) and, while the attack lasts, all other consensus traffic.
    for name in ("node-0", "node-1", "node-2"):
        cluster.block(name, "node-3")
    for index in range(3):
        cluster.primary().propose(f"batch-{index}")
    cluster.run(until=1.0)
    assert len(cluster.committed["node-3"]) == 0
    assert len(cluster.committed["node-1"]) == 3
    # Connectivity returns; an honest node sends its featherweight checkpoint
    # (certificates only, no client requests) and the dark node adopts the
    # decisions after verifying the 2f+1 commit signatures in each certificate.
    cluster.blocked_links.clear()
    cluster.replicas["node-1"].send_checkpoint()
    cluster.run(until=2.0)
    assert len(cluster.committed["node-3"]) == 3
    assert sorted(entry.seq for entry in cluster.committed["node-3"]) == [1, 2, 3]


def test_primary_rotation_is_round_robin():
    cluster = Cluster()
    replica = cluster.primary()
    assert replica.primary_of(0) == "node-0"
    assert replica.primary_of(1) == "node-1"
    assert replica.primary_of(5) == "node-1"
