"""Unit tests for the regions, serverless cloud, and billing substrates."""

import pytest

from repro.cloud.billing import BillingReport, CostModel, LambdaPricing, VmPricing
from repro.cloud.lambda_cloud import ServerlessCloud, SpawnRequest
from repro.cloud.regions import DEFAULT_REGIONS, GeoLatencyModel, RegionCatalog, great_circle_km
from repro.errors import CloudError, ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRNG


# ------------------------------------------------------------------ regions


def test_default_catalog_has_the_papers_11_regions():
    catalog = RegionCatalog()
    assert len(catalog) == 11
    assert catalog.names[0] == "us-west-1"       # North California first
    assert "ap-southeast-1" in catalog.names     # Singapore last group


def test_first_regions_follow_paper_order():
    catalog = RegionCatalog()
    assert catalog.first(3) == ["us-west-1", "us-west-2", "us-east-2"]
    with pytest.raises(ConfigurationError):
        catalog.first(100)


def test_latency_grows_with_distance():
    catalog = RegionCatalog()
    near = catalog.one_way_latency("us-west-1", "us-west-2")
    far = catalog.one_way_latency("us-west-1", "ap-southeast-1")
    same = catalog.one_way_latency("us-west-1", "us-west-1")
    assert same < near < far
    assert far > 0.05  # Singapore is more than 50 ms away one-way


def test_nearest_ordering_from_home_region():
    catalog = RegionCatalog()
    ordered = catalog.nearest("us-west-1", ["ap-southeast-1", "us-west-2", "eu-west-2"])
    assert ordered[0] == "us-west-2"
    assert ordered[-1] == "ap-southeast-1"


def test_unknown_region_rejected():
    catalog = RegionCatalog()
    with pytest.raises(ConfigurationError):
        catalog.get("mars-north-1")


def test_great_circle_distance_sanity():
    california = DEFAULT_REGIONS[0]
    singapore = DEFAULT_REGIONS[-1]
    assert 12_000 < great_circle_km(california, singapore) < 15_000
    assert great_circle_km(california, california) == pytest.approx(0.0)


def test_geo_latency_model_includes_bandwidth():
    catalog = RegionCatalog()
    model = GeoLatencyModel(catalog, bandwidth_bytes_per_sec=1e6, jitter_fraction=0.0)
    rng = DeterministicRNG(1)
    small = model.one_way_delay("us-west-1", "us-west-2", 0, rng)
    large = model.one_way_delay("us-west-1", "us-west-2", 1_000_000, rng)
    assert large == pytest.approx(small + 1.0)


# ------------------------------------------------------------------ billing


def test_lambda_invocation_cost_components():
    pricing = LambdaPricing()
    base = pricing.invocation_cost(0.0)
    assert base == pytest.approx(pricing.price_per_request + 0.001 * pricing.price_per_gb_second)
    one_second = pricing.invocation_cost(1.0)
    assert one_second > base


def test_vm_cost_scales_with_cores_and_time():
    pricing = VmPricing()
    small = pricing.vm_cost(cores=8, memory_gb=8, duration_seconds=3600)
    large = pricing.vm_cost(cores=16, memory_gb=16, duration_seconds=3600)
    assert large == pytest.approx(2 * small)
    assert pricing.vm_cost(8, 8, 0) == 0.0


def test_cost_model_accumulates_and_reports_cents_per_ktxn():
    model = CostModel()
    model.charge_invocation("node-0", duration_seconds=0.5)
    model.charge_invocation("node-1", duration_seconds=0.5)
    model.charge_vm_fleet(machines=4, cores=16, memory_gb=16, duration_seconds=3600)
    report = model.report
    assert report.lambda_invocations == 2
    assert report.vm_cost > 0
    assert report.total_cost == pytest.approx(report.lambda_cost + report.vm_cost)
    assert set(report.per_spawner_cost) == {"node-0", "node-1"}
    assert report.cents_per_kilo_txn(10_000) > 0
    assert report.cents_per_kilo_txn(0) == 0.0
    model.reset()
    assert model.report.lambda_invocations == 0


# ------------------------------------------------------------------ serverless cloud


class _FactorySpy:
    def __init__(self):
        self.started = []

    def __call__(self, executor_id, region, spawner, payload):
        self.started.append((executor_id, region, spawner, payload))


def build_cloud(**kwargs):
    sim = Simulator()
    factory = _FactorySpy()
    cloud = ServerlessCloud(
        sim=sim,
        catalog=RegionCatalog(),
        cost_model=CostModel(),
        rng=DeterministicRNG(1),
        executor_factory=factory,
        **kwargs,
    )
    return sim, cloud, factory


def test_spawn_starts_executor_after_cold_start():
    sim, cloud, factory = build_cloud(cold_start_latency=0.2, warm_start_latency=0.01)
    handle = cloud.spawn(SpawnRequest(spawner="node-0", region="us-west-1", payload="job"))
    assert factory.started == []
    sim.run_until_idle()
    assert len(factory.started) == 1
    assert handle.start_time >= 0.2
    assert cloud.spawn_count == 1


def test_warm_start_is_faster_after_finish():
    sim, cloud, factory = build_cloud(cold_start_latency=0.2, warm_start_latency=0.01)
    first = cloud.spawn(SpawnRequest("node-0", "us-west-1", "job"))
    sim.run_until_idle()
    cloud.finish(first.executor_id)
    second = cloud.spawn(SpawnRequest("node-0", "us-west-1", "job"))
    sim.run_until_idle()
    assert second.start_time - second.spawn_time == pytest.approx(0.01, abs=1e-6)


def test_finish_bills_the_spawner_and_frees_the_slot():
    sim, cloud, factory = build_cloud()
    handle = cloud.spawn(SpawnRequest("node-3", "us-west-1", "job"))
    sim.run_until_idle()
    assert cloud.running_executors("us-west-1") == 1
    finished = cloud.finish(handle.executor_id)
    assert finished.cost > 0
    assert cloud.running_executors("us-west-1") == 0
    assert cloud.cost_model.report.per_spawner_cost["node-3"] > 0
    # Finishing twice is idempotent.
    assert cloud.finish(handle.executor_id).cost == finished.cost


def test_concurrency_limit_queues_spawns():
    sim, cloud, factory = build_cloud(concurrency_limit_per_region=1)
    first = cloud.spawn(SpawnRequest("node-0", "us-west-1", "one"))
    cloud.spawn(SpawnRequest("node-0", "us-west-1", "two"))
    sim.run_until_idle()
    assert len(factory.started) == 1  # the second waits for a slot
    cloud.finish(first.executor_id)
    sim.run_until_idle()
    assert len(factory.started) == 2


def test_executors_cannot_spawn_executors():
    sim, cloud, factory = build_cloud()
    handle = cloud.spawn(SpawnRequest("node-0", "us-west-1", "job"))
    sim.run_until_idle()
    with pytest.raises(CloudError):
        cloud.spawn(SpawnRequest(handle.executor_id, "us-west-1", "nested"))
    assert cloud.rejected_spawns == 1


def test_unknown_region_and_missing_factory_rejected():
    sim, cloud, factory = build_cloud()
    with pytest.raises(CloudError):
        cloud.spawn(SpawnRequest("node-0", "moon-base-1", "job"))
    cloud.set_executor_factory(None)
    with pytest.raises(CloudError):
        cloud.spawn(SpawnRequest("node-0", "us-west-1", "job"))
    with pytest.raises(CloudError):
        cloud.finish("executor-unknown")


def test_spawn_many_places_one_executor_per_region():
    sim, cloud, factory = build_cloud()
    handles = cloud.spawn_many("node-0", ["us-west-1", "us-west-2", "us-east-2"], "job")
    sim.run_until_idle()
    assert len(handles) == 3
    assert sorted(h.region for h in handles) == ["us-east-2", "us-west-1", "us-west-2"]
    assert len(factory.started) == 3
