"""Unit tests for the on-premise storage substrate."""

import pytest

from repro.errors import StorageError
from repro.sim.engine import Simulator
from repro.sim.network import Network, UniformLatencyModel
from repro.sim.rng import DeterministicRNG
from repro.storage.kvstore import VersionedKVStore, VersionedValue
from repro.storage.service import StorageReadReply, StorageReadRequest, StorageService


def test_load_and_read():
    store = VersionedKVStore()
    store.load(100, value="init")
    assert len(store) == 100
    entry = store.read("user42")
    assert entry == VersionedValue("init", 1)
    assert store.contains("user42")
    assert not store.contains("user100")


def test_missing_key_reads_as_version_zero():
    store = VersionedKVStore()
    assert store.read("ghost") == VersionedValue("", 0)
    assert store.get_value("ghost") is None


def test_apply_writes_bumps_versions():
    store = VersionedKVStore()
    versions = store.apply_writes({"a": "1", "b": "2"})
    assert versions == {"a": 1, "b": 1}
    versions = store.apply_writes({"a": "3"})
    assert versions == {"a": 2}
    assert store.read("a") == VersionedValue("3", 2)
    assert store.write_count == 3


def test_read_many_and_version_matching():
    store = VersionedKVStore()
    store.apply_writes({"x": "1", "y": "2"})
    snapshot = store.read_many(["x", "y", "z"])
    assert snapshot.versions() == {"x": 1, "y": 1, "z": 0}
    assert snapshot.matches_versions(store.current_versions(["x", "y", "z"]))
    store.apply_writes({"x": "changed"})
    assert not snapshot.matches_versions(store.current_versions(["x", "y", "z"]))


def test_negative_load_rejected():
    with pytest.raises(StorageError):
        VersionedKVStore().load(-1)


def test_read_counts_tracked():
    store = VersionedKVStore()
    store.read("a")
    store.read_many(["b", "c"])
    assert store.read_count == 3


def test_storage_service_answers_read_requests_over_network():
    sim = Simulator()
    network = Network(sim, UniformLatencyModel(base_delay=0.001, jitter=0.0), DeterministicRNG(1))
    store = VersionedKVStore()
    store.apply_writes({"k1": "v1", "k2": "v2"})
    service = StorageService(sim, network, store, name="storage", region="us-west-1")

    replies = []
    network.register("executor-0", "us-west-1", lambda msg, sender: replies.append((msg, sender)))
    request = StorageReadRequest(request_id="r1", keys=("k1", "k2", "missing"))
    network.send("executor-0", "storage", request, size_bytes=64)
    sim.run_until_idle()

    assert len(replies) == 1
    reply, sender = replies[0]
    assert sender == "storage"
    assert isinstance(reply, StorageReadReply)
    assert reply.request_id == "r1"
    assert reply.result.versions() == {"k1": 1, "k2": 1, "missing": 0}
    assert service.requests_served == 1


def test_storage_service_ignores_unrelated_messages():
    sim = Simulator()
    network = Network(sim, UniformLatencyModel(), DeterministicRNG(1))
    service = StorageService(sim, network, VersionedKVStore())
    service.on_message("not-a-read-request", "someone")
    sim.run_until_idle()
    assert service.requests_served == 0
