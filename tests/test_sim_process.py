"""Unit tests for CPU resources and simulated processes."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import CpuResource, SimProcess


def test_single_core_serialises_jobs():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1)
    done = []
    cpu.submit(1.0, lambda: done.append(("a", sim.now)))
    cpu.submit(1.0, lambda: done.append(("b", sim.now)))
    sim.run_until_idle()
    assert done == [("a", 1.0), ("b", 2.0)]


def test_multi_core_runs_jobs_in_parallel():
    sim = Simulator()
    cpu = CpuResource(sim, cores=2)
    done = []
    cpu.submit(1.0, lambda: done.append(sim.now))
    cpu.submit(1.0, lambda: done.append(sim.now))
    cpu.submit(1.0, lambda: done.append(sim.now))
    sim.run_until_idle()
    assert done == [1.0, 1.0, 2.0]


def test_fifo_ordering_of_queued_jobs():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1)
    done = []
    for label, duration in (("first", 0.5), ("second", 0.1), ("third", 0.2)):
        cpu.submit(duration, lambda label=label: done.append(label))
    sim.run_until_idle()
    assert done == ["first", "second", "third"]


def test_zero_cost_job_completes_immediately():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1)
    done = []
    cpu.submit(0.0, lambda: done.append("now"))
    assert done == ["now"]
    assert cpu.jobs_done == 0  # zero-cost jobs do not occupy the core


def test_busy_time_and_utilisation():
    sim = Simulator()
    cpu = CpuResource(sim, cores=2)
    cpu.submit(1.0, lambda: None)
    cpu.submit(3.0, lambda: None)
    sim.run_until_idle()
    assert cpu.busy_time == pytest.approx(4.0)
    assert cpu.utilisation(elapsed=4.0) == pytest.approx(0.5)
    assert cpu.utilisation(elapsed=0.0) == 0.0
    assert cpu.jobs_done == 2


def test_negative_service_time_rejected():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1)
    with pytest.raises(SimulationError):
        cpu.submit(-1.0, lambda: None)


def test_cpu_requires_at_least_one_core():
    with pytest.raises(SimulationError):
        CpuResource(Simulator(), cores=0)


class _Recorder(SimProcess):
    def __init__(self, sim, cores=None):
        super().__init__(sim, "recorder", "us-west-1", cores=cores)
        self.messages = []

    def on_message(self, message, sender):
        self.messages.append((message, sender))


def test_process_without_cpu_runs_immediately():
    sim = Simulator()
    proc = _Recorder(sim, cores=None)
    done = []
    proc.process(5.0, lambda: done.append(sim.now))
    assert done == [0.0]


def test_process_with_cpu_consumes_time():
    sim = Simulator()
    proc = _Recorder(sim, cores=1)
    done = []
    proc.process(0.5, lambda: done.append(sim.now))
    sim.run_until_idle()
    assert done == [0.5]


def test_process_parallel_divides_by_usable_cores():
    sim = Simulator()
    proc = _Recorder(sim, cores=4)
    done = []
    proc.process_parallel(4.0, parallelism=8, on_done=lambda: done.append(sim.now))
    sim.run_until_idle()
    assert done == [pytest.approx(1.0)]


def test_process_parallel_limited_by_parallelism():
    sim = Simulator()
    proc = _Recorder(sim, cores=8)
    done = []
    proc.process_parallel(4.0, parallelism=2, on_done=lambda: done.append(sim.now))
    sim.run_until_idle()
    assert done == [pytest.approx(2.0)]


def test_set_timer_is_cancellable():
    sim = Simulator()
    proc = _Recorder(sim)
    hits = []
    timer = proc.set_timer(1.0, hits.append, "late")
    timer.cancel()
    sim.run_until_idle()
    assert hits == []


def test_speed_factor_stretches_service_time():
    sim = Simulator()
    cpu = CpuResource(sim, cores=1)
    done = []
    cpu.set_speed_factor(3.0)
    assert cpu.speed_factor == 3.0
    cpu.submit(0.1, lambda: done.append(sim.now))
    sim.run_until_idle()
    assert done == [pytest.approx(0.3)]
    # Restoring full speed affects only jobs submitted afterwards.
    cpu.set_speed_factor(1.0)
    cpu.submit(0.1, lambda: done.append(sim.now))
    sim.run_until_idle()
    assert done[-1] == pytest.approx(0.4)


def test_speed_factor_must_be_positive():
    cpu = CpuResource(Simulator(), cores=1)
    with pytest.raises(SimulationError):
        cpu.set_speed_factor(0.0)
