"""Integration tests for the full serverless-edge deployment (happy path)."""

import pytest

from tests.helpers import make_config, make_workload, run_simulation
from repro.core.config import SpawnPolicyName
from repro.errors import ConfigurationError
from repro.core.runner import ServerlessBFTSimulation


def test_transactions_flow_end_to_end():
    simulation, result = run_simulation()
    assert result.committed_txns > 0
    assert result.throughput_txn_per_sec > 0
    assert result.completed_requests > 0
    assert result.latency.mean > 0
    assert result.view_changes == 0
    assert result.messages_dropped == 0


def test_every_validated_sequence_is_contiguous_and_spawned():
    simulation, result = run_simulation()
    validated = simulation.verifier.validated_sequence_numbers
    assert validated == set(range(1, len(validated) + 1))
    # The primary spawned n_E executors per committed batch (primary spawning).
    spawned = result.spawned_executors
    assert spawned >= len(validated) * simulation.config.num_executors


def test_storage_receives_only_committed_writes():
    simulation, result = run_simulation()
    # Every write in the store has version >= 1 and the number of distinct
    # written keys is bounded by committed transactions times writes per txn.
    store = simulation.store
    writes_per_txn = simulation.workload_config.operations_per_transaction
    assert store.write_count <= (result.committed_txns + result.aborted_txns) * writes_per_txn
    assert store.write_count > 0


def test_client_latency_includes_wide_area_round_trips():
    _simulation, result = run_simulation()
    # Executors sit in remote regions: latency cannot be microseconds, and the
    # paper's minimum of ~30 ms is a sensible lower bound here too.
    assert result.latency.mean >= 0.020
    assert result.latency.p99 < 5.0


def test_same_seed_is_deterministic():
    _sim_a, result_a = run_simulation(tracer_enabled=False)
    _sim_b, result_b = run_simulation(tracer_enabled=False)
    assert result_a.committed_txns == result_b.committed_txns
    assert result_a.messages_sent == result_b.messages_sent
    assert result_a.latency.mean == pytest.approx(result_b.latency.mean)


def test_different_seed_changes_schedule_but_not_safety():
    config = make_config(seed=999)
    _simulation, result = run_simulation(config=config)
    assert result.committed_txns > 0
    assert result.aborted_txns <= result.committed_txns


def test_decentralized_spawning_spawns_from_every_node():
    config = make_config(spawn_policy=SpawnPolicyName.DECENTRALIZED)
    simulation, result = run_simulation(config=config)
    assert result.committed_txns > 0
    spawners = {node.name for node in simulation.nodes if node.spawned_executors > 0}
    assert len(spawners) == config.shim_nodes
    # Decentralized spawning costs roughly n_R times more executor invocations.
    assert result.cloud_invocations >= result.committed_txns / config.batch_size


def test_billing_report_accounts_lambda_and_vms():
    _simulation, result = run_simulation()
    assert result.billing.lambda_invocations > 0
    assert result.billing.lambda_cost > 0
    assert result.billing.vm_cost > 0
    assert result.cents_per_kilo_txn > 0


def test_verifier_flooding_counter_stays_low_without_attack():
    _simulation, result = run_simulation()
    # Honest executors send exactly one VERIFY each; only the post-quorum ones
    # are ignored.
    assert result.verifier_ignored_verify <= result.cloud_invocations


def test_threshold_certificates_mode_still_commits():
    config = make_config(use_threshold_certificates=True)
    _simulation, result = run_simulation(config=config)
    assert result.committed_txns > 0


def test_invalid_run_parameters_rejected():
    simulation = ServerlessBFTSimulation(make_config(), workload=make_workload())
    with pytest.raises(ConfigurationError):
        simulation.run(duration=0.0)
    with pytest.raises(ConfigurationError):
        simulation.run(duration=1.0, warmup=1.0)
    with pytest.raises(ConfigurationError):
        ServerlessBFTSimulation(make_config(), consensus_engine="raft")


def test_preloaded_storage_round_trip():
    config = make_config(storage_records=500)
    simulation, result = run_simulation(config=config, preload_storage=True)
    assert len(simulation.store) >= 500
    assert result.committed_txns > 0


def test_tracer_captures_protocol_milestones():
    simulation, _result = run_simulation()
    tracer = simulation.tracer
    assert tracer.count("pbft.committed") > 0
    assert tracer.count("node.executors_spawned") > 0
    assert tracer.count("verifier.validated") > 0
    assert tracer.count("executor.verify_sent") > 0
