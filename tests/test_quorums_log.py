"""Unit tests for quorum tracking and the consensus log."""

from repro.consensus.log import CommittedEntry, ConsensusLog
from repro.consensus.quorums import QuorumTracker


def test_quorum_reached_exactly_once():
    tracker = QuorumTracker(threshold=3)
    key = (0, 1, "digest")
    assert tracker.add(key, "a") is False
    assert tracker.add(key, "b") is False
    assert tracker.add(key, "c") is True
    assert tracker.add(key, "d") is False  # already reached
    assert tracker.reached(key)
    assert tracker.count(key) == 4


def test_duplicate_voters_do_not_count():
    tracker = QuorumTracker(threshold=2)
    key = "slot-1"
    assert tracker.add(key, "a") is False
    assert tracker.add(key, "a") is False
    assert tracker.count(key) == 1
    assert not tracker.reached(key)
    assert tracker.add(key, "b") is True


def test_payloads_and_voters_preserved():
    tracker = QuorumTracker(threshold=2)
    tracker.add("k", "a", payload="sig-a")
    tracker.add("k", "b", payload="sig-b")
    assert set(tracker.voters("k")) == {"a", "b"}
    assert set(tracker.payloads("k")) == {"sig-a", "sig-b"}


def test_independent_keys_tracked_separately():
    tracker = QuorumTracker(threshold=2)
    tracker.add(("v", 1), "a")
    tracker.add(("v", 2), "a")
    assert tracker.count(("v", 1)) == 1
    assert tracker.count(("v", 2)) == 1
    assert set(tracker.keys()) == {("v", 1), ("v", 2)}


def test_clear_resets_key():
    tracker = QuorumTracker(threshold=1)
    tracker.add("k", "a")
    assert tracker.reached("k")
    tracker.clear("k")
    assert not tracker.reached("k")
    assert tracker.count("k") == 0


def test_best_key_with_prefix():
    tracker = QuorumTracker(threshold=10)
    tracker.add(("v1", "x"), "a")
    tracker.add(("v1", "x"), "b")
    tracker.add(("v2", "y"), "c")
    best = tracker.best_key_with_prefix(lambda key: key[0] == "v1")
    assert best == (("v1", "x"), 2)
    assert tracker.best_key_with_prefix(lambda key: key[0] == "v3") is None


# ------------------------------------------------------------------ consensus log


def entry(seq, digest="d"):
    return CommittedEntry(seq=seq, view=0, digest=digest, batch=f"batch-{seq}", certificate=())


def test_log_slots_and_commits():
    log = ConsensusLog()
    slot = log.slot(3)
    slot.prepared = True
    assert log.has_slot(3)
    assert not log.is_committed(3)
    log.record_commit(entry(3))
    assert log.is_committed(3)
    assert log.committed_count() == 1
    assert log.max_committed_seq() == 3


def test_committed_entries_sorted_and_since():
    log = ConsensusLog()
    for seq in (5, 2, 7):
        log.record_commit(entry(seq))
    assert [e.seq for e in log.committed_entries()] == [2, 5, 7]
    assert [e.seq for e in log.committed_since(2)] == [5, 7]


def test_prepared_uncommitted_listing():
    log = ConsensusLog()
    log.slot(1).prepared = True
    log.slot(2).prepared = True
    log.record_commit(entry(2))
    pending = log.prepared_uncommitted()
    assert [slot.seq for slot in pending] == [1]


def test_checkpoint_advancement_and_missing():
    log = ConsensusLog()
    for seq in (1, 2, 4):
        log.record_commit(entry(seq))
    assert log.missing_below(4) == [3]
    log.advance_checkpoint(2)
    assert log.last_checkpoint_seq == 2
    log.advance_checkpoint(1)
    assert log.last_checkpoint_seq == 2  # never goes backwards


def test_slot_certificate_collects_distinct_signatures():
    log = ConsensusLog()
    slot = log.slot(1)
    slot.commit_signatures["node-0"] = "sig-0"
    slot.commit_signatures["node-1"] = "sig-1"
    slot.commit_signatures["node-0"] = "sig-0-bis"
    assert len(slot.certificate) == 2
