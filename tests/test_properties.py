"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consensus.quorums import QuorumTracker
from repro.core.conflict import ConflictPlanner
from repro.core.spawning import executors_per_node
from repro.crypto.hashing import digest
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import SignatureService
from repro.sim.rng import DeterministicRNG, spread_evenly
from repro.sim.stats import LatencyRecorder
from repro.storage.kvstore import VersionedKVStore
from repro.workload.transactions import (
    Operation,
    Transaction,
    TransactionBatch,
    execute_batch,
    transactions_conflict,
)
from repro.workload.ycsb import YCSBConfig, YCSBWorkload


# ------------------------------------------------------------------ quorums


@given(
    voters=st.lists(st.sampled_from([f"node-{i}" for i in range(8)]), min_size=0, max_size=30),
    threshold=st.integers(min_value=1, max_value=6),
)
def test_quorum_reached_iff_enough_distinct_voters(voters, threshold):
    tracker = QuorumTracker(threshold)
    fired = sum(1 for voter in voters if tracker.add("key", voter))
    distinct = len(set(voters))
    assert tracker.count("key") == distinct
    assert tracker.reached("key") == (distinct >= threshold)
    assert fired == (1 if distinct >= threshold else 0)


# ------------------------------------------------------------------ spawning equations


@given(
    num_executors=st.integers(min_value=1, max_value=200),
    shim_faults=st.integers(min_value=0, max_value=20),
    dark=st.booleans(),
)
def test_spawning_covers_required_executors(num_executors, shim_faults, dark):
    shim_nodes = 3 * shim_faults + 1
    per_node = executors_per_node(num_executors, shim_nodes, shim_faults, nodes_in_dark=dark)
    assert per_node >= 1
    honest_spawners = (shim_faults + 1) if dark else (2 * shim_faults + 1)
    if num_executors <= shim_nodes:
        # Equation (1)/(2), first case: one executor per node is enough because
        # at least f_E + 1 of the n_R >= n_E spawners are honest.
        assert per_node == 1
    else:
        # Even if only the guaranteed-honest spawners spawn, we reach n_E.
        assert per_node * honest_spawners >= num_executors


# ------------------------------------------------------------------ RNG


@given(seed=st.integers(min_value=0, max_value=2**32), population=st.integers(min_value=1, max_value=10_000))
def test_zipf_draws_stay_in_population(seed, population):
    rng = DeterministicRNG(seed)
    for theta in (0.0, 0.5, 0.99):
        value = rng.zipf_index(population, theta)
        assert 0 <= value <= population


@given(items=st.lists(st.integers(), max_size=200), buckets=st.integers(min_value=1, max_value=17))
def test_spread_evenly_conserves_items(items, buckets):
    spread = spread_evenly(items, buckets)
    assert len(spread) == buckets
    flattened = [item for bucket in spread for item in bucket]
    assert sorted(flattened) == sorted(items)
    sizes = [len(bucket) for bucket in spread]
    assert max(sizes) - min(sizes) <= 1


# ------------------------------------------------------------------ statistics


@given(samples=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=200))
def test_latency_percentiles_are_ordered_and_bounded(samples):
    recorder = LatencyRecorder()
    for sample in samples:
        recorder.record_value(sample)
    summary = recorder.summary()
    assert summary.minimum <= summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum
    # The mean is computed by summation, so allow for floating-point rounding.
    tolerance = 1e-9 * max(1.0, abs(summary.maximum))
    assert summary.minimum - tolerance <= summary.mean <= summary.maximum + tolerance
    assert summary.count == len(samples)


# ------------------------------------------------------------------ crypto


@given(payload=st.text(max_size=200))
def test_signature_roundtrip_for_arbitrary_payloads(payload):
    keystore = KeyStore()
    signer = SignatureService(keystore, "node-0")
    signature = signer.sign(payload)
    assert signer.verify(payload, signature)
    assert digest(payload) == signature.message_digest


@given(first=st.text(max_size=100), second=st.text(max_size=100))
def test_digest_equality_iff_payload_equality(first, second):
    if first == second:
        assert digest(first) == digest(second)
    else:
        assert digest(first) != digest(second)


# ------------------------------------------------------------------ storage


@given(
    writes=st.dictionaries(
        keys=st.text(min_size=1, max_size=8), values=st.text(max_size=8), max_size=20
    ),
    rounds=st.integers(min_value=1, max_value=5),
)
def test_kvstore_versions_grow_monotonically(writes, rounds):
    store = VersionedKVStore()
    for round_index in range(1, rounds + 1):
        versions = store.apply_writes(writes)
        for key in writes:
            assert versions[key] == round_index
            assert store.read(key).version == round_index
    snapshot = store.read_many(writes.keys())
    assert snapshot.matches_versions(store.current_versions(writes.keys()))


# ------------------------------------------------------------------ workload / execution


_key = st.text(alphabet="abcdef", min_size=1, max_size=3)


def _txn_strategy(txn_id):
    return st.builds(
        lambda reads, writes: Transaction(
            txn_id=txn_id,
            client_id="c",
            operations=tuple(
                [Operation(key=key, is_write=False) for key in reads]
                + [Operation(key=key, is_write=True, value="v") for key in writes]
            ),
        ),
        reads=st.lists(_key, max_size=3),
        writes=st.lists(_key, max_size=3),
    )


@given(first=_txn_strategy("t1"), second=_txn_strategy("t2"))
def test_conflict_relation_is_symmetric(first, second):
    assert transactions_conflict(first, second) == transactions_conflict(second, first)
    if not first.write_set and not second.write_set:
        assert not transactions_conflict(first, second)


@given(
    txns=st.lists(_txn_strategy("t"), min_size=1, max_size=5),
    values=st.dictionaries(keys=_key, values=st.text(max_size=4), max_size=10),
)
def test_execute_batch_is_a_pure_function(txns, values):
    txns = tuple(
        Transaction(
            txn_id=f"t{i}",
            client_id=txn.client_id,
            operations=txn.operations,
        )
        for i, txn in enumerate(txns)
    )
    batch = TransactionBatch(batch_id="b", transactions=txns)
    versions = {key: 1 for key in values}
    first = execute_batch(batch, values, versions)
    second = execute_batch(batch, values, versions)
    assert first == second
    assert {r.txn_id for r in first.txn_results} == {txn.txn_id for txn in txns}
    for result in first.txn_results:
        txn = next(t for t in txns if t.txn_id == result.txn_id)
        assert set(result.writes) == set(txn.write_set)
        assert set(result.read_versions) == set(txn.keys)


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=30)
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    conflict=st.floats(min_value=0.0, max_value=1.0),
)
def test_ycsb_generator_respects_structure(seed, conflict):
    config = YCSBConfig(
        num_records=2_000, clients=4, conflict_fraction=conflict, hot_keys=4, seed=seed
    )
    workload = YCSBWorkload(config)
    for txn in workload.transactions(10):
        assert len(txn.operations) == config.operations_per_transaction
        assert all(op.key.startswith("user") for op in txn.operations)


# ------------------------------------------------------------------ conflict planner


@given(
    key_sets=st.lists(
        st.tuples(st.sets(_key, max_size=3), st.sets(_key, max_size=3)),
        min_size=1,
        max_size=12,
    )
)
def test_conflict_planner_never_dispatches_conflicting_batches_concurrently(key_sets):
    batches = []
    for index, (reads, writes) in enumerate(key_sets):
        operations = tuple(
            [Operation(key=key, is_write=False) for key in sorted(reads)]
            + [Operation(key=key, is_write=True, value="v") for key in sorted(writes)]
        )
        txn = Transaction(txn_id=f"t{index}", client_id="c", operations=operations)
        batches.append(TransactionBatch(batch_id=f"b{index}", transactions=(txn,)))

    planner = ConflictPlanner()
    in_flight = {}
    dispatched_total = set()

    def check_no_conflicts():
        live = list(in_flight.values())
        for i in range(len(live)):
            for j in range(i + 1, len(live)):
                assert not live[i].conflicts_with(live[j])

    for seq, batch in enumerate(batches, start=1):
        planner.add(seq, batch)
        for ready_seq, ready_batch in planner.ready():
            in_flight[ready_seq] = ready_batch
            dispatched_total.add(ready_seq)
        check_no_conflicts()
        # Complete the oldest in-flight batch half of the time to make room.
        if in_flight and seq % 2 == 0:
            oldest = min(in_flight)
            del in_flight[oldest]
            for ready_seq, ready_batch in planner.complete(oldest):
                in_flight[ready_seq] = ready_batch
                dispatched_total.add(ready_seq)
            check_no_conflicts()

    # Draining everything dispatches every batch exactly once.
    while in_flight:
        oldest = min(in_flight)
        del in_flight[oldest]
        for ready_seq, ready_batch in planner.complete(oldest):
            assert ready_seq not in dispatched_total
            in_flight[ready_seq] = ready_batch
            dispatched_total.add(ready_seq)
        check_no_conflicts()
    assert dispatched_total == set(range(1, len(batches) + 1))
