"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from tests.helpers import make_config, make_workload
from repro.core.config import ProtocolConfig
from repro.workload.ycsb import YCSBConfig


@pytest.fixture
def small_config() -> ProtocolConfig:
    return make_config()


@pytest.fixture
def small_workload() -> YCSBConfig:
    return make_workload()
