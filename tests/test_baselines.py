"""Integration tests for the NOSHIM, SERVERLESSCFT, and PBFT baselines."""

from tests.helpers import make_config, make_workload
from repro.baselines import (
    PBFTReplicatedSimulation,
    build_noshim_simulation,
    build_serverless_cft_simulation,
)
from repro.core.runner import ServerlessBFTSimulation


def small_run(simulation, duration=1.5, warmup=0.2):
    return simulation.run(duration=duration, warmup=warmup)


def test_noshim_collapses_to_a_single_node_and_commits():
    config = make_config(num_clients=40, client_groups=4)
    simulation = build_noshim_simulation(config, make_workload(), tracer_enabled=False)
    assert simulation.config.shim_nodes == 1
    result = small_run(simulation)
    assert result.committed_txns > 0
    assert result.view_changes == 0
    assert result.spawned_executors > 0


def test_serverless_cft_uses_paxos_and_commits():
    config = make_config()
    simulation = build_serverless_cft_simulation(config, make_workload(), tracer_enabled=False)
    assert simulation.consensus_engine == "paxos"
    result = small_run(simulation)
    assert result.committed_txns > 0
    # Paxos produces no commit certificates, so EXECUTE messages carry none.
    assert result.committed_txns > 0 and result.cloud_invocations > 0


def test_pbft_replicated_executes_on_every_replica():
    config = make_config()
    simulation = PBFTReplicatedSimulation(config, make_workload(), execution_threads=4,
                                          tracer_enabled=False)
    result = small_run(simulation)
    assert result.committed_txns > 0
    assert result.spawned_executors == 0
    assert result.cloud_invocations == 0
    executed = [node.executed_batches for node in simulation.nodes]
    assert all(count > 0 for count in executed)
    # Replicas execute the same ordered batches, so their stores agree on the
    # keys they both wrote.
    store_a = simulation.nodes[0].store
    store_b = simulation.nodes[1].store
    common = set(store_a.keys()) & set(store_b.keys())
    assert common
    assert all(store_a.read(key) == store_b.read(key) for key in common)


def test_pbft_replicated_throughput_drops_with_fewer_execution_threads():
    config = make_config(num_clients=200, client_groups=8, batch_size=20)
    workload = make_workload(execution_seconds=0.05, clients=200)
    slow = PBFTReplicatedSimulation(config, workload, execution_threads=1, tracer_enabled=False)
    fast = PBFTReplicatedSimulation(config, workload, execution_threads=16, tracer_enabled=False)
    slow_result = small_run(slow, duration=2.0)
    fast_result = small_run(fast, duration=2.0)
    assert fast_result.committed_txns > slow_result.committed_txns


def test_offloading_beats_edge_only_execution_for_heavy_transactions():
    config = make_config(num_clients=200, client_groups=8, batch_size=20)
    workload = make_workload(execution_seconds=0.1, clients=200)
    serverless = ServerlessBFTSimulation(config, workload=workload, tracer_enabled=False)
    edge_only = PBFTReplicatedSimulation(config, workload, execution_threads=1, tracer_enabled=False)
    serverless_result = small_run(serverless, duration=2.0)
    edge_result = small_run(edge_only, duration=2.0)
    assert serverless_result.committed_txns > edge_result.committed_txns


def test_billing_differs_between_architectures():
    config = make_config()
    workload = make_workload()
    serverless = ServerlessBFTSimulation(config, workload=workload, tracer_enabled=False)
    edge_only = PBFTReplicatedSimulation(config, workload, tracer_enabled=False)
    serverless_result = small_run(serverless)
    edge_result = small_run(edge_only)
    assert serverless_result.billing.lambda_cost > 0
    assert edge_result.billing.lambda_cost == 0
    assert edge_result.billing.vm_cost > 0
