"""Perf-overhaul guardrails.

The hot-path PRs (cached digests, pooled event kernel, memoised execution,
FastCryptoBackend, event coalescing, incremental verifier validation) must
not change any simulated-time result.  These tests pin that down:

* the same seed produces bit-identical runs;
* the ``FastCryptoBackend`` produces results bit-identical to real crypto —
  commit sequence, latency statistics, and message counts included;
* the kernel's event coalescing (deferred-slot fast lane) produces
  bit-identical results with coalescing on vs. off, across all four
  registered systems and under a byzantine scenario;
* the supporting machinery (digest memo, canonicalisation fix, bounded
  samplers, execution memo, duplicate-delivery fix, incremental percentiles)
  behaves exactly like the unoptimised equivalents.
"""

import random

import pytest

from repro.core.config import ProtocolConfig
from repro.core.runner import ServerlessBFTSimulation
from repro.crypto.hashing import cached_digest, canonical_bytes, digest, seed_cached_digest
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import FastCryptoBackend, SignatureService, resolve_backend
from repro.errors import ConfigurationError, CryptoError
from repro.perf import PERF
from repro.sim.engine import Simulator, event_coalescing_disabled, event_coalescing_enabled
from repro.sim.network import Network, NetworkFaultPlan, UniformLatencyModel
from repro.sim.rng import DeterministicRNG
from repro.sim.stats import LatencyRecorder
from repro.workload.transactions import execute_batch, execute_batch_cached
from repro.workload.ycsb import YCSBConfig, YCSBWorkload


def _small_config(**overrides) -> ProtocolConfig:
    params = dict(
        num_clients=120,
        client_groups=4,
        batch_size=20,
        shim_nodes=4,
        num_executors=3,
        seed=7,
    )
    params.update(overrides)
    return ProtocolConfig(**params)


def _run(config: ProtocolConfig):
    simulation = ServerlessBFTSimulation(config, tracer_enabled=False)
    result = simulation.run(duration=1.0, warmup=0.2)
    commit_sequence = [
        (entry.seq, entry.digest)
        for entry in simulation.nodes[0].replica.log.committed_entries()
    ]
    return simulation, result, commit_sequence


def _fingerprint(result):
    latency = result.latency
    return (
        result.committed_txns,
        result.aborted_txns,
        result.throughput_txn_per_sec,
        result.completed_requests,
        result.client_retransmissions,
        result.messages_sent,
        result.messages_dropped,
        result.bytes_sent,
        result.events_processed,
        latency.count,
        latency.mean,
        latency.p50,
        latency.p95,
        latency.p99,
        latency.minimum,
        latency.maximum,
    )


# ------------------------------------------------------------ determinism


def test_same_seed_is_bit_identical():
    _, first, first_commits = _run(_small_config())
    _, second, second_commits = _run(_small_config())
    assert _fingerprint(first) == _fingerprint(second)
    assert first_commits == second_commits


def test_fast_crypto_backend_matches_real_crypto_exactly():
    """The PR's core guardrail: swapping the crypto backend changes nothing
    observable in simulated time — commit sequence, latency stats, and
    message counts are bit-identical."""
    _, real, real_commits = _run(_small_config(crypto_backend="real"))
    _, fast, fast_commits = _run(_small_config(crypto_backend="fast"))
    assert real_commits, "the run must commit something for the comparison to mean anything"
    assert real_commits == fast_commits
    assert _fingerprint(real) == _fingerprint(fast)


def test_wall_clock_metrics_populated():
    _, result, _ = _run(_small_config())
    assert result.wall_clock_seconds > 0
    assert result.events_processed > 0
    assert result.events_per_second == pytest.approx(
        result.events_processed / result.wall_clock_seconds
    )


def test_unknown_crypto_backend_rejected():
    with pytest.raises(ConfigurationError):
        _small_config(crypto_backend="quantum")


# ------------------------------------------------------------ event coalescing


def _coalescing_fingerprint(system: str, scenarios=(), seed: int = 7):
    """Simulated-result fingerprint of one short facade run.

    ``events_processed`` is included on purpose: the deferred-slot fast lane
    must not elide or duplicate a single kernel event.
    """
    from repro.api import RunSpec, run
    from repro.api.facade import result_digest

    result = run(
        RunSpec(
            system=system,
            duration=0.6,
            warmup=0.1,
            seed=seed,
            scenarios=list(scenarios),
        )
    )
    return result_digest(result), result.events_processed


@pytest.mark.parametrize(
    "system", ["serverless_bft", "serverless_cft", "pbft_replicated", "noshim"]
)
def test_event_coalescing_bit_identical_across_systems(system):
    """Coalescing on vs. off: same digests, same event count, per system."""
    assert event_coalescing_enabled()
    with_coalescing = _coalescing_fingerprint(system)
    with event_coalescing_disabled():
        without_coalescing = _coalescing_fingerprint(system)
    assert event_coalescing_enabled()
    assert with_coalescing == without_coalescing


def test_event_coalescing_bit_identical_byzantine_scenario():
    """A byzantine run (signature failures, corrupt results) is coalescing-proof."""
    with_coalescing = _coalescing_fingerprint(
        "serverless_bft", scenarios=("byzantine-executors",), seed=5
    )
    with event_coalescing_disabled():
        without_coalescing = _coalescing_fingerprint(
            "serverless_bft", scenarios=("byzantine-executors",), seed=5
        )
    assert with_coalescing == without_coalescing


def test_deferred_slot_preserves_schedule_order():
    """Same-timestamp events run in seq order whether slotted or heaped."""
    order = []
    sim = Simulator()
    sim.schedule_fast(1.0, order.append, "fast-a")  # parked in the slot
    sim.schedule(1.0, order.append, "timer-b")  # heap, later seq
    sim.schedule_fast(1.0, order.append, "fast-c")  # demotes nothing, heap
    sim.schedule_fast(0.5, order.append, "fast-d")  # earlier: takes the slot
    sim.run_until_idle()
    assert order == ["fast-d", "fast-a", "timer-b", "fast-c"]


def test_deferred_slot_counts_coalesced_events():
    """A chain of back-to-back events runs straight from the slot."""
    PERF.reset()
    sim = Simulator()
    remaining = [100]

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.schedule_fast(1e-6, tick)

    sim.schedule_fast(0.0, tick)
    sim.run_until_idle()
    assert sim.events_processed == 101
    assert PERF.events_coalesced >= 100  # every chained tick skipped the heap


def test_coalescing_disabled_uses_heap_only():
    with event_coalescing_disabled():
        PERF.reset()
        sim = Simulator()
        sim.schedule_fast(0.1, lambda: None)
        sim.run_until_idle()
        assert PERF.events_coalesced == 0


# ------------------------------------------------------------ crypto layer


def test_fast_backend_sign_verify_roundtrip_and_forgery():
    store = KeyStore()
    signer = SignatureService(store, "node-0", backend="fast")
    verifier = SignatureService(store, "node-1", backend="fast")
    signature = signer.sign({"seq": 3})
    assert verifier.verify({"seq": 3}, signature)
    assert not verifier.verify({"seq": 4}, signature)
    # Claiming another signer invalidates the token (it embeds the key).
    from dataclasses import replace

    forged = replace(signature, signer="node-1")
    assert not verifier.verify({"seq": 3}, forged)


def test_mac_authenticator_supports_fast_backend():
    """MACs accept the backend knob too (callers opt in per authenticator;
    the deployed simulation only wires the backend into signatures)."""
    from repro.crypto.signatures import MacAuthenticator

    store = KeyStore()
    alice = MacAuthenticator(store, "alice", backend="fast")
    bob = MacAuthenticator(store, "bob", backend="fast")
    tag = alice.tag("ping", peer="bob")
    assert bob.verify("ping", peer="alice", tag=tag)
    assert not bob.verify("pong", peer="alice", tag=tag)
    assert not bob.verify("ping", peer="carol", tag=tag)
    # Fast tags are distinct from real HMAC tags for the same channel.
    real_alice = MacAuthenticator(store, "alice")
    assert real_alice.tag("ping", peer="bob") != tag


def test_resolve_backend_names():
    assert resolve_backend(None).name == "real"
    assert resolve_backend("fast").name == "fast"
    backend = FastCryptoBackend()
    assert resolve_backend(backend) is backend
    with pytest.raises(CryptoError):
        resolve_backend("rot13")


def test_cached_digest_memoises_and_seed_propagates():
    class Payload:
        def __init__(self, body):
            self.body = body

        def canonical(self):
            return f"payload:{self.body}"

    payload = Payload("x")
    first = cached_digest(payload)
    assert first == digest("payload:x")
    # Mutating after the first digest must NOT change the memo (payloads are
    # immutable by contract; this asserts the memo actually sticks).
    payload.body = "y"
    assert cached_digest(payload) == first

    other = Payload("x")
    seed_cached_digest(other, first)
    assert cached_digest(other) == first


def test_mixed_key_dicts_hash_identically():
    """The canonicalisation satellite: mixed-type dict keys used to fall back
    to insertion-ordered repr, so logically equal dicts hashed differently."""
    first = {1: "a", "b": 2}
    second = {"b": 2, 1: "a"}
    assert digest(first) == digest(second)
    # Distinct logical content still separates in the explicit fallback.
    assert digest({1: "a", "b": 2}) != digest({"1": "a", "b": 2})
    # (A pure-int-keyed dict stays on the JSON path, which coerces int keys
    # to strings — pre-existing behaviour this fix deliberately preserves.)
    assert digest({1: "a"}) == digest({"1": "a"})
    # The fix must not disturb JSON-serialisable values.
    assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})
    assert canonical_bytes("plain") == b"plain"


# ------------------------------------------------------------ sampler + memo


def test_bounded_int_fn_matches_randint_draw_for_draw():
    mine = DeterministicRNG(123)
    reference = random.Random(DeterministicRNG(123).seed)
    draw_small = mine.bounded_int_fn(7)
    draw_one = mine.bounded_int_fn(1)
    draw_large = mine.bounded_int_fn(10**9 + 1)
    for _ in range(500):
        assert draw_small() == reference.randint(0, 6)
        assert draw_one() == reference.randint(0, 0)
        assert draw_large() == reference.randint(0, 10**9)


def test_next_transactions_matches_single_transaction_entry_point():
    """The hoisted batch generator and next_transaction stay draw-identical.

    next_transactions inlines the uniform operation builder for speed; this
    pins the contract that every future change to the key scheme keeps the
    two entry points emitting the same transactions for the same draws.
    """
    batched = YCSBWorkload(YCSBConfig(clients=8, seed=21))
    looped = YCSBWorkload(YCSBConfig(clients=8, seed=21))
    from_batch = batched.next_transactions(16, client_index_offset=2, origin="o", request_id="r")
    one_by_one = tuple(
        looped.next_transaction(client_index=2 + slot, origin="o", request_id="r")
        for slot in range(16)
    )
    assert from_batch == one_by_one
    # And with conflicts + skew, where the general builder path is taken.
    config = YCSBConfig(clients=8, seed=22, conflict_fraction=0.4, zipfian_theta=0.8)
    batched, looped = YCSBWorkload(config), YCSBWorkload(config)
    assert batched.next_transactions(16) == tuple(
        looped.next_transaction(client_index=slot) for slot in range(16)
    )


def test_workload_generation_unchanged_by_fast_paths():
    """The inlined uniform generator must equal the general path's output."""
    uniform = YCSBWorkload(YCSBConfig(clients=4, seed=11))
    txns = uniform.transactions(50)
    assert len({txn.txn_id for txn in txns}) == 50
    for txn in txns:
        assert len(txn.operations) == 4
        writes = [op for op in txn.operations if op.is_write]
        assert len(writes) == 2
        for op in writes:
            assert op.value is not None and op.value.startswith("val-")
        assert txn.keys == frozenset(op.key for op in txn.operations)


def test_execute_batch_cached_shares_and_separates_results():
    workload = YCSBWorkload(YCSBConfig(clients=2, seed=3))
    batch = workload.next_batch(5)
    versions_a = {key: 0 for key in batch.keys}
    values = {key: "" for key in batch.keys}
    plain = execute_batch(batch, values, versions_a)
    cached_one = execute_batch_cached(batch, values, versions_a, snapshot_token=9)
    cached_two = execute_batch_cached(batch, values, versions_a, snapshot_token=9)
    assert cached_one is cached_two  # memo hit via snapshot token
    assert cached_one == plain  # and identical to the uncached path
    # Same versions under a different token also share via the versions key.
    cached_three = execute_batch_cached(batch, values, versions_a, snapshot_token=12)
    assert cached_three is cached_one
    # A genuinely different snapshot yields a different result object/digest.
    versions_b = dict(versions_a)
    any_key = next(iter(versions_b))
    versions_b[any_key] = 5
    different = execute_batch_cached(batch, values, versions_b, snapshot_token=13)
    assert different is not cached_one
    assert different.result_digest != cached_one.result_digest


# ------------------------------------------------------------ kernel + network


def test_duplicate_delivery_gets_minimum_offset_and_bytes_counted():
    """Satellite fix: with zero base latency the duplicate used to collapse
    onto the original delivery time, and its bytes were never counted."""
    sim = Simulator()
    network = Network(
        sim,
        UniformLatencyModel(base_delay=0.0, jitter=0.0, bandwidth_bytes_per_sec=0.0),
        DeterministicRNG(1),
        fault_plan=NetworkFaultPlan(duplicate_probability=1.0),
    )
    deliveries = []
    network.register("a", "r", lambda msg, sender: deliveries.append(sim.now))
    network.register("b", "r", lambda msg, sender: None)
    network.send("b", "a", "x", size_bytes=100)
    sim.run_until_idle()
    assert len(deliveries) == 2
    assert deliveries[1] >= deliveries[0] + Network.MIN_DUPLICATE_OFFSET
    assert network.bytes_sent == 200  # original + duplicate


def test_cancelled_events_are_compacted():
    sim = Simulator()
    events = [sim.schedule(1.0 + index * 1e-6, lambda: None) for index in range(2000)]
    keeper_ran = []
    sim.schedule(0.5, keeper_ran.append, True)
    for event in events:
        event.cancel()
    # Compaction triggered once cancelled entries dominated the queue; only
    # a sub-threshold residue of cancelled marks (< 256) may remain.
    assert sim.pending_events < 300
    sim.run_until_idle()
    assert keeper_ran == [True]


def test_event_cancel_after_run_is_noop():
    sim = Simulator()
    hits = []
    event = sim.schedule(0.1, hits.append, "ran")
    sim.run_until_idle()
    event.cancel()  # must not corrupt queue accounting
    sim.schedule(0.2, hits.append, "second")
    sim.run_until_idle()
    assert hits == ["ran", "second"]


# ------------------------------------------------------------ stats


def test_incremental_percentiles_match_full_resort():
    recorder = LatencyRecorder()
    reference = []
    rng = random.Random(5)
    for round_index in range(5):
        for _ in range(200):
            sample = rng.random()
            recorder.record_value(sample)
            reference.append(sample)
        summary = recorder.summary()  # merge happens incrementally per round
        ordered = sorted(reference)
        assert summary.count == len(ordered)
        assert summary.minimum == min(ordered)
        assert summary.maximum == max(ordered)
        assert summary.mean == pytest.approx(sum(ordered) / len(ordered))
        assert summary.p50 == pytest.approx(_reference_percentile(ordered, 0.50))
        assert summary.p95 == pytest.approx(_reference_percentile(ordered, 0.95))
        assert summary.p99 == pytest.approx(_reference_percentile(ordered, 0.99))


def _reference_percentile(ordered, fraction):
    import math

    rank = fraction * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight
