"""EXC005 bad fixture: swallowed failures in worker/store-shaped code."""


def harvest_results(futures, outcomes):
    for future, outcome in futures:
        try:
            outcomes.append(future.result())
        except Exception:  # <- EXC005: worker death becomes a missing result
            pass


def load_records(lines, records):
    for line in lines:
        try:
            records.append(parse(line))
        except:  # noqa: E722  <- EXC005: bare except eats KeyboardInterrupt
            continue


def flush_best_effort(handle):
    try:
        handle.flush()
    except BaseException:  # <- EXC005: silent
        ...


def parse(line):
    return line
