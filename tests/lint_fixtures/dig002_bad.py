"""DIG002 bad fixture: a RunSpec-shaped class with undeclared/stale fields.

``trace_level`` is the PR 7 bug class: a collection knob added to the spec
without deciding whether it enters the content address.  The declarations
are also stale (``warmup`` was removed from the class but not the list).
"""

from dataclasses import dataclass, field
from typing import Mapping

ADDRESSED_RUNSPEC_FIELDS = (
    "system",
    "seed",
    "duration",
    "warmup",  # stale: the class below has no such field any more
)

NON_ADDRESSED_RUNSPEC_FIELDS = ("replicates",)


@dataclass(frozen=True)
class RunSpec:
    system: str = "serverless_bft"
    seed: int = 1
    duration: float = 2.0
    replicates: int = 1
    trace_level: int = 0  # <- DIG002: in neither declaration
    overrides: Mapping[str, object] = field(default_factory=dict)  # <- DIG002
