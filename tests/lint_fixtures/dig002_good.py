"""DIG002 good fixture: every field declared on exactly one side."""

from dataclasses import dataclass

ADDRESSED_RUNSPEC_FIELDS = ("system", "seed", "duration")

NON_ADDRESSED_RUNSPEC_FIELDS = ("replicates", "tracer_enabled")


@dataclass(frozen=True)
class RunSpec:
    system: str = "serverless_bft"
    seed: int = 1
    duration: float = 2.0
    replicates: int = 1
    tracer_enabled: bool = False
