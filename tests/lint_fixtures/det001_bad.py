"""DET001 bad fixture: every nondeterminism source the rule must catch.

Includes a faithful reconstruction of the PR 2 incident: the seed's
``DecentralizedSpawnPolicy`` staggered region choice with the builtin
``hash()``, which is randomised per process — decentralized-spawning
results silently differed across pool workers until the serial-vs-pool
A/B suite happened to cover that configuration.
"""

import os
import random
import time
import uuid
from datetime import datetime


class DecentralizedSpawnPolicy:
    """The PR 2 bug, as shipped: builtin hash() in a per-node stagger."""

    def pick_region(self, node_name, regions):
        # BUG: hash("node-3") differs between processes (PYTHONHASHSEED),
        # so each pool worker staggers regions differently.
        stagger = hash(node_name) % len(regions)  # <- DET001 (the PR 2 bug)
        return regions[stagger]


def wall_clock_everywhere():
    a = time.time()  # <- DET001
    b = time.monotonic()  # <- DET001
    c = time.perf_counter()  # <- DET001
    d = datetime.now()  # <- DET001
    return a, b, c, d


def unseeded_randomness(options):
    jitter = random.random()  # <- DET001
    pick = random.choice(options)  # <- DET001
    rng = random.Random()  # <- DET001 (no seed)
    token = os.urandom(8)  # <- DET001
    run_id = uuid.uuid4()  # <- DET001
    return jitter, pick, rng, token, run_id


def address_ordering(messages):
    # id() orders by CPython object address — differs run to run.
    return sorted(messages, key=lambda message: id(message))  # <- DET001


def raw_set_iteration(nodes):
    total = 0
    for node in set(nodes):  # <- DET001 (hash-seed-dependent order)
        total ^= total + node
    return total
