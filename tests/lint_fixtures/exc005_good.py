"""EXC005 good fixture: failures handled, recorded, or typed."""

import json
import logging

logger = logging.getLogger("fixture")


def harvest_results(futures, outcomes, errors):
    for future, outcome in futures:
        try:
            outcomes.append(future.result())
        except Exception as exc:
            # Broad at a process boundary is fine when handled: the failure
            # is logged and recorded, never swallowed.
            logger.warning("point failed in worker: %s", exc)
            errors.append(f"{type(exc).__name__}: {exc}")


def load_records(lines, records):
    for lineno, line in enumerate(lines, start=1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            logger.warning("line %d: skipping torn record", lineno)


def optional_backend_available():
    try:
        import matplotlib  # noqa: F401

        return True
    except ImportError:
        return False
