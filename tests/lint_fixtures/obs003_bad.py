"""OBS003 bad fixture: instrumentation without the ``is not None`` guard."""


class Executor:
    def __init__(self, obs=None):
        self._obs = obs

    def on_execute(self, seq, now):
        # Unguarded: obs-off runs receive None here and crash (or force
        # component() to return a live object, killing zero-cost-off).
        self._obs.begin_span("execute", seq, now, "executor")  # <- OBS003

    def on_done(self, seq, now):
        if self._obs is None:
            pass  # guard shape the rule does NOT accept (no early exit)
        self._obs.end_span("execute", seq, now)  # <- OBS003

    def on_reassigned(self, obs, seq, now):
        if obs is not None:
            obs.begin_span("execute", seq, now, "executor")  # guarded: fine
        obs = self._fresh()
        obs.end_span("execute", seq, now)  # <- OBS003 (reassigned after guard)

    def _fresh(self):
        return None
