"""KER006 good fixture: consumers reach the compiled kernel only through
the chooser's accessors, which return None on the pure-Python path."""

import importlib

from repro import kernel


def execute(batch, read_values, read_versions, py_impl):
    compiled = kernel.c_execute_batch()
    if compiled is None:
        return py_impl(batch, read_values, read_versions)
    return compiled(batch.batch_id, batch.transactions, read_values, read_versions)


def unrelated_dynamic_import():
    # Dynamic imports of *other* modules stay allowed.
    return importlib.import_module("repro.crypto.hashing")
