"""KER006 bad fixture: every way of reaching the extension behind the
chooser's back — static imports, a `from repro import _ckernel`, and
constant-string dynamic imports."""

import importlib

import repro._ckernel._impl  # noqa: F401  (KER006: bypasses the chooser)
from repro import _ckernel  # noqa: F401
from repro._ckernel import _impl  # noqa: F401
from repro._ckernel._impl import execute_batch  # noqa: F401


def sneaky():
    compiled = importlib.import_module("repro._ckernel._impl")
    also_compiled = __import__("repro._ckernel._impl")
    return compiled, also_compiled
