"""DET001 good fixture: the deterministic counterparts of every bad site."""

import zlib
from random import Random


class DecentralizedSpawnPolicy:
    """The PR 2 fix: crc32 is stable across processes and hash seeds."""

    def pick_region(self, node_name, regions):
        stagger = zlib.crc32(node_name.encode("utf-8")) % len(regions)
        return regions[stagger]


def virtual_clock(sim):
    # Simulated code reads virtual time from the kernel, never the host.
    return sim.now


def seeded_randomness(options, seed):
    rng = Random(seed)  # explicit seed: fine
    jitter = rng.random()  # bound-method draw on a seeded RNG: fine
    pick = rng.choice(options)
    return jitter, pick


def stable_ordering(messages):
    return sorted(messages, key=lambda message: message.seq)


def sorted_set_iteration(nodes):
    total = 0
    for node in sorted(set(nodes)):  # sorted() wraps the set: fine
        total ^= total + node
    return total
