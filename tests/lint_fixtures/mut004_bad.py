"""MUT004 bad fixture: frozen-message mutation outside constructors."""

from dataclasses import dataclass


@dataclass(frozen=True)
class PrepareMsg:
    view: int
    seq: int
    digest: str

    def canonical(self):
        return f"prepare:{self.view}:{self.seq}:{self.digest}"


def redirect_vote(message, new_digest):
    # Mutating a canonical field after construction: the cached-digest memo
    # (seeded the first time anything hashed this message) now disagrees
    # with the bytes every later signature check covers.
    object.__setattr__(message, "digest", new_digest)  # <- MUT004
    return message


def patch_dynamic(message, attr_name, value):
    object.__setattr__(message, attr_name, value)  # <- MUT004 (unprovable)


def poke_dict(message, new_digest):
    message.__dict__["digest"] = new_digest  # <- MUT004 (__dict__ bypass)
