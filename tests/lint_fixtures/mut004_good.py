"""MUT004 good fixture: the sanctioned construction and memo patterns."""

import dataclasses
from dataclasses import dataclass

_DIGEST_ATTR = "_cached_digest"


@dataclass(frozen=True)
class PrepareMsg:
    view: int
    seq: int
    digest: str
    normalized: str = ""

    def __post_init__(self):
        # Constructors may finish initialising frozen fields.
        object.__setattr__(self, "normalized", self.digest.lower())

    def canonical(self):
        return f"prepare:{self.view}:{self.seq}:{self.digest}"


def memoise_digest(message, computed):
    # Underscore namespace: derived memo, never part of canonical().
    object.__setattr__(message, "_sig_valid", True)
    object.__setattr__(message, _DIGEST_ATTR, computed)


def redirect_vote(message, new_digest):
    # The sound way to "change" a frozen message: build a new one.
    return dataclasses.replace(message, digest=new_digest)
