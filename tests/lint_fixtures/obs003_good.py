"""OBS003 good fixture: every sanctioned guard shape."""


class Executor:
    def __init__(self, obs=None):
        self._obs = obs

    def on_execute(self, seq, now):
        if self._obs is not None:
            self._obs.begin_span("execute", seq, now, "executor")

    def on_done(self, seq, now):
        if self._obs is None:
            return
        self._obs.end_span("execute", seq, now)

    def on_verify(self, seq, now, fast_path):
        if self._obs is not None and not fast_path:
            self._obs.begin_span("verify", seq, now, "verifier")

    def on_commit(self, obs, seq, now):
        assert obs is not None
        obs.end_span("commit", seq, now)

    def span_or_default(self, seq, now):
        return self._obs.begin_span("x", seq, now, "e") if self._obs is not None else None
