"""Unit tests for the cryptography substrate."""

import pytest

from repro.crypto.costs import CryptoCostModel
from repro.crypto.hashing import canonical_bytes, digest
from repro.crypto.keys import KeyStore, generate_keypair
from repro.crypto.signatures import MacAuthenticator, SignatureService
from repro.crypto.threshold import ThresholdSigner
from repro.errors import CryptoError


# ------------------------------------------------------------------ hashing


def test_digest_is_deterministic_and_collision_free_for_different_inputs():
    assert digest("hello") == digest("hello")
    assert digest("hello") != digest("hello!")
    assert len(digest("x")) == 64


def test_digest_of_dict_ignores_key_order():
    assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})


def test_canonical_bytes_uses_canonical_method():
    class Payload:
        def canonical(self):
            return "payload-form"

    assert canonical_bytes(Payload()) == b"payload-form"
    assert digest(Payload()) == digest("payload-form")


# ------------------------------------------------------------------ keys


def test_keystore_creates_stable_identities():
    store = KeyStore("secret")
    first = store.create_identity("node-0")
    second = store.create_identity("node-0")
    assert first == second
    assert store.public_key("node-0") == first.public_key


def test_keypairs_differ_per_owner_and_deployment():
    assert generate_keypair("a", "s1") != generate_keypair("b", "s1")
    assert generate_keypair("a", "s1") != generate_keypair("a", "s2")


def test_unknown_identity_raises():
    store = KeyStore()
    with pytest.raises(CryptoError):
        store.public_key("ghost")
    with pytest.raises(CryptoError):
        store.private_key("ghost")


def test_mac_secret_is_symmetric():
    store = KeyStore()
    assert store.mac_secret("a", "b") == store.mac_secret("b", "a")
    assert store.mac_secret("a", "b") != store.mac_secret("a", "c")


# ------------------------------------------------------------------ signatures


def test_sign_and_verify_roundtrip():
    store = KeyStore()
    signer = SignatureService(store, "node-0")
    message = {"seq": 1, "digest": "abc"}
    signature = signer.sign(message)
    assert signer.verify(message, signature)
    other = SignatureService(store, "node-1")
    assert other.verify(message, signature)  # anyone can verify a DS


def test_tampered_payload_fails_verification():
    store = KeyStore()
    signer = SignatureService(store, "node-0")
    signature = signer.sign("original")
    assert not signer.verify("tampered", signature)


def test_forged_signer_fails_verification():
    store = KeyStore()
    honest = SignatureService(store, "node-0")
    byzantine = SignatureService(store, "node-1")
    forged = byzantine.sign("payload")
    # Claiming the signature came from node-0 does not make it valid for node-0.
    from dataclasses import replace

    forged_as_honest = replace(forged, signer="node-0")
    assert not honest.verify("payload", forged_as_honest)


def test_unknown_signer_fails_verification():
    store = KeyStore()
    signer = SignatureService(store, "node-0")
    signature = signer.sign("payload")
    fresh_store = KeyStore("other-deployment")
    other = SignatureService(fresh_store, "verifier")
    assert not other.verify("payload", signature)


def test_require_valid_raises_on_bad_signature():
    store = KeyStore()
    signer = SignatureService(store, "node-0")
    message = signer.sign_message("payload")
    from dataclasses import replace

    bad = replace(message, payload="other-payload")
    with pytest.raises(CryptoError):
        signer.require_valid(bad)
    signer.require_valid(message)


def test_mac_roundtrip_and_mismatch():
    store = KeyStore()
    alice = MacAuthenticator(store, "alice")
    bob = MacAuthenticator(store, "bob")
    tag = alice.tag("ping", peer="bob")
    assert bob.verify("ping", peer="alice", tag=tag)
    assert not bob.verify("pong", peer="alice", tag=tag)
    assert not bob.verify("ping", peer="carol", tag=tag)
    assert not bob.verify("ping", peer="alice", tag=None)


# ------------------------------------------------------------------ threshold signatures


def test_threshold_aggregation_and_verification():
    store = KeyStore()
    payload = "commit:1:7:digest"
    shares = [SignatureService(store, f"node-{i}").sign(payload) for i in range(3)]
    signer = ThresholdSigner(threshold=3)
    aggregate = signer.aggregate(shares)
    assert aggregate.size_bytes == 96
    assert signer.verify(payload, aggregate)
    assert not signer.verify("other-payload", aggregate)


def test_threshold_requires_enough_distinct_shares():
    store = KeyStore()
    payload = "commit:1:7:digest"
    share = SignatureService(store, "node-0").sign(payload)
    signer = ThresholdSigner(threshold=3)
    with pytest.raises(CryptoError):
        signer.aggregate([share, share, share])  # same signer three times
    with pytest.raises(CryptoError):
        signer.aggregate([])


def test_threshold_rejects_mixed_digests():
    store = KeyStore()
    signer = ThresholdSigner(threshold=2)
    share_a = SignatureService(store, "node-0").sign("payload-a")
    share_b = SignatureService(store, "node-1").sign("payload-b")
    with pytest.raises(CryptoError):
        signer.aggregate([share_a, share_b])


def test_threshold_must_be_positive():
    with pytest.raises(CryptoError):
        ThresholdSigner(0)


# ------------------------------------------------------------------ cost model


def test_cost_model_ratios_and_scaling():
    costs = CryptoCostModel()
    assert costs.ds_verify > costs.mac_verify
    assert costs.ds_sign > costs.mac_sign
    assert costs.hash_cost(2048) > costs.hash_cost(100)
    assert costs.certificate_verify_cost(5) == pytest.approx(5 * costs.ds_verify)
    assert costs.certificate_verify_cost(5, threshold=True) == pytest.approx(costs.threshold_verify)
    doubled = costs.scaled(2.0)
    assert doubled.ds_sign == pytest.approx(2 * costs.ds_sign)
    assert doubled.mac_verify == pytest.approx(2 * costs.mac_verify)
