"""View-change and crash-recovery coverage for the PBFT engine.

The four classic triggers of the view-change path — equivocation,
request timeout, the f+1 joining rule, and NEW-VIEW installation with
prepared-certificate carryover — plus the escalation and
checkpoint-based catch-up machinery the fault-timeline engine leans on.
Uses the in-memory :class:`~tests.test_pbft.Cluster` harness, so the
protocol runs exactly as inside shim nodes but without the serverless
machinery.
"""

from repro.consensus.messages import PrePrepareMsg
from repro.crypto.hashing import digest as H
from tests.test_pbft import Cluster


# ------------------------------------------------------------------ triggers


def test_equivocating_preprepares_trigger_view_change():
    cluster = Cluster(request_timeout=0.2)
    msg_a = PrePrepareMsg(view=0, seq=1, digest=H("batch-A"), batch="batch-A")
    msg_b = PrePrepareMsg(view=0, seq=1, digest=H("batch-B"), batch="batch-B")
    # Two replicas each see both conflicting PREPREPAREs for the same slot:
    # each detects the equivocation directly and requests a view change;
    # together they are f+1, so the rest of the cluster joins.
    for name in ("node-1", "node-2"):
        cluster.replicas[name].on_preprepare(msg_a, "node-0")
        cluster.replicas[name].on_preprepare(msg_b, "node-0")
    cluster.run(until=3.0)
    for name in cluster.names[1:]:
        assert cluster.replicas[name].view >= 1
        assert cluster.replicas[name].primary != "node-0"


def test_request_timeout_triggers_view_change():
    cluster = Cluster(request_timeout=0.2)
    # The primary crashes right after PREPREPARE reaches two replicas: they
    # can never gather 2f+1 PREPAREs, their request timers fire, and the
    # resulting pair of VIEWCHANGEs (f+1) pulls the third replica along.
    for name in cluster.names[1:]:
        cluster.block("node-0", name)
    preprepare = PrePrepareMsg(view=0, seq=1, digest=H("stalled"), batch="stalled")
    for name in ("node-1", "node-2"):
        cluster.replicas[name].on_preprepare(preprepare, "node-0")
    cluster.run(until=3.0)
    for name in cluster.names[1:]:
        assert cluster.replicas[name].view >= 1
    # Nothing committed in the dead view at that slot's original digest.
    assert all(
        entry.digest != H("stalled") or entry.seq != 1
        for entries in cluster.committed.values()
        for entry in entries
    ) or cluster.replicas["node-1"].view >= 1


def test_f_plus_one_viewchange_requests_amplify_to_quorum():
    cluster = Cluster(request_timeout=10.0)
    # Only two replicas (exactly f+1 for n=4) time out; neither the new
    # primary nor node-0 saw any fault.  Seeing f+1 requests is proof an
    # honest node timed out, so the others join and the quorum completes.
    cluster.replicas["node-2"].request_view_change(reason="test-timeout")
    cluster.replicas["node-3"].request_view_change(reason="test-timeout")
    cluster.run(until=2.0)
    for name in cluster.names:
        assert cluster.replicas[name].view == 1
        assert cluster.replicas[name].primary == "node-1"


def test_single_viewchange_request_does_not_amplify():
    cluster = Cluster(request_timeout=10.0)
    cluster.replicas["node-3"].request_view_change(reason="lonely")
    cluster.run(until=2.0)
    # One request is below the f+1 joining threshold: nobody follows.
    assert all(replica.view == 0 for replica in cluster.replicas.values())


# ------------------------------------------------------------------ NEW-VIEW


def test_new_view_carries_prepared_certificates_forward():
    cluster = Cluster(request_timeout=10.0)
    # Slot 1 reached the prepared state (PREPREPARE + 2f PREPAREs) just
    # before the view change — the quorum's VIEWCHANGE messages must carry
    # it into the new view, where the new primary re-proposes it.
    for name in ("node-1", "node-2", "node-3"):
        slot = cluster.replicas[name].log.slot(1)
        slot.view = 0
        slot.digest = H("carried-batch")
        slot.batch = "carried-batch"
        slot.preprepared = True
        slot.prepared = True
    cluster.replicas["node-2"].request_view_change(reason="test")
    cluster.replicas["node-3"].request_view_change(reason="test")
    cluster.run(until=3.0)
    for name in cluster.names:
        assert cluster.replicas[name].view == 1
        entries = [entry for entry in cluster.committed[name] if entry.seq == 1]
        assert len(entries) == 1
        assert entries[0].batch == "carried-batch"
        assert entries[0].view == 1


# ------------------------------------------------------------------ escalation


def test_escalation_skips_two_consecutive_crashed_primaries():
    # n=7 tolerates f=2 faults.  The current primary and the *next* one in
    # the rotation both crash: view 1 can never install (its primary is
    # dead), so the escalation timer must push the survivors past it to
    # view 2 with exponential backoff instead of stalling at v+1 forever.
    cluster = Cluster(n=7, request_timeout=0.2)
    cluster.replicas["node-0"].crash()
    cluster.replicas["node-1"].crash()
    for name in cluster.names[2:]:
        cluster.replicas[name].request_view_change(reason="primary-dead")
    cluster.run(until=5.0)
    for name in cluster.names[2:]:
        assert cluster.replicas[name].view >= 2
        assert cluster.replicas[name].primary == "node-2"
    # Liveness is actually restored: the new primary can commit.
    cluster.replicas["node-2"].propose("after-escalation")
    cluster.run(until=7.0)
    for name in cluster.names[2:]:
        assert any(
            entry.batch == "after-escalation" for entry in cluster.committed[name]
        )


# ------------------------------------------------------------------ recovery


def test_checkpoint_truncation_bounds_log_memory():
    cluster = Cluster(checkpoint_interval=2)
    for index in range(20):
        cluster.primary().propose(f"batch-{index}")
    cluster.run(until=5.0)
    for name in cluster.names:
        log = cluster.replicas[name].log
        assert log.max_committed_seq() == 20
        # The 2f+1 checkpoint quorum advanced the stable watermark, and
        # truncation dropped everything at or below it.
        assert log.stable_seq >= 18
        assert log.retained_commits <= 4
        assert log.slot_count <= 4


def test_crashed_replica_catches_up_from_checkpoint_request():
    cluster = Cluster(request_timeout=50.0)
    for index in range(5):
        cluster.primary().propose(f"early-{index}")
    cluster.run(until=1.0)
    cluster.replicas["node-3"].crash()
    assert cluster.replicas["node-3"].log.max_committed_seq() == 0  # volatile state lost
    for index in range(5):
        cluster.primary().propose(f"late-{index}")
    cluster.run(until=2.0)
    assert cluster.replicas["node-1"].log.max_committed_seq() == 10
    cluster.replicas["node-3"].recover()
    cluster.run(until=3.0)
    recovered = cluster.replicas["node-3"]
    assert recovered.log.max_committed_seq() == 10
    assert recovered.checkpoints_adopted >= 1


def test_recovery_skips_ahead_past_truncated_prefix():
    # Aggressive checkpointing truncates the peers' logs, so the oldest
    # certificates are gone everywhere: the recovering node cannot replay
    # them and must adopt the f+1-vouched stable watermark instead.
    cluster = Cluster(request_timeout=50.0, checkpoint_interval=2)
    for index in range(10):
        cluster.primary().propose(f"early-{index}")
    cluster.run(until=1.0)
    assert cluster.replicas["node-1"].log.stable_seq >= 8
    cluster.replicas["node-3"].crash()
    for index in range(4):
        cluster.primary().propose(f"late-{index}")
    cluster.run(until=2.0)
    cluster.replicas["node-3"].recover()
    cluster.run(until=3.0)
    recovered = cluster.replicas["node-3"]
    assert recovered.log.stable_seq >= 8
    assert recovered.log.max_committed_seq() == 14
    # Memory stays bounded after catch-up too.
    assert recovered.log.slot_count <= 6


def test_recovered_replica_relearns_view_from_peers():
    cluster = Cluster(request_timeout=10.0)
    # Move the live cluster to view 1 while node-3 participates normally.
    cluster.replicas["node-1"].request_view_change(reason="test")
    cluster.replicas["node-2"].request_view_change(reason="test")
    cluster.run(until=1.0)
    assert cluster.replicas["node-2"].view == 1
    # node-3 crashes (view resets to 0 — it is volatile) and recovers: the
    # f+1 rule over checkpoint replies re-teaches it the installed view.
    cluster.replicas["node-3"].crash()
    assert cluster.replicas["node-3"].view == 0
    cluster.primary()  # keep rotation bookkeeping exercised
    cluster.replicas["node-3"].recover()
    cluster.replicas["node-1"].propose("post-crash")
    cluster.run(until=3.0)
    assert cluster.replicas["node-3"].view == 1
    assert cluster.replicas["node-3"].primary == "node-1"
