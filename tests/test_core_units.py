"""Unit tests for core building blocks: config, certificates, spawning,
conflict planner, and message envelopes."""

import pytest

from repro.consensus.messages import CommitMsg
from repro.core.certificates import CommitCertificate, build_certificate
from repro.core.config import ConflictMode, ProtocolConfig, SpawnPolicyName
from repro.core.conflict import ConflictPlanner
from repro.core.messages import ClientRequestMsg, ErrorMsg, ExecuteMsg, ResponseMsg, VerifyMsg
from repro.core.spawning import DecentralizedSpawnPolicy, PrimarySpawnPolicy, executors_per_node
from repro.crypto.costs import CryptoCostModel
from repro.crypto.hashing import digest
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import SignatureService
from repro.errors import ConfigurationError, ProtocolViolation
from repro.workload.transactions import Operation, Transaction, TransactionBatch, execute_batch


# ------------------------------------------------------------------ config


def test_shim_fault_tolerance_derivation():
    assert ProtocolConfig(shim_nodes=4).shim_faults == 1
    assert ProtocolConfig(shim_nodes=4).shim_quorum == 3
    assert ProtocolConfig(shim_nodes=8).shim_faults == 2
    assert ProtocolConfig(shim_nodes=32).shim_faults == 10
    assert ProtocolConfig(shim_nodes=1).shim_faults == 0


def test_executor_fault_derivation_depends_on_conflict_mode():
    optimistic = ProtocolConfig(num_executors=7, conflict_mode=ConflictMode.OPTIMISTIC)
    assert optimistic.derived_executor_faults == 2       # n_E >= 3 f_E + 1
    avoidance = ProtocolConfig(num_executors=7, conflict_mode=ConflictMode.CONFLICT_AVOIDANCE)
    assert avoidance.derived_executor_faults == 3        # n_E >= 2 f_E + 1
    assert optimistic.executor_match_quorum == 3
    explicit = ProtocolConfig(num_executors=7, executor_faults=1)
    assert explicit.derived_executor_faults == 1


def test_config_validation_errors():
    with pytest.raises(ConfigurationError):
        ProtocolConfig(shim_nodes=0)
    with pytest.raises(ConfigurationError):
        ProtocolConfig(batch_size=0)
    with pytest.raises(ConfigurationError):
        ProtocolConfig(num_executors=0)
    with pytest.raises(ConfigurationError):
        ProtocolConfig(num_executors=2, executor_faults=2)
    with pytest.raises(ConfigurationError):
        ProtocolConfig(shim_cores=0)
    with pytest.raises(ConfigurationError):
        ProtocolConfig(num_clients=0)


def test_with_overrides_creates_modified_copy():
    config = ProtocolConfig(shim_nodes=4)
    bigger = config.with_overrides(shim_nodes=16, batch_size=500)
    assert bigger.shim_nodes == 16
    assert bigger.batch_size == 500
    assert config.shim_nodes == 4


def test_regions_for_executors_uses_paper_order():
    config = ProtocolConfig(num_executor_regions=3)
    names = ["us-west-1", "us-west-2", "us-east-2", "ca-central-1"]
    assert config.regions_for_executors(names) == ["us-west-1", "us-west-2", "us-east-2"]
    explicit = ProtocolConfig(executor_regions=["eu-west-1"])
    assert explicit.regions_for_executors(names) == ["eu-west-1"]


def test_clients_per_group():
    config = ProtocolConfig(num_clients=1000, client_groups=16)
    assert config.clients_per_group == 62
    assert ProtocolConfig(num_clients=4, client_groups=8).clients_per_group == 1


# ------------------------------------------------------------------ certificates


def build_cert(keystore, view=0, seq=1, batch_digest="d", signers=("node-0", "node-1", "node-2")):
    signatures = []
    for name in signers:
        unsigned = CommitMsg(view=view, seq=seq, digest=batch_digest, replica=name)
        signatures.append(SignatureService(keystore, name).sign(unsigned.canonical()))
    return build_certificate(view, seq, batch_digest, tuple(signatures))


def test_certificate_verifies_with_quorum_of_valid_signatures():
    keystore = KeyStore()
    certificate = build_cert(keystore)
    verifier = SignatureService(keystore, "executor-0")
    assert certificate.verify(verifier, required=3)
    assert certificate.signer_count == 3
    assert certificate.size_bytes == 3 * 96


def test_certificate_fails_with_too_few_signers():
    keystore = KeyStore()
    certificate = build_cert(keystore, signers=("node-0", "node-1"))
    verifier = SignatureService(keystore, "executor-0")
    assert not certificate.verify(verifier, required=3)


def test_certificate_fails_for_wrong_digest():
    keystore = KeyStore()
    certificate = build_cert(keystore, batch_digest="original")
    tampered = CommitCertificate(
        view=certificate.view,
        seq=certificate.seq,
        digest="tampered",
        signatures=certificate.signatures,
    )
    verifier = SignatureService(keystore, "executor-0")
    assert not tampered.verify(verifier, required=3)


def test_certificate_verification_cost_depends_on_encoding():
    keystore = KeyStore()
    certificate = build_cert(keystore)
    costs = CryptoCostModel()
    assert certificate.verification_cost(costs, required=3) == pytest.approx(3 * costs.ds_verify)
    threshold_cert = CommitCertificate(view=0, seq=1, digest="d")
    assert threshold_cert.verification_cost(costs, required=0) == 0.0


# ------------------------------------------------------------------ spawning


def test_executors_per_node_equation_one():
    # n_E <= n_R: one executor per node suffices.
    assert executors_per_node(num_executors=3, shim_nodes=4, shim_faults=1) == 1
    # n_E > n_R: ceil(n_E / (2 f_R + 1)).
    assert executors_per_node(num_executors=21, shim_nodes=4, shim_faults=1) == 7
    assert executors_per_node(num_executors=10, shim_nodes=7, shim_faults=2) == 2


def test_executors_per_node_equation_two_with_dark_nodes():
    assert executors_per_node(21, 4, 1, nodes_in_dark=True) == 11
    assert executors_per_node(10, 7, 2, nodes_in_dark=True) == 4
    assert executors_per_node(3, 7, 2, nodes_in_dark=True) == 1


def test_executors_per_node_guarantees_enough_honest_spawners():
    for n_executors in (5, 10, 21):
        for shim_nodes, faults in ((4, 1), (7, 2), (13, 4)):
            per_node = executors_per_node(n_executors, shim_nodes, faults)
            honest_spawners = 2 * faults + 1
            if n_executors > shim_nodes:
                assert per_node * honest_spawners >= n_executors


def test_executors_per_node_rejects_bad_input():
    with pytest.raises(ConfigurationError):
        executors_per_node(0, 4, 1)


def test_primary_spawn_policy_round_robins_regions():
    policy = PrimarySpawnPolicy(num_executors=5, regions=["r1", "r2", "r3"])
    plan = policy.plan("node-0", is_primary=True)
    assert plan.count == 5
    assert plan.regions == ["r1", "r2", "r3", "r1", "r2"]
    assert policy.plan("node-1", is_primary=False).count == 0
    assert policy.expected_total() == 5


def test_decentralized_spawn_policy_every_node_spawns():
    policy = DecentralizedSpawnPolicy(
        num_executors=3, regions=["r1", "r2", "r3"], shim_nodes=4, shim_faults=1
    )
    assert policy.per_node == 1
    plans = [policy.plan(f"node-{i}", is_primary=(i == 0)) for i in range(4)]
    assert all(plan.count == 1 for plan in plans)
    assert policy.expected_total() == 4


def test_decentralized_spawn_plan_is_process_stable():
    # The region stagger must not depend on the builtin (per-process
    # randomised) string hash: every process simulating this deployment —
    # parallel sweep workers included — must pick the same regions.
    import zlib

    regions = ["r1", "r2", "r3"]
    policy = DecentralizedSpawnPolicy(
        num_executors=3, regions=regions, shim_nodes=4, shim_faults=1
    )
    for index in range(4):
        node = f"node-{index}"
        expected = regions[zlib.crc32(node.encode("utf-8")) % len(regions)]
        assert policy.plan(node, is_primary=False).regions == [expected]


def test_spawn_policies_require_regions():
    with pytest.raises(ConfigurationError):
        PrimarySpawnPolicy(num_executors=3, regions=[])
    with pytest.raises(ConfigurationError):
        DecentralizedSpawnPolicy(num_executors=3, regions=[], shim_nodes=4, shim_faults=1)


# ------------------------------------------------------------------ conflict planner


def batch_with_keys(batch_id, reads=(), writes=()):
    operations = [Operation(key=key, is_write=False) for key in reads]
    operations += [Operation(key=key, is_write=True, value="v") for key in writes]
    txn = Transaction(txn_id=f"{batch_id}-t", client_id="c", operations=tuple(operations))
    return TransactionBatch(batch_id=batch_id, transactions=(txn,))


def test_non_conflicting_batches_dispatch_together():
    planner = ConflictPlanner()
    planner.add(1, batch_with_keys("b1", writes=("a",)))
    planner.add(2, batch_with_keys("b2", writes=("b",)))
    ready = planner.ready()
    assert [seq for seq, _ in ready] == [1, 2]


def test_conflicting_batch_waits_for_completion():
    planner = ConflictPlanner()
    planner.add(1, batch_with_keys("b1", writes=("x",)))
    planner.add(2, batch_with_keys("b2", reads=("x",)))
    first = planner.ready()
    assert [seq for seq, _ in first] == [1]
    assert planner.ready() == []  # still blocked
    released = planner.complete(1)
    assert [seq for seq, _ in released] == [2]


def test_write_write_conflicts_serialise():
    planner = ConflictPlanner()
    planner.add(1, batch_with_keys("b1", writes=("k",)))
    planner.add(2, batch_with_keys("b2", writes=("k",)))
    planner.add(3, batch_with_keys("b3", writes=("other",)))
    ready = [seq for seq, _ in planner.ready()]
    assert 1 in ready and 3 in ready and 2 not in ready
    assert [seq for seq, _ in planner.complete(1)] == [2]


def test_read_read_sharing_is_allowed():
    planner = ConflictPlanner()
    planner.add(1, batch_with_keys("b1", reads=("k",)))
    planner.add(2, batch_with_keys("b2", reads=("k",)))
    assert [seq for seq, _ in planner.ready()] == [1, 2]


def test_duplicate_registration_rejected_and_unknown_completion_ignored():
    planner = ConflictPlanner()
    planner.add(1, batch_with_keys("b1", writes=("a",)))
    with pytest.raises(ProtocolViolation):
        planner.add(1, batch_with_keys("b1-bis", writes=("b",)))
    assert planner.complete(99) == []


def test_outstanding_and_locked_items_bookkeeping():
    planner = ConflictPlanner()
    planner.add(1, batch_with_keys("b1", writes=("a",), reads=("b",)))
    planner.ready()
    assert planner.outstanding == 1
    assert planner.locked_items() == {"a", "b"}
    planner.complete(1)
    assert planner.locked_items() == set()


# ------------------------------------------------------------------ messages


def make_batch():
    txn = Transaction(
        txn_id="t1",
        client_id="c1",
        operations=(Operation(key="k", is_write=True, value="v"),),
        origin="client-group-0",
        request_id="req-1",
    )
    return TransactionBatch(batch_id="b1", transactions=(txn,))


def test_verify_match_key_distinguishes_results():
    batch = make_batch()
    cert = CommitCertificate(view=0, seq=1, digest=digest(batch))
    result = execute_batch(batch, {}, {})
    verify_a = VerifyMsg(seq=1, batch=batch, digest=digest(batch), certificate=cert,
                         result=result, executor="executor-0")
    verify_b = VerifyMsg(seq=1, batch=batch, digest=digest(batch), certificate=cert,
                         result=result, executor="executor-1")
    assert verify_a.match_key == verify_b.match_key
    from dataclasses import replace

    corrupted = replace(verify_b, result=replace(result, result_digest="forged"))
    assert corrupted.match_key != verify_a.match_key


def test_message_sizes_follow_paper_values():
    batch = make_batch()
    cert = CommitCertificate(view=0, seq=1, digest="d")
    execute = ExecuteMsg(seq=1, view=0, batch=batch, digest="d", certificate=cert, spawner="node-0")
    assert execute.size_bytes >= 3320
    response = ResponseMsg(request_id="r", seq=1, digest="d")
    assert response.size_bytes == 2270
    request = ClientRequestMsg(request_id="r", origin="c", transactions=batch.transactions)
    assert request.size_bytes == 128
    error = ErrorMsg(missing_seq=5)
    assert error.size_bytes == 256


def test_error_message_canonical_distinguishes_forms():
    request = ClientRequestMsg(request_id="r1", origin="c", transactions=())
    assert ErrorMsg(missing_seq=3).canonical() != ErrorMsg(request=request).canonical()
    assert "r1" in ErrorMsg(request=request).canonical()


def test_response_txn_count():
    response = ResponseMsg(
        request_id="r", seq=1, digest="d",
        committed_txn_ids=("t1", "t2"), aborted_txn_ids=("t3",),
    )
    assert response.txn_count == 3
