"""Shared helpers for the runnable examples.

CI's ``examples-smoke`` job runs every example with
``REPRO_EXAMPLE_DURATION=0.4`` so facade regressions in user-facing code
surface quickly; interactive runs use each example's own default.
"""

import os


def example_duration(default: float) -> float:
    """Virtual-seconds budget for an example run, overridable from CI."""
    return float(os.environ.get("REPRO_EXAMPLE_DURATION", default))
