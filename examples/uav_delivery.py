#!/usr/bin/env python3
"""UAV delivery fleet: the paper's motivating use case (Section II).

A fleet of delivery drones (UAVs) flying over a region acts as the shim:
the drones order each other's data-processing requests with PBFT, offload
the compute-intensive work (image recognition, route re-planning over the
collected video) to serverless executors spawned at the nearest cloud
regions, and the enterprise's on-premise verifier applies the results to
the delivery database.

The example contrasts two fleets:

* a small neighbourhood fleet of 4 drones, and
* a metropolitan fleet of 16 drones,

both processing transactions with a 100 ms compute phase (a small ML
inference per batch of telemetry).

Run with:  python examples/uav_delivery.py
"""

from repro import ProtocolConfig, ServerlessBFTSimulation, YCSBConfig


def run_fleet(drones: int) -> None:
    config = ProtocolConfig(
        shim_nodes=drones,
        shim_cores=8,              # drones carry modest compute
        num_executors=3,
        num_executor_regions=3,    # nearest cloud regions to the fleet
        batch_size=25,
        num_clients=200,           # each drone also issues client requests
        client_groups=8,
        spawn_api_cost=0.0008,
    )
    workload = YCSBConfig(
        num_records=10_000,
        operations_per_transaction=4,
        write_fraction=0.5,
        execution_seconds=0.1,     # on-flight ML inference offloaded to the cloud
        clients=200,
    )
    simulation = ServerlessBFTSimulation(config, workload=workload)
    result = simulation.run(duration=3.0, warmup=0.5)

    print(f"fleet of {drones:2d} drones:"
          f"  throughput {result.throughput_txn_per_sec:8,.0f} txn/s"
          f"  mean latency {result.latency.mean * 1000:7.1f} ms"
          f"  executors spawned {result.spawned_executors:5d}"
          f"  cost {result.cents_per_kilo_txn:6.3f} c/ktxn")


def main() -> None:
    print("UAV delivery fleets offloading inference to the serverless cloud")
    print("-" * 78)
    for drones in (4, 16):
        run_fleet(drones)
    print()
    print("A larger fleet pays more consensus cost per request (more drones to")
    print("coordinate) but tolerates more byzantine drones: f_R = (n_R - 1) / 3.")


if __name__ == "__main__":
    main()
