#!/usr/bin/env python3
"""UAV delivery fleet: the paper's motivating use case (Section II).

A fleet of delivery drones (UAVs) flying over a region acts as the shim:
the drones order each other's data-processing requests with PBFT, offload
the compute-intensive work (image recognition, route re-planning over the
collected video) to serverless executors spawned at the nearest cloud
regions, and the enterprise's on-premise verifier applies the results to
the delivery database.

The example contrasts two fleets:

* a small neighbourhood fleet of 4 drones, and
* a metropolitan fleet of 16 drones,

both processing transactions with a 100 ms compute phase (a small ML
inference per batch of telemetry).  Each fleet is one ``RunSpec`` — the
fleet size is the only override that changes.

Run with:  python examples/uav_delivery.py
(CI runs every example with REPRO_EXAMPLE_DURATION=0.4 as a smoke test.)
"""

from _common import example_duration

from repro.api import RunSpec, run


def run_fleet(drones: int) -> None:
    duration = example_duration(3.0)
    spec = RunSpec(
        system="serverless_bft",
        base="default",
        overrides={
            "protocol.shim_nodes": drones,
            "protocol.shim_cores": 8,             # drones carry modest compute
            "protocol.num_executors": 3,
            "protocol.num_executor_regions": 3,   # nearest cloud regions to the fleet
            "protocol.batch_size": 25,
            "protocol.num_clients": 200,          # each drone also issues client requests
            "protocol.client_groups": 8,
            "protocol.spawn_api_cost": 0.0008,
            "workload.num_records": 10_000,
            "workload.operations_per_transaction": 4,
            "workload.write_fraction": 0.5,
            "workload.execution_seconds": 0.1,    # on-flight ML inference, offloaded
            "workload.clients": 200,
        },
        duration=duration,
        warmup=min(0.5, duration / 4),
    )
    result = run(spec)

    print(f"fleet of {drones:2d} drones:"
          f"  throughput {result.throughput_txn_per_sec:8,.0f} txn/s"
          f"  mean latency {result.latency.mean * 1000:7.1f} ms"
          f"  executors spawned {result.spawned_executors:5d}"
          f"  cost {result.cents_per_kilo_txn:6.3f} c/ktxn")


def main() -> None:
    print("UAV delivery fleets offloading inference to the serverless cloud")
    print("-" * 78)
    for drones in (4, 16):
        run_fleet(drones)
    print()
    print("A larger fleet pays more consensus cost per request (more drones to")
    print("coordinate) but tolerates more byzantine drones: f_R = (n_R - 1) / 3.")


if __name__ == "__main__":
    main()
