#!/usr/bin/env python3
"""Task-offloading economics (the Figure 8 story).

An edge application whose transactions carry a compute-intensive phase
(video analytics, ML scoring) can either execute everything on its edge
devices (classic replicated PBFT) or offload execution to serverless
executors (ServerlessBFT).  This example quantifies both options — peak
throughput and cents per thousand transactions — first with the analytical
model over the paper's full sweep and then with one measured simulation
point per system.  Both measured points are the *same* ``RunSpec`` with a
different ``system``: the registry builds whichever deployment the name
selects.

Run with:  python examples/offload_economics.py
(CI runs every example with REPRO_EXAMPLE_DURATION=0.4 as a smoke test.)
"""

from _common import example_duration

from repro.api import RunSpec, run
from repro.bench import experiments
from repro.bench.harness import format_table


def model_sweep() -> None:
    table = experiments.task_offloading()
    print(format_table(table, float_format="{:,.2f}"))


def measured_point(execution_ms: int = 100) -> None:
    duration = example_duration(2.0)

    def spec(system: str, execution_threads: int = 16) -> RunSpec:
        return RunSpec(
            system=system,
            base="default",
            overrides={
                "protocol.shim_nodes": 4,
                "protocol.num_executors": 3,
                "protocol.num_executor_regions": 3,
                "protocol.batch_size": 25,
                "protocol.num_clients": 200,
                "protocol.client_groups": 8,
                "workload.num_records": 10_000,
                "workload.clients": 200,
                "workload.execution_seconds": execution_ms / 1000.0,
            },
            execution_threads=execution_threads,
            duration=duration,
            warmup=min(0.4, duration / 5),
        )

    serverless_result = run(spec("serverless_bft"))
    edge_result = run(spec("pbft_replicated", execution_threads=1))

    print(f"\nmeasured point ({execution_ms} ms execution per batch):")
    print(
        f"  ServerlessBFT : {serverless_result.throughput_txn_per_sec:9,.0f} txn/s"
        f"   {serverless_result.cents_per_kilo_txn:8.3f} c/ktxn"
    )
    print(
        f"  PBFT (1 ET)   : {edge_result.throughput_txn_per_sec:9,.0f} txn/s"
        f"   {edge_result.cents_per_kilo_txn:8.3f} c/ktxn"
    )


def main() -> None:
    print("Task offloading: serverless-edge vs edge-only execution")
    print("=" * 70)
    model_sweep()
    measured_point()


if __name__ == "__main__":
    main()
