#!/usr/bin/env python3
"""Task-offloading economics (the Figure 8 story).

An edge application whose transactions carry a compute-intensive phase
(video analytics, ML scoring) can either execute everything on its edge
devices (classic replicated PBFT) or offload execution to serverless
executors (ServerlessBFT).  This example quantifies both options — peak
throughput and cents per thousand transactions — first with the analytical
model over the paper's full sweep and then with one measured simulation
point per system.

Run with:  python examples/offload_economics.py
"""

from repro import ProtocolConfig, ServerlessBFTSimulation, YCSBConfig
from repro.baselines import PBFTReplicatedSimulation
from repro.bench import experiments
from repro.bench.harness import format_table


def model_sweep() -> None:
    table = experiments.task_offloading()
    print(format_table(table, float_format="{:,.2f}"))


def measured_point(execution_ms: int = 100) -> None:
    config = ProtocolConfig(
        shim_nodes=4,
        num_executors=3,
        num_executor_regions=3,
        batch_size=25,
        num_clients=200,
        client_groups=8,
    )
    workload = YCSBConfig(
        num_records=10_000, clients=200, execution_seconds=execution_ms / 1000.0
    )

    serverless = ServerlessBFTSimulation(config, workload=workload, tracer_enabled=False)
    serverless_result = serverless.run(duration=2.0, warmup=0.4)

    edge_only = PBFTReplicatedSimulation(
        config, workload=workload, execution_threads=1, tracer_enabled=False
    )
    edge_result = edge_only.run(duration=2.0, warmup=0.4)

    print(f"\nmeasured point ({execution_ms} ms execution per batch):")
    print(
        f"  ServerlessBFT : {serverless_result.throughput_txn_per_sec:9,.0f} txn/s"
        f"   {serverless_result.cents_per_kilo_txn:8.3f} c/ktxn"
    )
    print(
        f"  PBFT (1 ET)   : {edge_result.throughput_txn_per_sec:9,.0f} txn/s"
        f"   {edge_result.cents_per_kilo_txn:8.3f} c/ktxn"
    )


def main() -> None:
    print("Task offloading: serverless-edge vs edge-only execution")
    print("=" * 70)
    model_sweep()
    measured_point()


if __name__ == "__main__":
    main()
