#!/usr/bin/env python3
"""Byzantine attack drill: inject the paper's attacks and watch the recovery.

Three scenarios from Section V and VI:

1. **Request suppression** — the primary drops every client request.  Client
   timers expire, clients retransmit to the verifier, the verifier broadcasts
   ERROR/REPLACE messages, and the shim replaces the primary via view change.
2. **Fewer executors** — the primary commits requests but spawns only one
   executor, so the verifier never sees f_E + 1 matching VERIFY messages; its
   abort-detection timer blames the primary and triggers a view change.
3. **Byzantine executors** — up to f_E executors return fabricated results
   and flood the verifier with duplicates; the matching quorum filters them
   out and the storage is updated only with the honest result.

Each attack is a *scenario preset* (``request-suppression``,
``fewer-executors``, ``byzantine-executors``, ``verify-flooding``) — the
same names work in sweeps (``python -m repro.sweep run scenario-drills``),
compose with other presets (``scenarios=["request-suppression",
"skewed-ycsb"]``), and keep the run content-addressable, which bespoke
fault objects attached to a ``RunSpec`` never were.

Run with:  python examples/byzantine_attack_drill.py
(CI runs every example with REPRO_EXAMPLE_DURATION=0.4 as a smoke test.)
"""

from _common import example_duration

from repro.api import RunSpec, run

#: Small deployment with tight timeouts so recovery fits in a short run.
#: (The drill presets default to the same aggressive timers; pinning them
#: here keeps the drill reproducible even if the presets evolve.)
BASE_OVERRIDES = {
    "protocol.shim_nodes": 4,
    "protocol.num_executors": 3,
    "protocol.num_executor_regions": 3,
    "protocol.batch_size": 10,
    "protocol.num_clients": 40,
    "protocol.client_groups": 4,
    "protocol.client_timeout": 0.5,
    "protocol.node_request_timeout": 0.8,
    "protocol.verifier_quorum_timeout": 0.5,
    "protocol.retransmission_timeout": 0.5,
    "workload.num_records": 5_000,
    "workload.clients": 40,
}


def drill_spec(duration: float, *scenarios: str) -> RunSpec:
    return RunSpec(
        system="serverless_bft",
        base="default",
        overrides=BASE_OVERRIDES,
        scenarios=scenarios,
        duration=duration,
        warmup=0.0,
    )


def scenario_request_suppression() -> None:
    print("\n[1] Request suppression: byzantine primary drops every request")
    result = run(drill_spec(example_duration(6.0), "request-suppression"))
    print(f"    client retransmissions to the verifier : {result.client_retransmissions}")
    print(f"    verifier ERROR broadcasts               : {result.verifier_errors_sent}")
    print(f"    view changes installed                  : {result.view_changes}")
    print(f"    transactions committed despite attack   : {result.committed_txns}")


def scenario_fewer_executors() -> None:
    print("\n[2] Fewer executors: byzantine primary spawns only 1 of 3 executors")
    result = run(drill_spec(example_duration(6.0), "fewer-executors"))
    print(f"    REPLACE messages from the verifier      : {result.verifier_replace_sent}")
    print(f"    view changes installed                  : {result.view_changes}")
    print(f"    transactions committed despite attack   : {result.committed_txns}")


def scenario_byzantine_executors() -> None:
    print("\n[3] Byzantine executors: f_E executors fabricate results and flood")
    result = run(drill_spec(example_duration(4.0), "byzantine-executors"))
    print(f"    transactions committed                  : {result.committed_txns}")
    print(f"    transactions aborted                    : {result.aborted_txns}")
    print(f"    duplicate/ignored VERIFY messages       : {result.verifier_ignored_verify}")

    result = run(drill_spec(example_duration(4.0), "verify-flooding"))
    print(f"    with flooding executors, ignored VERIFY : {result.verifier_ignored_verify}")
    print(f"    throughput still sustained              : {result.throughput_txn_per_sec:,.0f} txn/s")


def main() -> None:
    print("ServerlessBFT byzantine attack drill")
    print("=" * 60)
    scenario_request_suppression()
    scenario_fewer_executors()
    scenario_byzantine_executors()


if __name__ == "__main__":
    main()
