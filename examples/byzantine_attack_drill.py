#!/usr/bin/env python3
"""Byzantine attack drill: inject the paper's attacks and watch the recovery.

Three scenarios from Section V and VI:

1. **Request suppression** — the primary drops every client request.  Client
   timers expire, clients retransmit to the verifier, the verifier broadcasts
   ERROR/REPLACE messages, and the shim replaces the primary via view change.
2. **Fewer executors** — the primary commits requests but spawns only one
   executor, so the verifier never sees f_E + 1 matching VERIFY messages; its
   abort-detection timer blames the primary and triggers a view change.
3. **Byzantine executors** — up to f_E executors return fabricated results
   and flood the verifier with duplicates; the matching quorum filters them
   out and the storage is updated only with the honest result.

The bespoke fault objects attach directly to the :class:`repro.api.RunSpec`
(``node_behaviours`` / ``executor_behaviour_factory``) — the facade
validates them against the selected system's declared capabilities, so the
same spec would fail loudly on a system that cannot host the fault.

Run with:  python examples/byzantine_attack_drill.py
(CI runs every example with REPRO_EXAMPLE_DURATION=0.4 as a smoke test.)
"""

from _common import example_duration

from repro.api import RunSpec, run
from repro.faults.byzantine import (
    DuplicateVerifyBehaviour,
    FewerExecutorsBehaviour,
    RequestIgnoranceBehaviour,
    WrongResultBehaviour,
)
from repro.faults.injector import PerBatchExecutorFaults

#: Small deployment with tight timeouts so recovery fits in a short run.
BASE_OVERRIDES = {
    "protocol.shim_nodes": 4,
    "protocol.num_executors": 3,
    "protocol.num_executor_regions": 3,
    "protocol.batch_size": 10,
    "protocol.num_clients": 40,
    "protocol.client_groups": 4,
    "protocol.client_timeout": 0.5,
    "protocol.node_request_timeout": 0.8,
    "protocol.verifier_quorum_timeout": 0.5,
    "protocol.retransmission_timeout": 0.5,
    "workload.num_records": 5_000,
    "workload.clients": 40,
}


def drill_spec(duration: float, **fault_kwargs) -> RunSpec:
    return RunSpec(
        system="serverless_bft",
        base="default",
        overrides=BASE_OVERRIDES,
        duration=duration,
        warmup=0.0,
        **fault_kwargs,
    )


def scenario_request_suppression() -> None:
    print("\n[1] Request suppression: byzantine primary drops every request")
    result = run(drill_spec(
        example_duration(6.0),
        node_behaviours={"node-0": RequestIgnoranceBehaviour(drop_every=1)},
    ))
    print(f"    client retransmissions to the verifier : {result.client_retransmissions}")
    print(f"    verifier ERROR broadcasts               : {result.verifier_errors_sent}")
    print(f"    view changes installed                  : {result.view_changes}")
    print(f"    transactions committed despite attack   : {result.committed_txns}")


def scenario_fewer_executors() -> None:
    print("\n[2] Fewer executors: byzantine primary spawns only 1 of 3 executors")
    result = run(drill_spec(
        example_duration(6.0),
        node_behaviours={"node-0": FewerExecutorsBehaviour(spawn_at_most=1)},
    ))
    print(f"    REPLACE messages from the verifier      : {result.verifier_replace_sent}")
    print(f"    view changes installed                  : {result.view_changes}")
    print(f"    transactions committed despite attack   : {result.committed_txns}")


def scenario_byzantine_executors() -> None:
    print("\n[3] Byzantine executors: f_E executors fabricate results and flood")
    wrong_result = PerBatchExecutorFaults(count=1, behaviour_factory=WrongResultBehaviour)
    result = run(drill_spec(
        example_duration(4.0), executor_behaviour_factory=wrong_result
    ))
    print(f"    transactions committed                  : {result.committed_txns}")
    print(f"    transactions aborted                    : {result.aborted_txns}")
    print(f"    duplicate/ignored VERIFY messages       : {result.verifier_ignored_verify}")

    flooding = PerBatchExecutorFaults(
        count=1, behaviour_factory=lambda: DuplicateVerifyBehaviour(copies=10)
    )
    result = run(drill_spec(
        example_duration(4.0), executor_behaviour_factory=flooding
    ))
    print(f"    with flooding executors, ignored VERIFY : {result.verifier_ignored_verify}")
    print(f"    throughput still sustained              : {result.throughput_txn_per_sec:,.0f} txn/s")


def main() -> None:
    print("ServerlessBFT byzantine attack drill")
    print("=" * 60)
    scenario_request_suppression()
    scenario_fewer_executors()
    scenario_byzantine_executors()


if __name__ == "__main__":
    main()
