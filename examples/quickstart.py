#!/usr/bin/env python3
"""Quickstart: run a small ServerlessBFT deployment end to end.

One :class:`repro.api.RunSpec` declares the whole experiment — the system
(any name in the registry), dotted-key overrides for the protocol and the
workload, optional scenario presets, seed, and duration — and
``repro.api.run`` builds the full serverless-edge architecture (clients, a
4-node PBFT shim, a serverless cloud spawning 3 executors per batch in 3
regions, the trusted verifier, the on-premise storage), runs it for a few
seconds of virtual time, and returns the metrics the paper reports.

Run with:  python examples/quickstart.py
(CI runs every example with REPRO_EXAMPLE_DURATION=0.4 as a smoke test.)
"""

from _common import example_duration

from repro.api import RunSpec, run


def main() -> None:
    spec = RunSpec(
        system="serverless_bft",
        base="default",
        overrides={
            "protocol.shim_nodes": 4,           # n_R = 3 f_R + 1 with f_R = 1
            "protocol.num_executors": 3,        # n_E = 2 f_E + 1 with f_E = 1
            "protocol.num_executor_regions": 3,
            "protocol.batch_size": 50,
            "protocol.num_clients": 400,
            "protocol.client_groups": 8,
            "workload.num_records": 10_000,
            "workload.operations_per_transaction": 4,
            "workload.write_fraction": 0.5,
            "workload.clients": 400,
        },
        duration=example_duration(3.0),
        warmup=min(0.5, example_duration(3.0) / 4),
    )
    result = run(spec)

    print("ServerlessBFT quickstart")
    print("-" * 40)
    print(f"committed transactions : {result.committed_txns}")
    print(f"aborted transactions   : {result.aborted_txns}")
    print(f"throughput             : {result.throughput_txn_per_sec:,.0f} txn/s")
    print(f"mean latency           : {result.latency.mean * 1000:.1f} ms")
    print(f"p99 latency            : {result.latency.p99 * 1000:.1f} ms")
    print(f"executors spawned      : {result.spawned_executors}")
    print(f"view changes           : {result.view_changes}")
    print(f"lambda invocations     : {result.billing.lambda_invocations}")
    print(f"monetary cost          : {result.cents_per_kilo_txn:.3f} cents per 1k txns")


if __name__ == "__main__":
    main()
