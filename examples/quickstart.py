#!/usr/bin/env python3
"""Quickstart: run a small ServerlessBFT deployment end to end.

Builds the full serverless-edge architecture — clients, a 4-node shim
running PBFT, a serverless cloud spawning 3 executors per batch in 3
regions, the trusted verifier, and the on-premise storage — runs it for a
few seconds of virtual time, and prints the metrics the paper reports.

Run with:  python examples/quickstart.py
"""

from repro import ProtocolConfig, ServerlessBFTSimulation, YCSBConfig


def main() -> None:
    config = ProtocolConfig(
        shim_nodes=4,          # n_R = 3 f_R + 1 with f_R = 1
        num_executors=3,       # n_E = 2 f_E + 1 with f_E = 1
        num_executor_regions=3,
        batch_size=50,
        num_clients=400,
        client_groups=8,
    )
    workload = YCSBConfig(
        num_records=10_000,
        operations_per_transaction=4,
        write_fraction=0.5,
        clients=400,
    )

    simulation = ServerlessBFTSimulation(config, workload=workload)
    result = simulation.run(duration=3.0, warmup=0.5)

    print("ServerlessBFT quickstart")
    print("-" * 40)
    print(f"committed transactions : {result.committed_txns}")
    print(f"aborted transactions   : {result.aborted_txns}")
    print(f"throughput             : {result.throughput_txn_per_sec:,.0f} txn/s")
    print(f"mean latency           : {result.latency.mean * 1000:.1f} ms")
    print(f"p99 latency            : {result.latency.p99 * 1000:.1f} ms")
    print(f"executors spawned      : {result.spawned_executors}")
    print(f"view changes           : {result.view_changes}")
    print(f"lambda invocations     : {result.billing.lambda_invocations}")
    print(f"monetary cost          : {result.cents_per_kilo_txn:.3f} cents per 1k txns")


if __name__ == "__main__":
    main()
