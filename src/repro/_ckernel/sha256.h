/* Minimal SHA-256 (FIPS 180-4) for the compiled kernel fast path.
 *
 * The extension hashes canonical payloads without round-tripping through
 * hashlib objects; `tests/test_kernel.py` pins this implementation
 * bit-identical to hashlib.sha256 across empty/boundary/multi-block and
 * randomised inputs.  Portable C99, no endianness assumptions.
 */
#ifndef REPRO_CKERNEL_SHA256_H
#define REPRO_CKERNEL_SHA256_H

#include <stddef.h>
#include <stdint.h>

typedef struct {
    uint32_t state[8];
    uint64_t total_len;   /* bytes processed so far */
    uint8_t buffer[64];
    size_t buffer_len;
} repro_sha256_ctx;

void repro_sha256_init(repro_sha256_ctx *ctx);
void repro_sha256_update(repro_sha256_ctx *ctx, const uint8_t *data, size_t len);
void repro_sha256_final(repro_sha256_ctx *ctx, uint8_t digest[32]);

/* One-shot helper: hex-encode the digest of `data` into `hex` (64 chars +
 * NUL), lowercase — the same text hashlib's hexdigest() returns. */
void repro_sha256_hex(const uint8_t *data, size_t len, char hex[65]);

#endif /* REPRO_CKERNEL_SHA256_H */
