"""Optional compiled kernel package.

The only module allowed to import :mod:`repro._ckernel._impl` is the
chooser, :mod:`repro.kernel` (enforced by lint rule KER006).  Everything
else — executor, workload, hashing — goes through the chooser so the
pure-Python implementations remain authoritative and the extension stays
strictly optional.
"""
