/* SHA-256 (FIPS 180-4).  See sha256.h for why this is hand-rolled. */

#include "sha256.h"

#include <string.h>

static const uint32_t K[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u,
    0x3956c25bu, 0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u,
    0xd807aa98u, 0x12835b01u, 0x243185beu, 0x550c7dc3u,
    0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u, 0xc19bf174u,
    0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau,
    0x983e5152u, 0xa831c66du, 0xb00327c8u, 0xbf597fc7u,
    0xc6e00bf3u, 0xd5a79147u, 0x06ca6351u, 0x14292967u,
    0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu, 0x53380d13u,
    0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u,
    0xd192e819u, 0xd6990624u, 0xf40e3585u, 0x106aa070u,
    0x19a4c116u, 0x1e376c08u, 0x2748774cu, 0x34b0bcb5u,
    0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu, 0x682e6ff3u,
    0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

#define ROTR(x, n) (((x) >> (n)) | ((x) << (32 - (n))))
#define SHR(x, n) ((x) >> (n))
#define CH(x, y, z) (((x) & (y)) ^ (~(x) & (z)))
#define MAJ(x, y, z) (((x) & (y)) ^ ((x) & (z)) ^ ((y) & (z)))
#define BSIG0(x) (ROTR(x, 2) ^ ROTR(x, 13) ^ ROTR(x, 22))
#define BSIG1(x) (ROTR(x, 6) ^ ROTR(x, 11) ^ ROTR(x, 25))
#define SSIG0(x) (ROTR(x, 7) ^ ROTR(x, 18) ^ SHR(x, 3))
#define SSIG1(x) (ROTR(x, 17) ^ ROTR(x, 19) ^ SHR(x, 10))

static void
sha256_transform(repro_sha256_ctx *ctx, const uint8_t block[64])
{
    uint32_t w[64];
    uint32_t a, b, c, d, e, f, g, h;
    int i;

    for (i = 0; i < 16; i++) {
        w[i] = ((uint32_t)block[i * 4] << 24)
             | ((uint32_t)block[i * 4 + 1] << 16)
             | ((uint32_t)block[i * 4 + 2] << 8)
             | ((uint32_t)block[i * 4 + 3]);
    }
    for (i = 16; i < 64; i++) {
        w[i] = SSIG1(w[i - 2]) + w[i - 7] + SSIG0(w[i - 15]) + w[i - 16];
    }

    a = ctx->state[0];
    b = ctx->state[1];
    c = ctx->state[2];
    d = ctx->state[3];
    e = ctx->state[4];
    f = ctx->state[5];
    g = ctx->state[6];
    h = ctx->state[7];

    for (i = 0; i < 64; i++) {
        uint32_t t1 = h + BSIG1(e) + CH(e, f, g) + K[i] + w[i];
        uint32_t t2 = BSIG0(a) + MAJ(a, b, c);
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }

    ctx->state[0] += a;
    ctx->state[1] += b;
    ctx->state[2] += c;
    ctx->state[3] += d;
    ctx->state[4] += e;
    ctx->state[5] += f;
    ctx->state[6] += g;
    ctx->state[7] += h;
}

void
repro_sha256_init(repro_sha256_ctx *ctx)
{
    ctx->state[0] = 0x6a09e667u;
    ctx->state[1] = 0xbb67ae85u;
    ctx->state[2] = 0x3c6ef372u;
    ctx->state[3] = 0xa54ff53au;
    ctx->state[4] = 0x510e527fu;
    ctx->state[5] = 0x9b05688cu;
    ctx->state[6] = 0x1f83d9abu;
    ctx->state[7] = 0x5be0cd19u;
    ctx->total_len = 0;
    ctx->buffer_len = 0;
}

void
repro_sha256_update(repro_sha256_ctx *ctx, const uint8_t *data, size_t len)
{
    ctx->total_len += (uint64_t)len;
    if (ctx->buffer_len > 0) {
        size_t fill = 64 - ctx->buffer_len;
        if (fill > len) {
            fill = len;
        }
        memcpy(ctx->buffer + ctx->buffer_len, data, fill);
        ctx->buffer_len += fill;
        data += fill;
        len -= fill;
        if (ctx->buffer_len == 64) {
            sha256_transform(ctx, ctx->buffer);
            ctx->buffer_len = 0;
        }
    }
    while (len >= 64) {
        sha256_transform(ctx, data);
        data += 64;
        len -= 64;
    }
    if (len > 0) {
        memcpy(ctx->buffer, data, len);
        ctx->buffer_len = len;
    }
}

void
repro_sha256_final(repro_sha256_ctx *ctx, uint8_t digest[32])
{
    uint64_t bit_len = ctx->total_len * 8;
    uint8_t pad = 0x80;
    uint8_t zero = 0x00;
    uint8_t length_block[8];
    int i;

    repro_sha256_update(ctx, &pad, 1);
    while (ctx->buffer_len != 56) {
        /* update() keeps total_len growing; undo the padding's effect on
         * the recorded message length afterwards via the saved bit_len. */
        repro_sha256_update(ctx, &zero, 1);
    }
    for (i = 0; i < 8; i++) {
        length_block[i] = (uint8_t)(bit_len >> (56 - 8 * i));
    }
    repro_sha256_update(ctx, length_block, 8);
    for (i = 0; i < 8; i++) {
        digest[i * 4] = (uint8_t)(ctx->state[i] >> 24);
        digest[i * 4 + 1] = (uint8_t)(ctx->state[i] >> 16);
        digest[i * 4 + 2] = (uint8_t)(ctx->state[i] >> 8);
        digest[i * 4 + 3] = (uint8_t)(ctx->state[i]);
    }
}

void
repro_sha256_hex(const uint8_t *data, size_t len, char hex[65])
{
    static const char table[] = "0123456789abcdef";
    repro_sha256_ctx ctx;
    uint8_t digest[32];
    int i;

    repro_sha256_init(&ctx);
    repro_sha256_update(&ctx, data, len);
    repro_sha256_final(&ctx, digest);
    for (i = 0; i < 32; i++) {
        hex[i * 2] = table[digest[i] >> 4];
        hex[i * 2 + 1] = table[digest[i] & 0x0f];
    }
    hex[64] = '\0';
}
