/* repro._ckernel._impl — hand-written CPython fast path for the three
 * handler-bound floors of the simulator (see PERFORMANCE.md):
 *
 *   1. execute_batch      — deterministic batch execution over the
 *                           Operation/VersionedValue namedtuple layout with
 *                           single-pass canonical-chunk accumulation and an
 *                           in-C SHA-256, byte-identical to the Python loop;
 *   2. generate_transactions — YCSB transaction generation, drawing through
 *                           the *same* random.Random.getrandbits rejection
 *                           loop as sim/rng.bounded_int_fn so the draw
 *                           sequence is bit-identical, with C-side key/value
 *                           formatting and transaction assembly;
 *   3. canonical_bytes / digest / cached_digest — canonical-byte and digest
 *                           construction for crypto/hashing.py (str/bytes/
 *                           canonical() payloads fully in C, the JSON path
 *                           delegated to a configured Python fallback).
 *
 * The module is OPTIONAL: nothing imports it directly except
 * repro/kernel.py (the chooser — lint rule KER006 enforces this), and every
 * accelerated call-site keeps the authoritative pure-Python implementation
 * as its fallback.  Bit-identity C-vs-Python is gated by
 * tests/test_kernel.py and CI's kernel-smoke job.
 *
 * BUILD_TAG below must match repro.kernel.KERNEL_BUILD_TAG; bump both when
 * the calling convention changes so a stale .so is rejected, not crashed.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include "sha256.h"

#define CKERNEL_BUILD_TAG "repro-ckernel-1"

/* ------------------------------------------------------------------ state */

/* Configured by repro/kernel.py and the chooser's consumers at import time
 * (single-interpreter process-global state, like repro.perf.PERF itself). */
static PyObject *g_perf = NULL;              /* repro.perf.PERF instance */
static PyObject *g_operation_type = NULL;    /* workload.transactions.Operation */
static PyObject *g_transaction_type = NULL;  /* workload.transactions.Transaction */
static PyObject *g_txn_result_type = NULL;   /* workload.transactions.TransactionResult */
static PyObject *g_canonical_fallback = NULL; /* hashing's JSON canonicaliser */
static PyObject *g_sha256_factory = NULL;    /* hashlib.sha256 — when bound, all
    digests route through it (CPython's SHA-256 ships vendor-optimised
    assembly the portable sha256.c cannot match); sha256.c remains the
    self-contained fallback and the parity hook's subject */
static PyObject *g_digest_attr = NULL;       /* "_repro_cached_digest" */

static PyObject *g_empty_tuple = NULL;
static PyObject *g_zero = NULL;              /* PyLong 0 (versions default) */

/* Interned attribute/counter names. */
static PyObject *s_digests_computed, *s_digest_cache_hits, *s_ckernel_digests;
static PyObject *s_txn_id, *s_client_id, *s_operations, *s_execution_seconds,
    *s_rw_sets_known, *s_origin, *s_request_id, *s_sorted_keys,
    *s_sorted_keys_memo, *s_canonical, *s_canonical_memo, *s_batch_id,
    *s_transactions, *s_writes, *s_read_versions, *s_hexdigest;
static PyObject *s_uniform_only, *s_has_conflicts, *s_conflict_fraction,
    *s_chance, *s_build_operations, *s_client_ids, *s_client_starts,
    *s_write_flags, *s_hot_count, *s_private_modulus, *s_partition_size,
    *s_num_records, *s_key_strings, *s_wl_execution_seconds, *s_wl_rw_sets_known,
    *s_next_txn_index, *s_rng, *s_getrandbits, *s_value_bound, *s_client_bound;

/* -------------------------------------------------------------- utilities */

static int
perf_bump(PyObject *name, long delta)
{
    PyObject *current, *updated;
    int result;

    if (g_perf == NULL) {
        return 0; /* not configured: counters silently off, never a crash */
    }
    current = PyObject_GetAttr(g_perf, name);
    if (current == NULL) {
        return -1;
    }
    updated = PyNumber_Add(current, PyLong_FromLong(delta));
    Py_DECREF(current);
    if (updated == NULL) {
        return -1;
    }
    result = PyObject_SetAttr(g_perf, name, updated);
    Py_DECREF(updated);
    return result;
}

/* Python's `%` for a non-negative modulus (operands here are always
 * non-negative in practice; the adjustment is insurance, not behaviour). */
static long
py_mod(long value, long modulus)
{
    long r = value % modulus;
    if (r < 0) {
        r += modulus;
    }
    return r;
}

static int
bit_length(long width)
{
    int bits = 0;
    unsigned long v = (unsigned long)width;
    while (v > 0) {
        bits++;
        v >>= 1;
    }
    return bits;
}

/* The exact rejection loop of random.Random._randbelow_with_getrandbits /
 * sim/rng.bounded_int_fn: draw `bits` bits until the value is < width.
 * Returns -1 with an exception set on error (valid draws are >= 0). */
static long
draw_bounded(PyObject *getrandbits, PyObject *bits_obj, long width)
{
    for (;;) {
        PyObject *value_obj = PyObject_CallOneArg(getrandbits, bits_obj);
        long value;

        if (value_obj == NULL) {
            return -1;
        }
        value = PyLong_AsLong(value_obj);
        Py_DECREF(value_obj);
        if (value == -1 && PyErr_Occurred()) {
            return -1;
        }
        if (value < width) {
            return value;
        }
    }
}

/* ------------------------------------------------------- growable buffer */

typedef struct {
    char *data;
    Py_ssize_t len;
    Py_ssize_t cap;
} buf_t;

static int
buf_init(buf_t *buf, Py_ssize_t cap)
{
    buf->data = (char *)PyMem_Malloc((size_t)cap);
    if (buf->data == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    buf->len = 0;
    buf->cap = cap;
    return 0;
}

static void
buf_free(buf_t *buf)
{
    PyMem_Free(buf->data);
    buf->data = NULL;
}

static int
buf_reserve(buf_t *buf, Py_ssize_t extra)
{
    Py_ssize_t needed = buf->len + extra;
    Py_ssize_t cap;
    char *grown;

    if (needed <= buf->cap) {
        return 0;
    }
    cap = buf->cap;
    while (cap < needed) {
        cap += cap >> 1; /* x1.5 growth */
    }
    grown = (char *)PyMem_Realloc(buf->data, (size_t)cap);
    if (grown == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    buf->data = grown;
    buf->cap = cap;
    return 0;
}

static int
buf_append(buf_t *buf, const char *bytes, Py_ssize_t len)
{
    if (buf_reserve(buf, len) < 0) {
        return -1;
    }
    memcpy(buf->data + buf->len, bytes, (size_t)len);
    buf->len += len;
    return 0;
}

static int
buf_append_char(buf_t *buf, char ch)
{
    if (buf_reserve(buf, 1) < 0) {
        return -1;
    }
    buf->data[buf->len++] = ch;
    return 0;
}

/* Append str(obj) as UTF-8 — what an f-string interpolation contributes.
 * (UTF-8 encoding distributes over concatenation, so appending pieces is
 * byte-identical to building the full str first and encoding once.) */
static int
buf_append_str_obj(buf_t *buf, PyObject *obj)
{
    PyObject *text = obj;
    const char *utf8;
    Py_ssize_t size;
    int result;

    if (PyUnicode_CheckExact(obj)) {
        Py_INCREF(text);
    }
    else {
        text = PyObject_Str(obj);
        if (text == NULL) {
            return -1;
        }
    }
    utf8 = PyUnicode_AsUTF8AndSize(text, &size);
    if (utf8 == NULL) {
        Py_DECREF(text);
        return -1;
    }
    result = buf_append(buf, utf8, size);
    Py_DECREF(text);
    return result;
}

static int
buf_append_long(buf_t *buf, long value)
{
    char digits[32];
    int written = snprintf(digits, sizeof(digits), "%ld", value);
    return buf_append(buf, digits, (Py_ssize_t)written);
}

/* Hex SHA-256 of a bytes object (== hashlib hexdigest output).  Prefers
 * the configured hashlib factory; the in-tree sha256.c is the fallback. */
static PyObject *
bytes_sha256_hex(PyObject *payload)
{
    if (g_sha256_factory != NULL) {
        PyObject *hasher = PyObject_CallOneArg(g_sha256_factory, payload);
        PyObject *hex;

        if (hasher == NULL) {
            return NULL;
        }
        hex = PyObject_CallMethodNoArgs(hasher, s_hexdigest);
        Py_DECREF(hasher);
        return hex;
    }
    {
        char hex[65];
        repro_sha256_hex((const uint8_t *)PyBytes_AS_STRING(payload),
                         (size_t)PyBytes_GET_SIZE(payload), hex);
        return PyUnicode_FromStringAndSize(hex, 64);
    }
}

/* Hex SHA-256 of the buffer as a new str (== hashlib hexdigest output). */
static PyObject *
buf_sha256_hex(const buf_t *buf)
{
    if (g_sha256_factory != NULL) {
        PyObject *payload = PyBytes_FromStringAndSize(buf->data, buf->len);
        PyObject *hex;

        if (payload == NULL) {
            return NULL;
        }
        hex = bytes_sha256_hex(payload);
        Py_DECREF(payload);
        return hex;
    }
    {
        char hex[65];
        repro_sha256_hex((const uint8_t *)buf->data, (size_t)buf->len, hex);
        return PyUnicode_FromStringAndSize(hex, 64);
    }
}

/* ------------------------------------------------- floor 3: canonical/digest */

/* The str/bytes/canonical() fast path of hashing.canonical_bytes; anything
 * else goes to the configured Python JSON fallback.  Returns new bytes. */
static PyObject *
canonical_bytes_inner(PyObject *value)
{
    PyObject *current = value;
    PyObject *result;

    Py_INCREF(current);
    for (;;) {
        PyObject *canonical_method, *next;

        if (PyBytes_Check(current)) {
            return current;
        }
        if (PyUnicode_Check(current)) {
            result = PyUnicode_AsUTF8String(current);
            Py_DECREF(current);
            return result;
        }
        canonical_method = PyObject_GetAttr(current, s_canonical);
        if (canonical_method == NULL) {
            if (!PyErr_ExceptionMatches(PyExc_AttributeError)) {
                Py_DECREF(current);
                return NULL;
            }
            PyErr_Clear();
            break;
        }
        if (!PyCallable_Check(canonical_method)) {
            Py_DECREF(canonical_method);
            break;
        }
        next = PyObject_CallNoArgs(canonical_method);
        Py_DECREF(canonical_method);
        if (next == NULL) {
            Py_DECREF(current);
            return NULL;
        }
        Py_DECREF(current);
        current = next;
    }
    if (g_canonical_fallback == NULL) {
        Py_DECREF(current);
        PyErr_SetString(PyExc_RuntimeError,
                        "_ckernel hashing not configured (call configure_hashing)");
        return NULL;
    }
    result = PyObject_CallOneArg(g_canonical_fallback, current);
    Py_DECREF(current);
    if (result != NULL && !PyBytes_Check(result)) {
        Py_DECREF(result);
        PyErr_SetString(PyExc_TypeError,
                        "canonical fallback must return bytes");
        return NULL;
    }
    return result;
}

static PyObject *
digest_inner(PyObject *value)
{
    PyObject *payload = canonical_bytes_inner(value);
    PyObject *result;

    if (payload == NULL) {
        return NULL;
    }
    if (perf_bump(s_digests_computed, 1) < 0 ||
        perf_bump(s_ckernel_digests, 1) < 0) {
        Py_DECREF(payload);
        return NULL;
    }
    result = bytes_sha256_hex(payload);
    Py_DECREF(payload);
    return result;
}

static PyObject *
ck_canonical_bytes(PyObject *self, PyObject *value)
{
    (void)self;
    return canonical_bytes_inner(value);
}

static PyObject *
ck_digest(PyObject *self, PyObject *value)
{
    (void)self;
    return digest_inner(value);
}

static PyObject *
ck_cached_digest(PyObject *self, PyObject *value)
{
    PyObject *memo, *computed;

    (void)self;
    if (g_digest_attr == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "_ckernel hashing not configured (call configure_hashing)");
        return NULL;
    }
    memo = PyObject_GetAttr(value, g_digest_attr);
    if (memo != NULL) {
        if (memo != Py_None) {
            if (perf_bump(s_digest_cache_hits, 1) < 0) {
                Py_DECREF(memo);
                return NULL;
            }
            return memo;
        }
        Py_DECREF(memo);
    }
    else {
        if (!PyErr_ExceptionMatches(PyExc_AttributeError)) {
            return NULL;
        }
        PyErr_Clear();
    }
    computed = digest_inner(value);
    if (computed == NULL) {
        return NULL;
    }
    /* object.__setattr__ semantics: works on frozen dataclasses, fails
     * harmlessly on memo-less payloads (str, tuple, slotted). */
    if (PyObject_GenericSetAttr(value, g_digest_attr, computed) < 0) {
        if (PyErr_ExceptionMatches(PyExc_AttributeError) ||
            PyErr_ExceptionMatches(PyExc_TypeError)) {
            PyErr_Clear();
        }
        else {
            Py_DECREF(computed);
            return NULL;
        }
    }
    return computed;
}

static PyObject *
ck_sha256_hex(PyObject *self, PyObject *value)
{
    char hex[65];

    (void)self;
    if (PyBytes_Check(value)) {
        repro_sha256_hex((const uint8_t *)PyBytes_AS_STRING(value),
                         (size_t)PyBytes_GET_SIZE(value), hex);
    }
    else if (PyUnicode_Check(value)) {
        Py_ssize_t size;
        const char *utf8 = PyUnicode_AsUTF8AndSize(value, &size);
        if (utf8 == NULL) {
            return NULL;
        }
        repro_sha256_hex((const uint8_t *)utf8, (size_t)size, hex);
    }
    else {
        PyErr_SetString(PyExc_TypeError, "sha256_hex expects bytes or str");
        return NULL;
    }
    return PyUnicode_FromStringAndSize(hex, 64);
}

/* ------------------------------------------------ floor 1: execute_batch */

/* Byte-identical mirror of transactions.execute_batch's chunk discipline:
 *   chunks = [batch_id]
 *   per operation: f"{key}={read_values.get(key, '')}"
 *                  plus, for writes, new_value = f"{value}:{txn_id}"
 *   per sorted key: f"{key}@{read_versions.get(key, 0)}"
 *   digest = sha256("".join(chunks).encode("utf-8"))
 */
static PyObject *
ck_execute_batch(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *batch_id, *transactions, *read_values, *read_versions;
    PyObject *txn_fast = NULL, *results = NULL, *digest_hex = NULL, *out = NULL;
    Py_ssize_t txn_count, i;
    buf_t buf;
    PyTypeObject *result_type;

    (void)self;
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "execute_batch expects (batch_id, transactions, "
                        "read_values, read_versions)");
        return NULL;
    }
    if (g_txn_result_type == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "_ckernel types not configured (call configure_types)");
        return NULL;
    }
    batch_id = args[0];
    transactions = args[1];
    read_values = args[2];
    read_versions = args[3];
    if (!PyDict_Check(read_values) || !PyDict_Check(read_versions)) {
        PyErr_SetString(PyExc_TypeError,
                        "execute_batch expects dict read_values/read_versions");
        return NULL;
    }
    result_type = (PyTypeObject *)g_txn_result_type;

    if (buf_init(&buf, 8192) < 0) {
        return NULL;
    }
    if (buf_append_str_obj(&buf, batch_id) < 0) {
        goto error;
    }

    txn_fast = PySequence_Fast(transactions, "transactions must be a sequence");
    if (txn_fast == NULL) {
        goto error;
    }
    txn_count = PySequence_Fast_GET_SIZE(txn_fast);
    results = PyTuple_New(txn_count);
    if (results == NULL) {
        goto error;
    }

    for (i = 0; i < txn_count; i++) {
        PyObject *txn = PySequence_Fast_GET_ITEM(txn_fast, i);
        PyObject *txn_id = NULL, *operations = NULL, *ops_fast = NULL;
        PyObject *writes = NULL, *observed = NULL, *sorted_keys = NULL;
        PyObject *keys_fast = NULL, *txn_result = NULL, *result_dict = NULL;
        PyObject *key_accum = NULL;
        Py_ssize_t op_count, key_count, j;

        txn_id = PyObject_GetAttr(txn, s_txn_id);
        if (txn_id == NULL) {
            goto error;
        }
        operations = PyObject_GetAttr(txn, s_operations);
        if (operations == NULL) {
            goto txn_error;
        }
        ops_fast = PySequence_Fast(operations, "operations must be a sequence");
        if (ops_fast == NULL) {
            goto txn_error;
        }
        writes = PyDict_New();
        if (writes == NULL) {
            goto txn_error;
        }
        /* The sorted_keys property memoises its value as ``_sorted_keys``
         * in the instance dict, but a property is a data descriptor, so
         * going through it costs a Python frame per access.  Read the memo
         * straight out of the instance dict; on a miss (first execution of
         * the transaction) the op walk below collects the keys and the
         * sorted tuple is built and memoised right here in C. */
        {
            PyObject *txn_dict = PyObject_GenericGetDict(txn, NULL);

            if (txn_dict == NULL) {
                PyErr_Clear();
            }
            else {
                sorted_keys = PyDict_GetItemWithError(txn_dict, s_sorted_keys_memo);
                Py_XINCREF(sorted_keys);
                Py_DECREF(txn_dict);
                if (sorted_keys == NULL && PyErr_Occurred()) {
                    goto txn_error;
                }
            }
        }
        if (sorted_keys == NULL) {
            key_accum = PyList_New(0);
            if (key_accum == NULL) {
                goto txn_error;
            }
        }
        op_count = PySequence_Fast_GET_SIZE(ops_fast);
        for (j = 0; j < op_count; j++) {
            PyObject *op = PySequence_Fast_GET_ITEM(ops_fast, j);
            PyObject *key, *is_write, *value, *read_value;
            int truth;

            if (!PyTuple_Check(op) || PyTuple_GET_SIZE(op) < 3) {
                PyErr_SetString(PyExc_TypeError,
                                "operation must be a (key, is_write, value) tuple");
                goto txn_error;
            }
            key = PyTuple_GET_ITEM(op, 0);
            is_write = PyTuple_GET_ITEM(op, 1);
            value = PyTuple_GET_ITEM(op, 2);

            if (key_accum != NULL && PyList_Append(key_accum, key) < 0) {
                goto txn_error;
            }
            read_value = PyDict_GetItemWithError(read_values, key); /* borrowed */
            if (read_value == NULL && PyErr_Occurred()) {
                goto txn_error;
            }
            if (buf_append_str_obj(&buf, key) < 0 ||
                buf_append_char(&buf, '=') < 0) {
                goto txn_error;
            }
            if (read_value != NULL && buf_append_str_obj(&buf, read_value) < 0) {
                goto txn_error;
            }
            truth = PyObject_IsTrue(is_write);
            if (truth < 0) {
                goto txn_error;
            }
            if (truth) {
                /* new_value = f"{value}:{txn_id}" */
                PyObject *value_str, *new_value;

                if (PyUnicode_CheckExact(value)) {
                    value_str = value;
                    Py_INCREF(value_str);
                }
                else {
                    value_str = PyObject_Str(value);
                    if (value_str == NULL) {
                        goto txn_error;
                    }
                }
                new_value = PyUnicode_FromFormat("%U:%S", value_str, txn_id);
                Py_DECREF(value_str);
                if (new_value == NULL) {
                    goto txn_error;
                }
                if (PyDict_SetItem(writes, key, new_value) < 0 ||
                    buf_append_str_obj(&buf, new_value) < 0) {
                    Py_DECREF(new_value);
                    goto txn_error;
                }
                Py_DECREF(new_value);
            }
        }

        observed = PyDict_New();
        if (observed == NULL) {
            goto txn_error;
        }
        if (sorted_keys == NULL) {
            /* tuple(sorted({key, ...})) without the property's Python
             * frame: sort, then drop adjacent duplicates — hash-based and
             * comparison-based dedup agree for the str keys used here. */
            Py_ssize_t n, k, kept = 0;

            if (PyList_Sort(key_accum) < 0) {
                goto txn_error;
            }
            n = PyList_GET_SIZE(key_accum);
            for (k = 0; k < n; k++) {
                PyObject *item = PyList_GET_ITEM(key_accum, k);
                int duplicate = 0;

                if (kept > 0) {
                    duplicate = PyObject_RichCompareBool(
                        PyList_GET_ITEM(key_accum, kept - 1), item, Py_EQ);
                    if (duplicate < 0) {
                        goto txn_error;
                    }
                }
                if (!duplicate) {
                    if (k != kept) {
                        Py_INCREF(item);
                        PyList_SetItem(key_accum, kept, item);
                    }
                    kept++;
                }
            }
            if (PyList_SetSlice(key_accum, kept, n, NULL) < 0) {
                goto txn_error;
            }
            sorted_keys = PyList_AsTuple(key_accum);
            if (sorted_keys == NULL) {
                goto txn_error;
            }
            if (PyObject_GenericSetAttr(txn, s_sorted_keys_memo, sorted_keys) < 0) {
                PyErr_Clear(); /* memo-less instances just recompute */
            }
        }
        keys_fast = PySequence_Fast(sorted_keys, "sorted_keys must be a sequence");
        if (keys_fast == NULL) {
            goto txn_error;
        }
        key_count = PySequence_Fast_GET_SIZE(keys_fast);
        for (j = 0; j < key_count; j++) {
            PyObject *key = PySequence_Fast_GET_ITEM(keys_fast, j);
            PyObject *version = PyDict_GetItemWithError(read_versions, key);

            if (version == NULL) {
                if (PyErr_Occurred()) {
                    goto txn_error;
                }
                version = g_zero;
            }
            if (PyDict_SetItem(observed, key, version) < 0) {
                goto txn_error;
            }
            if (buf_append_str_obj(&buf, key) < 0 ||
                buf_append_char(&buf, '@') < 0) {
                goto txn_error;
            }
            if (PyLong_CheckExact(version)) {
                long v = PyLong_AsLong(version);
                if (v == -1 && PyErr_Occurred()) {
                    PyErr_Clear();
                    if (buf_append_str_obj(&buf, version) < 0) {
                        goto txn_error;
                    }
                }
                else if (buf_append_long(&buf, v) < 0) {
                    goto txn_error;
                }
            }
            else if (buf_append_str_obj(&buf, version) < 0) {
                goto txn_error;
            }
        }

        /* Fast frozen-dataclass construction, mirroring the Python loop. */
        txn_result = result_type->tp_new(result_type, g_empty_tuple, NULL);
        if (txn_result == NULL) {
            goto txn_error;
        }
        result_dict = PyObject_GenericGetDict(txn_result, NULL);
        if (result_dict == NULL) {
            goto txn_error;
        }
        if (PyDict_SetItem(result_dict, s_txn_id, txn_id) < 0 ||
            PyDict_SetItem(result_dict, s_writes, writes) < 0 ||
            PyDict_SetItem(result_dict, s_read_versions, observed) < 0) {
            goto txn_error;
        }
        Py_DECREF(result_dict);
        Py_DECREF(keys_fast);
        Py_XDECREF(key_accum);
        Py_DECREF(sorted_keys);
        Py_DECREF(observed);
        Py_DECREF(writes);
        Py_DECREF(ops_fast);
        Py_DECREF(operations);
        Py_DECREF(txn_id);
        PyTuple_SET_ITEM(results, i, txn_result);
        continue;

    txn_error:
        Py_XDECREF(result_dict);
        Py_XDECREF(txn_result);
        Py_XDECREF(keys_fast);
        Py_XDECREF(key_accum);
        Py_XDECREF(sorted_keys);
        Py_XDECREF(observed);
        Py_XDECREF(writes);
        Py_XDECREF(ops_fast);
        Py_XDECREF(operations);
        Py_XDECREF(txn_id);
        goto error;
    }

    digest_hex = buf_sha256_hex(&buf);
    if (digest_hex == NULL) {
        goto error;
    }
    out = PyTuple_Pack(2, digest_hex, results);
    Py_DECREF(digest_hex);

error:
    Py_XDECREF(results);
    Py_XDECREF(txn_fast);
    buf_free(&buf);
    return out;
}

/* ------------------------------------------- floor 2: YCSB generation */

/* tuple.__new__(Operation, (key, is_write, value)) without the wrapper:
 * tp_alloc on the (slot-less) tuple subclass, items set directly. */
static PyObject *
make_operation(PyObject *key, PyObject *is_write, PyObject *value)
{
    PyTypeObject *type = (PyTypeObject *)g_operation_type;
    PyObject *op = type->tp_alloc(type, 3);

    if (op == NULL) {
        return NULL;
    }
    Py_INCREF(key);
    PyTuple_SET_ITEM(op, 0, key);
    Py_INCREF(is_write);
    PyTuple_SET_ITEM(op, 1, is_write);
    Py_INCREF(value);
    PyTuple_SET_ITEM(op, 2, value);
    return op;
}

/* Memoised f"user{index}" lookup against the workload's _key_strings dict
 * (shared with the pure-Python paths, so key objects stay identical). */
static PyObject *
lookup_key_string(PyObject *key_strings, long index)
{
    PyObject *index_obj = PyLong_FromLong(index);
    PyObject *key;

    if (index_obj == NULL) {
        return NULL;
    }
    key = PyDict_GetItemWithError(key_strings, index_obj); /* borrowed */
    if (key != NULL) {
        Py_INCREF(key);
        Py_DECREF(index_obj);
        return key;
    }
    if (PyErr_Occurred()) {
        Py_DECREF(index_obj);
        return NULL;
    }
    key = PyUnicode_FromFormat("user%ld", index);
    if (key == NULL || PyDict_SetItem(key_strings, index_obj, key) < 0) {
        Py_XDECREF(key);
        Py_DECREF(index_obj);
        return NULL;
    }
    Py_DECREF(index_obj);
    return key;
}

static long
attr_as_long(PyObject *obj, PyObject *name)
{
    PyObject *value = PyObject_GetAttr(obj, name);
    long result;

    if (value == NULL) {
        return -1;
    }
    result = PyLong_AsLong(value);
    Py_DECREF(value);
    return result;
}

static int
attr_is_true(PyObject *obj, PyObject *name)
{
    PyObject *value = PyObject_GetAttr(obj, name);
    int result;

    if (value == NULL) {
        return -1;
    }
    result = PyObject_IsTrue(value);
    Py_DECREF(value);
    return result;
}

static PyObject *
ck_generate_transactions(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *workload, *origin, *request_id;
    Py_ssize_t count, client_offset;
    int draw_client;

    /* Attribute pulls (once per call, not per transaction). */
    PyObject *chance = NULL, *build_operations = NULL, *client_ids = NULL,
        *client_starts = NULL, *write_flags = NULL, *key_strings = NULL,
        *execution_seconds = NULL, *rw_sets_known = NULL, *next_txn_index = NULL,
        *rng = NULL, *getrandbits = NULL, *conflict_fraction = NULL;
    PyObject *offset_bits_obj = NULL, *value_bits_obj = NULL,
        *client_bits_obj = NULL;
    PyObject *result = NULL;
    PyTypeObject *txn_type;
    long hot_count, private_modulus, partition_size, num_records;
    long value_bound, client_bound;
    int uniform_only, has_conflicts;
    Py_ssize_t n_ids, n_starts, n_ops, slot;
    int ok = 0;

    (void)self;
    if (nargs != 6) {
        PyErr_SetString(PyExc_TypeError,
                        "generate_transactions expects (workload, count, "
                        "client_index_offset, origin, request_id, draw_client)");
        return NULL;
    }
    if (g_transaction_type == NULL || g_operation_type == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "_ckernel types not configured (call configure_types)");
        return NULL;
    }
    workload = args[0];
    count = PyLong_AsSsize_t(args[1]);
    if (count == -1 && PyErr_Occurred()) {
        return NULL;
    }
    client_offset = PyLong_AsSsize_t(args[2]);
    if (client_offset == -1 && PyErr_Occurred()) {
        return NULL;
    }
    origin = args[3];
    request_id = args[4];
    draw_client = PyObject_IsTrue(args[5]);
    if (draw_client < 0) {
        return NULL;
    }
    txn_type = (PyTypeObject *)g_transaction_type;

    uniform_only = attr_is_true(workload, s_uniform_only);
    has_conflicts = attr_is_true(workload, s_has_conflicts);
    if (uniform_only < 0 || has_conflicts < 0) {
        return NULL;
    }
    hot_count = attr_as_long(workload, s_hot_count);
    private_modulus = attr_as_long(workload, s_private_modulus);
    partition_size = attr_as_long(workload, s_partition_size);
    num_records = attr_as_long(workload, s_num_records);
    value_bound = attr_as_long(workload, s_value_bound);
    client_bound = attr_as_long(workload, s_client_bound);
    if (PyErr_Occurred()) {
        return NULL;
    }
    if (private_modulus <= 0 || partition_size <= 0 || num_records <= 0 ||
        value_bound <= 0 || client_bound <= 0) {
        PyErr_SetString(PyExc_ValueError,
                        "workload bounds must be positive");
        return NULL;
    }

    chance = PyObject_GetAttr(workload, s_chance);
    build_operations = PyObject_GetAttr(workload, s_build_operations);
    client_ids = PyObject_GetAttr(workload, s_client_ids);
    client_starts = PyObject_GetAttr(workload, s_client_starts);
    write_flags = PyObject_GetAttr(workload, s_write_flags);
    key_strings = PyObject_GetAttr(workload, s_key_strings);
    execution_seconds = PyObject_GetAttr(workload, s_wl_execution_seconds);
    rw_sets_known = PyObject_GetAttr(workload, s_wl_rw_sets_known);
    next_txn_index = PyObject_GetAttr(workload, s_next_txn_index);
    conflict_fraction = PyObject_GetAttr(workload, s_conflict_fraction);
    rng = PyObject_GetAttr(workload, s_rng);
    if (chance == NULL || build_operations == NULL || client_ids == NULL ||
        client_starts == NULL || write_flags == NULL || key_strings == NULL ||
        execution_seconds == NULL || rw_sets_known == NULL ||
        next_txn_index == NULL || conflict_fraction == NULL || rng == NULL) {
        goto done;
    }
    getrandbits = PyObject_GetAttr(rng, s_getrandbits);
    if (getrandbits == NULL) {
        goto done;
    }
    if (!PyList_Check(client_ids) || !PyTuple_Check(client_starts) ||
        !PyTuple_Check(write_flags) || !PyDict_Check(key_strings)) {
        PyErr_SetString(PyExc_TypeError,
                        "workload attribute layout not recognised");
        goto done;
    }
    n_ids = PyList_GET_SIZE(client_ids);
    n_starts = PyTuple_GET_SIZE(client_starts);
    n_ops = PyTuple_GET_SIZE(write_flags);

    offset_bits_obj = PyLong_FromLong(bit_length(partition_size));
    value_bits_obj = PyLong_FromLong(bit_length(value_bound));
    client_bits_obj = PyLong_FromLong(bit_length(client_bound));
    if (offset_bits_obj == NULL || value_bits_obj == NULL ||
        client_bits_obj == NULL) {
        goto done;
    }

    result = PyTuple_New(count);
    if (result == NULL) {
        goto done;
    }

    for (slot = 0; slot < count; slot++) {
        Py_ssize_t client_index;
        PyObject *client_id = NULL, *txn_id = NULL, *operations = NULL;
        PyObject *index_obj = NULL, *txn = NULL, *txn_dict = NULL;

        if (draw_client) {
            long drawn = draw_bounded(getrandbits, client_bits_obj, client_bound);
            if (drawn < 0) {
                goto done;
            }
            client_index = (Py_ssize_t)drawn;
        }
        else {
            client_index = client_offset + slot;
        }

        if (client_index >= 0 && client_index < n_ids) {
            client_id = PyList_GET_ITEM(client_ids, client_index);
            Py_INCREF(client_id);
        }
        else {
            client_id = PyUnicode_FromFormat("client-%zd", client_index);
            if (client_id == NULL) {
                goto done;
            }
        }

        index_obj = PyObject_CallNoArgs(next_txn_index);
        if (index_obj == NULL) {
            Py_DECREF(client_id);
            goto done;
        }
        txn_id = PyUnicode_FromFormat("txn-%S", index_obj);
        Py_DECREF(index_obj);
        if (txn_id == NULL) {
            Py_DECREF(client_id);
            goto done;
        }

        if (uniform_only) {
            long start;
            Py_ssize_t j;

            if (client_index >= 0 && client_index < n_starts) {
                start = PyLong_AsLong(PyTuple_GET_ITEM(client_starts, client_index));
                if (start == -1 && PyErr_Occurred()) {
                    goto slot_error;
                }
            }
            else {
                start = py_mod((long)client_index * partition_size, num_records);
            }
            operations = PyTuple_New(n_ops);
            if (operations == NULL) {
                goto slot_error;
            }
            for (j = 0; j < n_ops; j++) {
                PyObject *flag = PyTuple_GET_ITEM(write_flags, j);
                PyObject *key, *value, *op;
                long offset_draw, index;
                int is_write = PyObject_IsTrue(flag);

                if (is_write < 0) {
                    goto slot_error;
                }
                offset_draw = draw_bounded(getrandbits, offset_bits_obj,
                                           partition_size);
                if (offset_draw < 0) {
                    goto slot_error;
                }
                index = hot_count + py_mod(start + offset_draw, private_modulus);
                key = lookup_key_string(key_strings, index);
                if (key == NULL) {
                    goto slot_error;
                }
                if (is_write) {
                    long value_draw = draw_bounded(getrandbits, value_bits_obj,
                                                   value_bound);
                    if (value_draw < 0) {
                        Py_DECREF(key);
                        goto slot_error;
                    }
                    value = PyUnicode_FromFormat("val-%ld", value_draw);
                    if (value == NULL) {
                        Py_DECREF(key);
                        goto slot_error;
                    }
                }
                else {
                    value = Py_None;
                    Py_INCREF(value);
                }
                op = make_operation(key, is_write ? Py_True : Py_False, value);
                Py_DECREF(key);
                Py_DECREF(value);
                if (op == NULL) {
                    goto slot_error;
                }
                PyTuple_SET_ITEM(operations, j, op);
            }
        }
        else {
            int conflicting = 0;

            if (has_conflicts) {
                PyObject *drew = PyObject_CallOneArg(chance, conflict_fraction);
                if (drew == NULL) {
                    goto slot_error;
                }
                conflicting = PyObject_IsTrue(drew);
                Py_DECREF(drew);
                if (conflicting < 0) {
                    goto slot_error;
                }
            }
            {
                PyObject *ci_obj = PyLong_FromSsize_t(client_index);
                if (ci_obj == NULL) {
                    goto slot_error;
                }
                operations = PyObject_CallFunctionObjArgs(
                    build_operations, ci_obj,
                    conflicting ? Py_True : Py_False, NULL);
                Py_DECREF(ci_obj);
                if (operations == NULL) {
                    goto slot_error;
                }
            }
        }

        /* Fast frozen-dataclass construction (see YCSBWorkload). */
        txn = txn_type->tp_new(txn_type, g_empty_tuple, NULL);
        if (txn == NULL) {
            goto slot_error;
        }
        txn_dict = PyObject_GenericGetDict(txn, NULL);
        if (txn_dict == NULL) {
            goto slot_error;
        }
        if (PyDict_SetItem(txn_dict, s_txn_id, txn_id) < 0 ||
            PyDict_SetItem(txn_dict, s_client_id, client_id) < 0 ||
            PyDict_SetItem(txn_dict, s_operations, operations) < 0 ||
            PyDict_SetItem(txn_dict, s_execution_seconds, execution_seconds) < 0 ||
            PyDict_SetItem(txn_dict, s_rw_sets_known, rw_sets_known) < 0 ||
            PyDict_SetItem(txn_dict, s_origin, origin) < 0 ||
            PyDict_SetItem(txn_dict, s_request_id, request_id) < 0) {
            goto slot_error;
        }
        Py_DECREF(txn_dict);
        Py_DECREF(operations);
        Py_DECREF(txn_id);
        Py_DECREF(client_id);
        PyTuple_SET_ITEM(result, slot, txn);
        continue;

    slot_error:
        Py_XDECREF(txn_dict);
        Py_XDECREF(txn);
        Py_XDECREF(operations);
        Py_XDECREF(txn_id);
        Py_XDECREF(client_id);
        goto done;
    }
    ok = 1;

done:
    Py_XDECREF(chance);
    Py_XDECREF(build_operations);
    Py_XDECREF(client_ids);
    Py_XDECREF(client_starts);
    Py_XDECREF(write_flags);
    Py_XDECREF(key_strings);
    Py_XDECREF(execution_seconds);
    Py_XDECREF(rw_sets_known);
    Py_XDECREF(next_txn_index);
    Py_XDECREF(conflict_fraction);
    Py_XDECREF(rng);
    Py_XDECREF(getrandbits);
    Py_XDECREF(offset_bits_obj);
    Py_XDECREF(value_bits_obj);
    Py_XDECREF(client_bits_obj);
    if (!ok) {
        Py_XDECREF(result);
        return NULL;
    }
    return result;
}

/* ------------------------------------ floor 3b: Transaction.canonical() */

/* f"txn:{txn_id}:{client_id}:{ops}:{execution_seconds}" with
 * ops = ";".join(f"{'W' if is_write else 'R'}:{key}:{value or ''}" ...) */
static PyObject *
transaction_canonical_str(PyObject *txn)
{
    PyObject *txn_id = NULL, *client_id = NULL, *operations = NULL,
        *execution_seconds = NULL, *ops_fast = NULL, *result = NULL;
    Py_ssize_t op_count, j;
    buf_t buf;

    if (buf_init(&buf, 512) < 0) {
        return NULL;
    }
    txn_id = PyObject_GetAttr(txn, s_txn_id);
    client_id = txn_id ? PyObject_GetAttr(txn, s_client_id) : NULL;
    operations = client_id ? PyObject_GetAttr(txn, s_operations) : NULL;
    execution_seconds =
        operations ? PyObject_GetAttr(txn, s_execution_seconds) : NULL;
    if (execution_seconds == NULL) {
        goto done;
    }
    if (buf_append(&buf, "txn:", 4) < 0 ||
        buf_append_str_obj(&buf, txn_id) < 0 ||
        buf_append_char(&buf, ':') < 0 ||
        buf_append_str_obj(&buf, client_id) < 0 ||
        buf_append_char(&buf, ':') < 0) {
        goto done;
    }
    ops_fast = PySequence_Fast(operations, "operations must be a sequence");
    if (ops_fast == NULL) {
        goto done;
    }
    op_count = PySequence_Fast_GET_SIZE(ops_fast);
    for (j = 0; j < op_count; j++) {
        PyObject *op = PySequence_Fast_GET_ITEM(ops_fast, j);
        PyObject *key, *is_write, *value;
        int write_truth, value_truth;

        if (!PyTuple_Check(op) || PyTuple_GET_SIZE(op) < 3) {
            PyErr_SetString(PyExc_TypeError,
                            "operation must be a (key, is_write, value) tuple");
            goto done;
        }
        key = PyTuple_GET_ITEM(op, 0);
        is_write = PyTuple_GET_ITEM(op, 1);
        value = PyTuple_GET_ITEM(op, 2);
        write_truth = PyObject_IsTrue(is_write);
        if (write_truth < 0) {
            goto done;
        }
        if (j > 0 && buf_append_char(&buf, ';') < 0) {
            goto done;
        }
        if (buf_append_char(&buf, write_truth ? 'W' : 'R') < 0 ||
            buf_append_char(&buf, ':') < 0 ||
            buf_append_str_obj(&buf, key) < 0 ||
            buf_append_char(&buf, ':') < 0) {
            goto done;
        }
        /* f"{value or ''}": falsy values (None, "") contribute nothing. */
        value_truth = PyObject_IsTrue(value);
        if (value_truth < 0) {
            goto done;
        }
        if (value_truth && buf_append_str_obj(&buf, value) < 0) {
            goto done;
        }
    }
    if (buf_append_char(&buf, ':') < 0 ||
        buf_append_str_obj(&buf, execution_seconds) < 0) {
        goto done;
    }
    result = PyUnicode_DecodeUTF8(buf.data, buf.len, NULL);

done:
    Py_XDECREF(ops_fast);
    Py_XDECREF(execution_seconds);
    Py_XDECREF(operations);
    Py_XDECREF(client_id);
    Py_XDECREF(txn_id);
    buf_free(&buf);
    return result;
}

static PyObject *
ck_transaction_canonical(PyObject *self, PyObject *txn)
{
    (void)self;
    return transaction_canonical_str(txn);
}

/* Transaction.canonical() including its ``_canonical`` instance-dict memo:
 * return the memo when present, else build the string and memoise it —
 * identical observable behaviour to the Python property, minus the frame. */
static PyObject *
get_txn_canonical(PyObject *txn)
{
    PyObject *txn_dict = PyObject_GenericGetDict(txn, NULL);
    PyObject *memo = NULL;

    if (txn_dict == NULL) {
        PyErr_Clear();
    }
    else {
        memo = PyDict_GetItemWithError(txn_dict, s_canonical_memo);
        Py_XINCREF(memo);
        Py_DECREF(txn_dict);
        if (memo == NULL && PyErr_Occurred()) {
            return NULL;
        }
    }
    if (memo != NULL) {
        return memo;
    }
    memo = transaction_canonical_str(txn);
    if (memo == NULL) {
        return NULL;
    }
    if (PyObject_GenericSetAttr(txn, s_canonical_memo, memo) < 0) {
        PyErr_Clear(); /* memo-less instances just recompute */
    }
    return memo;
}

/* f"batch:{batch_id}:" + "|".join(txn.canonical() for txn in transactions),
 * reading/seeding each transaction's canonical memo along the way. */
static PyObject *
ck_batch_canonical(PyObject *self, PyObject *batch)
{
    PyObject *batch_id = NULL, *transactions = NULL, *txn_fast = NULL,
        *result = NULL;
    Py_ssize_t txn_count, i;
    buf_t buf;

    (void)self;
    if (buf_init(&buf, 4096) < 0) {
        return NULL;
    }
    batch_id = PyObject_GetAttr(batch, s_batch_id);
    transactions = batch_id ? PyObject_GetAttr(batch, s_transactions) : NULL;
    if (transactions == NULL) {
        goto done;
    }
    txn_fast = PySequence_Fast(transactions, "transactions must be a sequence");
    if (txn_fast == NULL) {
        goto done;
    }
    if (buf_append(&buf, "batch:", 6) < 0 ||
        buf_append_str_obj(&buf, batch_id) < 0 ||
        buf_append_char(&buf, ':') < 0) {
        goto done;
    }
    txn_count = PySequence_Fast_GET_SIZE(txn_fast);
    for (i = 0; i < txn_count; i++) {
        PyObject *canonical =
            get_txn_canonical(PySequence_Fast_GET_ITEM(txn_fast, i));
        int failed;

        if (canonical == NULL) {
            goto done;
        }
        failed = (i > 0 && buf_append_char(&buf, '|') < 0) ||
                 buf_append_str_obj(&buf, canonical) < 0;
        Py_DECREF(canonical);
        if (failed) {
            goto done;
        }
    }
    result = PyUnicode_DecodeUTF8(buf.data, buf.len, NULL);

done:
    Py_XDECREF(txn_fast);
    Py_XDECREF(transactions);
    Py_XDECREF(batch_id);
    buf_free(&buf);
    return result;
}

/* ----------------------------------------------------------- configuration */

static PyObject *
ck_set_perf(PyObject *self, PyObject *perf)
{
    (void)self;
    Py_INCREF(perf);
    Py_XSETREF(g_perf, perf);
    Py_RETURN_NONE;
}

static PyObject *
ck_configure_types(PyObject *self, PyObject *args)
{
    PyObject *operation, *transaction, *txn_result;

    (void)self;
    if (!PyArg_ParseTuple(args, "OOO", &operation, &transaction, &txn_result)) {
        return NULL;
    }
    if (!PyType_Check(operation) || !PyType_Check(transaction) ||
        !PyType_Check(txn_result)) {
        PyErr_SetString(PyExc_TypeError, "configure_types expects three types");
        return NULL;
    }
    if (!PyType_IsSubtype((PyTypeObject *)operation, &PyTuple_Type)) {
        PyErr_SetString(PyExc_TypeError, "Operation must be a tuple subclass");
        return NULL;
    }
    Py_INCREF(operation);
    Py_XSETREF(g_operation_type, operation);
    Py_INCREF(transaction);
    Py_XSETREF(g_transaction_type, transaction);
    Py_INCREF(txn_result);
    Py_XSETREF(g_txn_result_type, txn_result);
    Py_RETURN_NONE;
}

static PyObject *
ck_configure_hashing(PyObject *self, PyObject *args)
{
    PyObject *fallback, *digest_attr;

    (void)self;
    if (!PyArg_ParseTuple(args, "OU", &fallback, &digest_attr)) {
        return NULL;
    }
    if (!PyCallable_Check(fallback)) {
        PyErr_SetString(PyExc_TypeError, "canonical fallback must be callable");
        return NULL;
    }
    Py_INCREF(fallback);
    Py_XSETREF(g_canonical_fallback, fallback);
    Py_INCREF(digest_attr);
    Py_XSETREF(g_digest_attr, digest_attr);
    Py_RETURN_NONE;
}

static PyObject *
ck_configure_sha256(PyObject *self, PyObject *factory)
{
    (void)self;
    if (!PyCallable_Check(factory)) {
        PyErr_SetString(PyExc_TypeError, "sha256 factory must be callable");
        return NULL;
    }
    Py_INCREF(factory);
    Py_XSETREF(g_sha256_factory, factory);
    Py_RETURN_NONE;
}

/* ----------------------------------------------------------------- module */

static PyMethodDef ckernel_methods[] = {
    {"set_perf", ck_set_perf, METH_O,
     "Bind the repro.perf.PERF counter object used by the C hot paths."},
    {"configure_types", ck_configure_types, METH_VARARGS,
     "Register (Operation, Transaction, TransactionResult) for C construction."},
    {"configure_hashing", ck_configure_hashing, METH_VARARGS,
     "Register the JSON canonical fallback and the digest memo attribute."},
    {"configure_sha256", ck_configure_sha256, METH_O,
     "Route digests through a hashlib-style factory (vendor-optimised SHA)."},
    {"execute_batch", (PyCFunction)(void (*)(void))ck_execute_batch,
     METH_FASTCALL,
     "Deterministic batch execution: (batch_id, transactions, read_values, "
     "read_versions) -> (result_digest_hex, txn_results)."},
    {"generate_transactions",
     (PyCFunction)(void (*)(void))ck_generate_transactions, METH_FASTCALL,
     "YCSB generation: (workload, count, client_index_offset, origin, "
     "request_id, draw_client) -> tuple of Transaction."},
    {"transaction_canonical", ck_transaction_canonical, METH_O,
     "Build a Transaction's canonical string (uncached)."},
    {"batch_canonical", ck_batch_canonical, METH_O,
     "Build a TransactionBatch's canonical string (reads/seeds the "
     "per-transaction canonical memos)."},
    {"canonical_bytes", ck_canonical_bytes, METH_O,
     "Canonical byte serialisation (C fast path + configured JSON fallback)."},
    {"digest", ck_digest, METH_O,
     "Hex SHA-256 of canonical_bytes(value)."},
    {"cached_digest", ck_cached_digest, METH_O,
     "digest(value), memoised on the instance via the digest memo attribute."},
    {"sha256_hex", ck_sha256_hex, METH_O,
     "Hex SHA-256 of bytes (or UTF-8 of str) — parity hook for tests."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro._ckernel._impl",
    "Compiled kernel fast path (see repro/kernel.py for the chooser).",
    -1,
    ckernel_methods,
    NULL,
    NULL,
    NULL,
    NULL,
};

static int
intern_all(void)
{
#define INTERN(var, text)                                                     \
    do {                                                                      \
        (var) = PyUnicode_InternFromString(text);                             \
        if ((var) == NULL) {                                                  \
            return -1;                                                        \
        }                                                                     \
    } while (0)

    INTERN(s_digests_computed, "digests_computed");
    INTERN(s_digest_cache_hits, "digest_cache_hits");
    INTERN(s_ckernel_digests, "ckernel_digests");
    INTERN(s_txn_id, "txn_id");
    INTERN(s_client_id, "client_id");
    INTERN(s_operations, "operations");
    INTERN(s_execution_seconds, "execution_seconds");
    INTERN(s_rw_sets_known, "rw_sets_known");
    INTERN(s_origin, "origin");
    INTERN(s_request_id, "request_id");
    INTERN(s_sorted_keys, "sorted_keys");
    INTERN(s_sorted_keys_memo, "_sorted_keys");
    INTERN(s_canonical, "canonical");
    INTERN(s_canonical_memo, "_canonical");
    INTERN(s_batch_id, "batch_id");
    INTERN(s_transactions, "transactions");
    INTERN(s_writes, "writes");
    INTERN(s_read_versions, "read_versions");
    INTERN(s_hexdigest, "hexdigest");
    INTERN(s_uniform_only, "_uniform_only");
    INTERN(s_has_conflicts, "_has_conflicts");
    INTERN(s_conflict_fraction, "_conflict_fraction");
    INTERN(s_chance, "_chance");
    INTERN(s_build_operations, "_build_operations");
    INTERN(s_client_ids, "_client_ids");
    INTERN(s_client_starts, "_client_starts");
    INTERN(s_write_flags, "_write_flags");
    INTERN(s_hot_count, "_hot_count");
    INTERN(s_private_modulus, "_private_modulus");
    INTERN(s_partition_size, "_partition_size");
    INTERN(s_num_records, "_num_records");
    INTERN(s_key_strings, "_key_strings");
    INTERN(s_wl_execution_seconds, "_execution_seconds");
    INTERN(s_wl_rw_sets_known, "_rw_sets_known");
    INTERN(s_next_txn_index, "_next_txn_index");
    INTERN(s_rng, "_rng");
    INTERN(s_getrandbits, "getrandbits");
    INTERN(s_value_bound, "_value_bound");
    INTERN(s_client_bound, "_client_bound");
#undef INTERN
    return 0;
}

PyMODINIT_FUNC
PyInit__impl(void)
{
    PyObject *module;

    if (intern_all() < 0) {
        return NULL;
    }
    g_empty_tuple = PyTuple_New(0);
    g_zero = PyLong_FromLong(0);
    if (g_empty_tuple == NULL || g_zero == NULL) {
        return NULL;
    }
    module = PyModule_Create(&ckernel_module);
    if (module == NULL) {
        return NULL;
    }
    if (PyModule_AddStringConstant(module, "BUILD_TAG", CKERNEL_BUILD_TAG) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
