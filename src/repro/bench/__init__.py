"""Benchmark harness.

One experiment definition per figure of the paper's evaluation (Section IX),
each returning the same rows/series the paper plots.  The large parameter
sweeps use the analytical performance model (same cost constants as the
simulator); the pytest-benchmark files under ``benchmarks/`` additionally
time message-level simulation points for the configurations small enough to
simulate, and EXPERIMENTS.md records both against the paper's claims.
"""

from repro.bench.defaults import PaperSetup
from repro.bench.harness import ExperimentTable, format_table, simulate_point
from repro.bench import experiments

__all__ = [
    "ExperimentTable",
    "PaperSetup",
    "experiments",
    "format_table",
    "simulate_point",
]
