"""Constants of the paper's experimental setup (Section IX, "Setup").

* shim sizes: SERVBFT-8 (medium) and SERVBFT-32 (large, the Blockbench max);
* 3 executors by default, each in a distinct region;
* batches of 100 client transactions;
* up to 80 k clients on 4 machines, 128 shim nodes, 21 executors, 11 regions;
* YCSB over 600 k records;
* measured message sizes (bytes): PREPREPARE 5392, PREPARE 216, COMMIT 220,
  EXECUTE 3320, RESPONSE 2270.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.config import ProtocolConfig
from repro.workload.ycsb import YCSBConfig


@dataclass(frozen=True)
class PaperSetup:
    """The default experimental setup of the paper."""

    medium_shim: int = 8
    large_shim: int = 32
    default_executors: int = 3
    default_batch_size: int = 100
    default_regions: int = 3
    max_regions: int = 11
    max_executors: int = 21
    max_shim_nodes: int = 128
    max_clients: int = 88_000
    ycsb_records: int = 600_000
    run_seconds: int = 180
    warmup_seconds: int = 60

    #: Client counts of Figure 5 (doubling for five points, then +8 k).
    client_sweep: Tuple[int, ...] = (2_000, 4_000, 8_000, 16_000, 32_000, 40_000, 48_000,
                                     56_000, 64_000, 72_000, 80_000, 88_000)
    executor_sweep: Tuple[int, ...] = (3, 5, 11, 15, 21)
    batch_sweep: Tuple[int, ...] = (10, 100, 200, 1_000, 5_000, 8_000)
    execution_sweep_seconds: Tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0)
    region_sweep: Tuple[int, ...] = (5, 7, 9, 11)
    core_sweep: Tuple[int, ...] = (2, 4, 8, 12, 16)
    conflict_sweep_percent: Tuple[int, ...] = (0, 10, 20, 30, 40, 50)
    replica_sweep: Tuple[int, ...] = (4, 8, 16, 32, 64, 128)
    offload_execution_ms: Tuple[int, ...] = (0, 50, 100, 500, 1_000, 1_500, 2_000)
    offload_execution_threads: Tuple[int, ...] = (1, 8, 16)

    def protocol_config(self, shim_nodes: int, **overrides) -> ProtocolConfig:
        """A :class:`ProtocolConfig` matching the paper's defaults."""
        params = dict(
            shim_nodes=shim_nodes,
            shim_cores=16,
            batch_size=self.default_batch_size,
            num_executors=self.default_executors,
            num_executor_regions=self.default_regions,
            verifier_cores=8,
            num_clients=80_000,
            client_groups=32,
        )
        params.update(overrides)
        return ProtocolConfig(**params)

    def workload_config(self, **overrides) -> YCSBConfig:
        """A :class:`YCSBConfig` matching the paper's YCSB setup."""
        params = dict(
            num_records=self.ycsb_records,
            operations_per_transaction=4,
            write_fraction=0.5,
            conflict_fraction=0.0,
            clients=256,
        )
        params.update(overrides)
        return YCSBConfig(**params)


#: Scaled-down knobs used by the message-level simulation points in
#: ``benchmarks/`` so each point runs in seconds of wall-clock time.  The
#: analytical model covers the paper-scale sweeps.
@dataclass(frozen=True)
class SimulationScale:
    """Scaled-down deployment used for measured (DES) benchmark points."""

    shim_nodes: int = 4
    batch_size: int = 25
    num_clients: int = 200
    client_groups: int = 8
    duration: float = 2.0
    warmup: float = 0.4
    storage_records: int = 5_000

    def protocol_config(self, **overrides) -> ProtocolConfig:
        params = dict(
            shim_nodes=self.shim_nodes,
            batch_size=self.batch_size,
            num_clients=self.num_clients,
            client_groups=self.client_groups,
            num_executors=3,
            num_executor_regions=3,
            storage_records=self.storage_records,
        )
        params.update(overrides)
        return ProtocolConfig(**params)

    def workload_config(self, **overrides) -> YCSBConfig:
        params = dict(
            num_records=self.storage_records,
            operations_per_transaction=4,
            write_fraction=0.5,
            clients=self.num_clients,
        )
        params.update(overrides)
        return YCSBConfig(**params)


PAPER = PaperSetup()
SCALE = SimulationScale()
