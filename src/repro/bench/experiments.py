"""Experiment definitions — one per figure of the paper's evaluation.

Every function returns an :class:`repro.bench.harness.ExperimentTable`
holding the same series the corresponding figure plots.  The sweeps are
evaluated with the analytical performance model, which shares all cost
constants with the message-level simulator; the pytest-benchmark harnesses
in ``benchmarks/`` add measured simulation points for the configurations
small enough to simulate and print both.

Grid expansion goes through :class:`repro.sweep.spec.GridSpec` — the same
declarative grid layer the measured sweeps (``repro.sweep``) use — so model
sweeps and message-level sweeps share one definition of "a parameter grid"
(ordering, axis naming, expansion semantics).

The figures are also addressable as *presets*: :data:`MODEL_PRESETS` maps
the fig5–fig8/ablation names to their factories, and
:func:`model_preset_tables` / :func:`markdown_report` evaluate them for the
report layer (``python -m repro.report --model-presets``) — rendering goes
through :mod:`repro.report.tables`, the same markdown dialect the
store-backed replicate tables use.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.bench.defaults import PAPER, PaperSetup
from repro.bench.harness import ExperimentTable
from repro.core.config import ConflictMode, ProtocolConfig
from repro.perfmodel.model import AnalyticalModel, SystemKind
from repro.sweep.spec import GridSpec
from repro.workload.ycsb import YCSBConfig


#: Ingest cost used by deployments that skip byzantine-grade client checks
#: (the SERVERLESSCFT and NOSHIM baselines).
_LIGHT_INGEST_COST = 15e-6


def _model(
    setup: PaperSetup,
    shim_nodes: int,
    system: SystemKind = SystemKind.SERVERLESS_BFT,
    execution_threads: int = 16,
    workload_overrides: Optional[dict] = None,
    **config_overrides,
) -> AnalyticalModel:
    if system in (SystemKind.SERVERLESS_CFT, SystemKind.NOSHIM):
        config_overrides.setdefault("txn_ingest_cost", _LIGHT_INGEST_COST)
    config = setup.protocol_config(shim_nodes, **config_overrides)
    workload = setup.workload_config(**(workload_overrides or {}))
    return AnalyticalModel(config, workload, system=system, execution_threads=execution_threads)


# --------------------------------------------------------------------------- Figure 5


def client_congestion(
    setup: PaperSetup = PAPER,
    shim_sizes: Sequence[int] = (8, 32),
    client_counts: Optional[Sequence[int]] = None,
) -> ExperimentTable:
    """Figure 5: latency vs throughput while the client population grows."""
    client_counts = client_counts or setup.client_sweep
    table = ExperimentTable(
        name="fig5-client-congestion",
        columns=("system", "clients", "throughput_txn_s", "latency_s"),
    )
    models = {shim: _model(setup, shim) for shim in shim_sizes}
    grid = GridSpec({"shim": shim_sizes, "clients": client_counts})
    for combo in grid.combinations():
        shim, clients = combo["shim"], combo["clients"]
        throughput, latency = models[shim].throughput_latency(clients)
        table.add(
            system=f"SERVBFT-{shim}",
            clients=clients,
            throughput_txn_s=throughput,
            latency_s=latency,
        )
    return table


# --------------------------------------------------------------------------- Figure 6 (i, ii)


def executor_scaling(
    setup: PaperSetup = PAPER,
    shim_sizes: Sequence[int] = (8, 32),
    executor_counts: Optional[Sequence[int]] = None,
) -> ExperimentTable:
    """Figure 6(i,ii): impact of the number of spawned executors."""
    executor_counts = executor_counts or setup.executor_sweep
    table = ExperimentTable(
        name="fig6-executor-scaling",
        columns=("system", "executors", "throughput_txn_s", "latency_s"),
    )
    grid = GridSpec({"shim": shim_sizes, "executors": executor_counts})
    for combo in grid.combinations():
        shim, executors = combo["shim"], combo["executors"]
        model = _model(
            setup,
            shim,
            num_executors=executors,
            num_executor_regions=min(7, executors),
        )
        throughput, latency = model.throughput_latency()
        table.add(
            system=f"SERVBFT-{shim}",
            executors=executors,
            throughput_txn_s=throughput,
            latency_s=latency,
        )
    return table


# --------------------------------------------------------------------------- Figure 6 (iii, iv)


def batching(
    setup: PaperSetup = PAPER,
    shim_sizes: Sequence[int] = (8, 32),
    batch_sizes: Optional[Sequence[int]] = None,
) -> ExperimentTable:
    """Figure 6(iii,iv): impact of the client-request batch size."""
    batch_sizes = batch_sizes or setup.batch_sweep
    table = ExperimentTable(
        name="fig6-batching",
        columns=("system", "batch_size", "throughput_txn_s", "latency_s"),
    )
    grid = GridSpec({"shim": shim_sizes, "batch_size": batch_sizes})
    for combo in grid.combinations():
        shim, batch_size = combo["shim"], combo["batch_size"]
        model = _model(setup, shim, batch_size=batch_size)
        throughput, latency = model.throughput_latency()
        table.add(
            system=f"SERVBFT-{shim}",
            batch_size=batch_size,
            throughput_txn_s=throughput,
            latency_s=latency,
        )
    return table


# --------------------------------------------------------------------------- Figure 6 (v, vi)


def expensive_execution(
    setup: PaperSetup = PAPER,
    shim_sizes: Sequence[int] = (8, 32),
    execution_seconds: Optional[Sequence[float]] = None,
) -> ExperimentTable:
    """Figure 6(v,vi): impact of compute-intensive transactions."""
    execution_seconds = execution_seconds or setup.execution_sweep_seconds
    table = ExperimentTable(
        name="fig6-expensive-execution",
        columns=("system", "execution_s", "throughput_txn_s", "latency_s"),
    )
    grid = GridSpec({"shim": shim_sizes, "execution_s": execution_seconds})
    for combo in grid.combinations():
        shim, seconds = combo["shim"], combo["execution_s"]
        model = _model(
            setup,
            shim,
            workload_overrides={"execution_seconds": seconds},
        )
        throughput, latency = model.throughput_latency()
        table.add(
            system=f"SERVBFT-{shim}",
            execution_s=seconds,
            throughput_txn_s=throughput,
            latency_s=latency,
        )
    return table


# --------------------------------------------------------------------------- Figure 6 (vii, viii)


def region_distribution(
    setup: PaperSetup = PAPER,
    shim_sizes: Sequence[int] = (8, 32),
    region_counts: Optional[Sequence[int]] = None,
    executors: int = 11,
) -> ExperimentTable:
    """Figure 6(vii,viii): spreading a fixed number of executors over more regions."""
    region_counts = region_counts or setup.region_sweep
    table = ExperimentTable(
        name="fig6-region-distribution",
        columns=("system", "regions", "throughput_txn_s", "latency_s"),
    )
    grid = GridSpec({"shim": shim_sizes, "regions": region_counts})
    for combo in grid.combinations():
        shim, regions = combo["shim"], combo["regions"]
        model = _model(
            setup,
            shim,
            num_executors=executors,
            num_executor_regions=regions,
        )
        throughput, latency = model.throughput_latency()
        table.add(
            system=f"SERVBFT-{shim}",
            regions=regions,
            throughput_txn_s=throughput,
            latency_s=latency,
        )
    return table


# --------------------------------------------------------------------------- Figure 6 (ix, x)


def computing_power(
    setup: PaperSetup = PAPER,
    shim_sizes: Sequence[int] = (8, 32),
    core_counts: Optional[Sequence[int]] = None,
) -> ExperimentTable:
    """Figure 6(ix,x): impact of the shim nodes' compute resources."""
    core_counts = core_counts or setup.core_sweep
    table = ExperimentTable(
        name="fig6-computing-power",
        columns=("system", "cores", "throughput_txn_s", "latency_s"),
    )
    grid = GridSpec({"shim": shim_sizes, "cores": core_counts})
    for combo in grid.combinations():
        shim, cores = combo["shim"], combo["cores"]
        model = _model(setup, shim, shim_cores=cores)
        throughput, latency = model.throughput_latency()
        table.add(
            system=f"SERVBFT-{shim}",
            cores=cores,
            throughput_txn_s=throughput,
            latency_s=latency,
        )
    return table


# --------------------------------------------------------------------------- Figure 6 (xi, xii)


def conflicting_transactions(
    setup: PaperSetup = PAPER,
    shim_sizes: Sequence[int] = (8, 32),
    conflict_percentages: Optional[Sequence[int]] = None,
    conflict_mode: ConflictMode = ConflictMode.OPTIMISTIC,
) -> ExperimentTable:
    """Figure 6(xi,xii): impact of conflicting transactions (unknown rw-sets)."""
    conflict_percentages = conflict_percentages or setup.conflict_sweep_percent
    table = ExperimentTable(
        name="fig6-conflicting-transactions",
        columns=("system", "conflict_pct", "throughput_txn_s", "latency_s"),
    )
    grid = GridSpec({"shim": shim_sizes, "conflict_pct": conflict_percentages})
    for combo in grid.combinations():
        shim, percent = combo["shim"], combo["conflict_pct"]
        model = _model(
            setup,
            shim,
            conflict_mode=conflict_mode,
            workload_overrides={"conflict_fraction": percent / 100.0, "rw_sets_known": False},
        )
        throughput, latency = model.throughput_latency()
        table.add(
            system=f"SERVBFT-{shim}",
            conflict_pct=percent,
            throughput_txn_s=throughput,
            latency_s=latency,
        )
    return table


# --------------------------------------------------------------------------- Figure 7


def _figure7_systems():
    """The comparison set, from the system registry (registration order).

    Every registered system whose adapter names an analytical-model kind
    participates — registering a new modelled system extends Figure 7
    without touching this module.
    """
    from repro.api.registry import all_systems

    return tuple(
        (adapter.display_name, SystemKind(adapter.model_kind))
        for adapter in all_systems()
        if adapter.model_kind is not None
    )


def baseline_comparison(
    setup: PaperSetup = PAPER,
    replica_counts: Optional[Sequence[int]] = None,
) -> ExperimentTable:
    """Figure 7: ServerlessBFT vs SERVERLESSCFT vs PBFT vs NOSHIM, 4–128 replicas."""
    replica_counts = replica_counts or setup.replica_sweep
    table = ExperimentTable(
        name="fig7-baseline-comparison",
        columns=("system", "replicas", "throughput_txn_s", "latency_s"),
    )
    grid = GridSpec({"system": _figure7_systems(), "replicas": replica_counts})
    for combo in grid.combinations():
        (label, system), replicas = combo["system"], combo["replicas"]
        model = _model(setup, replicas, system=system)
        throughput, latency = model.throughput_latency()
        table.add(
            system=label,
            replicas=replicas,
            throughput_txn_s=throughput,
            latency_s=latency,
        )
    return table


# --------------------------------------------------------------------------- Figure 8


def task_offloading(
    setup: PaperSetup = PAPER,
    execution_ms: Optional[Sequence[int]] = None,
    execution_threads: Optional[Sequence[int]] = None,
    shim_nodes: int = 32,
) -> ExperimentTable:
    """Figure 8: serverless offloading vs edge-only PBFT (throughput and cost)."""
    execution_ms = execution_ms or setup.offload_execution_ms
    execution_threads = execution_threads or setup.offload_execution_threads
    table = ExperimentTable(
        name="fig8-task-offloading",
        columns=("system", "execution_ms", "throughput_txn_s", "cents_per_ktxn"),
    )
    for milliseconds in execution_ms:
        workload_overrides = {"execution_seconds": milliseconds / 1000.0}
        model = _model(
            setup,
            shim_nodes,
            system=SystemKind.SERVERLESS_BFT,
            workload_overrides=workload_overrides,
        )
        throughput, _latency = model.throughput_latency()
        table.add(
            system=f"SERVBFT-{shim_nodes}",
            execution_ms=milliseconds,
            throughput_txn_s=throughput,
            cents_per_ktxn=model.cost_cents_per_kilo_txn(),
        )
        for threads in execution_threads:
            model = _model(
                setup,
                shim_nodes,
                system=SystemKind.PBFT_REPLICATED,
                execution_threads=threads,
                workload_overrides=workload_overrides,
            )
            throughput, _latency = model.throughput_latency()
            table.add(
                system=f"PBFT-{threads}-ET",
                execution_ms=milliseconds,
                throughput_txn_s=throughput,
                cents_per_ktxn=model.cost_cents_per_kilo_txn(),
            )
    return table


# --------------------------------------------------------------------------- ablations


def spawning_policy_ablation(
    setup: PaperSetup = PAPER,
    shim_nodes: int = 8,
    executor_counts: Sequence[int] = (3, 5, 11),
) -> ExperimentTable:
    """Primary vs decentralized spawning: total executors spawned and cost overhead."""
    from repro.core.spawning import executors_per_node

    table = ExperimentTable(
        name="ablation-spawning-policy",
        columns=("executors", "primary_spawned", "decentralized_spawned", "overhead_factor"),
    )
    config = setup.protocol_config(shim_nodes)
    for executors in executor_counts:
        per_node = executors_per_node(executors, shim_nodes, config.shim_faults)
        decentralized = per_node * shim_nodes
        table.add(
            executors=executors,
            primary_spawned=executors,
            decentralized_spawned=decentralized,
            overhead_factor=decentralized / executors,
        )
    return table


def conflict_avoidance_ablation(
    setup: PaperSetup = PAPER,
    shim_nodes: int = 8,
    conflict_percentages: Sequence[int] = (0, 10, 30, 50),
) -> ExperimentTable:
    """Optimistic execution (unknown rw-sets) vs best-effort conflict avoidance."""
    table = ExperimentTable(
        name="ablation-conflict-avoidance",
        columns=("conflict_pct", "mode", "throughput_txn_s", "abort_fraction"),
    )
    grid = GridSpec(
        {
            "conflict_pct": conflict_percentages,
            "mode": (ConflictMode.OPTIMISTIC, ConflictMode.CONFLICT_AVOIDANCE),
        }
    )
    for combo in grid.combinations():
        percent, mode = combo["conflict_pct"], combo["mode"]
        model = _model(
            setup,
            shim_nodes,
            conflict_mode=mode,
            workload_overrides={
                "conflict_fraction": percent / 100.0,
                "rw_sets_known": mode is ConflictMode.CONFLICT_AVOIDANCE,
            },
        )
        throughput, _latency = model.throughput_latency()
        table.add(
            conflict_pct=percent,
            mode=mode.value,
            throughput_txn_s=throughput,
            abort_fraction=model._abort_fraction(),
        )
    return table


# --------------------------------------------------------------------------- presets


#: The paper's figures by name — every factory takes only defaults and
#: returns an :class:`ExperimentTable`.  The report CLI renders these
#: alongside the store-backed measured tables; evaluation is closed-form,
#: so "no simulation" holds for the whole document.
MODEL_PRESETS = {
    "fig5-client-congestion": client_congestion,
    "fig6-executor-scaling": executor_scaling,
    "fig6-batching": batching,
    "fig6-expensive-execution": expensive_execution,
    "fig6-region-distribution": region_distribution,
    "fig6-computing-power": computing_power,
    "fig6-conflicting-transactions": conflicting_transactions,
    "fig7-baseline-comparison": baseline_comparison,
    "fig8-task-offloading": task_offloading,
    "ablation-spawning-policy": spawning_policy_ablation,
    "ablation-conflict-avoidance": conflict_avoidance_ablation,
}


def model_preset_tables(names: Optional[Sequence[str]] = None):
    """Evaluate the named model presets (all of them by default), in order."""
    from repro.errors import ConfigurationError

    selected = list(names) if names else list(MODEL_PRESETS)
    unknown = [name for name in selected if name not in MODEL_PRESETS]
    if unknown:
        known = ", ".join(MODEL_PRESETS)
        raise ConfigurationError(f"unknown model presets {unknown} (known: {known})")
    return [MODEL_PRESETS[name]() for name in selected]


def markdown_report(names: Optional[Sequence[str]] = None) -> str:
    """All requested model-preset tables as one markdown fragment."""
    from repro.report.tables import markdown_table

    sections = []
    for table in model_preset_tables(names):
        sections.append(f"## {table.name}\n\n{markdown_table(table)}")
    return "\n\n".join(sections) + "\n"
