"""Experiment harness utilities: running points and formatting tables."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import ProtocolConfig
from repro.core.runner import SimulationResult
from repro.workload.ycsb import YCSBConfig


class DuplicateSeriesKeyWarning(UserWarning):
    """Two table rows mapped to the same series key: data is being dropped.

    Almost always means the ``series()`` filters are too loose (e.g. a
    missing ``system=...`` filter on a multi-system table), so the series
    silently kept only the last row per key.
    """


@dataclass
class ExperimentTable:
    """Rows of one experiment, in the same shape as the paper's plot series."""

    name: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def series(
        self,
        key_column: str,
        value_column: str,
        strict: bool = False,
        **filters: object,
    ) -> Dict[object, object]:
        """Return a ``{key: value}`` series optionally filtered by other columns.

        A duplicate key among the filtered rows means the filters do not
        uniquely identify one row per key and the series would silently drop
        data: a :class:`DuplicateSeriesKeyWarning` is emitted (the last row
        still wins, as before), or :class:`ValueError` raised with
        ``strict=True``.
        """
        selected: Dict[object, object] = {}
        for row in self.rows:
            if all(row.get(column) == expected for column, expected in filters.items()):
                key = row.get(key_column)
                if key in selected:
                    message = (
                        f"table {self.name!r}: duplicate series key {key!r} for "
                        f"key_column={key_column!r} with filters {filters!r} — "
                        f"value {selected[key]!r} overwritten by "
                        f"{row.get(value_column)!r}"
                    )
                    if strict:
                        raise ValueError(message)
                    warnings.warn(message, DuplicateSeriesKeyWarning, stacklevel=2)
                selected[key] = row.get(value_column)
        return selected

    def __len__(self) -> int:
        return len(self.rows)


def format_table(table: ExperimentTable, float_format: str = "{:,.1f}") -> str:
    """Render an experiment table as aligned text (printed by the benches)."""
    columns = list(table.columns)
    rendered_rows = []
    for row in table.rows:
        rendered = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [
        max(len(column), *(len(rendered[i]) for rendered in rendered_rows)) if rendered_rows else len(column)
        for i, column in enumerate(columns)
    ]
    lines = [
        f"== {table.name} ==",
        "  ".join(column.ljust(width) for column, width in zip(columns, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for rendered in rendered_rows:
        lines.append("  ".join(value.ljust(width) for value, width in zip(rendered, widths)))
    return "\n".join(lines)


def simulate_point(
    config: ProtocolConfig,
    workload: Optional[YCSBConfig] = None,
    consensus_engine: str = "pbft",
    duration: float = 3.0,
    warmup: float = 0.5,
    report_perf: bool = True,
    system: str = "serverless_bft",
    **runner_kwargs,
) -> SimulationResult:
    """Run one message-level simulation point (used by the measured benches).

    The deployment is built through the ``repro.api`` system registry, so
    ``system`` may name any registered variant (capability validation
    included).  Each point also reports its host-side cost (wall-clock
    seconds and kernel events per second) so the BENCH_*.json files capture
    the simulator's performance trajectory alongside the simulated metrics.
    """
    from repro.api.facade import build_system  # bench sits above the facade
    from repro.perf import PERF

    simulation = build_system(
        system,
        config,
        workload,
        consensus_engine=consensus_engine,
        tracer_enabled=False,
        **runner_kwargs,
    )
    # Snapshot/delta discipline instead of PERF.reset(): the point's own
    # counter activity is reported without clobbering whatever the process
    # accumulated before (back-to-back points each see only their own work).
    perf_baseline = PERF.snapshot()
    result = simulation.run(duration=duration, warmup=warmup)
    if report_perf:
        delta = PERF.delta_since(perf_baseline)
        fast = delta.get("events_scheduled_fast", 0)
        print(
            f"[perf] simulate_point: wall_clock={result.wall_clock_seconds:.3f}s "
            f"events={result.events_processed:,} "
            f"events/sec={result.events_per_second:,.0f} "
            f"fast_scheduled={fast:,}"
        )
    return result
