"""PBFT ordering engine for the shim.

This module implements the three-phase PBFT protocol exactly as the paper
uses it at the shim (Figure 3): the primary assigns a sequence number in a
PREPREPARE (MAC-authenticated), nodes broadcast PREPARE (MAC), nodes that
collect ``2f_R + 1`` matching PREPAREs broadcast digitally signed COMMIT
messages, and a request is committed once ``2f_R + 1`` matching COMMITs are
collected.  The commit signatures double as the certificate ``C`` forwarded
to serverless executors.

Also included:

* PBFT view change / new view to replace a byzantine primary (Section V-A4);
* the paper's *featherweight checkpoints* (Section V-B) that let nodes kept
  in the dark catch up using only commit certificates;
* per-message CPU charging through the host node's CPU resource so the
  consensus cost scales with ``n_R`` and with the available cores, which is
  what drives Figures 5, 6(ix,x) and 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.consensus.log import CommittedEntry, ConsensusLog
from repro.consensus.messages import (
    COMMIT_BYTES,
    CheckpointMsg,
    CommitMsg,
    NewViewMsg,
    PREPARE_BYTES,
    PREPREPARE_BYTES,
    PrePrepareMsg,
    PrepareMsg,
    ViewChangeMsg,
)
from repro.consensus.quorums import QuorumTracker
from repro.crypto.costs import CryptoCostModel
from repro.crypto.hashing import cached_digest, seed_cached_digest
from repro.crypto.signatures import Signature, SignatureService
from repro.errors import ProtocolViolation
from repro.perf import PERF


class ReplicaTransport:
    """Transport interface a host node provides to its ordering engine."""

    def send(self, dst: str, message: Any, size_bytes: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def broadcast(self, message: Any, size_bytes: int, targets: Optional[List[str]] = None) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass
class PBFTConfig:
    """Tunable knobs of the shim's PBFT instance."""

    checkpoint_interval: int = 64
    request_timeout: float = 2.0
    use_threshold_certificates: bool = False


class PBFTReplica:
    """One replica's PBFT state machine.

    The replica is hosted inside a :class:`repro.core.shim_node.ShimNode`
    (or a baseline node) which supplies the transport, CPU charging, timers,
    and the ``on_committed`` callback invoked for every decided sequence
    number.
    """

    def __init__(
        self,
        replica_id: str,
        replicas: List[str],
        config: PBFTConfig,
        transport: ReplicaTransport,
        signer: SignatureService,
        cost_model: CryptoCostModel,
        host,
        on_committed: Callable[[CommittedEntry], None],
        on_view_installed: Optional[Callable[[int, str], None]] = None,
        tracer=None,
        behaviour=None,
    ) -> None:
        if replica_id not in replicas:
            raise ProtocolViolation(f"replica {replica_id!r} is not part of the shim {replicas}")
        self._id = replica_id
        self._replicas = list(replicas)
        self._n = len(replicas)
        self._f = (self._n - 1) // 3
        self._quorum = 2 * self._f + 1
        self._config = config
        self._transport = transport
        self._signer = signer
        self._costs = cost_model
        self._host = host
        self._on_committed = on_committed
        self._on_view_installed = on_view_installed
        self._tracer = tracer
        self._behaviour = behaviour

        self._view = 0
        self._next_seq = 0
        self._log = ConsensusLog()
        self._prepare_quorum: QuorumTracker = QuorumTracker(self._quorum)
        self._commit_quorum: QuorumTracker = QuorumTracker(self._quorum)
        self._viewchange_quorum: QuorumTracker = QuorumTracker(self._quorum)
        self._viewchange_join: QuorumTracker = QuorumTracker(self._f + 1)
        self._sent_viewchange_for: set = set()
        self._request_timers: Dict[int, Any] = {}
        self._view_changes_installed = 0

    # ------------------------------------------------------------------ properties

    @property
    def replica_id(self) -> str:
        return self._id

    @property
    def n(self) -> int:
        return self._n

    @property
    def f(self) -> int:
        return self._f

    @property
    def quorum_size(self) -> int:
        return self._quorum

    @property
    def view(self) -> int:
        return self._view

    @property
    def log(self) -> ConsensusLog:
        return self._log

    @property
    def view_changes_installed(self) -> int:
        return self._view_changes_installed

    @property
    def primary(self) -> str:
        return self.primary_of(self._view)

    def primary_of(self, view: int) -> str:
        """Nodes have a pre-decided rotation order for becoming primary."""
        return self._replicas[view % self._n]

    @property
    def is_primary(self) -> bool:
        return self.primary == self._id

    # ------------------------------------------------------------------ proposing

    def propose(self, batch: Any) -> int:
        """Primary only: assign the next sequence number and start consensus."""
        if not self.is_primary:
            raise ProtocolViolation(f"{self._id} is not the primary of view {self._view}")
        self._next_seq += 1
        seq = self._next_seq
        batch_digest = cached_digest(batch)
        message = PrePrepareMsg(view=self._view, seq=seq, digest=batch_digest, batch=batch)

        targets = [replica for replica in self._replicas if replica != self._id]
        equivocation = None
        if self._behaviour is not None:
            targets = self._behaviour.preprepare_targets(targets)
            equivocation = self._behaviour.equivocation(seq, batch)

        slot = self._log.slot(seq)
        slot.view = self._view
        slot.digest = batch_digest
        slot.batch = batch
        slot.preprepared = True

        # Hash the batch once and MAC it for every target.
        cost = self._costs.hash_cost(PREPREPARE_BYTES) + self._costs.mac_sign * len(targets)
        self._host.process(cost, self._emit_preprepare, message, targets, equivocation)
        self._trace("pbft.propose", seq=seq, digest=batch_digest)
        return seq

    def _emit_preprepare(self, message: PrePrepareMsg, targets: List[str], equivocation) -> None:
        if equivocation is not None:
            # A byzantine primary sends one batch to half the nodes and a
            # different batch (same sequence number) to the other half.
            other_batch, other_targets = equivocation
            other_message = PrePrepareMsg(
                view=message.view,
                seq=message.seq,
                digest=cached_digest(other_batch),
                batch=other_batch,
            )
            first_group = [t for t in targets if t not in set(other_targets)]
            self._transport.broadcast(message, PREPREPARE_BYTES, targets=first_group)
            self._transport.broadcast(other_message, PREPREPARE_BYTES, targets=list(other_targets))
        else:
            self._transport.broadcast(message, PREPREPARE_BYTES, targets=targets)
        # The primary also supports its own proposal with a PREPARE.
        self._after_preprepare_accepted(message)

    # ------------------------------------------------------------------ handlers

    def handle(self, message: Any, sender: str) -> bool:
        """Dispatch a consensus message.  Returns True if it was consumed."""
        if isinstance(message, PrePrepareMsg):
            self.on_preprepare(message, sender)
        elif isinstance(message, PrepareMsg):
            self.on_prepare(message, sender)
        elif isinstance(message, CommitMsg):
            self.on_commit(message, sender)
        elif isinstance(message, ViewChangeMsg):
            self.on_view_change(message, sender)
        elif isinstance(message, NewViewMsg):
            self.on_new_view(message, sender)
        elif isinstance(message, CheckpointMsg):
            self.on_checkpoint(message, sender)
        else:
            return False
        return True

    def on_preprepare(self, message: PrePrepareMsg, sender: str) -> None:
        if sender != self.primary_of(message.view) or message.view != self._view:
            return
        slot = self._log.slot(message.seq)
        if slot.preprepared and slot.digest != message.digest:
            # The primary equivocated: refuse the second proposal and complain.
            self._trace("pbft.equivocation_detected", seq=message.seq)
            self.request_view_change(reason="equivocation")
            return
        if slot.committed:
            return
        if cached_digest(message.batch) != message.digest:
            return
        slot.view = message.view
        slot.digest = message.digest
        slot.batch = message.batch
        slot.preprepared = True
        cost = self._costs.mac_verify + self._costs.hash_cost(PREPREPARE_BYTES)
        self._host.process(cost, self._after_preprepare_accepted, message)

    def _after_preprepare_accepted(self, message: PrePrepareMsg) -> None:
        self._start_request_timer(message.seq)
        prepare = PrepareMsg(
            view=message.view, seq=message.seq, digest=message.digest, replica=self._id
        )
        if self._behaviour is None or not self._behaviour.suppress("prepare"):
            cost = self._costs.mac_sign * (self._n - 1)
            self._host.process(cost, self._transport.broadcast, prepare, PREPARE_BYTES)
        self._record_prepare(prepare, self._id)

    def on_prepare(self, message: PrepareMsg, sender: str) -> None:
        if message.view != self._view:
            return
        self._host.process(self._costs.mac_verify, self._record_prepare, message, sender)

    def _record_prepare(self, message: PrepareMsg, sender: str) -> None:
        key = (message.view, message.seq, message.digest)
        if self._prepare_quorum.add(key, sender):
            slot = self._log.slot(message.seq)
            slot.prepared = True
            slot.prepare_voters = self._prepare_quorum.voters(key)
            self._trace("pbft.prepared", seq=message.seq)
            self._broadcast_commit(message.view, message.seq, message.digest)

    def _broadcast_commit(self, view: int, seq: int, batch_digest: str) -> None:
        if self._behaviour is not None and self._behaviour.suppress("commit"):
            return
        unsigned = CommitMsg(view=view, seq=seq, digest=batch_digest, replica=self._id)
        signature = self._signer.sign(unsigned)
        commit = CommitMsg(
            view=view, seq=seq, digest=batch_digest, replica=self._id, signature=signature
        )
        # The canonical form ignores the signature field, so the signed copy
        # has the same digest as the unsigned payload: seed the memo so no
        # receiver ever re-serialises this commit.
        seed_cached_digest(commit, signature.message_digest)
        cost = self._costs.ds_sign
        self._host.process(cost, self._transport.broadcast, commit, COMMIT_BYTES)
        self._record_commit_vote(commit, self._id)

    def on_commit(self, message: CommitMsg, sender: str) -> None:
        if message.view != self._view or message.replica != sender:
            return
        if message.signature is None:
            return
        # A broadcast COMMIT is the same object at every receiver, and
        # signature validity depends only on the deployment's shared key
        # store: memoise the outcome per instance (the simulated ds_verify
        # CPU charge below is unchanged).
        valid = message.__dict__.get("_sig_valid")
        if valid is None:
            valid = self._signer.verify(message, message.signature)
            object.__setattr__(message, "_sig_valid", valid)
        else:
            PERF.verify_signature_cache_hits += 1
        if not valid:
            return
        self._host.process(self._costs.ds_verify, self._record_commit_vote, message, sender)

    def _record_commit_vote(self, message: CommitMsg, sender: str) -> None:
        key = (message.view, message.seq, message.digest)
        slot = self._log.slot(message.seq)
        if message.signature is not None:
            slot.commit_signatures[sender] = message.signature
        if self._commit_quorum.add(key, sender, payload=message.signature):
            if slot.committed:
                return
            slot.committed = True
            slot.commit_voters = self._commit_quorum.voters(key)
            self._cancel_request_timer(message.seq)
            entry = CommittedEntry(
                seq=message.seq,
                view=message.view,
                digest=message.digest,
                batch=slot.batch,
                certificate=slot.certificate,
            )
            self._log.record_commit(entry)
            self._trace("pbft.committed", seq=message.seq, digest=message.digest)
            self._maybe_checkpoint(message.seq)
            self._on_committed(entry)

    # ------------------------------------------------------------------ timers

    def _start_request_timer(self, seq: int) -> None:
        if seq in self._request_timers:
            return
        self._request_timers[seq] = self._host.set_timer(
            self._config.request_timeout, self._on_request_timeout, seq
        )

    def _cancel_request_timer(self, seq: int) -> None:
        timer = self._request_timers.pop(seq, None)
        if timer is not None:
            timer.cancel()

    def _on_request_timeout(self, seq: int) -> None:
        self._request_timers.pop(seq, None)
        if self._log.is_committed(seq):
            return
        self._trace("pbft.request_timeout", seq=seq)
        self.request_view_change(reason=f"timeout-seq-{seq}")

    # ------------------------------------------------------------------ view change

    def request_view_change(self, reason: str = "") -> None:
        """Broadcast a VIEWCHANGE for the next view (Section V-A4)."""
        new_view = self._view + 1
        if new_view in self._sent_viewchange_for:
            return
        self._sent_viewchange_for.add(new_view)
        prepared = tuple(
            (slot.seq, slot.digest or "")
            for slot in self._log.prepared_uncommitted()
        )
        unsigned = ViewChangeMsg(new_view=new_view, replica=self._id, prepared=prepared)
        signature = self._signer.sign(unsigned)
        message = ViewChangeMsg(
            new_view=new_view, replica=self._id, prepared=prepared, signature=signature
        )
        seed_cached_digest(message, signature.message_digest)
        self._trace("pbft.viewchange_requested", new_view=new_view, reason=reason)
        self._host.process(
            self._costs.ds_sign,
            lambda: self._transport.broadcast(message, message.size_bytes),
        )
        self.on_view_change(message, self._id)

    def on_view_change(self, message: ViewChangeMsg, sender: str) -> None:
        if message.new_view <= self._view:
            return
        if message.replica != sender:
            return
        if message.signature is not None and not self._signer.verify(
            message, message.signature
        ):
            return
        key = message.new_view
        # Joining rule: seeing f+1 view-change requests for a higher view is
        # proof at least one honest node timed out, so join the view change.
        if self._viewchange_join.add(key, sender) and sender != self._id:
            if key not in self._sent_viewchange_for:
                self.request_view_change(reason="join")
        if self._viewchange_quorum.add(key, sender, payload=message):
            if self.primary_of(key) == self._id:
                self._install_new_view_as_primary(key)

    def _install_new_view_as_primary(self, new_view: int) -> None:
        supporters = frozenset(self._viewchange_quorum.voters(new_view))
        reproposals: List[Tuple[int, str, Any]] = []
        seen: set = set()
        for vc in self._viewchange_quorum.payloads(new_view):
            if vc is None:
                continue
            for seq, slot_digest in vc.prepared:
                if seq in seen or self._log.is_committed(seq):
                    continue
                seen.add(seq)
                local = self._log.slot(seq)
                reproposals.append((seq, slot_digest, local.batch))
        unsigned = NewViewMsg(
            new_view=new_view,
            primary=self._id,
            reproposals=tuple(reproposals),
            supporters=supporters,
        )
        signature = self._signer.sign(unsigned)
        message = NewViewMsg(
            new_view=new_view,
            primary=self._id,
            reproposals=unsigned.reproposals,
            supporters=supporters,
            signature=signature,
        )
        seed_cached_digest(message, signature.message_digest)
        self._host.process(
            self._costs.ds_sign,
            lambda: self._transport.broadcast(message, message.size_bytes),
        )
        self._adopt_view(new_view)
        self._trace("pbft.newview_sent", new_view=new_view, reproposals=len(reproposals))
        # Re-propose the prepared-but-uncommitted slots in the new view.
        for seq, slot_digest, batch in reproposals:
            if batch is not None:
                self._repropose(seq, batch)

    def on_new_view(self, message: NewViewMsg, sender: str) -> None:
        if message.new_view <= self._view:
            return
        if sender != message.primary or self.primary_of(message.new_view) != message.primary:
            return
        if message.signature is not None and not self._signer.verify(
            message, message.signature
        ):
            return
        self._host.process(self._costs.ds_verify, lambda: self._adopt_view(message.new_view))
        for seq, slot_digest, batch in message.reproposals:
            if batch is None or self._log.is_committed(seq):
                continue
            reproposal = PrePrepareMsg(
                view=message.new_view, seq=seq, digest=slot_digest, batch=batch
            )
            self.on_preprepare(reproposal, message.primary)

    def _adopt_view(self, new_view: int) -> None:
        if new_view <= self._view:
            return
        self._view = new_view
        self._view_changes_installed += 1
        # Clear any pending request timers: responsibility moves to the new primary.
        for timer in self._request_timers.values():
            timer.cancel()
        self._request_timers.clear()
        self._next_seq = max(self._next_seq, self._log.max_committed_seq())
        self._trace("pbft.view_installed", view=new_view, primary=self.primary)
        if self._on_view_installed is not None:
            self._on_view_installed(new_view, self.primary)

    def _repropose(self, seq: int, batch: Any) -> None:
        batch_digest = cached_digest(batch)
        message = PrePrepareMsg(view=self._view, seq=seq, digest=batch_digest, batch=batch)
        slot = self._log.slot(seq)
        slot.view = self._view
        slot.digest = batch_digest
        slot.batch = batch
        slot.preprepared = True
        targets = [replica for replica in self._replicas if replica != self._id]
        self._transport.broadcast(message, PREPREPARE_BYTES, targets=targets)
        self._after_preprepare_accepted(message)

    # ------------------------------------------------------------------ checkpoints

    def _maybe_checkpoint(self, seq: int) -> None:
        interval = self._config.checkpoint_interval
        if interval <= 0:
            return
        if seq - self._log.last_checkpoint_seq < interval:
            return
        self.send_checkpoint()

    def send_checkpoint(self) -> None:
        """Broadcast a featherweight checkpoint of everything committed so far."""
        since = self._log.last_checkpoint_seq
        entries = self._log.committed_since(since)
        if not entries:
            return
        certificates = {
            entry.seq: (entry.digest, tuple(entry.certificate)) for entry in entries
        }
        up_to = max(certificates)
        unsigned = CheckpointMsg(
            view=self._view, up_to_seq=up_to, replica=self._id, certificates=certificates
        )
        signature = self._signer.sign(unsigned)
        message = CheckpointMsg(
            view=self._view,
            up_to_seq=up_to,
            replica=self._id,
            certificates=certificates,
            signature=signature,
        )
        seed_cached_digest(message, signature.message_digest)
        self._log.advance_checkpoint(up_to)
        self._host.process(
            self._costs.ds_sign,
            lambda: self._transport.broadcast(message, message.size_bytes),
        )
        self._trace("pbft.checkpoint_sent", up_to=up_to, entries=len(certificates))

    def on_checkpoint(self, message: CheckpointMsg, sender: str) -> None:
        if message.replica != sender:
            return
        if message.signature is not None and not self._signer.verify(
            message, message.signature
        ):
            return
        adopted = 0
        verification_cost = 0.0
        for seq, (slot_digest, signatures) in sorted(message.certificates.items()):
            if self._log.is_committed(seq):
                continue
            valid = self._count_valid_certificate(seq, slot_digest, signatures, message.view)
            verification_cost += self._costs.ds_verify * len(signatures)
            if valid < self._quorum:
                continue
            entry = CommittedEntry(
                seq=seq,
                view=message.view,
                digest=slot_digest,
                batch=self._log.slot(seq).batch,
                certificate=tuple(signatures),
            )
            self._log.record_commit(entry)
            self._cancel_request_timer(seq)
            adopted += 1
            self._on_committed(entry)
        if adopted:
            self._log.advance_checkpoint(message.up_to_seq)
            self._trace("pbft.checkpoint_adopted", from_replica=sender, adopted=adopted)
        if verification_cost:
            self._host.process_parallel(verification_cost, 16, lambda: None)

    def _count_valid_certificate(
        self,
        seq: int,
        slot_digest: str,
        signatures: Tuple[Signature, ...],
        view: int,
    ) -> int:
        valid_signers = set()
        for signature in signatures:
            unsigned = CommitMsg(view=view, seq=seq, digest=slot_digest, replica=signature.signer)
            if self._signer.verify(unsigned, signature):
                valid_signers.add(signature.signer)
        return len(valid_signers)

    # ------------------------------------------------------------------ helpers

    def certificate_for(self, seq: int) -> Tuple[Signature, ...]:
        return self._log.slot(seq).certificate

    def _trace(self, category: str, **details) -> None:
        if self._tracer is not None:
            self._tracer.record(self._host.now, category, self._id, **details)
