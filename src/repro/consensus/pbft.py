"""PBFT ordering engine for the shim.

This module implements the three-phase PBFT protocol exactly as the paper
uses it at the shim (Figure 3): the primary assigns a sequence number in a
PREPREPARE (MAC-authenticated), nodes broadcast PREPARE (MAC), nodes that
collect ``2f_R + 1`` matching PREPAREs broadcast digitally signed COMMIT
messages, and a request is committed once ``2f_R + 1`` matching COMMITs are
collected.  The commit signatures double as the certificate ``C`` forwarded
to serverless executors.

Also included:

* PBFT view change / new view to replace a byzantine primary (Section V-A4);
* the paper's *featherweight checkpoints* (Section V-B) that let nodes kept
  in the dark catch up using only commit certificates;
* per-message CPU charging through the host node's CPU resource so the
  consensus cost scales with ``n_R`` and with the available cores, which is
  what drives Figures 5, 6(ix,x) and 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.consensus.log import CommittedEntry, ConsensusLog
from repro.consensus.messages import (
    COMMIT_BYTES,
    CheckpointMsg,
    CheckpointRequestMsg,
    CommitMsg,
    NewViewMsg,
    PREPARE_BYTES,
    PREPREPARE_BYTES,
    PrePrepareMsg,
    PrepareMsg,
    ViewChangeMsg,
)
from repro.consensus.quorums import QuorumTracker
from repro.crypto.costs import CryptoCostModel
from repro.crypto.hashing import cached_digest, seed_cached_digest
from repro.crypto.signatures import Signature, SignatureService
from repro.errors import ProtocolViolation
from repro.perf import PERF


class ReplicaTransport:
    """Transport interface a host node provides to its ordering engine."""

    def send(self, dst: str, message: Any, size_bytes: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def broadcast(self, message: Any, size_bytes: int, targets: Optional[List[str]] = None) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass
class PBFTConfig:
    """Tunable knobs of the shim's PBFT instance."""

    checkpoint_interval: int = 64
    request_timeout: float = 2.0
    #: Base delay of the view-change escalation timer: after broadcasting a
    #: VIEWCHANGE, wait this long (doubling per attempt) for the new view to
    #: install before escalating to the next candidate view.  ``None`` or 0
    #: falls back to ``request_timeout``.
    viewchange_timeout: Optional[float] = None
    use_threshold_certificates: bool = False


class PBFTReplica:
    """One replica's PBFT state machine.

    The replica is hosted inside a :class:`repro.core.shim_node.ShimNode`
    (or a baseline node) which supplies the transport, CPU charging, timers,
    and the ``on_committed`` callback invoked for every decided sequence
    number.
    """

    def __init__(
        self,
        replica_id: str,
        replicas: List[str],
        config: PBFTConfig,
        transport: ReplicaTransport,
        signer: SignatureService,
        cost_model: CryptoCostModel,
        host,
        on_committed: Callable[[CommittedEntry], None],
        on_view_installed: Optional[Callable[[int, str], None]] = None,
        tracer=None,
        obs=None,
        behaviour=None,
    ) -> None:
        if replica_id not in replicas:
            raise ProtocolViolation(f"replica {replica_id!r} is not part of the shim {replicas}")
        self._id = replica_id
        self._replicas = list(replicas)
        self._n = len(replicas)
        self._f = (self._n - 1) // 3
        self._quorum = 2 * self._f + 1
        self._config = config
        self._transport = transport
        self._signer = signer
        self._costs = cost_model
        self._host = host
        self._on_committed = on_committed
        self._on_view_installed = on_view_installed
        self._tracer = tracer
        self._obs = obs
        self._behaviour = behaviour

        self._view = 0
        self._next_seq = 0
        self._log = ConsensusLog()
        self._prepare_quorum: QuorumTracker = QuorumTracker(self._quorum)
        self._commit_quorum: QuorumTracker = QuorumTracker(self._quorum)
        self._viewchange_quorum: QuorumTracker = QuorumTracker(self._quorum)
        self._viewchange_join: QuorumTracker = QuorumTracker(self._f + 1)
        self._sent_viewchange_for: set = set()
        self._request_timers: Dict[int, Any] = {}
        self._view_changes_installed = 0
        self._viewchange_timer: Any = None
        self._viewchange_attempts = 0
        # Crash/recovery lifecycle (driven by fault timelines).
        self._crashed = False
        self._catching_up = False
        self._recovery_responders: set = set()
        # Checkpoint bookkeeping: highest up_to / stable watermark / view each
        # replica has reported, used to compute the 2f+1 stable checkpoint,
        # the f+1 recovery skip-ahead, and the f+1 view re-adoption.
        self._peer_checkpoint_seqs: Dict[str, int] = {}
        self._peer_stable_seqs: Dict[str, int] = {}
        self._peer_views: Dict[str, int] = {}
        self._checkpoints_sent = 0
        self._checkpoints_adopted = 0

    # ------------------------------------------------------------------ properties

    @property
    def replica_id(self) -> str:
        return self._id

    @property
    def n(self) -> int:
        return self._n

    @property
    def f(self) -> int:
        return self._f

    @property
    def quorum_size(self) -> int:
        return self._quorum

    @property
    def view(self) -> int:
        return self._view

    @property
    def log(self) -> ConsensusLog:
        return self._log

    @property
    def view_changes_installed(self) -> int:
        return self._view_changes_installed

    @property
    def is_crashed(self) -> bool:
        return self._crashed

    @property
    def checkpoints_sent(self) -> int:
        return self._checkpoints_sent

    @property
    def checkpoints_adopted(self) -> int:
        """Checkpoint messages from which at least one decision was adopted."""
        return self._checkpoints_adopted

    @property
    def primary(self) -> str:
        return self.primary_of(self._view)

    def primary_of(self, view: int) -> str:
        """Nodes have a pre-decided rotation order for becoming primary."""
        return self._replicas[view % self._n]

    @property
    def is_primary(self) -> bool:
        return self.primary == self._id

    # ------------------------------------------------------------------ proposing

    def propose(self, batch: Any) -> int:
        """Primary only: assign the next sequence number and start consensus."""
        if self._crashed:
            raise ProtocolViolation(f"{self._id} is crashed and cannot propose")
        if not self.is_primary:
            raise ProtocolViolation(f"{self._id} is not the primary of view {self._view}")
        self._next_seq += 1
        seq = self._next_seq
        batch_digest = cached_digest(batch)
        message = PrePrepareMsg(view=self._view, seq=seq, digest=batch_digest, batch=batch)

        targets = [replica for replica in self._replicas if replica != self._id]
        equivocation = None
        if self._behaviour is not None:
            targets = self._behaviour.preprepare_targets(targets)
            equivocation = self._behaviour.equivocation(seq, batch)

        slot = self._log.slot(seq)
        slot.view = self._view
        slot.digest = batch_digest
        slot.batch = batch
        slot.preprepared = True

        # Hash the batch once and MAC it for every target.
        cost = self._costs.hash_cost(PREPREPARE_BYTES) + self._costs.mac_sign * len(targets)
        self._host.process(cost, self._emit_preprepare, message, targets, equivocation)
        self._trace("pbft.propose", seq=seq, digest=batch_digest)
        if self._obs is not None:
            self._obs.begin_span("consensus", seq, self._host.now, self._id)
        return seq

    def _emit_preprepare(self, message: PrePrepareMsg, targets: List[str], equivocation) -> None:
        if self._crashed:
            return
        if equivocation is not None:
            # A byzantine primary sends one batch to half the nodes and a
            # different batch (same sequence number) to the other half.
            other_batch, other_targets = equivocation
            other_message = PrePrepareMsg(
                view=message.view,
                seq=message.seq,
                digest=cached_digest(other_batch),
                batch=other_batch,
            )
            first_group = [t for t in targets if t not in set(other_targets)]
            self._transport.broadcast(message, PREPREPARE_BYTES, targets=first_group)
            self._transport.broadcast(other_message, PREPREPARE_BYTES, targets=list(other_targets))
        else:
            self._transport.broadcast(message, PREPREPARE_BYTES, targets=targets)
        # The primary also supports its own proposal with a PREPARE.
        self._after_preprepare_accepted(message)

    # ------------------------------------------------------------------ handlers

    def handle(self, message: Any, sender: str) -> bool:
        """Dispatch a consensus message.  Returns True if it was consumed."""
        if self._crashed:
            return True
        if isinstance(message, PrePrepareMsg):
            self.on_preprepare(message, sender)
        elif isinstance(message, PrepareMsg):
            self.on_prepare(message, sender)
        elif isinstance(message, CommitMsg):
            self.on_commit(message, sender)
        elif isinstance(message, ViewChangeMsg):
            self.on_view_change(message, sender)
        elif isinstance(message, NewViewMsg):
            self.on_new_view(message, sender)
        elif isinstance(message, CheckpointMsg):
            self.on_checkpoint(message, sender)
        elif isinstance(message, CheckpointRequestMsg):
            self.on_checkpoint_request(message, sender)
        else:
            return False
        return True

    def on_preprepare(self, message: PrePrepareMsg, sender: str) -> None:
        if sender != self.primary_of(message.view) or message.view != self._view:
            return
        slot = self._log.slot(message.seq)
        if slot.preprepared and slot.digest != message.digest:
            # The primary equivocated: refuse the second proposal and complain.
            self._trace("pbft.equivocation_detected", seq=message.seq)
            self.request_view_change(reason="equivocation")
            return
        if slot.committed:
            return
        if cached_digest(message.batch) != message.digest:
            return
        slot.view = message.view
        slot.digest = message.digest
        slot.batch = message.batch
        slot.preprepared = True
        cost = self._costs.mac_verify + self._costs.hash_cost(PREPREPARE_BYTES)
        self._host.process(cost, self._after_preprepare_accepted, message)

    def _after_preprepare_accepted(self, message: PrePrepareMsg) -> None:
        if self._crashed:
            return
        self._start_request_timer(message.seq)
        prepare = PrepareMsg(
            view=message.view, seq=message.seq, digest=message.digest, replica=self._id
        )
        if self._behaviour is None or not self._behaviour.suppress("prepare"):
            cost = self._costs.mac_sign * (self._n - 1)
            self._host.process(cost, self._transport.broadcast, prepare, PREPARE_BYTES)
        self._record_prepare(prepare, self._id)

    def on_prepare(self, message: PrepareMsg, sender: str) -> None:
        if message.view != self._view:
            return
        self._host.process(self._costs.mac_verify, self._record_prepare, message, sender)

    def _record_prepare(self, message: PrepareMsg, sender: str) -> None:
        if self._crashed:
            return
        key = (message.view, message.seq, message.digest)
        if self._prepare_quorum.add(key, sender):
            slot = self._log.slot(message.seq)
            slot.prepared = True
            slot.prepare_voters = self._prepare_quorum.voters(key)
            self._trace("pbft.prepared", seq=message.seq)
            self._broadcast_commit(message.view, message.seq, message.digest)

    def _broadcast_commit(self, view: int, seq: int, batch_digest: str) -> None:
        if self._behaviour is not None and self._behaviour.suppress("commit"):
            return
        unsigned = CommitMsg(view=view, seq=seq, digest=batch_digest, replica=self._id)
        signature = self._signer.sign(unsigned)
        commit = CommitMsg(
            view=view, seq=seq, digest=batch_digest, replica=self._id, signature=signature
        )
        # The canonical form ignores the signature field, so the signed copy
        # has the same digest as the unsigned payload: seed the memo so no
        # receiver ever re-serialises this commit.
        seed_cached_digest(commit, signature.message_digest)
        cost = self._costs.ds_sign
        self._host.process(cost, self._transport.broadcast, commit, COMMIT_BYTES)
        self._record_commit_vote(commit, self._id)

    def on_commit(self, message: CommitMsg, sender: str) -> None:
        if message.view != self._view or message.replica != sender:
            return
        if message.signature is None:
            return
        # A broadcast COMMIT is the same object at every receiver, and
        # signature validity depends only on the deployment's shared key
        # store: memoise the outcome per instance (the simulated ds_verify
        # CPU charge below is unchanged).
        valid = message.__dict__.get("_sig_valid")
        if valid is None:
            valid = self._signer.verify(message, message.signature)
            object.__setattr__(message, "_sig_valid", valid)
        else:
            PERF.verify_signature_cache_hits += 1
        if not valid:
            return
        self._host.process(self._costs.ds_verify, self._record_commit_vote, message, sender)

    def _record_commit_vote(self, message: CommitMsg, sender: str) -> None:
        if self._crashed:
            return
        key = (message.view, message.seq, message.digest)
        slot = self._log.slot(message.seq)
        if message.signature is not None:
            slot.commit_signatures[sender] = message.signature
        if self._commit_quorum.add(key, sender, payload=message.signature):
            if slot.committed:
                return
            slot.committed = True
            slot.commit_voters = self._commit_quorum.voters(key)
            self._cancel_request_timer(message.seq)
            entry = CommittedEntry(
                seq=message.seq,
                view=message.view,
                digest=message.digest,
                batch=slot.batch,
                certificate=slot.certificate,
            )
            self._log.record_commit(entry)
            self._trace("pbft.committed", seq=message.seq, digest=message.digest)
            if self._obs is not None:
                self._obs.end_span("consensus", message.seq, self._host.now)
            self._maybe_checkpoint(message.seq)
            self._on_committed(entry)

    # ------------------------------------------------------------------ timers

    def _start_request_timer(self, seq: int) -> None:
        if seq in self._request_timers:
            return
        self._request_timers[seq] = self._host.set_timer(
            self._config.request_timeout, self._on_request_timeout, seq
        )

    def _cancel_request_timer(self, seq: int) -> None:
        timer = self._request_timers.pop(seq, None)
        if timer is not None:
            timer.cancel()

    def _on_request_timeout(self, seq: int) -> None:
        self._request_timers.pop(seq, None)
        if self._crashed or self._log.is_committed(seq):
            return
        self._trace("pbft.request_timeout", seq=seq)
        self.request_view_change(reason=f"timeout-seq-{seq}")

    # ------------------------------------------------------------------ view change

    def request_view_change(self, reason: str = "", target: Optional[int] = None) -> None:
        """Broadcast a VIEWCHANGE for ``target`` (default: the next view).

        Section V-A4.  Repeated failures escalate: every VIEWCHANGE arms the
        escalation timer, and if the requested view does not install before
        it expires the replica re-requests one view further with the timer
        delay doubled — so a run of consecutive bad primaries is skipped in
        O(k) view changes instead of stalling at v+1 forever.
        """
        if self._crashed:
            return
        new_view = target if target is not None else self._view + 1
        if new_view <= self._view or new_view in self._sent_viewchange_for:
            return
        self._sent_viewchange_for.add(new_view)
        prepared = tuple(
            (slot.seq, slot.digest or "")
            for slot in self._log.prepared_uncommitted()
        )
        unsigned = ViewChangeMsg(new_view=new_view, replica=self._id, prepared=prepared)
        signature = self._signer.sign(unsigned)
        message = ViewChangeMsg(
            new_view=new_view, replica=self._id, prepared=prepared, signature=signature
        )
        seed_cached_digest(message, signature.message_digest)
        self._trace("pbft.viewchange_requested", new_view=new_view, reason=reason)
        if self._obs is not None:
            self._obs.begin_span("view_change", new_view, self._host.now, self._id)
        self._host.process(
            self._costs.ds_sign,
            self._broadcast_message, message, message.size_bytes,
        )
        self._arm_viewchange_timer()
        self.on_view_change(message, self._id)

    def _viewchange_timeout_base(self) -> float:
        configured = self._config.viewchange_timeout
        if configured is not None and configured > 0:
            return configured
        return self._config.request_timeout

    def _arm_viewchange_timer(self) -> None:
        self._cancel_viewchange_timer()
        delay = self._viewchange_timeout_base() * (2 ** self._viewchange_attempts)
        self._viewchange_timer = self._host.set_timer(delay, self._on_viewchange_timeout)

    def _cancel_viewchange_timer(self) -> None:
        if self._viewchange_timer is not None:
            self._viewchange_timer.cancel()
            self._viewchange_timer = None

    def _on_viewchange_timeout(self) -> None:
        self._viewchange_timer = None
        if self._crashed or not self._sent_viewchange_for:
            return
        # The view we asked for never installed (its primary may be the next
        # faulty node in the rotation): escalate past it with backoff.
        self._viewchange_attempts += 1
        target = max(self._sent_viewchange_for) + 1
        self._trace("pbft.viewchange_escalated", target=target, attempt=self._viewchange_attempts)
        self.request_view_change(reason="escalation", target=target)

    def on_view_change(self, message: ViewChangeMsg, sender: str) -> None:
        if message.new_view <= self._view:
            return
        if message.replica != sender:
            return
        if message.signature is not None and not self._signer.verify(
            message, message.signature
        ):
            return
        key = message.new_view
        # Joining rule: seeing f+1 view-change requests for a higher view is
        # proof at least one honest node timed out, so join *that* view
        # change (not merely v+1 — joining an escalated view change must
        # target the escalated view, or the quorum can never form).
        if self._viewchange_join.add(key, sender) and sender != self._id:
            if key not in self._sent_viewchange_for:
                self.request_view_change(reason="join", target=key)
        if self._viewchange_quorum.add(key, sender, payload=message):
            if self.primary_of(key) == self._id:
                self._install_new_view_as_primary(key)

    def _install_new_view_as_primary(self, new_view: int) -> None:
        supporters = frozenset(self._viewchange_quorum.voters(new_view))
        reproposals: List[Tuple[int, str, Any]] = []
        seen: set = set()
        for vc in self._viewchange_quorum.payloads(new_view):
            if vc is None:
                continue
            for seq, slot_digest in vc.prepared:
                if seq in seen or self._log.is_committed(seq):
                    continue
                seen.add(seq)
                local = self._log.slot(seq)
                reproposals.append((seq, slot_digest, local.batch))
        unsigned = NewViewMsg(
            new_view=new_view,
            primary=self._id,
            reproposals=tuple(reproposals),
            supporters=supporters,
        )
        signature = self._signer.sign(unsigned)
        message = NewViewMsg(
            new_view=new_view,
            primary=self._id,
            reproposals=unsigned.reproposals,
            supporters=supporters,
            signature=signature,
        )
        seed_cached_digest(message, signature.message_digest)
        self._host.process(
            self._costs.ds_sign,
            self._broadcast_message, message, message.size_bytes,
        )
        self._adopt_view(new_view)
        self._trace("pbft.newview_sent", new_view=new_view, reproposals=len(reproposals))
        # Re-propose the prepared-but-uncommitted slots in the new view.
        for seq, slot_digest, batch in reproposals:
            if batch is not None:
                self._repropose(seq, batch)

    def on_new_view(self, message: NewViewMsg, sender: str) -> None:
        if message.new_view <= self._view:
            return
        if sender != message.primary or self.primary_of(message.new_view) != message.primary:
            return
        if message.signature is not None and not self._signer.verify(
            message, message.signature
        ):
            return
        self._host.process(self._costs.ds_verify, lambda: self._adopt_view(message.new_view))
        for seq, slot_digest, batch in message.reproposals:
            if batch is None or self._log.is_committed(seq):
                continue
            reproposal = PrePrepareMsg(
                view=message.new_view, seq=seq, digest=slot_digest, batch=batch
            )
            self.on_preprepare(reproposal, message.primary)

    def _adopt_view(self, new_view: int) -> None:
        if new_view <= self._view:
            return
        self._view = new_view
        self._view_changes_installed += 1
        # Clear any pending request timers: responsibility moves to the new primary.
        for timer in self._request_timers.values():
            timer.cancel()
        self._request_timers.clear()
        # The view change succeeded: disarm escalation and reset its backoff.
        self._cancel_viewchange_timer()
        self._viewchange_attempts = 0
        self._sent_viewchange_for = {
            pending for pending in self._sent_viewchange_for if pending > new_view
        }
        self._next_seq = max(self._next_seq, self._log.max_committed_seq())
        self._trace("pbft.view_installed", view=new_view, primary=self.primary)
        if self._obs is not None:
            self._obs.end_span("view_change", new_view, self._host.now)
        if self._on_view_installed is not None:
            self._on_view_installed(new_view, self.primary)

    def _repropose(self, seq: int, batch: Any) -> None:
        batch_digest = cached_digest(batch)
        message = PrePrepareMsg(view=self._view, seq=seq, digest=batch_digest, batch=batch)
        slot = self._log.slot(seq)
        slot.view = self._view
        slot.digest = batch_digest
        slot.batch = batch
        slot.preprepared = True
        targets = [replica for replica in self._replicas if replica != self._id]
        self._transport.broadcast(message, PREPREPARE_BYTES, targets=targets)
        self._after_preprepare_accepted(message)

    # ------------------------------------------------------------------ checkpoints

    def _maybe_checkpoint(self, seq: int) -> None:
        interval = self._config.checkpoint_interval
        if interval <= 0:
            return
        if seq - self._log.last_checkpoint_seq < interval:
            return
        self.send_checkpoint()

    def send_checkpoint(self) -> None:
        """Broadcast a featherweight checkpoint of everything committed so far."""
        since = self._log.last_checkpoint_seq
        entries = self._log.committed_since(since)
        if not entries:
            return
        message = self._build_checkpoint(since)
        self._log.advance_checkpoint(message.up_to_seq)
        self._note_peer_checkpoint(self._id, message.up_to_seq, self._log.stable_seq)
        self._checkpoints_sent += 1
        self._host.process(
            self._costs.ds_sign,
            self._broadcast_message, message, message.size_bytes,
        )
        self._trace(
            "pbft.checkpoint_sent",
            up_to=message.up_to_seq,
            entries=len(message.certificates),
        )

    def _build_checkpoint(self, since: int) -> CheckpointMsg:
        """A signed checkpoint carrying the certificates retained after ``since``."""
        entries = self._log.committed_since(since)
        certificates = {
            entry.seq: (entry.digest, entry.view, tuple(entry.certificate))
            for entry in entries
        }
        up_to = max(certificates) if certificates else max(self._log.max_committed_seq(), since)
        unsigned = CheckpointMsg(
            view=self._view,
            up_to_seq=up_to,
            replica=self._id,
            certificates=certificates,
            stable_seq=self._log.stable_seq,
        )
        signature = self._signer.sign(unsigned)
        message = CheckpointMsg(
            view=self._view,
            up_to_seq=up_to,
            replica=self._id,
            certificates=certificates,
            stable_seq=self._log.stable_seq,
            signature=signature,
        )
        seed_cached_digest(message, signature.message_digest)
        return message

    def on_checkpoint_request(self, message: CheckpointRequestMsg, sender: str) -> None:
        """Targeted state transfer for a recovering or dark node (Section V-B).

        Unlike the periodic broadcast, the reply is sent even when no
        retained certificate is newer than the requester's ``low_seq`` — it
        still carries this replica's stable watermark and current view,
        which is exactly what a node rejoining after total state loss needs.
        """
        if self._crashed or sender == self._id or message.replica != sender:
            return
        reply = self._build_checkpoint(max(message.low_seq, self._log.stable_seq))
        self._trace("pbft.checkpoint_reply", to=sender, low_seq=message.low_seq)
        self._host.process(
            self._costs.ds_sign,
            self._send_message, sender, reply, reply.size_bytes,
        )

    def on_checkpoint(self, message: CheckpointMsg, sender: str) -> None:
        if message.replica != sender:
            return
        if message.signature is not None and not self._signer.verify(
            message, message.signature
        ):
            return
        self._note_peer_checkpoint(sender, message.up_to_seq, message.stable_seq)
        previous_view = self._peer_views.get(sender, 0)
        self._peer_views[sender] = max(previous_view, message.view)
        if self._catching_up:
            self._recovery_responders.add(sender)
            self._maybe_skip_to_peer_stable()
            if len(self._recovery_responders) > self._f:
                self._catching_up = False
                self._trace("pbft.recovery_caught_up", up_to=self._log.max_committed_seq())
                if self._obs is not None:
                    self._obs.end_span("recovery", self._id, self._host.now)
        self._maybe_adopt_peer_view()
        adopted = 0
        verification_cost = 0.0
        for seq, (slot_digest, commit_view, signatures) in sorted(message.certificates.items()):
            if self._log.is_committed(seq):
                continue
            # Verify against the view the commit votes were signed in, not
            # the sender's current view — views may have moved on since.
            valid = self._count_valid_certificate(seq, slot_digest, signatures, commit_view)
            verification_cost += self._costs.ds_verify * len(signatures)
            if valid < self._quorum:
                continue
            entry = CommittedEntry(
                seq=seq,
                view=commit_view,
                digest=slot_digest,
                batch=self._log.slot(seq).batch,
                certificate=tuple(signatures),
            )
            self._log.record_commit(entry)
            self._cancel_request_timer(seq)
            adopted += 1
            self._on_committed(entry)
        if adopted:
            self._log.advance_checkpoint(message.up_to_seq)
            self._checkpoints_adopted += 1
            self._trace("pbft.checkpoint_adopted", from_replica=sender, adopted=adopted)
        self._update_stable()
        if verification_cost:
            self._host.process_parallel(verification_cost, 16, lambda: None)

    def _note_peer_checkpoint(self, replica: str, up_to_seq: int, stable_seq: int) -> None:
        if up_to_seq > self._peer_checkpoint_seqs.get(replica, 0):
            self._peer_checkpoint_seqs[replica] = up_to_seq
        if stable_seq > self._peer_stable_seqs.get(replica, 0):
            self._peer_stable_seqs[replica] = stable_seq

    def _update_stable(self) -> None:
        """Advance the stable watermark to the 2f+1-checkpointed prefix.

        The watermark is the quorum-th largest ``up_to`` any replica has
        checkpointed, clamped to the locally committed contiguous prefix so
        truncation never touches a sequence number this replica has not
        itself decided (which keeps fault-free runs bit-identical).
        """
        table = self._peer_checkpoint_seqs
        if len(table) < self._quorum:
            return
        values = sorted(table.values(), reverse=True)
        stable = min(values[self._quorum - 1], self._log.contiguous_committed_through())
        if stable > self._log.stable_seq:
            self._log.mark_stable(stable)
            self._log.advance_checkpoint(stable)
            self._trace("pbft.stable_checkpoint", stable=stable)

    def _maybe_skip_to_peer_stable(self) -> None:
        """Recovery skip-ahead: adopt an f+1-vouched stable watermark.

        f+1 signed checkpoint replies claiming ``stable >= S`` include at
        least one honest replica that truncated at S — which itself required
        a 2f+1 checkpoint quorum — so the decisions below S are final even
        though their certificates are no longer retained anywhere.
        """
        values = sorted(self._peer_stable_seqs.values(), reverse=True)
        if len(values) <= self._f:
            return
        candidate = values[self._f]
        if candidate > self._log.stable_seq:
            self._log.skip_to_stable(candidate)
            self._log.advance_checkpoint(candidate)
            self._next_seq = max(self._next_seq, candidate)
            self._trace("pbft.recovery_skip_ahead", stable=candidate)

    def _maybe_adopt_peer_view(self) -> None:
        """Re-learn the cluster's view after recovery (f+1 rule)."""
        values = sorted(self._peer_views.values(), reverse=True)
        if len(values) <= self._f:
            return
        candidate = values[self._f]
        if candidate > self._view:
            self._adopt_view(candidate)

    def _count_valid_certificate(
        self,
        seq: int,
        slot_digest: str,
        signatures: Tuple[Signature, ...],
        view: int,
    ) -> int:
        valid_signers = set()
        for signature in signatures:
            unsigned = CommitMsg(view=view, seq=seq, digest=slot_digest, replica=signature.signer)
            if self._signer.verify(unsigned, signature):
                valid_signers.add(signature.signer)
        return len(valid_signers)

    # ------------------------------------------------------------------ lifecycle

    def crash(self) -> None:
        """Lose all volatile state and stop processing (crash fault).

        The stable checkpoint watermark is the only thing that survives
        (stable checkpoints are durable by definition); slots, quorum
        trackers, timers, and the current view are all volatile.  The
        cumulative counters (view changes, checkpoints) survive too — they
        are measurement bookkeeping, not protocol state.
        """
        if self._crashed:
            return
        self._crashed = True
        for timer in self._request_timers.values():
            timer.cancel()
        self._request_timers.clear()
        self._cancel_viewchange_timer()
        self._viewchange_attempts = 0
        self._prepare_quorum = QuorumTracker(self._quorum)
        self._commit_quorum = QuorumTracker(self._quorum)
        self._viewchange_quorum = QuorumTracker(self._quorum)
        self._viewchange_join = QuorumTracker(self._f + 1)
        self._sent_viewchange_for = set()
        self._peer_checkpoint_seqs = {}
        self._peer_stable_seqs = {}
        self._peer_views = {}
        self._catching_up = False
        self._recovery_responders = set()
        self._log.drop_volatile()
        self._view = 0
        self._next_seq = self._log.max_committed_seq()
        self._trace("pbft.crashed")

    def recover(self) -> None:
        """Rejoin after a crash: ask peers for catch-up state.

        The replica resumes processing immediately and broadcasts a
        CHECKPOINT-REQUEST announcing how far its durable state reaches;
        peers reply with targeted featherweight checkpoints (and their
        stable watermark and view), from which the replica re-adopts the
        decisions and view it slept through.
        """
        if not self._crashed:
            return
        self._crashed = False
        self._catching_up = True
        self._recovery_responders = set()
        request = CheckpointRequestMsg(replica=self._id, low_seq=self._log.max_committed_seq())
        self._trace("pbft.recovery_requested", low_seq=request.low_seq)
        if self._obs is not None:
            self._obs.begin_span("recovery", self._id, self._host.now, self._id)
        self._host.process(
            self._costs.mac_sign * max(1, self._n - 1),
            self._broadcast_message, request, request.size_bytes,
        )

    # ------------------------------------------------------------------ helpers

    def _broadcast_message(self, message: Any, size_bytes: int) -> None:
        """Deferred broadcast, dropped if the replica crashed in the meantime."""
        if self._crashed:
            return
        self._transport.broadcast(message, size_bytes)

    def _send_message(self, dst: str, message: Any, size_bytes: int) -> None:
        if self._crashed:
            return
        self._transport.send(dst, message, size_bytes)

    def certificate_for(self, seq: int) -> Tuple[Signature, ...]:
        return self._log.slot(seq).certificate

    def _trace(self, category: str, **details) -> None:
        if self._tracer is not None:
            self._tracer.record(self._host.now, category, self._id, **details)
