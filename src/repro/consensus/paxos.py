"""Crash-fault-tolerant ordering (the SERVERLESSCFT baseline).

Figure 7 compares ServerlessBFT against a shim that runs "a crash
fault-tolerant protocol like Paxos": no digital signatures, linear
communication (replicas answer only to the leader), and majority quorums.
This module implements a stable-leader Multi-Paxos in the same host/transport
framework as :class:`repro.consensus.pbft.PBFTReplica` so the two can be
swapped inside a shim node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.consensus.log import CommittedEntry, ConsensusLog
from repro.consensus.messages import (
    PAXOS_ACCEPT_BYTES,
    PAXOS_ACCEPTED_BYTES,
    PaxosAcceptMsg,
    PaxosAcceptedMsg,
)
from repro.consensus.quorums import QuorumTracker
from repro.crypto.costs import CryptoCostModel
from repro.crypto.hashing import cached_digest
from repro.errors import ProtocolViolation


@dataclass(frozen=True)
class PaxosLearnMsg:
    """Leader's notification that a slot is chosen."""

    ballot: int
    seq: int
    digest: str
    batch: Any

    def canonical(self) -> str:
        return f"paxos-learn:{self.ballot}:{self.seq}:{self.digest}"


PAXOS_LEARN_BYTES = 160


@dataclass
class PaxosConfig:
    """Tunable knobs of the CFT shim."""

    request_timeout: float = 2.0


class PaxosReplica:
    """A stable-leader Multi-Paxos replica ordering opaque batches."""

    def __init__(
        self,
        replica_id: str,
        replicas: List[str],
        config: PaxosConfig,
        transport,
        cost_model: CryptoCostModel,
        host,
        on_committed: Callable[[CommittedEntry], None],
        tracer=None,
        obs=None,
    ) -> None:
        if replica_id not in replicas:
            raise ProtocolViolation(f"replica {replica_id!r} is not part of the shim {replicas}")
        self._id = replica_id
        self._replicas = list(replicas)
        self._n = len(replicas)
        self._majority = self._n // 2 + 1
        self._config = config
        self._transport = transport
        self._costs = cost_model
        self._host = host
        self._on_committed = on_committed
        self._tracer = tracer
        self._obs = obs

        self._ballot = 0
        self._next_seq = 0
        self._log = ConsensusLog()
        self._accepted_quorum: QuorumTracker = QuorumTracker(self._majority)

    @property
    def replica_id(self) -> str:
        return self._id

    @property
    def n(self) -> int:
        return self._n

    @property
    def majority(self) -> int:
        return self._majority

    @property
    def leader(self) -> str:
        return self._replicas[self._ballot % self._n]

    @property
    def is_primary(self) -> bool:
        return self.leader == self._id

    # Alias so shim nodes can treat PBFT and Paxos replicas uniformly.
    @property
    def is_leader(self) -> bool:
        return self.is_primary

    @property
    def view(self) -> int:
        return self._ballot

    @property
    def log(self) -> ConsensusLog:
        return self._log

    def propose(self, batch: Any) -> int:
        """Leader only: choose the next slot and replicate the batch."""
        if not self.is_leader:
            raise ProtocolViolation(f"{self._id} is not the Paxos leader")
        self._next_seq += 1
        seq = self._next_seq
        batch_digest = cached_digest(batch)
        slot = self._log.slot(seq)
        slot.view = self._ballot
        slot.digest = batch_digest
        slot.batch = batch
        slot.preprepared = True
        message = PaxosAcceptMsg(ballot=self._ballot, seq=seq, digest=batch_digest, batch=batch)
        # No signatures: only the batch hash plus cheap per-target MACs.
        cost = self._costs.hash_cost(PAXOS_ACCEPT_BYTES) + self._costs.mac_sign * (self._n - 1)
        self._host.process(cost, self._transport.broadcast, message, PAXOS_ACCEPT_BYTES)
        self._record_accepted(
            PaxosAcceptedMsg(ballot=self._ballot, seq=seq, digest=batch_digest, replica=self._id),
            self._id,
        )
        self._trace("paxos.propose", seq=seq)
        if self._obs is not None:
            self._obs.begin_span("consensus", seq, self._host.now, self._id)
        return seq

    def handle(self, message: Any, sender: str) -> bool:
        if isinstance(message, PaxosAcceptMsg):
            self.on_accept(message, sender)
        elif isinstance(message, PaxosAcceptedMsg):
            self.on_accepted(message, sender)
        elif isinstance(message, PaxosLearnMsg):
            self.on_learn(message, sender)
        else:
            return False
        return True

    def on_accept(self, message: PaxosAcceptMsg, sender: str) -> None:
        if sender != self.leader or message.ballot != self._ballot:
            return
        slot = self._log.slot(message.seq)
        slot.view = message.ballot
        slot.digest = message.digest
        slot.batch = message.batch
        slot.preprepared = True
        slot.prepared = True
        reply = PaxosAcceptedMsg(
            ballot=message.ballot, seq=message.seq, digest=message.digest, replica=self._id
        )
        cost = self._costs.mac_verify + self._costs.mac_sign
        self._host.process(
            cost, lambda: self._transport.send(self.leader, reply, PAXOS_ACCEPTED_BYTES)
        )

    def on_accepted(self, message: PaxosAcceptedMsg, sender: str) -> None:
        if not self.is_leader or message.ballot != self._ballot:
            return
        self._host.process(self._costs.mac_verify, self._record_accepted, message, sender)

    def _record_accepted(self, message: PaxosAcceptedMsg, sender: str) -> None:
        key = (message.ballot, message.seq, message.digest)
        if self._accepted_quorum.add(key, sender):
            slot = self._log.slot(message.seq)
            if slot.committed:
                return
            learn = PaxosLearnMsg(
                ballot=message.ballot,
                seq=message.seq,
                digest=message.digest,
                batch=slot.batch,
            )
            self._host.process(
                self._costs.mac_sign * (self._n - 1),
                lambda: self._transport.broadcast(learn, PAXOS_LEARN_BYTES),
            )
            self._commit(message.seq, message.ballot, message.digest, slot.batch)

    def on_learn(self, message: PaxosLearnMsg, sender: str) -> None:
        if sender != self.leader:
            return
        if self._log.is_committed(message.seq):
            return
        self._host.process(
            self._costs.mac_verify,
            lambda: self._commit(message.seq, message.ballot, message.digest, message.batch),
        )

    def _commit(self, seq: int, ballot: int, batch_digest: str, batch: Any) -> None:
        if self._log.is_committed(seq):
            return
        slot = self._log.slot(seq)
        slot.committed = True
        slot.batch = batch if batch is not None else slot.batch
        entry = CommittedEntry(
            seq=seq, view=ballot, digest=batch_digest, batch=slot.batch, certificate=()
        )
        self._log.record_commit(entry)
        self._trace("paxos.committed", seq=seq)
        if self._obs is not None:
            self._obs.end_span("consensus", seq, self._host.now)
        self._on_committed(entry)

    def _trace(self, category: str, **details) -> None:
        if self._tracer is not None:
            self._tracer.record(self._host.now, category, self._id, **details)
