"""Per-replica consensus log.

Each sequence number has a slot tracking how far it has progressed through
the PBFT phases, the batch proposed for it, and — once committed — the
commit certificate (the 2f_R + 1 commit signatures that the primary later
forwards to executors inside EXECUTE messages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.signatures import Signature


@dataclass
class SlotState:
    """Progress of one sequence number at one replica."""

    seq: int
    view: int = 0
    digest: Optional[str] = None
    batch: Any = None
    preprepared: bool = False
    prepared: bool = False
    committed: bool = False
    commit_signatures: Dict[str, Signature] = field(default_factory=dict)
    prepare_voters: List[str] = field(default_factory=list)
    commit_voters: List[str] = field(default_factory=list)

    @property
    def certificate(self) -> Tuple[Signature, ...]:
        """Commit certificate: the distinct commit signatures collected."""
        return tuple(self.commit_signatures.values())


@dataclass(frozen=True)
class CommittedEntry:
    """A decision handed to the layer above the ordering engine."""

    seq: int
    view: int
    digest: str
    batch: Any
    certificate: Tuple[Signature, ...]


class ConsensusLog:
    """Slot table plus commit bookkeeping for one replica."""

    def __init__(self) -> None:
        self._slots: Dict[int, SlotState] = {}
        self._committed: Dict[int, CommittedEntry] = {}
        self._last_checkpoint_seq = 0

    def slot(self, seq: int) -> SlotState:
        if seq not in self._slots:
            self._slots[seq] = SlotState(seq=seq)
        return self._slots[seq]

    def has_slot(self, seq: int) -> bool:
        return seq in self._slots

    def committed_entries(self) -> List[CommittedEntry]:
        return [self._committed[seq] for seq in sorted(self._committed)]

    def committed_count(self) -> int:
        return len(self._committed)

    def is_committed(self, seq: int) -> bool:
        return seq in self._committed

    def record_commit(self, entry: CommittedEntry) -> None:
        self._committed[entry.seq] = entry
        slot = self.slot(entry.seq)
        slot.committed = True
        slot.digest = entry.digest
        slot.view = entry.view
        if entry.batch is not None:
            slot.batch = entry.batch

    def committed_since(self, seq_exclusive: int) -> List[CommittedEntry]:
        return [entry for seq, entry in sorted(self._committed.items()) if seq > seq_exclusive]

    def max_committed_seq(self) -> int:
        return max(self._committed) if self._committed else 0

    def prepared_uncommitted(self) -> List[SlotState]:
        """Slots that prepared but did not commit (carried into view changes)."""
        return [
            slot
            for seq, slot in sorted(self._slots.items())
            if slot.prepared and not slot.committed
        ]

    @property
    def last_checkpoint_seq(self) -> int:
        return self._last_checkpoint_seq

    def advance_checkpoint(self, seq: int) -> None:
        self._last_checkpoint_seq = max(self._last_checkpoint_seq, seq)

    def missing_below(self, seq: int) -> List[int]:
        """Sequence numbers ≤ ``seq`` that this replica has not committed."""
        return [candidate for candidate in range(1, seq + 1) if candidate not in self._committed]
