"""Per-replica consensus log.

Each sequence number has a slot tracking how far it has progressed through
the PBFT phases, the batch proposed for it, and — once committed — the
commit certificate (the 2f_R + 1 commit signatures that the primary later
forwards to executors inside EXECUTE messages).

The log also maintains the *stable checkpoint* watermark (Section V-B):
once 2f+1 replicas have checkpointed through a sequence number — and this
replica has committed everything up to it — slots and retained entries at or
below the watermark are truncated, which is what bounds the log's memory
under long runs and rolling restarts.  Truncated sequence numbers still
count as committed (``is_committed``), they just no longer carry payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.signatures import Signature


@dataclass
class SlotState:
    """Progress of one sequence number at one replica."""

    seq: int
    view: int = 0
    digest: Optional[str] = None
    batch: Any = None
    preprepared: bool = False
    prepared: bool = False
    committed: bool = False
    commit_signatures: Dict[str, Signature] = field(default_factory=dict)
    prepare_voters: List[str] = field(default_factory=list)
    commit_voters: List[str] = field(default_factory=list)

    @property
    def certificate(self) -> Tuple[Signature, ...]:
        """Commit certificate: the distinct commit signatures collected."""
        return tuple(self.commit_signatures.values())


@dataclass(frozen=True)
class CommittedEntry:
    """A decision handed to the layer above the ordering engine."""

    seq: int
    view: int
    digest: str
    batch: Any
    certificate: Tuple[Signature, ...]


class ConsensusLog:
    """Slot table plus commit bookkeeping for one replica."""

    def __init__(self) -> None:
        self._slots: Dict[int, SlotState] = {}
        self._committed: Dict[int, CommittedEntry] = {}
        self._last_checkpoint_seq = 0
        self._stable_seq = 0
        self._total_committed = 0

    def slot(self, seq: int) -> SlotState:
        if seq not in self._slots:
            self._slots[seq] = SlotState(seq=seq)
        return self._slots[seq]

    def has_slot(self, seq: int) -> bool:
        return seq in self._slots

    def committed_entries(self) -> List[CommittedEntry]:
        """Retained (post-watermark) committed entries, in sequence order."""
        return [self._committed[seq] for seq in sorted(self._committed)]

    def committed_count(self) -> int:
        """Total sequence numbers known decided (monotone across truncation)."""
        return self._total_committed

    def is_committed(self, seq: int) -> bool:
        return seq <= self._stable_seq or seq in self._committed

    def record_commit(self, entry: CommittedEntry) -> None:
        if entry.seq <= self._stable_seq:
            return
        if entry.seq not in self._committed:
            self._total_committed += 1
        self._committed[entry.seq] = entry
        slot = self.slot(entry.seq)
        slot.committed = True
        slot.digest = entry.digest
        slot.view = entry.view
        if entry.batch is not None:
            slot.batch = entry.batch

    def committed_since(self, seq_exclusive: int) -> List[CommittedEntry]:
        return [entry for seq, entry in sorted(self._committed.items()) if seq > seq_exclusive]

    def max_committed_seq(self) -> int:
        retained = max(self._committed) if self._committed else 0
        return max(self._stable_seq, retained)

    def prepared_uncommitted(self) -> List[SlotState]:
        """Slots that prepared but did not commit (carried into view changes)."""
        return [
            slot
            for seq, slot in sorted(self._slots.items())
            if slot.prepared and not slot.committed
        ]

    @property
    def last_checkpoint_seq(self) -> int:
        return self._last_checkpoint_seq

    def advance_checkpoint(self, seq: int) -> None:
        self._last_checkpoint_seq = max(self._last_checkpoint_seq, seq)

    def missing_below(self, seq: int) -> List[int]:
        """Sequence numbers ≤ ``seq`` that this replica has not committed."""
        return [
            candidate
            for candidate in range(self._stable_seq + 1, seq + 1)
            if candidate not in self._committed
        ]

    # ------------------------------------------------------------------ checkpoints

    @property
    def stable_seq(self) -> int:
        """Highest truncated (2f+1-checkpointed) sequence number."""
        return self._stable_seq

    @property
    def retained_commits(self) -> int:
        """Committed entries still held in memory (post-watermark)."""
        return len(self._committed)

    @property
    def slot_count(self) -> int:
        return len(self._slots)

    def contiguous_committed_through(self) -> int:
        """Largest seq such that every sequence number ≤ it is committed."""
        seq = self._stable_seq
        while (seq + 1) in self._committed:
            seq += 1
        return seq

    def mark_stable(self, seq: int) -> None:
        """Advance the stable watermark and truncate at/below it.

        The caller guarantees every sequence number ≤ ``seq`` is locally
        committed (use :meth:`contiguous_committed_through` to clamp), so
        truncation never changes what ``is_committed`` reports.
        """
        if seq <= self._stable_seq:
            return
        self._stable_seq = seq
        self._truncate()

    def skip_to_stable(self, seq: int) -> None:
        """Recovery skip-ahead: adopt a peer-vouched stable watermark.

        Sequence numbers up to ``seq`` become committed-by-proxy (their
        certificates were truncated cluster-wide); used by a recovering node
        whose catch-up responders no longer retain the early certificates.
        """
        if seq <= self._stable_seq:
            return
        for candidate in range(self._stable_seq + 1, seq + 1):
            if candidate not in self._committed:
                self._total_committed += 1
        self._stable_seq = seq
        self._truncate()

    def drop_volatile(self) -> None:
        """Crash: volatile slots and retained entries vanish.

        Only the stable watermark survives a crash (stable checkpoints are
        durable by definition); everything after it must be re-learned
        through the state-transfer path.
        """
        self._slots.clear()
        self._committed.clear()
        self._total_committed = self._stable_seq
        self._last_checkpoint_seq = self._stable_seq

    def _truncate(self) -> None:
        stable = self._stable_seq
        for seq in [seq for seq in self._committed if seq <= stable]:
            del self._committed[seq]
        for seq in [seq for seq in self._slots if seq <= stable]:
            del self._slots[seq]
