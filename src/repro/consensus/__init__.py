"""Consensus engines used by the shim.

The paper deploys PBFT at the shim (Section IV-B) and compares it with a
crash-fault-tolerant Paxos-style shim (the SERVERLESSCFT baseline of
Figure 7).  Both engines order opaque batches; the surrounding
serverless-edge machinery (executor spawning, verifier, recovery) lives in
:mod:`repro.core`.
"""

from repro.consensus.messages import (
    CheckpointMsg,
    CommitMsg,
    NewViewMsg,
    PaxosAcceptMsg,
    PaxosAcceptedMsg,
    PrePrepareMsg,
    PrepareMsg,
    ViewChangeMsg,
)
from repro.consensus.quorums import QuorumTracker
from repro.consensus.log import CommittedEntry, ConsensusLog, SlotState
from repro.consensus.pbft import PBFTConfig, PBFTReplica, ReplicaTransport
from repro.consensus.paxos import PaxosConfig, PaxosReplica

__all__ = [
    "CheckpointMsg",
    "CommitMsg",
    "CommittedEntry",
    "ConsensusLog",
    "NewViewMsg",
    "PBFTConfig",
    "PBFTReplica",
    "PaxosAcceptMsg",
    "PaxosAcceptedMsg",
    "PaxosConfig",
    "PaxosReplica",
    "PrePrepareMsg",
    "PrepareMsg",
    "QuorumTracker",
    "ReplicaTransport",
    "SlotState",
    "ViewChangeMsg",
]
