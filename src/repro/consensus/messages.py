"""Messages exchanged between shim nodes during ordering.

Wire sizes follow the paper's reported message sizes (Section IX, Setup):
PREPREPARE 5392 B, PREPARE 216 B, COMMIT 220 B.  View-change and checkpoint
messages scale with the number of entries they carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Tuple

from repro.crypto.signatures import Signature

#: Default wire sizes, in bytes, as measured by the authors.
PREPREPARE_BYTES = 5392
PREPARE_BYTES = 216
COMMIT_BYTES = 220
VIEWCHANGE_BASE_BYTES = 512
NEWVIEW_BASE_BYTES = 512
CHECKPOINT_BASE_BYTES = 256
CHECKPOINT_REQUEST_BYTES = 128


@dataclass(frozen=True)
class PrePrepareMsg:
    """Primary's proposal assigning sequence ``seq`` to a batch in ``view``."""

    view: int
    seq: int
    digest: str
    batch: Any
    mac: Optional[str] = None

    def canonical(self) -> str:
        return f"preprepare:{self.view}:{self.seq}:{self.digest}"


@dataclass(frozen=True)
class PrepareMsg:
    """A node's agreement to support sequence ``seq`` for digest ``digest``."""

    view: int
    seq: int
    digest: str
    replica: str
    mac: Optional[str] = None

    def canonical(self) -> str:
        return f"prepare:{self.view}:{self.seq}:{self.digest}:{self.replica}"


@dataclass(frozen=True)
class CommitMsg:
    """A node's commit vote; digitally signed so it can serve in certificates."""

    view: int
    seq: int
    digest: str
    replica: str
    signature: Optional[Signature] = None

    def canonical(self) -> str:
        return f"commit:{self.view}:{self.seq}:{self.digest}:{self.replica}"

    def unsigned(self) -> "CommitMsg":
        """The commit payload without its signature (what the signature covers)."""
        return CommitMsg(view=self.view, seq=self.seq, digest=self.digest, replica=self.replica)


@dataclass(frozen=True)
class ViewChangeMsg:
    """Request to replace the primary of ``view`` with the primary of ``new_view``."""

    new_view: int
    replica: str
    # Prepared-but-uncommitted slots the replica knows about: seq -> (digest, batch).
    prepared: Tuple[Tuple[int, str], ...] = ()
    signature: Optional[Signature] = None

    def canonical(self) -> str:
        prepared = ";".join(f"{seq}:{digest}" for seq, digest in self.prepared)
        return f"viewchange:{self.new_view}:{self.replica}:{prepared}"

    def unsigned(self) -> "ViewChangeMsg":
        return ViewChangeMsg(new_view=self.new_view, replica=self.replica, prepared=self.prepared)

    @property
    def size_bytes(self) -> int:
        return VIEWCHANGE_BASE_BYTES + 64 * len(self.prepared)


@dataclass(frozen=True)
class NewViewMsg:
    """The new primary's message installing ``new_view``."""

    new_view: int
    primary: str
    # Slots the new primary re-proposes: seq -> (digest, batch).
    reproposals: Tuple[Tuple[int, str, Any], ...] = ()
    supporters: FrozenSet[str] = frozenset()
    signature: Optional[Signature] = None

    def canonical(self) -> str:
        slots = ";".join(f"{seq}:{digest}" for seq, digest, _batch in self.reproposals)
        return f"newview:{self.new_view}:{self.primary}:{slots}"

    def unsigned(self) -> "NewViewMsg":
        return NewViewMsg(
            new_view=self.new_view,
            primary=self.primary,
            reproposals=self.reproposals,
            supporters=self.supporters,
        )

    @property
    def size_bytes(self) -> int:
        return NEWVIEW_BASE_BYTES + 128 * len(self.reproposals)


@dataclass(frozen=True)
class CheckpointMsg:
    """Featherweight checkpoint (Section V-B).

    Unlike classic PBFT checkpoints, shim nodes neither execute requests nor
    hold state, so the checkpoint carries only the *commit certificates*
    (digest plus the 2f+1 commit signatures) of every sequence number decided
    since the last checkpoint — enough for a node kept in the dark to verify
    and adopt those decisions.
    """

    view: int
    up_to_seq: int
    replica: str
    #: seq -> (digest, commit view, commit signatures).  The *commit view*
    #: is the view the certificate's signatures were produced in — required
    #: to re-verify them after later view changes (the sender's current
    #: ``view`` above may have moved on).
    certificates: Dict[int, Tuple[str, int, Tuple[Signature, ...]]] = field(default_factory=dict)
    #: Sender's stable (truncated) watermark: sequence numbers ≤ it are
    #: 2f+1-checkpointed cluster-wide and their certificates are no longer
    #: retained.  A recovering node adopts the watermark once f+1 distinct
    #: responders vouch for it.
    stable_seq: int = 0
    signature: Optional[Signature] = None

    def canonical(self) -> str:
        certs = ";".join(
            f"{seq}:{view}:{digest}"
            for seq, (digest, view, _sigs) in sorted(self.certificates.items())
        )
        return f"checkpoint:{self.view}:{self.up_to_seq}:{self.stable_seq}:{self.replica}:{certs}"

    def unsigned(self) -> "CheckpointMsg":
        return CheckpointMsg(
            view=self.view,
            up_to_seq=self.up_to_seq,
            replica=self.replica,
            certificates=self.certificates,
            stable_seq=self.stable_seq,
        )

    @property
    def size_bytes(self) -> int:
        return CHECKPOINT_BASE_BYTES + 96 * sum(
            1 + len(sigs) for _digest, _view, sigs in self.certificates.values()
        )


@dataclass(frozen=True)
class CheckpointRequestMsg:
    """A recovering (or dark) node asking peers for catch-up state.

    The requester announces the highest sequence number it still holds
    (``low_seq``); each peer replies with a targeted :class:`CheckpointMsg`
    carrying the certificates it retains beyond that point plus its stable
    watermark and current view — together the state-transfer path of
    Section V-B for a node rejoining after a crash.
    """

    replica: str
    low_seq: int = 0

    def canonical(self) -> str:
        return f"checkpoint-request:{self.replica}:{self.low_seq}"

    @property
    def size_bytes(self) -> int:
        return CHECKPOINT_REQUEST_BYTES


# --------------------------------------------------------------------------- Paxos
# Messages for the crash-fault-tolerant shim baseline (SERVERLESSCFT).


@dataclass(frozen=True)
class PaxosAcceptMsg:
    """Leader's accept (phase-2a) message for a slot."""

    ballot: int
    seq: int
    digest: str
    batch: Any

    def canonical(self) -> str:
        return f"paxos-accept:{self.ballot}:{self.seq}:{self.digest}"


@dataclass(frozen=True)
class PaxosAcceptedMsg:
    """Acceptor's accepted (phase-2b) message."""

    ballot: int
    seq: int
    digest: str
    replica: str

    def canonical(self) -> str:
        return f"paxos-accepted:{self.ballot}:{self.seq}:{self.digest}:{self.replica}"


PAXOS_ACCEPT_BYTES = 5200
PAXOS_ACCEPTED_BYTES = 96
