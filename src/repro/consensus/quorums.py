"""Quorum counting.

PBFT phases repeatedly need "identical messages from N distinct nodes".
:class:`QuorumTracker` collects votes keyed by an arbitrary vote key (e.g.
``(view, seq, digest)``), deduplicates by sender, and reports when a
threshold is met.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Hashable,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

VoteKey = TypeVar("VoteKey", bound=Hashable)


class QuorumTracker(Generic[VoteKey]):
    """Counts distinct voters per key and fires once a threshold is reached."""

    def __init__(self, threshold: int) -> None:
        self._threshold = threshold
        self._votes: Dict[VoteKey, Dict[str, Any]] = {}
        self._reached: Set[VoteKey] = set()

    @property
    def threshold(self) -> int:
        return self._threshold

    def add(self, key: VoteKey, voter: str, payload: Any = None) -> bool:
        """Record a vote.  Returns True the *first* time the quorum is reached.

        Duplicate votes from the same voter for the same key are ignored, as
        required to tolerate byzantine vote replays.
        """
        voters = self._votes.setdefault(key, {})
        if voter in voters:
            return False
        voters[voter] = payload
        if key not in self._reached and len(voters) >= self._threshold:
            self._reached.add(key)
            return True
        return False

    def count(self, key: VoteKey) -> int:
        return len(self._votes.get(key, {}))

    def reached(self, key: VoteKey) -> bool:
        return key in self._reached

    def voters(self, key: VoteKey) -> List[str]:
        return list(self._votes.get(key, {}))

    def payloads(self, key: VoteKey) -> List[Any]:
        return list(self._votes.get(key, {}).values())

    def keys(self) -> List[VoteKey]:
        return list(self._votes.keys())

    def best_key_with_prefix(
        self, prefix_filter: Callable[[VoteKey], bool]
    ) -> Optional[Tuple[VoteKey, int]]:
        """Return the key with the most votes among those accepted by ``prefix_filter``."""
        best: Optional[Tuple[VoteKey, int]] = None
        for key, voters in self._votes.items():
            if not prefix_filter(key):
                continue
            if best is None or len(voters) > best[1]:
                best = (key, len(voters))
        return best

    def clear(self, key: VoteKey) -> None:
        self._votes.pop(key, None)
        self._reached.discard(key)
