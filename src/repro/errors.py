"""Exception hierarchy shared by every subsystem of the reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class CryptoError(ReproError):
    """A cryptographic check failed (bad signature, MAC, or digest)."""


class ProtocolViolation(ReproError):
    """A component observed a message that violates the protocol."""


class StorageError(ReproError):
    """The on-premise data store was accessed incorrectly."""


class StoreError(ReproError):
    """The result warehouse hit an unresolvable condition (e.g. a shard
    merge found two records for one digest disagreeing on addressed
    fields — a determinism violation, not a tie to break)."""


class CloudError(ReproError):
    """The serverless cloud rejected a request (limits, unknown region)."""


class WorkloadError(ReproError):
    """A workload generator was configured or used incorrectly."""


class KernelUnavailableError(ReproError):
    """``REPRO_KERNEL=c`` was requested but the compiled kernel cannot be
    used (extension not built, import failure, or build-tag mismatch).
    Only the *explicit* request raises; the default ``auto`` mode falls
    back to pure Python with a one-time warning instead."""
