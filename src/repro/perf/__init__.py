"""Performance instrumentation for the simulator's hot paths.

This package is deliberately tiny and dependency-free (it is imported by
``repro.crypto.hashing``, near the bottom of the dependency graph):

* :data:`PERF` — a process-global :class:`PerfCounters` instance the hot
  paths increment (digest cache hits, memoised batch executions, fast-path
  scheduling).  Counter increments are plain attribute adds, cheap enough to
  leave enabled permanently.
* :func:`profile_run` — a ``cProfile`` wrapper used by ``PERFORMANCE.md``'s
  methodology and the kernel-throughput benchmark to produce hot-path
  inventories.
"""

from repro.perf.counters import PERF, PerfCounters
from repro.perf.profile import ProfileReport, profile_run

__all__ = ["PERF", "PerfCounters", "ProfileReport", "profile_run"]
