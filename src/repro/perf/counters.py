"""Process-global hot-path counters.

The counters quantify how well the PR's memoisation layers work on a given
workload (digest cache hit rate, batch-execution reuse, fast-path event
scheduling).  They measure *implementation* efficiency only — nothing in the
simulation's virtual-time behaviour reads them.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Mapping


@dataclass
class PerfCounters:
    """Mutable counters incremented by the simulator's hot paths."""

    #: Full digest computations (SHA-256 over the canonical bytes).
    digests_computed: int = 0
    #: ``cached_digest`` calls answered from a per-object memo.
    digest_cache_hits: int = 0
    #: Deterministic batch executions actually run by ``execute_batch``.
    batch_executions: int = 0
    #: Batch executions answered from the per-batch/versions memo.
    batch_execution_cache_hits: int = 0
    #: Events pushed through ``Simulator.schedule_fast`` (no Event wrapper).
    events_scheduled_fast: int = 0
    #: Events dispatched straight from the kernel's deferred slot — each one
    #: a coalesced back-to-back event whose heappush/heappop pair was elided.
    events_coalesced: int = 0
    #: Slot occupants demoted to the heap by an earlier arrival (the
    #: coalescing fast lane's bookkeeping overhead).
    events_displaced: int = 0
    #: Cancelled events removed by batched heap compaction.
    events_compacted: int = 0
    #: CPU jobs that queued behind busy cores and completed through the
    #: resource's intrusive FIFO (back-to-back completions).
    cpu_jobs_coalesced: int = 0
    #: Commit-certificate verifications answered from the per-instance memo.
    certificate_cache_hits: int = 0
    #: VERIFY-message signature checks answered from the per-instance memo
    #: (duplicate deliveries and verify-flooding re-sends).
    verify_signature_cache_hits: int = 0
    #: Batches executed by the compiled kernel (``repro._ckernel``) rather
    #: than the pure-Python ``execute_batch`` loop.
    ckernel_batches_executed: int = 0
    #: Transactions assembled by the compiled kernel's YCSB generator.
    ckernel_txns_generated: int = 0
    #: Digests computed by the compiled kernel's SHA-256 (subset of
    #: ``digests_computed`` — which variant served the computation).
    ckernel_digests: int = 0

    def reset(self) -> None:
        """Zero every counter (e.g. between benchmark iterations)."""
        for field in fields(self):
            setattr(self, field.name, 0)

    def snapshot(self) -> dict:
        """Counter values as a plain dict (stable field order)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    def delta_since(self, baseline: Mapping[str, int]) -> dict:
        """Counter increments since a :meth:`snapshot` baseline.

        The per-run discipline for the process-global :data:`PERF` object:
        snapshot at run start, delta at collect, so back-to-back runs and
        warm pool workers report their own work instead of process-lifetime
        totals.  Counters absent from the baseline count from zero.
        """
        return {
            field.name: getattr(self, field.name) - baseline.get(field.name, 0)
            for field in fields(self)
        }

    @property
    def digest_cache_hit_rate(self) -> float:
        total = self.digests_computed + self.digest_cache_hits
        return self.digest_cache_hits / total if total else 0.0

    def format(self) -> str:
        lines = [f"  {name:32s} {value:>12,}" for name, value in self.snapshot().items()]
        return "perf counters:\n" + "\n".join(lines)


#: The process-global counter set used by the hot paths.
PERF = PerfCounters()
