"""``profile_run`` — one-call cProfile wrapper for hot-path inventories.

Usage (the recipe documented in ``PERFORMANCE.md``)::

    from repro.perf import profile_run
    report = profile_run(simulate_point, config, duration=1.0)
    print(report.top(25))        # hottest functions by cumulative time
    result = report.result       # the wrapped call's return value
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass
from typing import Any, Callable


@dataclass
class ProfileReport:
    """The return value and profiler of one profiled call."""

    result: Any
    profiler: cProfile.Profile

    def top(self, count: int = 25, sort: str = "cumulative") -> str:
        """Render the ``count`` hottest functions as text."""
        stream = io.StringIO()
        pstats.Stats(self.profiler, stream=stream).sort_stats(sort).print_stats(count)
        return stream.getvalue()


def profile_run(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> ProfileReport:
    """Run ``fn(*args, **kwargs)`` under cProfile and return result + stats."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    return ProfileReport(result=result, profiler=profiler)
