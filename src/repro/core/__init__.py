"""ServerlessBFT core: the paper's primary contribution.

This package wires the substrates together into the serverless-edge
architecture ``A = {C, R, E, S, V}`` and implements the full ServerlessBFT
transactional flow of Figure 3, the attack-recovery algorithms of Figure 4
(request suppression, nodes in dark, verifier flooding), and the
conflicting-transaction handling of Section VI (optimistic execution with
3f_E+1 executors and verifier-side aborts, decentralized spawning, and
best-effort conflict avoidance with a logical lock map).
"""

from repro.core.config import ProtocolConfig, SpawnPolicyName, ConflictMode
from repro.core.certificates import CommitCertificate
from repro.core.client import ClientGroup
from repro.core.conflict import ConflictPlanner
from repro.core.executor import Executor
from repro.core.messages import (
    AbortMsg,
    AckMsg,
    ClientRequestMsg,
    ErrorMsg,
    ExecuteMsg,
    ReplaceMsg,
    ResponseMsg,
    VerifyMsg,
)
from repro.core.runner import ServerlessBFTSimulation, SimulationResult
from repro.core.shim_node import ShimNode
from repro.core.spawning import DecentralizedSpawnPolicy, PrimarySpawnPolicy, executors_per_node
from repro.core.verifier import Verifier

__all__ = [
    "AbortMsg",
    "AckMsg",
    "ClientGroup",
    "ClientRequestMsg",
    "CommitCertificate",
    "ConflictMode",
    "ConflictPlanner",
    "DecentralizedSpawnPolicy",
    "ErrorMsg",
    "ExecuteMsg",
    "Executor",
    "PrimarySpawnPolicy",
    "ProtocolConfig",
    "ReplaceMsg",
    "ResponseMsg",
    "ServerlessBFTSimulation",
    "ShimNode",
    "SimulationResult",
    "SpawnPolicyName",
    "Verifier",
    "VerifyMsg",
    "executors_per_node",
]
