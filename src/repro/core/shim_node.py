"""Shim nodes (edge devices).

A shim node is an edge device (a UAV in the motivating use case) that
participates in ordering client transactions and — once a transaction is
committed — spawns serverless executors at the cloud and hands them the
commit certificate.  The node hosts:

* an ordering engine (PBFT by default, Paxos for the SERVERLESSCFT baseline);
* the *invoker*: the component that asks the serverless cloud to spawn
  executors after a commit (primary-only or decentralized spawning);
* the recovery logic of Figure 4: forwarding verifier ERROR messages to the
  primary, the retransmission timer ``Υ``, and view-change triggering on
  REPLACE messages or timeouts;
* optionally a byzantine behaviour that perturbs any of those decisions.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.cloud.lambda_cloud import ServerlessCloud, SpawnRequest
from repro.consensus.log import CommittedEntry
from repro.consensus.paxos import PaxosConfig, PaxosReplica
from repro.consensus.pbft import PBFTConfig, PBFTReplica, ReplicaTransport
from repro.core.certificates import build_certificate
from repro.core.config import ConflictMode, ProtocolConfig, SpawnPolicyName
from repro.core.conflict import ConflictPlanner
from repro.core.messages import (
    AckMsg,
    ClientRequestMsg,
    ErrorMsg,
    ExecuteMsg,
    ReplaceMsg,
    ResponseMsg,
)
from repro.core.spawning import DecentralizedSpawnPolicy, PrimarySpawnPolicy
from repro.crypto.costs import CryptoCostModel
from repro.crypto.hashing import seed_cached_digest
from repro.crypto.signatures import SignatureService
from repro.faults.byzantine import NodeBehaviour
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.process import SimProcess
from repro.sim.tracing import Tracer
from repro.workload.transactions import Transaction, TransactionBatch


class _NodeTransport(ReplicaTransport):
    """Adapter exposing the network to the ordering engine."""

    def __init__(self, node: "ShimNode") -> None:
        self._node = node

    def send(self, dst: str, message: Any, size_bytes: int) -> None:
        if self._node.is_crashed:
            return
        self._node.network.send(self._node.name, dst, message, size_bytes)

    def broadcast(self, message: Any, size_bytes: int, targets: Optional[List[str]] = None) -> None:
        if self._node.is_crashed:
            return
        recipients = targets if targets is not None else self._node.peer_names
        self._node.network.broadcast(self._node.name, recipients, message, size_bytes)


class ShimNode(SimProcess):
    """One edge device of the shim."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        region: str,
        config: ProtocolConfig,
        shim_names: List[str],
        signer: SignatureService,
        costs: CryptoCostModel,
        cloud: Optional[ServerlessCloud],
        executor_regions: List[str],
        verifier_name: str,
        consensus_engine: str = "pbft",
        behaviour: Optional[NodeBehaviour] = None,
        tracer: Optional[Tracer] = None,
        obs=None,
        batch_flush_timeout: float = 0.02,
    ) -> None:
        super().__init__(sim, name, region, cores=config.shim_cores)
        self._network = network
        self._config = config
        self._shim_names = list(shim_names)
        self._signer = signer
        self._costs = costs
        self._cloud = cloud
        self._verifier_name = verifier_name
        self._behaviour = behaviour
        self._tracer = tracer
        self._obs = obs
        self._batch_flush_timeout = batch_flush_timeout

        self._pending_txns: Deque[Transaction] = deque()
        self._flush_timer = None
        self._batch_counter = 0
        self._verified_seqs: set = set()
        self._committed_entries: Dict[int, CommittedEntry] = {}
        self._request_seq: Dict[str, int] = {}
        self._retransmission_timers: Dict[str, Any] = {}
        self._spawned_executors = 0
        self._forwarded_requests = 0
        self._planner = ConflictPlanner()
        self._primary_change_listeners: List[Callable[[str], None]] = []
        self._crashed = False

        network.register(name, region, self.on_message)

        if config.spawn_policy is SpawnPolicyName.DECENTRALIZED:
            self._spawn_policy = DecentralizedSpawnPolicy(
                num_executors=config.num_executors,
                regions=executor_regions,
                shim_nodes=config.shim_nodes,
                shim_faults=config.shim_faults,
            )
        else:
            self._spawn_policy = PrimarySpawnPolicy(
                num_executors=config.num_executors, regions=executor_regions
            )

        transport = _NodeTransport(self)
        if consensus_engine == "paxos":
            self._replica = PaxosReplica(
                replica_id=name,
                replicas=shim_names,
                config=PaxosConfig(request_timeout=config.node_request_timeout),
                transport=transport,
                cost_model=costs,
                host=self,
                on_committed=self._on_committed,
                tracer=tracer,
                obs=obs,
            )
        else:
            self._replica = PBFTReplica(
                replica_id=name,
                replicas=shim_names,
                config=PBFTConfig(
                    checkpoint_interval=config.checkpoint_interval,
                    request_timeout=config.node_request_timeout,
                ),
                transport=transport,
                signer=signer,
                cost_model=costs,
                host=self,
                on_committed=self._on_committed,
                on_view_installed=self._on_view_installed,
                tracer=tracer,
                obs=obs,
                behaviour=behaviour,
            )

    # ------------------------------------------------------------------ properties

    @property
    def network(self) -> Network:
        return self._network

    @property
    def replica(self):
        return self._replica

    @property
    def peer_names(self) -> List[str]:
        return [peer for peer in self._shim_names if peer != self.name]

    @property
    def is_primary(self) -> bool:
        return self._replica.is_primary

    @property
    def current_primary(self) -> str:
        return self._replica.primary if hasattr(self._replica, "primary") else self._replica.leader

    @property
    def spawned_executors(self) -> int:
        return self._spawned_executors

    @property
    def forwarded_requests(self) -> int:
        return self._forwarded_requests

    @property
    def verified_sequence_numbers(self) -> set:
        return set(self._verified_seqs)

    @property
    def pending_transactions(self) -> int:
        return len(self._pending_txns)

    def add_primary_change_listener(self, listener: Callable[[str], None]) -> None:
        self._primary_change_listeners.append(listener)

    # ------------------------------------------------------------------ lifecycle

    @property
    def is_crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Crash the node: volatile state is lost, processing stops.

        ``_batch_counter`` deliberately survives — batch ids must never be
        reused across an incarnation, or a stale pre-crash proposal could
        collide with a fresh one.
        """
        if self._crashed:
            return
        self._crashed = True
        self._pending_txns.clear()
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        for key in list(self._retransmission_timers):
            self._retransmission_timers.pop(key).cancel()
        self._planner = ConflictPlanner()
        self._committed_entries.clear()
        self._request_seq.clear()
        self._verified_seqs.clear()
        if hasattr(self._replica, "crash"):
            self._replica.crash()
        self._trace("node.crashed")

    def recover(self) -> None:
        """Restart the node; the replica initiates checkpoint catch-up."""
        if not self._crashed:
            return
        self._crashed = False
        if hasattr(self._replica, "recover"):
            self._replica.recover()
        self._trace("node.recovered")

    # ------------------------------------------------------------------ dispatch

    def on_message(self, message, sender: str) -> None:
        if self._crashed:
            return
        if self._behaviour is not None and self._behaviour.is_crashed():
            return
        if isinstance(message, ClientRequestMsg):
            self._on_client_request(message, sender)
        elif isinstance(message, ErrorMsg):
            self._on_error(message, sender)
        elif isinstance(message, ReplaceMsg):
            self._on_replace(message, sender)
        elif isinstance(message, AckMsg):
            self._on_ack(message, sender)
        elif isinstance(message, ResponseMsg):
            self._on_verified_notice(message, sender)
        else:
            self._replica.handle(message, sender)

    # ------------------------------------------------------------------ client requests

    def _on_client_request(self, request: ClientRequestMsg, sender: str) -> None:
        if not self.is_primary:
            # Non-primary nodes forward client requests to the current primary.
            self._forwarded_requests += 1
            self.process(
                self._config.message_handling_cost,
                lambda: self._network.send(
                    self.name, self.current_primary, request, request.size_bytes
                ),
            )
            return
        if self._behaviour is not None and self._behaviour.should_drop_request(request):
            self._trace("node.request_dropped", request_id=request.request_id)
            return
        # Verify the client's signature over the request and pay the per-
        # transaction ingest cost; this work parallelises over the node's cores.
        verification = (
            self._costs.ds_verify
            + self._costs.hash_cost(request.size_bytes)
            + self._config.txn_ingest_cost * max(1, len(request.transactions))
        )
        self.process_parallel(
            verification,
            len(request.transactions),
            lambda: self._enqueue_transactions(request),
        )

    def _enqueue_transactions(self, request: ClientRequestMsg) -> None:
        self._pending_txns.extend(request.transactions)
        self._maybe_propose()

    def _maybe_propose(self) -> None:
        # The crash guard catches deferred CPU completions (a signature check
        # submitted before the crash finishing after it).
        if self._crashed or not self.is_primary:
            return
        while len(self._pending_txns) >= self._config.batch_size:
            self._propose_batch(self._config.batch_size)
        if self._pending_txns and self._flush_timer is None:
            self._flush_timer = self.set_timer(self._batch_flush_timeout, self._flush_partial_batch)

    def _flush_partial_batch(self) -> None:
        self._flush_timer = None
        if self._crashed or not self.is_primary or not self._pending_txns:
            return
        self._propose_batch(len(self._pending_txns))

    def _propose_batch(self, size: int) -> None:
        pending = self._pending_txns
        if size == len(pending):
            transactions = tuple(pending)
            pending.clear()
        else:
            transactions = tuple(pending.popleft() for _ in range(size))
        self._batch_counter += 1
        batch = TransactionBatch(
            batch_id=f"{self.name}-b{self._batch_counter}", transactions=transactions
        )
        seq = self._replica.propose(batch)
        for txn in transactions:
            self._request_seq[txn.request_id] = seq
        self._trace("node.batch_proposed", seq=seq, size=size)

    # ------------------------------------------------------------------ commits and spawning

    def _on_committed(self, entry: CommittedEntry) -> None:
        self._committed_entries[entry.seq] = entry
        if entry.batch is None:
            # Committed via a featherweight checkpoint without the payload:
            # nothing to execute locally (the shim never executes anyway).
            return
        if self._config.conflict_mode is ConflictMode.CONFLICT_AVOIDANCE:
            self._planner.add(entry.seq, entry.batch)
            for seq, _batch in self._planner.ready():
                self._spawn_for_seq(seq)
        else:
            # Optimistic concurrent spawning (Section VI-A).
            self._spawn_for_seq(entry.seq)

    def _spawn_for_seq(self, seq: int) -> None:
        entry = self._committed_entries.get(seq)
        if entry is None or entry.batch is None or self._cloud is None:
            return
        plan = self._spawn_policy.plan(self.name, self.is_primary)
        if plan.count == 0:
            return
        planned = plan.count
        delay = 0.0
        extra = 0
        if self._behaviour is not None:
            planned = self._behaviour.executor_spawn_count(plan.count, seq)
            delay = self._behaviour.spawn_delay(seq)
            extra = self._behaviour.duplicate_spawn_count(seq)
        regions = list(plan.regions[:planned])
        regions.extend(plan.regions[0] for _ in range(extra))
        if not regions:
            self._trace("node.spawn_suppressed", seq=seq)
            return
        certificate = build_certificate(
            view=entry.view,
            seq=entry.seq,
            digest=entry.digest,
            signatures=entry.certificate,
            use_threshold=self._config.use_threshold_certificates,
            threshold=self._config.shim_quorum,
        )
        unsigned = ExecuteMsg(
            seq=entry.seq,
            view=entry.view,
            batch=entry.batch,
            digest=entry.digest,
            certificate=certificate,
            spawner=self.name,
        )
        signature = self._signer.sign(unsigned)
        execute = ExecuteMsg(
            seq=entry.seq,
            view=entry.view,
            batch=entry.batch,
            digest=entry.digest,
            certificate=certificate,
            spawner=self.name,
            signature=signature,
        )
        seed_cached_digest(execute, signature.message_digest)
        if self._obs is not None:
            self._obs.begin_span("spawn", seq, self.now, self.name)
        spawn_cost = self._config.spawn_api_cost * len(regions) + self._costs.ds_sign
        self.process(spawn_cost, self._invoke_cloud, execute, regions, delay)

    def _invoke_cloud(self, execute: ExecuteMsg, regions: List[str], delay: float) -> None:
        if self._crashed:
            return
        if delay > 0:
            self.set_timer(delay, self._invoke_cloud, execute, regions, 0.0)
            return
        for region in regions:
            self._cloud.spawn(
                SpawnRequest(spawner=self.name, region=region, payload=execute)
            )
            self._spawned_executors += 1
        self._trace("node.executors_spawned", seq=execute.seq, count=len(regions))

    # ------------------------------------------------------------------ verifier feedback

    def _on_verified_notice(self, message: ResponseMsg, sender: str) -> None:
        if sender != self._verifier_name:
            return
        self._verified_seqs.add(message.seq)
        if self._obs is not None:
            self._obs.end_span("commit", message.seq, self.now)
        if self._config.conflict_mode is ConflictMode.CONFLICT_AVOIDANCE:
            for seq, _batch in self._planner.complete(message.seq):
                self._spawn_for_seq(seq)

    def _on_error(self, message: ErrorMsg, sender: str) -> None:
        """Node action on an ERROR message from the verifier (Figure 4, Lines 15–17)."""
        if sender != self._verifier_name:
            return
        key = message.canonical()
        if self.is_primary:
            self._handle_error_as_primary(message)
            return
        if key not in self._retransmission_timers:
            self._retransmission_timers[key] = self.set_timer(
                self._config.retransmission_timeout, self._on_retransmission_timeout, key
            )
        self._network.send(self.name, self.current_primary, message, message.size_bytes)
        self._trace("node.error_forwarded", key=key)

    def _handle_error_as_primary(self, message: ErrorMsg) -> None:
        if message.missing_seq is not None:
            self._respawn_if_known(message.missing_seq)
            return
        if message.request is None:
            return
        request = message.request
        if self._behaviour is not None and self._behaviour.should_drop_request(request):
            # A byzantine primary keeps stonewalling; the nodes' retransmission
            # timers will eventually expire and trigger its replacement.
            self._trace("node.error_ignored", request_id=request.request_id)
            return
        seq = self._request_seq.get(request.request_id)
        if seq is not None:
            self._respawn_if_known(seq)
        else:
            # The request never reached consensus: order it now.
            self._enqueue_transactions(request)

    def _respawn_if_known(self, seq: int) -> None:
        if seq in self._committed_entries and seq not in self._verified_seqs:
            self._trace("node.respawn", seq=seq)
            self._spawn_for_seq(seq)

    def _on_replace(self, message: ReplaceMsg, sender: str) -> None:
        if sender != self._verifier_name:
            return
        if hasattr(self._replica, "request_view_change"):
            self._trace("node.replace_received", reason=message.reason)
            self._replica.request_view_change(reason=f"verifier:{message.reason}")

    def _on_ack(self, message: AckMsg, sender: str) -> None:
        if sender != self._verifier_name:
            return
        for key in list(self._retransmission_timers):
            matches_seq = message.missing_seq is not None and f"seq:{message.missing_seq}" in key
            matches_request = message.request_id is not None and str(message.request_id) in key
            if matches_seq or matches_request:
                self._retransmission_timers.pop(key).cancel()

    def _on_retransmission_timeout(self, key: str) -> None:
        """The primary never resolved a forwarded ERROR: ask for a view change."""
        self._retransmission_timers.pop(key, None)
        if self._crashed:
            return
        if hasattr(self._replica, "request_view_change"):
            self._trace("node.retransmission_timeout", key=key)
            self._replica.request_view_change(reason=f"retransmission:{key}")

    # ------------------------------------------------------------------ view changes

    def _on_view_installed(self, new_view: int, primary: str) -> None:
        self._trace("node.view_installed", view=new_view, primary=primary)
        for listener in self._primary_change_listeners:
            listener(primary)
        if primary != self.name:
            return
        # As the new primary, make sure every committed-but-unverified batch
        # gets its executors (the old primary may have withheld them).
        for seq, entry in sorted(self._committed_entries.items()):
            if seq not in self._verified_seqs and entry.batch is not None:
                self._spawn_for_seq(seq)
        self._maybe_propose()

    def _trace(self, category: str, **details) -> None:
        if self._tracer is not None:
            self._tracer.record(self.now, category, self.name, **details)
