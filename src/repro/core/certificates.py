"""Commit certificates.

The EXECUTE message sent to executors includes a certificate ``C``: the set
of digital signatures of ``2f_R + 1`` distinct shim nodes over the COMMIT
message, proving that the shim agreed to order the request at its sequence
number.  Executors refuse EXECUTE messages without a valid certificate — this
is what stops a byzantine node from spawning executors for requests the shim
never ordered.

The remark in Section IV-C notes the certificate can be compressed with
threshold signatures; :class:`CommitCertificate` supports both encodings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.consensus.messages import CommitMsg
from repro.crypto.signatures import Signature, SignatureService
from repro.crypto.threshold import ThresholdSignature, ThresholdSigner
from repro.errors import CryptoError
from repro.perf import PERF


@dataclass(frozen=True)
class CommitCertificate:
    """Proof that the shim committed digest ``digest`` at sequence ``seq``."""

    view: int
    seq: int
    digest: str
    signatures: Tuple[Signature, ...] = ()
    threshold_signature: Optional[ThresholdSignature] = None

    def canonical(self) -> str:
        signers = ",".join(sorted(sig.signer for sig in self.signatures))
        return f"certificate:{self.view}:{self.seq}:{self.digest}:{signers}"

    @property
    def signer_count(self) -> int:
        if self.threshold_signature is not None:
            return len(self.threshold_signature.signers)
        return len({sig.signer for sig in self.signatures})

    @property
    def size_bytes(self) -> int:
        """Wire size: 96 B per signature, or one constant threshold signature."""
        if self.threshold_signature is not None:
            return self.threshold_signature.size_bytes
        return 96 * len(self.signatures)

    def verify(self, verifier: SignatureService, required: int) -> bool:
        """Check the certificate proves ``required`` distinct shim nodes committed.

        Each signature covers that node's own COMMIT message for
        ``(view, seq, digest)``, which is re-derived here.  The set of valid
        signers is memoised on the certificate instance: every executor
        spawned for the same commit receives the *same* certificate object,
        and signature validity depends only on the deployment's shared key
        store, so re-checking per executor would be pure waste.
        """
        if self.threshold_signature is not None:
            return (
                len(self.threshold_signature.signers) >= required
                and self.threshold_signature.message_digest is not None
            )
        valid_signers = self.__dict__.get("_valid_signers")
        if valid_signers is None:
            valid_signers = set()
            for signature in self.signatures:
                unsigned = CommitMsg(
                    view=self.view, seq=self.seq, digest=self.digest, replica=signature.signer
                )
                if verifier.verify(unsigned, signature):
                    valid_signers.add(signature.signer)
            object.__setattr__(self, "_valid_signers", frozenset(valid_signers))
        else:
            PERF.certificate_cache_hits += 1
        return len(valid_signers) >= required

    def verification_cost(self, cost_model, required: int) -> float:
        """CPU cost of verifying this certificate."""
        if self.threshold_signature is not None:
            return cost_model.threshold_verify
        return cost_model.ds_verify * min(len(self.signatures), max(required, 0))


def build_certificate(
    view: int,
    seq: int,
    digest: str,
    signatures: Tuple[Signature, ...],
    use_threshold: bool = False,
    threshold: int = 0,
) -> CommitCertificate:
    """Build a certificate from collected commit signatures."""
    if use_threshold and threshold > 0:
        # Threshold aggregation requires every share to cover the *same*
        # payload.  PBFT commit signatures cover per-replica COMMIT messages,
        # so aggregation only succeeds for deployments whose nodes sign the
        # shared (view, seq, digest) payload; otherwise fall back to the
        # plain signature-set certificate.
        try:
            signer = ThresholdSigner(threshold)
            aggregate = signer.aggregate(signatures)
            return CommitCertificate(
                view=view, seq=seq, digest=digest, threshold_signature=aggregate
            )
        except CryptoError:
            # Shares cover different digests (per-replica COMMIT payloads)
            # or too few distinct signers: fall through to the plain cert.
            pass
    return CommitCertificate(view=view, seq=seq, digest=digest, signatures=tuple(signatures))
