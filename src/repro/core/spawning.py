"""Executor spawn policies.

After a batch commits, someone has to spawn the ``n_E`` serverless executors
that will execute it:

* **Primary spawning** (Figure 3) — only the current primary spawns, one
  executor per selected region, round-robin over the configured regions.
* **Decentralized spawning** (Section VI-B) — every shim node spawns ``e``
  executors, where ``e`` follows Equation (1) (or Equation (2) when up to
  ``f_R`` honest nodes may be in the dark).  This defeats the byzantine-abort
  attack in which a byzantine primary intentionally delays spawning for
  conflicting transactions, at the price of spawning ``e × n_R ≥ n_E``
  executors overall.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError


def executors_per_node(
    num_executors: int,
    shim_nodes: int,
    shim_faults: int,
    nodes_in_dark: bool = False,
) -> int:
    """The paper's Equation (1) / Equation (2): executors each node spawns.

    Equation (1) assumes every honest node commits the request; Equation (2)
    is the conservative variant when up to ``f_R`` honest nodes may be kept
    in the dark by a byzantine primary.
    """
    if num_executors <= 0 or shim_nodes <= 0:
        raise ConfigurationError("num_executors and shim_nodes must be positive")
    if num_executors <= shim_nodes:
        return 1
    spawners = (shim_faults + 1) if nodes_in_dark else (2 * shim_faults + 1)
    return math.ceil(num_executors / max(1, spawners))


@dataclass(frozen=True)
class SpawnPlan:
    """Which regions a particular shim node should spawn executors in."""

    spawner: str
    regions: List[str]

    @property
    def count(self) -> int:
        return len(self.regions)


class PrimarySpawnPolicy:
    """Only the primary spawns; executors round-robin over the regions."""

    def __init__(self, num_executors: int, regions: List[str]) -> None:
        if not regions:
            raise ConfigurationError("at least one executor region is required")
        self._num_executors = num_executors
        self._regions = list(regions)

    @property
    def num_executors(self) -> int:
        return self._num_executors

    def plan(self, node_id: str, is_primary: bool) -> SpawnPlan:
        if not is_primary:
            return SpawnPlan(spawner=node_id, regions=[])
        regions = [
            self._regions[index % len(self._regions)] for index in range(self._num_executors)
        ]
        return SpawnPlan(spawner=node_id, regions=regions)

    def expected_total(self) -> int:
        return self._num_executors


class DecentralizedSpawnPolicy:
    """Every shim node spawns ``e`` executors (Equations 1 and 2)."""

    def __init__(
        self,
        num_executors: int,
        regions: List[str],
        shim_nodes: int,
        shim_faults: int,
        assume_nodes_in_dark: bool = False,
    ) -> None:
        if not regions:
            raise ConfigurationError("at least one executor region is required")
        self._regions = list(regions)
        self._shim_nodes = shim_nodes
        self._per_node = executors_per_node(
            num_executors, shim_nodes, shim_faults, nodes_in_dark=assume_nodes_in_dark
        )

    @property
    def per_node(self) -> int:
        return self._per_node

    def plan(self, node_id: str, is_primary: bool) -> SpawnPlan:
        # Stagger regions by node so the spawned executors spread out even
        # when each node only spawns one.  CRC32, not the builtin hash():
        # string hashing is randomised per process (PYTHONHASHSEED), and the
        # region choice must be identical in every process that simulates
        # this deployment — parallel sweep workers included.
        offset = zlib.crc32(node_id.encode("utf-8")) % len(self._regions)
        regions = [
            self._regions[(offset + index) % len(self._regions)] for index in range(self._per_node)
        ]
        return SpawnPlan(spawner=node_id, regions=regions)

    def expected_total(self) -> int:
        return self._per_node * self._shim_nodes
