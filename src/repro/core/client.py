"""Clients of the edge application.

Every user of the edge application (each UAV in the motivating use case) is
a client that packages its work as a transaction, signs it, and sends it to
the shim's primary.  The client considers the transaction done only when the
trusted verifier replies.

For simulation efficiency a :class:`ClientGroup` represents a set of
co-located closed-loop clients (one outstanding transaction each): the group
sends one signed request carrying one transaction per simulated client and
issues the next request as soon as the previous one is fully answered.  With
``group_size = 1`` this degenerates to the paper's individual clients.

The group also implements the client side of the request-suppression
recovery (Figure 4): a timer per outstanding request, retransmission to the
verifier with exponential back-off, and completion on either RESPONSE or
ABORT messages.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.core.messages import AbortMsg, ClientRequestMsg, ResponseMsg
from repro.crypto.hashing import seed_cached_digest
from repro.crypto.costs import CryptoCostModel
from repro.crypto.signatures import SignatureService
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.process import SimProcess
from repro.sim.stats import LatencyRecorder
from repro.sim.tracing import Tracer
from repro.workload.ycsb import YCSBWorkload


class _OutstandingRequest:
    """Book-keeping for one in-flight client request."""

    def __init__(self, request: ClientRequestMsg, sent_at: float, timer) -> None:
        self.request = request
        self.sent_at = sent_at
        self.timer = timer
        self.remaining = {txn.txn_id for txn in request.transactions}
        self.committed = 0
        self.aborted = 0
        self.retransmissions = 0


class ClientGroup(SimProcess):
    """A group of closed-loop clients sharing one network endpoint."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        region: str,
        group_size: int,
        workload: YCSBWorkload,
        signer: SignatureService,
        costs: CryptoCostModel,
        primary_name: str,
        verifier_name: str,
        client_timeout: float = 4.0,
        stop_time: Optional[float] = None,
        latency_recorder: Optional[LatencyRecorder] = None,
        tracer: Optional[Tracer] = None,
        obs=None,
        client_index_offset: int = 0,
    ) -> None:
        super().__init__(sim, name, region, cores=None)
        self._network = network
        self._group_size = max(1, group_size)
        self._workload = workload
        self._signer = signer
        self._costs = costs
        self._primary_name = primary_name
        self._verifier_name = verifier_name
        self._client_timeout = client_timeout
        self._stop_time = stop_time
        self._latency = latency_recorder
        self._tracer = tracer
        self._obs = obs
        self._client_index_offset = client_index_offset

        self._request_counter = itertools.count()
        self._outstanding: Dict[str, _OutstandingRequest] = {}
        self._completed_requests = 0
        self._committed_txns = 0
        self._aborted_txns = 0
        self._retransmissions = 0
        network.register(name, region, self.on_message)

    # ------------------------------------------------------------------ metrics

    @property
    def group_size(self) -> int:
        return self._group_size

    @property
    def completed_requests(self) -> int:
        return self._completed_requests

    @property
    def committed_txns(self) -> int:
        return self._committed_txns

    @property
    def aborted_txns(self) -> int:
        return self._aborted_txns

    @property
    def retransmissions(self) -> int:
        return self._retransmissions

    @property
    def outstanding_requests(self) -> int:
        return len(self._outstanding)

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Issue the first request of this group."""
        self._send_next_request()

    def update_primary(self, primary_name: str) -> None:
        """Point future requests at a new primary (after a view change)."""
        self._primary_name = primary_name

    def _send_next_request(self) -> None:
        if self._stop_time is not None and self.now >= self._stop_time:
            return
        request_id = f"{self.name}-req-{next(self._request_counter)}"
        transactions = self._workload.next_transactions(
            self._group_size,
            client_index_offset=self._client_index_offset,
            origin=self.name,
            request_id=request_id,
        )
        unsigned = ClientRequestMsg(
            request_id=request_id, origin=self.name, transactions=transactions
        )
        signature = self._signer.sign(unsigned)
        request = ClientRequestMsg(
            request_id=request_id,
            origin=self.name,
            transactions=transactions,
            signature=signature,
        )
        seed_cached_digest(request, signature.message_digest)
        timer = self.set_timer(self._client_timeout, self._on_timeout, request_id, 1)
        self._outstanding[request_id] = _OutstandingRequest(request, self.now, timer)
        self._network.send(self.name, self._primary_name, request, request.size_bytes)
        if self._tracer is not None:
            self._tracer.record(self.now, "client.request_sent", self.name, request_id=request_id)
        if self._obs is not None:
            self._obs.begin_span("request", request_id, self.now, self.name)

    # ------------------------------------------------------------------ handlers

    def on_message(self, message, sender: str) -> None:
        if isinstance(message, ResponseMsg):
            self._on_outcome(message.request_id, message.committed_txn_ids, message.aborted_txn_ids)
        elif isinstance(message, AbortMsg):
            self._on_outcome(message.request_id, (), message.txn_ids)

    def _on_outcome(self, request_id: str, committed_ids, aborted_ids) -> None:
        entry = self._outstanding.get(request_id)
        if entry is None:
            return
        # Set arithmetic instead of a per-id loop: only ids still awaited
        # count (duplicate RESPONSEs for already-settled transactions are
        # ignored, as before).
        remaining = entry.remaining
        if committed_ids:
            hits = remaining.intersection(committed_ids)
            if hits:
                remaining -= hits
                entry.committed += len(hits)
        if aborted_ids:
            hits = remaining.intersection(aborted_ids)
            if hits:
                remaining -= hits
                entry.aborted += len(hits)
        if remaining:
            return
        # The whole request is answered: record latency and issue the next one.
        entry.timer.cancel()
        del self._outstanding[request_id]
        self._completed_requests += 1
        self._committed_txns += entry.committed
        self._aborted_txns += entry.aborted
        if self._latency is not None:
            self._latency.record(entry.sent_at, self.now)
        if self._tracer is not None:
            self._tracer.record(
                self.now,
                "client.request_done",
                self.name,
                request_id=request_id,
                committed=entry.committed,
                aborted=entry.aborted,
            )
        if self._obs is not None:
            self._obs.end_span("request", request_id, self.now)
        self._send_next_request()

    def _on_timeout(self, request_id: str, attempt: int) -> None:
        """Client action on timeout (Figure 4): forward the request to the verifier."""
        entry = self._outstanding.get(request_id)
        if entry is None:
            return
        entry.retransmissions += 1
        self._retransmissions += 1
        self._network.send(
            self.name, self._verifier_name, entry.request, entry.request.size_bytes
        )
        if self._tracer is not None:
            self._tracer.record(
                self.now, "client.retransmit", self.name, request_id=request_id, attempt=attempt
            )
        # Exponential back-off before trying again.
        backoff = self._client_timeout * (2 ** min(attempt, 6))
        entry.timer = self.set_timer(backoff, self._on_timeout, request_id, attempt + 1)
