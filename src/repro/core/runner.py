"""Deployment builder and simulation runner.

:class:`ServerlessBFTSimulation` assembles the full serverless-edge
architecture — clients, shim, serverless cloud, executors, verifier, and
storage — on top of the discrete-event simulator, runs it for a configured
virtual duration, and returns a :class:`SimulationResult` with the metrics
the paper reports (throughput, latency, aborts, monetary cost) plus richer
diagnostics (view changes, spawn counts, network statistics).
"""

from __future__ import annotations

import contextlib
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cloud.billing import BillingReport, CostModel
from repro.cloud.lambda_cloud import ServerlessCloud
from repro.cloud.regions import GeoLatencyModel, RegionCatalog
from repro.core.client import ClientGroup
from repro.core.config import ProtocolConfig
from repro.core.executor import Executor
from repro.core.messages import ExecuteMsg
from repro.core.shim_node import ShimNode
from repro.core.verifier import Verifier
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import SignatureService, resolve_backend
from repro.errors import ConfigurationError
from repro.faults.byzantine import ExecutorBehaviour, NodeBehaviour
from repro.obs.context import ObsContext
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkFaultPlan
from repro.sim.rng import DeterministicRNG
from repro.sim.stats import LatencyRecorder, LatencySummary, ThroughputRecorder
from repro.storage.kvstore import VersionedKVStore
from repro.storage.service import StorageService
from repro.workload.ycsb import YCSBConfig, YCSBWorkload


# Depth counter raised while the repro.api facade constructs deployments:
# direct construction of the simulation classes below is a deprecated entry
# point, but the facade itself builds them through the system registry and
# must not trip the warning.  The simulator is single-threaded, so a plain
# module global suffices.
_ENTRY_POINT_SANCTION_DEPTH = 0


@contextlib.contextmanager
def _entry_point_sanction():
    """Mark the enclosed constructions as facade-internal (no deprecation)."""
    global _ENTRY_POINT_SANCTION_DEPTH
    _ENTRY_POINT_SANCTION_DEPTH += 1
    try:
        yield
    finally:
        _ENTRY_POINT_SANCTION_DEPTH -= 1


def _warn_legacy_entry_point(name: str) -> None:
    """Emit the deprecation for a direct (non-facade) constructor call."""
    if _ENTRY_POINT_SANCTION_DEPTH:
        return
    warnings.warn(
        f"constructing {name} directly is deprecated; use "
        f"repro.api.run(RunSpec(...)) — or repro.api.build_system(...) when "
        f"holding pre-built config objects",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class SimulationResult:
    """Metrics of one simulation run."""

    duration: float
    warmup: float
    committed_txns: int
    aborted_txns: int
    throughput_txn_per_sec: float
    latency: LatencySummary
    completed_requests: int
    client_retransmissions: int
    spawned_executors: int
    cloud_invocations: int
    view_changes: int
    verifier_ignored_verify: int
    verifier_replace_sent: int
    verifier_errors_sent: int
    messages_sent: int
    messages_dropped: int
    bytes_sent: int
    #: Host wall-clock seconds the run took and the resulting kernel
    #: event rate — the perf-trajectory metrics recorded by the benches.
    wall_clock_seconds: float = 0.0
    events_processed: int = 0
    billing: BillingReport = field(default_factory=BillingReport)
    cents_per_kilo_txn: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)
    #: Observability payload (metrics/spans/trace) of a traced run; None
    #: when observability was off.  Host-side diagnostics only: excluded
    #: from ``simulated_fingerprint`` like ``wall_clock_seconds``, so a
    #: traced and an untraced run of the same point share one digest.
    obs: Optional[Dict[str, object]] = None

    @property
    def abort_rate(self) -> float:
        total = self.committed_txns + self.aborted_txns
        return self.aborted_txns / total if total else 0.0

    @property
    def events_per_second(self) -> float:
        """Kernel events executed per wall-clock second (host speed, not
        simulated time — the number the kernel-throughput bench tracks)."""
        if self.wall_clock_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_clock_seconds


class ServerlessBFTSimulation:
    """Builds and runs a full serverless-edge deployment."""

    def __init__(
        self,
        config: ProtocolConfig,
        workload: Optional[YCSBConfig] = None,
        consensus_engine: str = "pbft",
        node_behaviours: Optional[Dict[str, NodeBehaviour]] = None,
        executor_behaviour_factory: Optional[
            Callable[[str, ExecuteMsg], Optional[ExecutorBehaviour]]
        ] = None,
        network_fault_plan: Optional[NetworkFaultPlan] = None,
        regions: Optional[RegionCatalog] = None,
        tracer_enabled: bool = True,
        preload_storage: bool = False,
    ) -> None:
        _warn_legacy_entry_point("ServerlessBFTSimulation")
        if consensus_engine not in ("pbft", "paxos"):
            raise ConfigurationError(f"unknown consensus engine {consensus_engine!r}")
        self.config = config
        self.consensus_engine = consensus_engine
        self.workload_config = workload or YCSBConfig(clients=config.num_clients, seed=config.seed)
        self._executor_behaviour_factory = executor_behaviour_factory
        node_behaviours = node_behaviours or {}

        # --- substrates -----------------------------------------------------------
        self.sim = Simulator()
        self.rng = DeterministicRNG(config.seed)
        self.catalog = regions or RegionCatalog()
        # One observability context per run: it owns the tracer, the
        # commit-path span log, and the metrics registry.
        self.obs = ObsContext(enabled=tracer_enabled)
        self.tracer = self.obs.tracer
        # Components skip tracing entirely on a None tracer; threading None
        # when tracing is off removes a dead call per protocol step.  The
        # obs context follows the exact same pattern.
        component_tracer = self.tracer if tracer_enabled else None
        component_obs = self.obs.component()
        self.network = Network(
            self.sim,
            GeoLatencyModel(self.catalog),
            self.rng.child("network"),
            fault_plan=network_fault_plan,
        )
        self.keystore = KeyStore(deployment_secret=f"deployment-{config.seed}")
        self.crypto_backend = resolve_backend(config.crypto_backend)
        self.store = VersionedKVStore()
        if preload_storage:
            self.store.load(config.storage_records)
        self.cost_model = CostModel()
        self.workload = YCSBWorkload(self.workload_config)

        # --- serverless cloud ---------------------------------------------------------
        self.cloud = ServerlessCloud(
            sim=self.sim,
            catalog=self.catalog,
            cost_model=self.cost_model,
            rng=self.rng.child("cloud"),
            executor_factory=self._spawn_executor,
            cold_start_latency=config.cold_start_latency,
            warm_start_latency=config.warm_start_latency,
            concurrency_limit_per_region=config.executor_concurrency_limit,
        )

        # --- verifier + storage ---------------------------------------------------------
        self.throughput = ThroughputRecorder(warmup=0.0)
        self.latency = LatencyRecorder(warmup=0.0)
        shim_names = [f"node-{index}" for index in range(config.shim_nodes)]
        self.verifier = Verifier(
            sim=self.sim,
            network=self.network,
            name="verifier",
            region=config.verifier_region,
            cores=config.verifier_cores,
            store=self.store,
            signer=self._make_signer("verifier"),
            costs=config.crypto_costs,
            shim_node_names=shim_names,
            match_quorum=config.executor_match_quorum,
            executor_faults=config.derived_executor_faults,
            expected_executors=config.num_executors,
            quorum_timeout=config.verifier_quorum_timeout,
            throughput=self.throughput,
            tracer=component_tracer,
            obs=component_obs,
        )
        self.storage_service = StorageService(
            sim=self.sim,
            network=self.network,
            store=self.store,
            name="storage",
            region=config.verifier_region,
        )

        # --- shim ----------------------------------------------------------------------
        executor_regions = config.regions_for_executors(self.catalog.names)
        self.nodes: List[ShimNode] = []
        for name in shim_names:
            node = ShimNode(
                sim=self.sim,
                network=self.network,
                name=name,
                region=config.shim_region,
                config=config,
                shim_names=shim_names,
                signer=self._make_signer(name),
                costs=config.crypto_costs,
                cloud=self.cloud,
                executor_regions=executor_regions,
                verifier_name="verifier",
                consensus_engine=consensus_engine,
                behaviour=node_behaviours.get(name),
                tracer=component_tracer,
                obs=component_obs,
            )
            self.nodes.append(node)

        # --- clients ---------------------------------------------------------------------
        self.clients: List[ClientGroup] = []
        group_size = config.clients_per_group
        for index in range(config.client_groups):
            group = ClientGroup(
                sim=self.sim,
                network=self.network,
                name=f"client-group-{index}",
                region=config.client_region,
                group_size=group_size,
                workload=self.workload,
                signer=self._make_signer(f"client-group-{index}"),
                costs=config.crypto_costs,
                primary_name=shim_names[0],
                verifier_name="verifier",
                client_timeout=config.client_timeout,
                latency_recorder=self.latency,
                tracer=component_tracer,
                obs=component_obs,
                client_index_offset=index * group_size,
            )
            self.clients.append(group)

        # Keep clients pointed at the current primary across view changes.
        for node in self.nodes:
            node.add_primary_change_listener(self._on_primary_change)

        # --- fault timeline ----------------------------------------------------------
        # Built only when configured: a fault-free run constructs no engine,
        # schedules no events, and registers no commit listener, so its
        # results stay bit-identical to a build without this feature.
        self.fault_engine = None
        if config.fault_timeline:
            from repro.faults.timeline import FaultTimelineEngine

            self.fault_engine = FaultTimelineEngine(self)
            self.throughput.set_commit_listener(self.fault_engine.watchdog.on_commit)

        self._executor_required_signers = (
            config.shim_quorum if consensus_engine == "pbft" else 0
        )
        self._executor_counter = 0

    # ------------------------------------------------------------------ wiring helpers

    def _make_signer(self, owner: str) -> SignatureService:
        """A signature service bound to the deployment's crypto backend."""
        return SignatureService(self.keystore, owner, backend=self.crypto_backend)

    def _on_primary_change(self, primary: str) -> None:
        for group in self.clients:
            group.update_primary(primary)

    def _spawn_executor(self, executor_id: str, region: str, spawner: str, payload) -> None:
        """Factory handed to the serverless cloud: build and invoke one executor."""
        behaviour = None
        if self._executor_behaviour_factory is not None and isinstance(payload, ExecuteMsg):
            behaviour = self._executor_behaviour_factory(executor_id, payload)
        executor = Executor(
            sim=self.sim,
            network=self.network,
            name=executor_id,
            region=region,
            signer=self._make_signer(executor_id),
            costs=self.config.crypto_costs,
            cloud=self.cloud,
            storage_name="storage",
            verifier_name="verifier",
            required_certificate_signers=self._executor_required_signers,
            per_operation_cost=self.config.executor_read_ops_cost,
            behaviour=behaviour,
            tracer=self.tracer if self.tracer.enabled else None,
            obs=self.obs.component(),
        )
        self._executor_counter += 1
        if isinstance(payload, ExecuteMsg):
            executor.invoke(payload, spawner)

    # ------------------------------------------------------------------ running

    def run(self, duration: float = 5.0, warmup: float = 0.5) -> SimulationResult:
        """Run the deployment for ``duration`` seconds of virtual time."""
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        if warmup < 0 or warmup >= duration:
            raise ConfigurationError("warmup must be inside [0, duration)")
        self.throughput._warmup = warmup  # measurement window starts after warm-up
        self.latency._warmup = warmup
        stagger = 0.001
        for index, group in enumerate(self.clients):
            group._stop_time = duration
            self.sim.schedule(index * stagger, group.start)
        # Per-run PERF discipline: delta over this baseline, not process
        # totals (warm pool workers and back-to-back runs share the global).
        self.obs.on_run_start()
        # lint: ignore[DET001] wall_clock_seconds is a declared HOST_SPEED_FIELDS field
        started = time.perf_counter()
        self.sim.run(until=duration)
        wall_clock = time.perf_counter() - started  # lint: ignore[DET001] host timing
        return self._collect(duration, warmup, wall_clock)

    def _collect(self, duration: float, warmup: float, wall_clock: float = 0.0) -> SimulationResult:
        window = max(1e-9, duration - warmup)
        committed = self.throughput.completed
        # Charge the always-on VMs of the deployment (shim + verifier) for the run.
        self.cost_model.charge_vm_fleet(
            machines=self.config.shim_nodes,
            cores=self.config.shim_cores,
            memory_gb=16.0,
            duration_seconds=duration,
        )
        self.cost_model.charge_vm_fleet(
            machines=1,
            cores=self.config.verifier_cores,
            memory_gb=8.0,
            duration_seconds=duration,
        )
        billing = self.cost_model.report
        view_changes = 0
        for node in self.nodes:
            replica = node.replica
            view_changes += getattr(replica, "view_changes_installed", 0)
        result = SimulationResult(
            duration=duration,
            warmup=warmup,
            committed_txns=committed,
            aborted_txns=self.verifier.aborted_txns,
            throughput_txn_per_sec=committed / window,
            latency=self.latency.summary(),
            completed_requests=sum(group.completed_requests for group in self.clients),
            client_retransmissions=sum(group.retransmissions for group in self.clients),
            spawned_executors=sum(node.spawned_executors for node in self.nodes),
            cloud_invocations=self.cloud.spawn_count,
            view_changes=view_changes,
            verifier_ignored_verify=self.verifier.ignored_verify_messages,
            verifier_replace_sent=self.verifier.replace_messages_sent,
            verifier_errors_sent=self.verifier.error_messages_sent,
            messages_sent=self.network.messages_sent,
            messages_dropped=self.network.messages_dropped,
            bytes_sent=self.network.bytes_sent,
            wall_clock_seconds=wall_clock,
            events_processed=self.sim.events_processed,
            billing=billing,
            cents_per_kilo_txn=billing.cents_per_kilo_txn(committed),
        )
        if self.fault_engine is not None:
            result.extra.update(self.fault_engine.metrics(duration))
        if self.obs.enabled:
            result.obs = self.obs.finalize(duration, extra=result.extra)
        return result
