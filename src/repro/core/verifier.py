"""The trusted verifier ``V``.

The verifier is a lightweight wrapper around the on-premise data store.  It
collects VERIFY messages from executors and, once it has ``f_E + 1``
*matching* results for a sequence number, validates that sequence number in
strict order (the ``k_max`` / ``π`` machinery of Figure 3, Lines 21–35):

* the read versions reported by the executors must still match the store
  (concurrency-control check) — stale transactions are aborted;
* writes of valid transactions are applied to the store;
* RESPONSE messages go to the submitting clients and to the shim.

The verifier also drives recovery from request-suppression attacks
(Figure 4): clients that time out retransmit to the verifier, which answers
with a cached RESPONSE, an ERROR (missing request / stuck ``k_max``), or a
REPLACE (byzantine primary), and later ACKs the shim once the problem is
resolved.  Flooding is mitigated by ignoring VERIFY messages for already
matched sequence numbers (Section V-C).

For conflicting transactions with unknown read-write sets (Section VI-B) the
verifier runs abort detection: a timer per sequence number that, on expiry,
either blames the primary (fewer than ``2f_E + 1`` VERIFY messages received)
or aborts the transaction (enough executors answered but their results do
not match because of the conflict).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.consensus.quorums import QuorumTracker
from repro.core.messages import (
    AbortMsg,
    AckMsg,
    ClientRequestMsg,
    ErrorMsg,
    ReplaceMsg,
    ResponseMsg,
    VerifyMsg,
)
from repro.crypto.costs import CryptoCostModel
from repro.crypto.signatures import SignatureService
from repro.perf import PERF
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.process import SimProcess
from repro.sim.stats import LatencyRecorder, ThroughputRecorder
from repro.sim.tracing import Tracer
from repro.storage.kvstore import VersionedKVStore


class _SeqState:
    """Per-sequence-number bookkeeping at the verifier."""

    def __init__(self) -> None:
        self.distinct_executors: Set[str] = set()
        self.matched: Optional[VerifyMsg] = None
        self.abort_tagged = False
        self.representative: Optional[VerifyMsg] = None
        self.timer = None


class Verifier(SimProcess):
    """The trusted verifier plus its concurrency-control logic."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        region: str,
        cores: int,
        store: VersionedKVStore,
        signer: SignatureService,
        costs: CryptoCostModel,
        shim_node_names: List[str],
        match_quorum: int,
        executor_faults: int,
        expected_executors: int,
        quorum_timeout: float = 2.0,
        throughput: Optional[ThroughputRecorder] = None,
        tracer: Optional[Tracer] = None,
        obs=None,
        verify_processing_cost: float = 30e-6,
        write_cost_per_key: float = 5e-6,
    ) -> None:
        super().__init__(sim, name, region, cores=cores)
        self._network = network
        self._store = store
        self._signer = signer
        self._costs = costs
        self._shim_nodes = list(shim_node_names)
        self._match_quorum = max(1, match_quorum)
        self._executor_faults = executor_faults
        self._expected_executors = expected_executors
        self._quorum_timeout = quorum_timeout
        self._throughput = throughput or ThroughputRecorder()
        self._tracer = tracer
        self._obs = obs
        self._verify_processing_cost = verify_processing_cost
        self._write_cost_per_key = write_cost_per_key

        self._kmax = 1
        # Live version map for incremental concurrency control: key ->
        # current store version, seeded lazily per key and bumped on every
        # commit this verifier applies.  The verifier is the store's only
        # writer after construction; ``_live_mutations`` tracks the store's
        # mutation counter so a foreign write (preload, test harness poking
        # the store directly) is detected and invalidates the map wholesale.
        self._live_versions: Dict[str, int] = {}
        self._live_mutations = -1
        self._votes: QuorumTracker = QuorumTracker(self._match_quorum)
        self._seq_state: Dict[int, _SeqState] = {}
        self._pi: Dict[int, _SeqState] = {}
        self._validated: Set[int] = set()
        self._responses_sent: Dict[str, List] = {}
        self._request_to_seq: Dict[str, int] = {}
        self._pending_errors: Dict[Tuple[str, object], bool] = {}

        self._committed_txns = 0
        self._aborted_txns = 0
        self._ignored_verify = 0
        self._replace_sent = 0
        self._errors_sent = 0
        self._acks_sent = 0
        network.register(name, region, self.on_message)

    # ------------------------------------------------------------------ metrics

    @property
    def kmax(self) -> int:
        return self._kmax

    @property
    def committed_txns(self) -> int:
        return self._committed_txns

    @property
    def aborted_txns(self) -> int:
        return self._aborted_txns

    @property
    def ignored_verify_messages(self) -> int:
        return self._ignored_verify

    @property
    def replace_messages_sent(self) -> int:
        return self._replace_sent

    @property
    def error_messages_sent(self) -> int:
        return self._errors_sent

    @property
    def ack_messages_sent(self) -> int:
        return self._acks_sent

    @property
    def throughput_recorder(self) -> ThroughputRecorder:
        return self._throughput

    @property
    def validated_sequence_numbers(self) -> Set[int]:
        return set(self._validated)

    # ------------------------------------------------------------------ dispatch

    def on_message(self, message, sender: str) -> None:
        if isinstance(message, VerifyMsg):
            cost = self._costs.ds_verify + self._verify_processing_cost
            self.process(cost, self._handle_verify, message, sender)
        elif isinstance(message, ClientRequestMsg):
            self.process(self._costs.ds_verify, self._handle_client_request, message, sender)

    # ------------------------------------------------------------------ VERIFY path

    def _handle_verify(self, message: VerifyMsg, sender: str) -> None:
        if message.executor != sender or message.signature is None:
            return
        # The canonical form ignores the signature, so the digest memoised at
        # signing time is reused here — no re-serialisation of the batch.
        # The verification *outcome* is memoised per message instance as
        # well (like commit certificates already do): duplicate deliveries
        # and verify-flooding attacks re-send the same object, and validity
        # is a pure function of the deployment's shared key store.
        valid = message.__dict__.get("_sig_valid")
        if valid is None:
            valid = self._signer.verify(message, message.signature)
            object.__setattr__(message, "_sig_valid", valid)
        else:
            PERF.verify_signature_cache_hits += 1
        if not valid:
            return
        seq = message.seq
        if seq in self._validated:
            self._ignored_verify += 1
            return
        state = self._seq_state.setdefault(seq, _SeqState())
        if state.matched is not None or state.abort_tagged:
            # Flooding mitigation: once matched, further VERIFYs are ignored.
            self._ignored_verify += 1
            return
        if sender in state.distinct_executors:
            self._ignored_verify += 1
            return
        state.distinct_executors.add(sender)
        if state.representative is None:
            state.representative = message
            if self._obs is not None:
                self._obs.begin_span("verify", seq, self.now, self.name)
            # Map this batch's requests once per sequence number; further
            # VERIFYs for the same seq carry the same (shared) batch.
            request_to_seq = self._request_to_seq
            for txn in message.batch.transactions:
                request_to_seq.setdefault(txn.request_id, seq)
        if state.timer is None:
            state.timer = self.set_timer(self._quorum_timeout, self._on_quorum_timeout, seq)
        if self._votes.add(message.match_key, sender):
            state.matched = message
            if state.timer is not None:
                state.timer.cancel()
                state.timer = None
            self._trace("verifier.matched", seq=seq, executors=len(state.distinct_executors))
            self._try_validate()

    def _try_validate(self) -> None:
        """Validate requests strictly in sequence order (Lines 24–27)."""
        while True:
            state = self._seq_state.get(self._kmax)
            if state is None:
                return
            if state.abort_tagged:
                self._abort_sequence(self._kmax, state)
                continue
            if state.matched is None:
                return
            self._validate_sequence(self._kmax, state.matched)

    def _validate_sequence(self, seq: int, message: VerifyMsg) -> None:
        committed_ids: List[str] = []
        aborted_ids: List[str] = []
        write_keys = 0
        # The unit of concurrency control is the whole batch: every transaction
        # is validated against the storage state *before* this sequence number
        # is applied (executors executed the batch against that same state), so
        # transactions inside one batch never abort each other.
        #
        # Incremental validation: instead of snapshotting the batch's key
        # versions from the store per sequence number, the check probes the
        # live version map — seeded once per key, bumped alongside every
        # write this verifier applies — so the per-batch cost is O(touched
        # keys) dict probes, all in C set comparisons.
        store = self._store
        result = message.result
        live = self._live_versions
        if store.mutation_count != self._live_mutations:
            # The store changed outside this verifier's own commits: drop
            # the map and reseed lazily from the store's current state.
            live.clear()
            self._live_mutations = store.mutation_count
        pending_writes: List[Dict[str, str]] = []
        observed_token = result.__dict__.get("_observed_token", -1)
        if (
            observed_token >= 0
            and store.keys_changed_since(observed_token, message.batch.keys) == 0
        ):
            # Freshness fast path: an *honestly produced* result (only those
            # carry the token hint — byzantine corruption builds new result
            # objects without it) observed a store state whose batch keys
            # provably have not changed since, so every reported read
            # version matches by construction and the whole batch commits
            # without a probe.
            for txn_result in result.txn_results:
                pending_writes.append(txn_result.writes)
                committed_ids.append(txn_result.txn_id)
                write_keys += len(txn_result.writes)
        else:
            # Seed only the batch keys the map has never seen; keys already
            # written or validated before cost a C membership test each.
            missing = [key for key in message.batch.sorted_keys if key not in live]
            if missing:
                live.update(store.current_versions(missing))
            live_items = live.items()
            batch_keys = message.batch.keys
            for txn_result in result.txn_results:
                read_versions = txn_result.read_versions
                # dict-view comparisons run set-wise in C: every reported
                # (key, version) pair must match the live map, and the
                # reported keys must lie inside the batch's key set — a
                # fabricated version for a key outside the batch fails the
                # second check and aborts, exactly as it fell outside the
                # old per-batch snapshot.
                if (
                    read_versions.items() <= live_items
                    and read_versions.keys() <= batch_keys
                ):
                    pending_writes.append(txn_result.writes)
                    committed_ids.append(txn_result.txn_id)
                    write_keys += len(txn_result.writes)
                else:
                    aborted_ids.append(txn_result.txn_id)
        # Mirror the store's version bumps for every *seeded* key: a key
        # written by several transactions bumps once per write, matching
        # apply_write_sets exactly; keys the map never seeded (fast-path
        # batches, fabricated byzantine writes) simply stay unseeded.
        for writes in pending_writes:
            for key in writes:
                version = live.get(key)
                if version is not None:
                    live[key] = version + 1
        store.apply_write_sets(pending_writes)
        self._live_mutations = store.mutation_count
        self._committed_txns += len(committed_ids)
        self._aborted_txns += len(aborted_ids)
        self._throughput.record_commit(self.now, len(committed_ids))
        if aborted_ids:
            self._throughput.record_abort(self.now, len(aborted_ids))
        self._trace(
            "verifier.validated",
            seq=seq,
            committed=len(committed_ids),
            aborted=len(aborted_ids),
        )

        # Reply per client request; the grouping is memoised on the batch.
        # With no aborts (the common case) every grouped transaction
        # committed, so the groups are the outcome verbatim.
        if aborted_ids:
            committed_set = set(committed_ids)
            aborted_set = set(aborted_ids)
            outcomes = [
                (
                    origin,
                    request_id,
                    tuple(t for t in txn_ids if t in committed_set),
                    tuple(t for t in txn_ids if t in aborted_set),
                )
                for (origin, request_id), txn_ids in message.batch.request_groups
            ]
        else:
            outcomes = [
                (origin, request_id, txn_ids, ())
                for (origin, request_id), txn_ids in message.batch.request_groups
            ]
        for origin, request_id, committed, aborted in outcomes:
            response = ResponseMsg(
                request_id=request_id,
                seq=seq,
                digest=message.digest,
                committed_txn_ids=committed,
                aborted_txn_ids=aborted,
            )
            self._responses_sent.setdefault(request_id, []).append((origin, response))
            if origin:
                self._network.send(self.name, origin, response, response.size_bytes)
            self._resolve_pending(("request", request_id))

        # Notify the shim that this sequence number is verified (the paper sends
        # the RESPONSE to the primary; we notify every shim node so conflict
        # planners and a future new primary stay in sync).
        notice = ResponseMsg(request_id="", seq=seq, digest=message.digest)
        for node in self._shim_nodes:
            self._network.send(self.name, node, notice, notice.size_bytes)

        self._finish_sequence(seq)

    def _abort_sequence(self, seq: int, state: _SeqState) -> None:
        """Abort every transaction of an un-matchable sequence number."""
        message = state.representative
        aborted = 0
        if message is not None:
            per_request: Dict[Tuple[str, str], List[str]] = {}
            for txn in message.batch.transactions:
                per_request.setdefault((txn.origin, txn.request_id), []).append(txn.txn_id)
            for (origin, request_id), txn_ids in per_request.items():
                abort = AbortMsg(request_id=request_id, seq=seq, txn_ids=tuple(txn_ids))
                self._responses_sent.setdefault(request_id, []).append((origin, abort))
                if origin:
                    self._network.send(self.name, origin, abort, abort.size_bytes)
                aborted += len(txn_ids)
                self._resolve_pending(("request", request_id))
        self._aborted_txns += aborted
        if aborted:
            self._throughput.record_abort(self.now, aborted)
        self._trace("verifier.aborted_sequence", seq=seq, txns=aborted)
        self._finish_sequence(seq)

    def _finish_sequence(self, seq: int) -> None:
        if self._obs is not None:
            self._obs.end_span("verify", seq, self.now)
            self._obs.begin_span("commit", seq, self.now, self.name)
        self._validated.add(seq)
        state = self._seq_state.get(seq)
        if state is not None and state.timer is not None:
            state.timer.cancel()
            state.timer = None
        self._resolve_pending(("seq", seq))
        self._kmax = seq + 1

    # ------------------------------------------------------------------ abort detection

    def _on_quorum_timeout(self, seq: int) -> None:
        """Verifier abort detection for conflicting transactions (Section VI-B)."""
        state = self._seq_state.get(seq)
        if state is None or state.matched is not None or seq in self._validated:
            return
        state.timer = None
        received = len(state.distinct_executors)
        if received < 2 * self._executor_faults + 1:
            # Too few executors even reported: conservatively blame the primary.
            # The timer is re-armed only when a new VERIFY arrives for this
            # sequence number (fresh evidence), not unconditionally, so a run
            # always terminates once the network drains.
            self._broadcast_replace(ReplaceMsg(seq=seq, reason="missing-verify-quorum"))
            self._trace("verifier.blame_primary", seq=seq, received=received)
        else:
            # Enough executors answered but their results conflict: abort.
            state.abort_tagged = True
            self._trace("verifier.abort_tagged", seq=seq, received=received)
            self._try_validate()

    # ------------------------------------------------------------------ client retransmissions

    def _handle_client_request(self, request: ClientRequestMsg, sender: str) -> None:
        """Verifier action on receiving a client request (Figure 4, Lines 6–14)."""
        request_id = request.request_id
        cached = self._responses_sent.get(request_id)
        if cached:
            for origin, response in cached:
                target = origin or sender
                self._network.send(self.name, target, response, response.size_bytes)
            return
        seq = self._request_to_seq.get(request_id)
        if seq is None:
            # Never saw any VERIFY for this request: tell the shim it is missing.
            self._errors_sent += 1
            self._pending_errors[("request", request_id)] = True
            error = ErrorMsg(request=request)
            for node in self._shim_nodes:
                self._network.send(self.name, node, error, error.size_bytes)
            self._trace("verifier.error_missing_request", request_id=request_id)
            return
        state = self._seq_state.get(seq)
        if state is not None and (state.matched is not None or state.abort_tagged):
            # The request is matched but stuck behind k_max: report the gap.
            self._errors_sent += 1
            self._pending_errors[("seq", self._kmax)] = True
            error = ErrorMsg(missing_seq=self._kmax)
            for node in self._shim_nodes:
                self._network.send(self.name, node, error, error.size_bytes)
            self._trace("verifier.error_kmax", kmax=self._kmax, request_id=request_id)
        else:
            # We saw VERIFY messages but no f_E+1 matching quorum: blame the primary.
            self._broadcast_replace(ReplaceMsg(request_id=request_id, seq=seq))
            self._trace("verifier.replace_for_request", request_id=request_id, seq=seq)

    def _broadcast_replace(self, message: ReplaceMsg) -> None:
        self._replace_sent += 1
        for node in self._shim_nodes:
            self._network.send(self.name, node, message, message.size_bytes)

    def _resolve_pending(self, key: Tuple[str, object]) -> None:
        if not self._pending_errors.pop(key, None):
            return
        kind, value = key
        ack = AckMsg(
            missing_seq=value if kind == "seq" else None,
            request_id=value if kind == "request" else None,
        )
        self._acks_sent += 1
        for node in self._shim_nodes:
            self._network.send(self.name, node, ack, ack.size_bytes)

    def _trace(self, category: str, **details) -> None:
        if self._tracer is not None:
            self._tracer.record(self.now, category, self.name, **details)
