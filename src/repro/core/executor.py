"""Serverless executors.

Each executor is a fleeting, stateless serverless function (an AWS Lambda in
the paper) spawned by a shim node for one committed batch.  An honest
executor (Figure 3, Lines 14–20):

1. checks that the EXECUTE message is well-formed and that its certificate
   ``C`` carries ``2f_R + 1`` distinct shim signatures on the COMMIT message;
2. fetches the current state of the batch's read-write sets from the
   on-premise storage (read-only access);
3. executes the transactions deterministically (plus any synthetic
   compute-intensive phase);
4. signs and sends a VERIFY message with the result and the observed
   read-write set versions to the verifier; and
5. terminates — the cloud bills the spawner for the invocation.

Executors never talk to each other and never write to storage.  Byzantine
executors may stay silent, fabricate results, or flood the verifier; those
behaviours are injected via :mod:`repro.faults.byzantine`.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.cloud.lambda_cloud import ServerlessCloud
from repro.core.messages import ExecuteMsg, VerifyMsg
from repro.crypto.costs import CryptoCostModel
from repro.crypto.hashing import seed_cached_digest
from repro.crypto.signatures import SignatureService
from repro.faults.byzantine import ExecutorBehaviour
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.process import SimProcess
from repro.sim.tracing import Tracer
from repro.storage.service import StorageReadReply, StorageReadRequest, StorageService
from repro.workload.transactions import execute_batch_cached


class Executor(SimProcess):
    """One spawned serverless executor instance."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        region: str,
        signer: SignatureService,
        costs: CryptoCostModel,
        cloud: ServerlessCloud,
        storage_name: str,
        verifier_name: str,
        required_certificate_signers: int,
        per_operation_cost: float = 20e-6,
        behaviour: Optional[ExecutorBehaviour] = None,
        tracer: Optional[Tracer] = None,
        obs=None,
    ) -> None:
        super().__init__(sim, name, region, cores=None)
        self._network = network
        self._signer = signer
        self._costs = costs
        self._cloud = cloud
        self._storage_name = storage_name
        self._verifier_name = verifier_name
        self._required_signers = required_certificate_signers
        self._per_operation_cost = per_operation_cost
        self._behaviour = behaviour
        self._tracer = tracer
        self._obs = obs
        self._read_counter = itertools.count()
        self._pending_execute: Optional[ExecuteMsg] = None
        self._spawner: Optional[str] = None
        self._finished = False
        network.register(name, region, self.on_message)

    # ------------------------------------------------------------------ lifecycle

    def invoke(self, execute: ExecuteMsg, spawner: str) -> None:
        """Entry point called by the serverless cloud once the sandbox starts."""
        self._pending_execute = execute
        self._spawner = spawner
        if self._obs is not None:
            self._obs.end_span("spawn", execute.seq, self.now)
            self._obs.begin_span("execute", execute.seq, self.now, self.name)
        if self._behaviour is not None and self._behaviour.should_ignore():
            self._trace("executor.ignored", seq=execute.seq)
            self._finish()
            return
        # Verify the commit certificate before doing any work.  An executor's
        # pipeline timers are never cancelled, so they all take the kernel's
        # fire-and-forget fast path (no Event handle per stage).
        verify_cost = execute.certificate.verification_cost(self._costs, self._required_signers)
        self.set_timer_fast(verify_cost, self._after_certificate_check, execute)

    def _after_certificate_check(self, execute: ExecuteMsg) -> None:
        if self._required_signers > 0 and not execute.certificate.verify(
            self._signer, self._required_signers
        ):
            # An EXECUTE without a valid certificate is evidence of a byzantine
            # spawner: refuse to execute and terminate (the spawner still pays).
            self._trace("executor.invalid_certificate", seq=execute.seq, spawner=self._spawner)
            self._finish()
            return
        keys = execute.batch.sorted_keys
        if not keys:
            self._execute_with_data(execute, {}, {})
            return
        request = StorageReadRequest(
            request_id=f"{self.name}-read-{next(self._read_counter)}",
            keys=keys,
        )
        size = StorageService.REQUEST_BYTES_PER_KEY * len(keys)
        self._network.send(self.name, self._storage_name, request, size_bytes=size)
        self._trace("executor.storage_read", seq=execute.seq, keys=len(keys))

    def on_message(self, message, sender: str) -> None:
        if isinstance(message, StorageReadReply) and self._pending_execute is not None:
            # Executors spawned for the same batch usually receive the same
            # (cached) ReadResult object, so these maps are built only once
            # per observed storage snapshot.
            result = message.result
            self._execute_with_data(
                self._pending_execute,
                result.plain_values(),
                result.versions_map(),
                snapshot_token=result.snapshot_token,
            )

    # ------------------------------------------------------------------ execution

    def _execute_with_data(
        self, execute: ExecuteMsg, values, versions, snapshot_token: int = -1
    ) -> None:
        batch = execute.batch
        compute_time = batch.execution_seconds
        compute_time += self._per_operation_cost * batch.operation_count
        self.set_timer_fast(
            max(0.0, compute_time),
            self._finish_execution,
            execute,
            values,
            versions,
            snapshot_token,
        )

    def _finish_execution(self, execute: ExecuteMsg, values, versions, snapshot_token=-1) -> None:
        # Honest execution is deterministic, so the 3f_E+1 executors spawned
        # for one batch share the memoised result when they observed the same
        # storage versions; byzantine corruption happens after the memo.
        result = execute_batch_cached(execute.batch, values, versions, snapshot_token)
        if self._behaviour is not None:
            result = self._behaviour.corrupt_result(result)
        unsigned = VerifyMsg(
            seq=execute.seq,
            batch=execute.batch,
            digest=execute.digest,
            certificate=execute.certificate,
            result=result,
            executor=self.name,
        )
        signature = self._signer.sign(unsigned)
        message = VerifyMsg(
            seq=execute.seq,
            batch=execute.batch,
            digest=execute.digest,
            certificate=execute.certificate,
            result=result,
            executor=self.name,
            signature=signature,
        )
        seed_cached_digest(message, signature.message_digest)
        copies = 1 if self._behaviour is None else self._behaviour.verify_copies()
        sign_cost = self._costs.ds_sign
        self.set_timer_fast(sign_cost, self._send_verify, message, copies)

    def _send_verify(self, message: VerifyMsg, copies: int) -> None:
        for _ in range(max(1, copies)):
            self._network.send(self.name, self._verifier_name, message, message.size_bytes)
        self._trace("executor.verify_sent", seq=message.seq, copies=copies)
        if self._obs is not None:
            self._obs.end_span("execute", message.seq, self.now)
        self._finish()

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self._cloud.finish(self.name)

    def _trace(self, category: str, **details) -> None:
        if self._tracer is not None:
            self._tracer.record(self.now, category, self.name, **details)
