"""Messages of the serverless-edge transactional flow.

These are the messages of Figure 3 and Figure 4 that travel *outside* the
shim's ordering engine: client requests, EXECUTE (shim → executors), VERIFY
(executors → verifier), RESPONSE/ABORT (verifier → client and primary), and
the recovery messages ERROR / REPLACE / ACK.
Wire sizes follow the paper where reported (EXECUTE 3320 B, RESPONSE 2270 B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.certificates import CommitCertificate
from repro.crypto.signatures import Signature
from repro.workload.transactions import ExecutionResult, Transaction, TransactionBatch

EXECUTE_BYTES = 3320
RESPONSE_BYTES = 2270
CLIENT_REQUEST_BYTES_PER_TXN = 128
VERIFY_BASE_BYTES = 1024
ERROR_BYTES = 256
REPLACE_BYTES = 256
ACK_BYTES = 128
ABORT_BYTES = 256


@dataclass(frozen=True)
class ClientRequestMsg:
    """``⟨T⟩_C``: a digitally signed client request.

    One message may carry several transactions when a client group batches
    the requests of the clients it simulates; each transaction still carries
    its own logical ``client_id``.
    """

    request_id: str
    origin: str
    transactions: Tuple[Transaction, ...]
    signature: Optional[Signature] = None

    def canonical(self) -> str:
        return f"request:{self.request_id}:{self.origin}:" + "|".join(
            [txn.canonical() for txn in self.transactions]
        )

    def unsigned(self) -> "ClientRequestMsg":
        return ClientRequestMsg(
            request_id=self.request_id, origin=self.origin, transactions=self.transactions
        )

    @property
    def size_bytes(self) -> int:
        return CLIENT_REQUEST_BYTES_PER_TXN * max(1, len(self.transactions))


@dataclass(frozen=True)
class ExecuteMsg:
    """Primary → executor: execute the committed batch (Figure 3, Line 9)."""

    seq: int
    view: int
    batch: TransactionBatch
    digest: str
    certificate: CommitCertificate
    spawner: str
    signature: Optional[Signature] = None

    def canonical(self) -> str:
        return f"execute:{self.seq}:{self.view}:{self.digest}:{self.spawner}"

    def unsigned(self) -> "ExecuteMsg":
        return ExecuteMsg(
            seq=self.seq,
            view=self.view,
            batch=self.batch,
            digest=self.digest,
            certificate=self.certificate,
            spawner=self.spawner,
        )

    @property
    def size_bytes(self) -> int:
        return EXECUTE_BYTES + self.certificate.size_bytes


@dataclass(frozen=True)
class VerifyMsg:
    """Executor → verifier: the execution result (Figure 3, Line 20)."""

    seq: int
    batch: TransactionBatch
    digest: str
    certificate: CommitCertificate
    result: ExecutionResult
    executor: str
    signature: Optional[Signature] = None

    def canonical(self) -> str:
        return f"verify:{self.seq}:{self.digest}:{self.executor}:{self.result.result_digest}"

    def unsigned(self) -> "VerifyMsg":
        return VerifyMsg(
            seq=self.seq,
            batch=self.batch,
            digest=self.digest,
            certificate=self.certificate,
            result=self.result,
            executor=self.executor,
        )

    @property
    def match_key(self) -> Tuple[int, str, str]:
        """Two VERIFY messages "match" when seq, batch digest, and result agree."""
        return (self.seq, self.digest, self.result.result_digest)

    @property
    def size_bytes(self) -> int:
        return VERIFY_BASE_BYTES + 64 * len(self.result.txn_results)


@dataclass(frozen=True)
class ResponseMsg:
    """Verifier → client (and primary): the transaction outcome."""

    request_id: str
    seq: int
    digest: str
    committed_txn_ids: Tuple[str, ...] = ()
    aborted_txn_ids: Tuple[str, ...] = ()
    signature: Optional[Signature] = None

    def canonical(self) -> str:
        return (
            f"response:{self.request_id}:{self.seq}:{self.digest}:"
            f"{','.join(self.committed_txn_ids)}:{','.join(self.aborted_txn_ids)}"
        )

    @property
    def size_bytes(self) -> int:
        return RESPONSE_BYTES

    @property
    def txn_count(self) -> int:
        return len(self.committed_txn_ids) + len(self.aborted_txn_ids)


@dataclass(frozen=True)
class AbortMsg:
    """Verifier → client: the transaction was aborted (Section VI-B)."""

    request_id: str
    seq: int
    txn_ids: Tuple[str, ...]
    reason: str = "stale-reads"

    def canonical(self) -> str:
        return f"abort:{self.request_id}:{self.seq}:{self.reason}"

    @property
    def size_bytes(self) -> int:
        return ABORT_BYTES


@dataclass(frozen=True)
class ErrorMsg:
    """Verifier → shim nodes: something is missing (Figure 4, Lines 10/12).

    Either ``missing_seq`` is set (the verifier is stuck waiting for the
    ``k_max``-th request) or ``request`` is set (the verifier never saw any
    VERIFY message for that client request).
    """

    missing_seq: Optional[int] = None
    request: Optional[ClientRequestMsg] = None

    def canonical(self) -> str:
        if self.missing_seq is not None:
            return f"error:seq:{self.missing_seq}"
        request_id = self.request.request_id if self.request else "?"
        return f"error:request:{request_id}"

    @property
    def size_bytes(self) -> int:
        return ERROR_BYTES + (self.request.size_bytes if self.request else 0)


@dataclass(frozen=True)
class ReplaceMsg:
    """Verifier → shim nodes: the primary is byzantine, replace it (Line 14)."""

    request_id: Optional[str] = None
    seq: Optional[int] = None
    reason: str = "missing-verify-quorum"

    def canonical(self) -> str:
        return f"replace:{self.request_id}:{self.seq}:{self.reason}"

    @property
    def size_bytes(self) -> int:
        return REPLACE_BYTES


@dataclass(frozen=True)
class AckMsg:
    """Verifier → shim nodes: the previously reported problem is resolved."""

    missing_seq: Optional[int] = None
    request_id: Optional[str] = None

    def canonical(self) -> str:
        return f"ack:{self.missing_seq}:{self.request_id}"

    @property
    def size_bytes(self) -> int:
        return ACK_BYTES
