"""Best-effort conflict avoidance (Section VI-C).

When the read-write sets of transactions are known to the shim before
execution, the primary borrows the queueing strategy of deterministic
databases (Calvin, QueCC, Q-Store): it keeps a *logical* lock map over
data items — no values, just who holds a lock — and only dispatches a batch
to the serverless executors once every data item it writes is unlocked by
all earlier batches.  Non-conflicting batches still execute in parallel;
conflicting ones wait, which trades a little parallelism for (near-)zero
aborts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import ProtocolViolation
from repro.workload.transactions import TransactionBatch


@dataclass
class _PendingBatch:
    seq: int
    batch: TransactionBatch
    read_set: FrozenSet[str]
    write_set: FrozenSet[str]
    dispatched: bool = False
    completed: bool = False


class ConflictPlanner:
    """Logical lock map plus dispatch queue used by the primary.

    Usage: ``add`` every committed batch in sequence order, dispatch whatever
    ``ready()`` returns, and call ``complete(seq)`` when the verifier confirms
    a batch — the return value lists batches that became dispatchable.
    """

    def __init__(self) -> None:
        self._pending: Dict[int, _PendingBatch] = {}
        self._locked_writes: Dict[str, int] = {}
        self._locked_reads: Dict[str, Set[int]] = {}
        self._dispatch_order: List[int] = []

    # ------------------------------------------------------------------ queries

    @property
    def outstanding(self) -> int:
        return sum(1 for entry in self._pending.values() if not entry.completed)

    def is_dispatched(self, seq: int) -> bool:
        entry = self._pending.get(seq)
        return bool(entry and entry.dispatched)

    def locked_items(self) -> Set[str]:
        return set(self._locked_writes) | set(self._locked_reads)

    # ------------------------------------------------------------------ lifecycle

    def add(self, seq: int, batch: TransactionBatch) -> None:
        """Register a committed batch, keyed by its sequence number."""
        if seq in self._pending:
            raise ProtocolViolation(f"batch for sequence {seq} already registered")
        self._pending[seq] = _PendingBatch(
            seq=seq,
            batch=batch,
            read_set=batch.read_set,
            write_set=batch.write_set,
        )
        self._dispatch_order.append(seq)

    def ready(self) -> List[Tuple[int, TransactionBatch]]:
        """Batches that can be dispatched now (locks acquired as a side effect)."""
        dispatchable: List[Tuple[int, TransactionBatch]] = []
        for seq in sorted(self._dispatch_order):
            entry = self._pending[seq]
            if entry.dispatched or entry.completed:
                continue
            if self._conflicts_with_dispatched(entry):
                # Batches must be considered in sequence order; a blocked batch
                # also blocks later batches that conflict with *it*, which is
                # handled implicitly because its locks are not yet acquired and
                # later conflicting batches will conflict with whatever blocks it
                # or with it once dispatched.
                continue
            self._acquire(entry)
            entry.dispatched = True
            dispatchable.append((seq, entry.batch))
        return dispatchable

    def complete(self, seq: int) -> List[Tuple[int, TransactionBatch]]:
        """Mark a dispatched batch as verified; returns newly dispatchable batches."""
        entry = self._pending.get(seq)
        if entry is None:
            return []
        if not entry.completed:
            entry.completed = True
            self._release(entry)
        return self.ready()

    # ------------------------------------------------------------------ internals

    def _conflicts_with_dispatched(self, entry: _PendingBatch) -> bool:
        for key in entry.write_set:
            holder = self._locked_writes.get(key)
            if holder is not None and holder != entry.seq:
                return True
            readers = self._locked_reads.get(key, set())
            if readers - {entry.seq}:
                return True
        for key in entry.read_set:
            holder = self._locked_writes.get(key)
            if holder is not None and holder != entry.seq:
                return True
        return False

    def _acquire(self, entry: _PendingBatch) -> None:
        for key in entry.write_set:
            self._locked_writes[key] = entry.seq
        for key in entry.read_set:
            self._locked_reads.setdefault(key, set()).add(entry.seq)

    def _release(self, entry: _PendingBatch) -> None:
        for key in entry.write_set:
            if self._locked_writes.get(key) == entry.seq:
                del self._locked_writes[key]
        for key in entry.read_set:
            readers = self._locked_reads.get(key)
            if readers is not None:
                readers.discard(entry.seq)
                if not readers:
                    del self._locked_reads[key]
