"""Deployment configuration for the serverless-edge architecture."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.crypto.costs import CryptoCostModel
from repro.errors import ConfigurationError


class SpawnPolicyName(str, enum.Enum):
    """How executors are spawned after a batch commits."""

    #: Only the primary spawns executors (Figure 3, the common case).
    PRIMARY = "primary"
    #: Every shim node spawns ``e`` executors (Section VI-B, Eq. 1/2) to
    #: defeat byzantine-abort attacks on conflicting transactions.
    DECENTRALIZED = "decentralized"


class ConflictMode(str, enum.Enum):
    """How the shim handles potentially conflicting transactions."""

    #: Read-write sets unknown before execution: optimistic concurrent
    #: spawning, the primary spawns 3f_E+1 executors, and the verifier may
    #: abort transactions whose reads went stale (Section VI-B).
    OPTIMISTIC = "optimistic"
    #: Read-write sets known: the primary keeps a logical lock map and only
    #: dispatches non-conflicting batches concurrently (Section VI-C).
    CONFLICT_AVOIDANCE = "conflict_avoidance"


@dataclass
class ProtocolConfig:
    """All architecture-level knobs of a ServerlessBFT deployment.

    Workload-level knobs (read/write mix, conflict rate, execution length)
    live in :class:`repro.workload.ycsb.YCSBConfig`.
    """

    # --- shim -----------------------------------------------------------------
    shim_nodes: int = 4
    shim_cores: int = 16
    shim_region: str = "us-west-1"
    batch_size: int = 100
    checkpoint_interval: int = 64

    # --- serverless executors ---------------------------------------------------
    num_executors: int = 3
    executor_faults: Optional[int] = None
    executor_regions: Optional[List[str]] = None
    num_executor_regions: int = 3
    executor_concurrency_limit: int = 2500
    cold_start_latency: float = 0.150
    warm_start_latency: float = 0.015
    spawn_api_cost: float = 0.0008
    executor_read_ops_cost: float = 20e-6

    # --- verifier / storage ------------------------------------------------------
    verifier_cores: int = 8
    verifier_region: str = "us-west-1"
    storage_records: int = 600_000

    # --- clients -----------------------------------------------------------------
    num_clients: int = 1600
    client_groups: int = 16
    client_region: str = "us-west-1"

    # --- timers (seconds) ----------------------------------------------------------
    client_timeout: float = 4.0
    node_request_timeout: float = 2.0
    retransmission_timeout: float = 1.5
    verifier_quorum_timeout: float = 2.0

    # --- behaviour --------------------------------------------------------------
    spawn_policy: SpawnPolicyName = SpawnPolicyName.PRIMARY
    conflict_mode: ConflictMode = ConflictMode.OPTIMISTIC
    use_threshold_certificates: bool = False

    # --- fault timelines ----------------------------------------------------------
    #: Scheduled fault events driving node lifecycle mid-run, as a compact
    #: DSL string, e.g. ``"crash:primary@0.3;recover:primary@1.0"`` — see
    #: :mod:`repro.faults.timeline`.  Empty means fault-free (no engine is
    #: built, no events are scheduled, results stay bit-identical).
    fault_timeline: str = ""

    # --- cost model / misc --------------------------------------------------------
    #: Which signature implementation backs the simulation: "real" (HMAC, the
    #: default — byzantine tests depend on real verification failing for forged
    #: values) or "fast" (deterministic tokens; identical simulated-time
    #: results, much cheaper wall-clock).  See repro.crypto.signatures.
    crypto_backend: str = "real"
    crypto_costs: CryptoCostModel = field(default_factory=CryptoCostModel)
    message_handling_cost: float = 4e-6
    #: CPU time the primary spends ingesting one client transaction
    #: (parsing, request bookkeeping, its share of signature checking).
    #: Crash-fault-tolerant and no-shim deployments use a smaller value
    #: because they skip the byzantine-grade checks.
    txn_ingest_cost: float = 40e-6
    seed: int = 1

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------ derived

    @property
    def shim_faults(self) -> int:
        """``f_R``: byzantine shim nodes tolerated (``n_R >= 3 f_R + 1``)."""
        return (self.shim_nodes - 1) // 3

    @property
    def shim_quorum(self) -> int:
        """``2 f_R + 1``: messages needed to prepare/commit at the shim."""
        return 2 * self.shim_faults + 1

    @property
    def derived_executor_faults(self) -> int:
        """``f_E``: byzantine executors tolerated by the spawned set."""
        if self.executor_faults is not None:
            return self.executor_faults
        if self.conflict_mode is ConflictMode.OPTIMISTIC and self.num_executors >= 4:
            # With unknown read-write sets the paper requires n_E >= 3 f_E + 1.
            return (self.num_executors - 1) // 3
        return (self.num_executors - 1) // 2

    @property
    def executor_match_quorum(self) -> int:
        """``f_E + 1``: matching VERIFY messages the verifier waits for."""
        return self.derived_executor_faults + 1

    @property
    def clients_per_group(self) -> int:
        return max(1, self.num_clients // max(1, self.client_groups))

    def regions_for_executors(self, catalog_names: List[str]) -> List[str]:
        """Regions executors are spread over, in the paper's region order."""
        if self.executor_regions:
            return list(self.executor_regions)
        count = min(self.num_executor_regions, len(catalog_names))
        return catalog_names[: max(1, count)]

    # ------------------------------------------------------------------ utilities

    def validate(self) -> None:
        if self.shim_nodes < 1:
            raise ConfigurationError("shim_nodes must be at least 1")
        if self.shim_nodes >= 4 and self.shim_nodes < 3 * self.shim_faults + 1:
            raise ConfigurationError("shim_nodes must satisfy n_R >= 3 f_R + 1")
        if self.num_executors < 1:
            raise ConfigurationError("num_executors must be at least 1")
        if self.executor_faults is not None:
            minimum = (
                3 * self.executor_faults + 1
                if self.conflict_mode is ConflictMode.OPTIMISTIC
                else 2 * self.executor_faults + 1
            )
            if self.executor_faults > 0 and self.num_executors < 2 * self.executor_faults + 1:
                raise ConfigurationError(
                    f"num_executors={self.num_executors} cannot tolerate "
                    f"f_E={self.executor_faults} byzantine executors (need >= {minimum})"
                )
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        if self.num_clients < 1:
            raise ConfigurationError("num_clients must be at least 1")
        if self.client_groups < 1:
            raise ConfigurationError("client_groups must be at least 1")
        if self.shim_cores < 1 or self.verifier_cores < 1:
            raise ConfigurationError("core counts must be at least 1")
        if self.crypto_backend not in ("real", "fast"):
            raise ConfigurationError(
                f"crypto_backend must be 'real' or 'fast', got {self.crypto_backend!r}"
            )
        if self.fault_timeline:
            # Fail fast on a malformed timeline (lazy import: timeline.py
            # imports nothing from here, but keep config importable alone).
            from repro.faults.timeline import parse_timeline

            parse_timeline(self.fault_timeline)

    def with_overrides(self, **overrides) -> "ProtocolConfig":
        """Return a copy with some fields replaced (used by parameter sweeps)."""
        return replace(self, **overrides)
