"""Fault timelines: scheduled crash/recover/partition/slow events.

Unlike the static byzantine behaviours (:mod:`repro.faults.byzantine`) that
hold for a whole run, a fault timeline schedules *dynamic* events at
simulated times and drives a real node lifecycle: a crashed shim node drops
its volatile state and stops processing; on recovery it rejoins and catches
up from the latest stable checkpoint via the state-transfer path of
Section V-B.  This is what lets scenarios exercise the paper's availability
story — view changes (Section V-A4) and featherweight checkpoints — end to
end instead of merely crashing a node for the whole run.

Timelines are written in a compact DSL carried by
``ProtocolConfig.fault_timeline`` so they route through ``RunSpec``, sweep
grids, and ``--set`` like every other knob::

    crash:primary@0.3;recover:primary@1.0
    crash:node-1@0.2;recover:node-1@0.9;slow:node-2@0.3-0.8x4
    partition:node-3@0.3-0.9            # isolate node-3, heal at 0.9
    partition:node-0|node-1,node-2@0.5-1.0

Event grammar (times are simulated seconds):

* ``crash:SEL@T`` — node ``SEL`` crashes at ``T``.
* ``recover:SEL@T`` — node ``SEL`` restarts at ``T`` and catches up.
* ``slow:SEL@T1-T2xF`` — node ``SEL`` runs ``F``× slower in ``[T1, T2)``.
* ``partition:GROUP[|GROUP...]@T1-T2`` — cut links between the groups
  (comma-separated member lists) at ``T1``, heal at ``T2``.  A single
  group means "isolate these endpoints from everyone else".

Node selectors: a literal endpoint name, ``primary`` (the initial primary,
``node-0``), ``last`` (the highest-numbered shim node), or ``node-K``.

A run with an empty timeline builds no engine, schedules no events, and
draws no randomness — fault-free results stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "FaultEvent",
    "CrashEvent",
    "RecoverEvent",
    "SlowEvent",
    "PartitionEvent",
    "parse_timeline",
    "format_timeline",
    "LivenessWatchdog",
    "FaultTimelineEngine",
]


# ------------------------------------------------------------------ events


@dataclass(frozen=True)
class CrashEvent:
    node: str
    at: float

    def render(self) -> str:
        return f"crash:{self.node}@{_fmt(self.at)}"


@dataclass(frozen=True)
class RecoverEvent:
    node: str
    at: float

    def render(self) -> str:
        return f"recover:{self.node}@{_fmt(self.at)}"


@dataclass(frozen=True)
class SlowEvent:
    node: str
    at: float
    until: float
    factor: float

    def render(self) -> str:
        return f"slow:{self.node}@{_fmt(self.at)}-{_fmt(self.until)}x{_fmt(self.factor)}"


@dataclass(frozen=True)
class PartitionEvent:
    groups: Tuple[Tuple[str, ...], ...]
    at: float
    heal_at: float

    def render(self) -> str:
        groups = "|".join(",".join(group) for group in self.groups)
        return f"partition:{groups}@{_fmt(self.at)}-{_fmt(self.heal_at)}"


FaultEvent = object  # union marker for documentation; events share .at/.render()


def _fmt(value: float) -> str:
    """Render a number without a trailing ``.0`` (round-trip friendly)."""
    return f"{value:g}"


def _parse_time(text: str, clause: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ConfigurationError(f"bad time {text!r} in fault clause {clause!r}")
    if value < 0:
        raise ConfigurationError(f"negative time in fault clause {clause!r}")
    return value


def parse_timeline(text: str) -> List[FaultEvent]:
    """Parse the timeline DSL into event objects (``;``-separated clauses)."""
    events: List[FaultEvent] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, rest = clause.partition(":")
        kind = kind.strip()
        if not rest or "@" not in rest:
            raise ConfigurationError(f"malformed fault clause {clause!r} (expect kind:target@time)")
        target, _, timespec = rest.rpartition("@")
        target = target.strip()
        timespec = timespec.strip()
        if not target:
            raise ConfigurationError(f"missing target in fault clause {clause!r}")
        if kind in ("crash", "recover"):
            at = _parse_time(timespec, clause)
            cls = CrashEvent if kind == "crash" else RecoverEvent
            events.append(cls(node=target, at=at))
        elif kind == "slow":
            window, _, factor_text = timespec.partition("x")
            start_text, sep, end_text = window.partition("-")
            if not sep or not factor_text:
                raise ConfigurationError(
                    f"malformed slow clause {clause!r} (expect slow:node@t1-t2xF)"
                )
            at = _parse_time(start_text, clause)
            until = _parse_time(end_text, clause)
            try:
                factor = float(factor_text)
            except ValueError:
                raise ConfigurationError(f"bad slow factor {factor_text!r} in {clause!r}")
            if factor <= 0:
                raise ConfigurationError(f"slow factor must be positive in {clause!r}")
            if until <= at:
                raise ConfigurationError(f"slow window must end after it starts in {clause!r}")
            events.append(SlowEvent(node=target, at=at, until=until, factor=factor))
        elif kind == "partition":
            start_text, sep, end_text = timespec.partition("-")
            if not sep:
                raise ConfigurationError(
                    f"malformed partition clause {clause!r} (expect partition:g1|g2@t1-t2)"
                )
            at = _parse_time(start_text, clause)
            heal_at = _parse_time(end_text, clause)
            if heal_at <= at:
                raise ConfigurationError(f"partition must heal after it starts in {clause!r}")
            groups = tuple(
                tuple(member.strip() for member in group.split(",") if member.strip())
                for group in target.split("|")
            )
            if not groups or any(not group for group in groups):
                raise ConfigurationError(f"empty partition group in {clause!r}")
            events.append(PartitionEvent(groups=groups, at=at, heal_at=heal_at))
        else:
            raise ConfigurationError(
                f"unknown fault kind {kind!r} in {clause!r} "
                f"(expected crash/recover/slow/partition)"
            )
    events.sort(key=lambda event: event.at)
    return events


def format_timeline(events: List[FaultEvent]) -> str:
    """Inverse of :func:`parse_timeline` (canonical, time-sorted)."""
    return ";".join(event.render() for event in sorted(events, key=lambda e: e.at))


# ------------------------------------------------------------------ watchdog


class LivenessWatchdog:
    """Observes the commit stream and quantifies unavailability.

    ``unavailability_seconds`` sums every inter-commit gap longer than the
    stall threshold (including the tail gap at the end of the run);
    ``time_to_recovery_seconds`` is the worst time from a fault event to the
    first commit at or after it.  Both are virtual-time quantities, so they
    are exactly reproducible across hosts.
    """

    def __init__(self, stall_threshold: float = 0.25) -> None:
        self._threshold = stall_threshold
        self._last_commit: float = 0.0
        self._saw_commit = False
        self._unavailability = 0.0
        self._stalls = 0
        self._pending_faults: List[float] = []
        self._time_to_recovery = 0.0

    @property
    def unavailability_seconds(self) -> float:
        return self._unavailability

    @property
    def stall_count(self) -> int:
        return self._stalls

    @property
    def time_to_recovery_seconds(self) -> float:
        return self._time_to_recovery

    def note_fault(self, at: float) -> None:
        """Arm a recovery marker: resolved by the first commit at/after ``at``."""
        self._pending_faults.append(at)

    def on_commit(self, time: float, count: int = 1) -> None:
        gap = time - self._last_commit
        if gap > self._threshold:
            self._unavailability += gap
            self._stalls += 1
        self._last_commit = time
        self._saw_commit = True
        if self._pending_faults:
            resolved = [at for at in self._pending_faults if at <= time]
            if resolved:
                self._time_to_recovery = max(
                    self._time_to_recovery, max(time - at for at in resolved)
                )
                self._pending_faults = [at for at in self._pending_faults if at > time]

    def finalize(self, duration: float) -> None:
        """Close the books at the end of the run (tail gap, unresolved faults)."""
        tail = duration - self._last_commit
        if tail > self._threshold:
            self._unavailability += tail
            self._stalls += 1
        for at in self._pending_faults:
            # The cluster never committed again after this fault: the
            # recovery time is censored at the end of the run.
            self._time_to_recovery = max(self._time_to_recovery, duration - at)
        self._pending_faults = []


# ------------------------------------------------------------------ engine


class FaultTimelineEngine:
    """Schedules the timeline's events against a built deployment.

    Constructed by :class:`~repro.core.runner.ServerlessBFTSimulation` when
    ``config.fault_timeline`` is non-empty.  Resolves node selectors against
    the deployment, schedules one simulator event per fault event (no
    polling, no RNG draws), and aggregates recovery metrics at collection
    time.
    """

    def __init__(self, runner, events: Optional[List[FaultEvent]] = None) -> None:
        self._runner = runner
        self._sim = runner.sim
        self._network = runner.network
        if events is None:
            events = parse_timeline(runner.config.fault_timeline)
        self._events = events
        self._nodes: Dict[str, object] = {node.name: node for node in runner.nodes}
        self.watchdog = LivenessWatchdog()
        self._crashes = 0
        self._recoveries = 0
        self._partitions = 0
        self._schedule_all()

    # -------------------------------------------------------------- selectors

    def _resolve_node(self, selector: str) -> str:
        names = [node.name for node in self._runner.nodes]
        if selector == "primary":
            return names[0]
        if selector == "last":
            return names[-1]
        if selector in self._nodes:
            return selector
        raise ConfigurationError(
            f"fault timeline names unknown shim node {selector!r} "
            f"(deployment has {names})"
        )

    def _resolve_group(self, group: Tuple[str, ...]) -> List[str]:
        """Partition groups may also name non-shim endpoints (verifier, ...)."""
        resolved = []
        for member in group:
            if member in ("primary", "last") or member in self._nodes:
                resolved.append(self._resolve_node(member))
            elif self._network.has_endpoint(member):
                resolved.append(member)
            else:
                raise ConfigurationError(
                    f"fault timeline partitions unknown endpoint {member!r}"
                )
        return resolved

    # -------------------------------------------------------------- scheduling

    def _schedule_all(self) -> None:
        for event in self._events:
            if isinstance(event, CrashEvent):
                node = self._resolve_node(event.node)
                self._sim.schedule(event.at, self._do_crash, node, event.at)
            elif isinstance(event, RecoverEvent):
                node = self._resolve_node(event.node)
                self._sim.schedule(event.at, self._do_recover, node)
            elif isinstance(event, SlowEvent):
                node = self._resolve_node(event.node)
                self._sim.schedule(event.at, self._do_slow, node, event.factor, event.at)
                self._sim.schedule(event.until, self._do_slow, node, 1.0, None)
            elif isinstance(event, PartitionEvent):
                pairs = self._partition_pairs(event)
                self._sim.schedule(event.at, self._do_partition, pairs, event.at)
                self._sim.schedule(event.heal_at, self._do_heal, pairs)

    def _partition_pairs(self, event: PartitionEvent) -> List[Tuple[str, str]]:
        groups = [self._resolve_group(group) for group in event.groups]
        pairs: List[Tuple[str, str]] = []
        if len(groups) == 1:
            # Isolation shorthand: cut the group off from every static
            # endpoint outside it (shim nodes, verifier, storage, clients).
            inside = set(groups[0])
            outside = [
                name
                for name in self._static_endpoints()
                if name not in inside
            ]
            for src in groups[0]:
                for dst in outside:
                    pairs.append((src, dst))
                    pairs.append((dst, src))
        else:
            for index, group in enumerate(groups):
                for other in groups[index + 1:]:
                    for src in group:
                        for dst in other:
                            pairs.append((src, dst))
                            pairs.append((dst, src))
        return pairs

    def _static_endpoints(self) -> List[str]:
        names = [node.name for node in self._runner.nodes]
        names.append("verifier")
        names.append("storage")
        names.extend(group.name for group in self._runner.clients)
        return names

    # -------------------------------------------------------------- actions

    def _do_crash(self, node_name: str, at: float) -> None:
        node = self._nodes[node_name]
        node.crash()
        self._network.set_endpoint_down(node_name, True)
        self.watchdog.note_fault(at)
        self._crashes += 1

    def _do_recover(self, node_name: str) -> None:
        node = self._nodes[node_name]
        # Reconnect before restarting: recovery immediately broadcasts a
        # checkpoint request, which must not be dropped as "endpoint down".
        self._network.set_endpoint_down(node_name, False)
        node.recover()
        self._recoveries += 1

    def _do_slow(self, node_name: str, factor: float, at: Optional[float]) -> None:
        node = self._nodes[node_name]
        if node.cpu is not None:
            node.cpu.set_speed_factor(factor)
        if at is not None:
            self.watchdog.note_fault(at)

    def _do_partition(self, pairs: List[Tuple[str, str]], at: float) -> None:
        self._network.cut_links(pairs)
        self.watchdog.note_fault(at)
        self._partitions += 1

    def _do_heal(self, pairs: List[Tuple[str, str]]) -> None:
        self._network.heal_links(pairs)

    # -------------------------------------------------------------- metrics

    def metrics(self, duration: float) -> Dict[str, float]:
        """Recovery metrics merged into ``SimulationResult.extra``."""
        self.watchdog.finalize(duration)
        checkpoints_sent = 0
        checkpoints_adopted = 0
        stable_seq = 0
        for node in self._runner.nodes:
            replica = node.replica
            checkpoints_sent += getattr(replica, "checkpoints_sent", 0)
            checkpoints_adopted += getattr(replica, "checkpoints_adopted", 0)
            log = getattr(replica, "log", None)
            if log is not None:
                stable_seq = max(stable_seq, getattr(log, "stable_seq", 0))
        return {
            "fault_events": float(len(self._events)),
            "fault_crashes": float(self._crashes),
            "fault_recoveries": float(self._recoveries),
            "fault_partitions": float(self._partitions),
            "unavailability_seconds": self.watchdog.unavailability_seconds,
            "liveness_stalls": float(self.watchdog.stall_count),
            "time_to_recovery_seconds": self.watchdog.time_to_recovery_seconds,
            "checkpoints_sent": float(checkpoints_sent),
            "checkpoints_adopted": float(checkpoints_adopted),
            "stable_checkpoint_seq": float(stable_seq),
        }
