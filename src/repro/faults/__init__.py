"""Byzantine behaviour injection.

Section V of the paper enumerates the attacks possible in the serverless-edge
architecture.  Each attack is expressed here as a *behaviour* object attached
to a shim node or an executor; honest components simply have no behaviour
attached.  The protocol code consults these hooks at its decision points, so
the attack surface is explicit and testable.
"""

from repro.faults.byzantine import (
    CrashBehaviour,
    DelaySpawningBehaviour,
    DuplicateSpawningBehaviour,
    DuplicateVerifyBehaviour,
    EquivocationBehaviour,
    ExecutorBehaviour,
    FewerExecutorsBehaviour,
    NodeBehaviour,
    NodesInDarkBehaviour,
    RequestIgnoranceBehaviour,
    SilentExecutorBehaviour,
    UnsuccessfulConsensusBehaviour,
    WrongResultBehaviour,
)
from repro.faults.timeline import (
    CrashEvent,
    FaultTimelineEngine,
    LivenessWatchdog,
    PartitionEvent,
    RecoverEvent,
    SlowEvent,
    format_timeline,
    parse_timeline,
)

__all__ = [
    "CrashEvent",
    "FaultTimelineEngine",
    "LivenessWatchdog",
    "PartitionEvent",
    "RecoverEvent",
    "SlowEvent",
    "format_timeline",
    "parse_timeline",
    "CrashBehaviour",
    "DelaySpawningBehaviour",
    "DuplicateSpawningBehaviour",
    "DuplicateVerifyBehaviour",
    "EquivocationBehaviour",
    "ExecutorBehaviour",
    "FewerExecutorsBehaviour",
    "NodeBehaviour",
    "NodesInDarkBehaviour",
    "RequestIgnoranceBehaviour",
    "SilentExecutorBehaviour",
    "UnsuccessfulConsensusBehaviour",
    "WrongResultBehaviour",
]
