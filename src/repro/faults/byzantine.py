"""Concrete byzantine behaviours for shim nodes and executors.

Shim-node behaviours map to the attacks of Section V:

* :class:`RequestIgnoranceBehaviour` — a byzantine primary drops or delays
  client requests (request suppression, form i).
* :class:`UnsuccessfulConsensusBehaviour` — the primary involves fewer than
  ``2f_R + 1`` nodes so consensus never completes (form ii).
* :class:`FewerExecutorsBehaviour` — the primary commits the request but
  spawns fewer than ``n_E`` executors (form iii).
* :class:`NodesInDarkBehaviour` — the primary excludes up to ``f_R`` honest
  nodes from every consensus (Section V-B, node exclusion).
* :class:`EquivocationBehaviour` — the primary assigns the same sequence
  number to two different requests (Section V-B, equivocation).
* :class:`DuplicateSpawningBehaviour` — a node replays old certificates to
  spawn redundant executors (verifier flooding, forms i/ii).
* :class:`DelaySpawningBehaviour` — the primary delays spawning for selected
  sequence numbers to force aborts of conflicting transactions
  (the byzantine-abort attack of Section VI-B).
* :class:`CrashBehaviour` — the node stops participating entirely.

Executor behaviours map to the executor-side faults:

* :class:`WrongResultBehaviour` — returns a fabricated result.
* :class:`SilentExecutorBehaviour` — never reports to the verifier.
* :class:`DuplicateVerifyBehaviour` — floods the verifier with duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Set, Tuple


class NodeBehaviour:
    """Base (honest) behaviour: every hook is a pass-through.

    Subclasses override only the hooks relevant to their attack, so protocol
    code can consult every hook unconditionally.
    """

    # --- hooks used by the ordering engine (PBFT) ---------------------------------

    def preprepare_targets(self, targets: List[str]) -> List[str]:
        """Which nodes receive the PREPREPARE for a new proposal."""
        return targets

    def equivocation(self, seq: int, batch: Any) -> Optional[Tuple[Any, List[str]]]:
        """Return ``(other_batch, targets)`` to equivocate, or None."""
        return None

    def suppress(self, phase: str) -> bool:
        """Whether to suppress sending our own message of the given phase."""
        return False

    # --- hooks used by the shim node (serverless-edge layer) -----------------------

    def should_drop_request(self, request: Any) -> bool:
        """Primary-only: silently drop an incoming client request."""
        return False

    def executor_spawn_count(self, planned: int, seq: int) -> int:
        """How many executors to actually spawn (``planned`` for honest nodes)."""
        return planned

    def spawn_delay(self, seq: int) -> float:
        """Extra delay before spawning executors for ``seq`` (0 for honest)."""
        return 0.0

    def duplicate_spawn_count(self, seq: int) -> int:
        """Extra redundant executors to spawn (verifier flooding)."""
        return 0

    def is_crashed(self) -> bool:
        return False


@dataclass
class RequestIgnoranceBehaviour(NodeBehaviour):
    """Drop a fraction of client requests (or every request) at the primary."""

    drop_every: int = 1
    _seen: int = 0

    def should_drop_request(self, request: Any) -> bool:
        self._seen += 1
        return self.drop_every > 0 and self._seen % self.drop_every == 0


@dataclass
class UnsuccessfulConsensusBehaviour(NodeBehaviour):
    """Send PREPREPARE to fewer than ``2f_R`` other nodes so consensus stalls."""

    max_targets: int = 0

    def preprepare_targets(self, targets: List[str]) -> List[str]:
        return targets[: self.max_targets]


@dataclass
class NodesInDarkBehaviour(NodeBehaviour):
    """Exclude a fixed set of honest nodes from every consensus."""

    dark_nodes: Set[str] = field(default_factory=set)

    def preprepare_targets(self, targets: List[str]) -> List[str]:
        return [target for target in targets if target not in self.dark_nodes]


@dataclass
class EquivocationBehaviour(NodeBehaviour):
    """Propose a different batch (same sequence number) to a subset of nodes."""

    victim_nodes: List[str] = field(default_factory=list)
    forged_batch_factory: Optional[Any] = None

    def equivocation(self, seq: int, batch: Any) -> Optional[Tuple[Any, List[str]]]:
        if not self.victim_nodes or self.forged_batch_factory is None:
            return None
        return self.forged_batch_factory(seq, batch), list(self.victim_nodes)


@dataclass
class FewerExecutorsBehaviour(NodeBehaviour):
    """Spawn fewer executors than required (request suppression, form iii)."""

    spawn_at_most: int = 0

    def executor_spawn_count(self, planned: int, seq: int) -> int:
        return min(planned, self.spawn_at_most)


@dataclass
class DelaySpawningBehaviour(NodeBehaviour):
    """Delay spawning for selected sequence numbers (byzantine-abort attack)."""

    delay_seconds: float = 5.0
    target_seqs: Optional[Set[int]] = None
    delay_every: int = 0

    def spawn_delay(self, seq: int) -> float:
        if self.target_seqs is not None:
            return self.delay_seconds if seq in self.target_seqs else 0.0
        if self.delay_every > 0 and seq % self.delay_every == 0:
            return self.delay_seconds
        return 0.0


@dataclass
class DuplicateSpawningBehaviour(NodeBehaviour):
    """Spawn redundant executors for every committed request (flooding)."""

    extra_per_batch: int = 2

    def duplicate_spawn_count(self, seq: int) -> int:
        return self.extra_per_batch


@dataclass
class CrashBehaviour(NodeBehaviour):
    """The node stops participating (omission failures)."""

    def is_crashed(self) -> bool:
        return True

    def suppress(self, phase: str) -> bool:
        return True

    def should_drop_request(self, request: Any) -> bool:
        return True

    def executor_spawn_count(self, planned: int, seq: int) -> int:
        return 0


# --------------------------------------------------------------------------- executors


class ExecutorBehaviour:
    """Base (honest) executor behaviour."""

    def should_ignore(self) -> bool:
        """Skip execution and never contact the verifier."""
        return False

    def corrupt_result(self, result: Any) -> Any:
        """Optionally replace the execution result with a fabricated one."""
        return result

    def verify_copies(self) -> int:
        """How many copies of the VERIFY message to send (honest: 1)."""
        return 1


@dataclass
class WrongResultBehaviour(ExecutorBehaviour):
    """Return a fabricated execution result.

    Both the result digest and every write value are replaced, so if the
    verifier ever accepted this result the corruption would be visible in the
    data store.
    """

    marker: str = "byzantine"

    def corrupt_result(self, result: Any) -> Any:
        from dataclasses import replace

        corrupted_txns = tuple(
            replace(
                txn_result,
                writes={key: f"{self.marker}-corrupted" for key in txn_result.writes},
            )
            for txn_result in result.txn_results
        )
        return replace(
            result,
            result_digest=f"{self.marker}-{result.result_digest[:8]}",
            txn_results=corrupted_txns,
        )


class SilentExecutorBehaviour(ExecutorBehaviour):
    """Never send the VERIFY message (crash / straggler executor)."""

    def should_ignore(self) -> bool:
        return True


@dataclass
class DuplicateVerifyBehaviour(ExecutorBehaviour):
    """Send many duplicate VERIFY messages (verifier flooding, form iii)."""

    copies: int = 5

    def verify_copies(self) -> int:
        return max(1, self.copies)
