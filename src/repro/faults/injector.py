"""Helpers for attaching byzantine behaviours to a deployment.

The runner accepts an ``executor_behaviour_factory`` callback invoked for
every spawned executor; these helpers implement the common policies used in
tests and experiments (e.g. "the first ``f_E`` executors of every batch are
byzantine").
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.messages import ExecuteMsg
from repro.faults.byzantine import ExecutorBehaviour


class PerBatchExecutorFaults:
    """Make the first ``count`` executors spawned for every sequence byzantine."""

    def __init__(
        self,
        count: int,
        behaviour_factory: Callable[[], ExecutorBehaviour],
    ) -> None:
        self._count = count
        self._behaviour_factory = behaviour_factory
        self._seen_per_seq: Dict[int, int] = {}

    def __call__(self, executor_id: str, execute: ExecuteMsg) -> Optional[ExecutorBehaviour]:
        seen = self._seen_per_seq.get(execute.seq, 0)
        self._seen_per_seq[execute.seq] = seen + 1
        if seen < self._count:
            return self._behaviour_factory()
        return None


class AllExecutorsHonest:
    """Explicit no-op factory (every executor honest)."""

    def __call__(self, executor_id: str, execute: ExecuteMsg) -> Optional[ExecutorBehaviour]:
        return None
