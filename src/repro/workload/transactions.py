"""Transaction model.

A transaction is an ordered list of read and write operations over the
on-premise key-value store plus an optional compute phase (the "execution
length" knob of Figure 6 v/vi and Figure 8).  Executors execute transactions
deterministically, so two honest executors always produce identical results
for the same transaction over the same storage state — the property the
verifier's ``f_E + 1`` matching-results quorum relies on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Operation:
    """One read or write of a single key."""

    key: str
    is_write: bool
    value: Optional[str] = None

    def __post_init__(self) -> None:
        if self.is_write and self.value is None:
            object.__setattr__(self, "value", "")


@dataclass(frozen=True)
class Transaction:
    """A client transaction ``T``.

    ``execution_seconds`` is the synthetic compute time of the transaction's
    expensive phase; ``rw_sets_known`` says whether the shim can see the
    read-write sets before execution (Section VI-C vs VI-B).  ``origin`` and
    ``request_id`` identify the client endpoint awaiting the RESPONSE and the
    client-side request this transaction belongs to.
    """

    txn_id: str
    client_id: str
    operations: Tuple[Operation, ...]
    execution_seconds: float = 0.0
    rw_sets_known: bool = True
    origin: str = ""
    request_id: str = ""

    @property
    def read_set(self) -> FrozenSet[str]:
        return frozenset(op.key for op in self.operations if not op.is_write)

    @property
    def write_set(self) -> FrozenSet[str]:
        return frozenset(op.key for op in self.operations if op.is_write)

    @property
    def keys(self) -> FrozenSet[str]:
        return self.read_set | self.write_set

    def canonical(self) -> str:
        ops = ";".join(
            f"{'W' if op.is_write else 'R'}:{op.key}:{op.value or ''}" for op in self.operations
        )
        return f"txn:{self.txn_id}:{self.client_id}:{ops}:{self.execution_seconds}"


def transactions_conflict(first: Transaction, second: Transaction) -> bool:
    """Two transactions conflict if they share a key and at least one writes it."""
    if first.write_set & second.keys:
        return True
    if second.write_set & first.keys:
        return True
    return False


@dataclass(frozen=True)
class TransactionBatch:
    """A batch of client transactions ordered together by the shim.

    The paper batches 100 client transactions per consensus by default.
    """

    batch_id: str
    transactions: Tuple[Transaction, ...]

    def __len__(self) -> int:
        return len(self.transactions)

    @property
    def read_set(self) -> FrozenSet[str]:
        keys: set = set()
        for txn in self.transactions:
            keys |= txn.read_set
        return frozenset(keys)

    @property
    def write_set(self) -> FrozenSet[str]:
        keys: set = set()
        for txn in self.transactions:
            keys |= txn.write_set
        return frozenset(keys)

    @property
    def keys(self) -> FrozenSet[str]:
        return self.read_set | self.write_set

    @property
    def execution_seconds(self) -> float:
        """Synthetic compute time of the batch's expensive phase.

        The paper's "execution length" knob models one compute-intensive task
        (e.g. an ML inference over the batched sensor data) per invocation,
        so the batch-level cost is the largest per-transaction requirement,
        not the sum.
        """
        if not self.transactions:
            return 0.0
        return max(txn.execution_seconds for txn in self.transactions)

    @property
    def rw_sets_known(self) -> bool:
        return all(txn.rw_sets_known for txn in self.transactions)

    def conflicts_with(self, other: "TransactionBatch") -> bool:
        if self.write_set & other.keys:
            return True
        if other.write_set & self.keys:
            return True
        return False

    def canonical(self) -> str:
        return f"batch:{self.batch_id}:" + "|".join(txn.canonical() for txn in self.transactions)


@dataclass(frozen=True)
class TransactionResult:
    """The deterministic result of executing one transaction."""

    txn_id: str
    writes: Dict[str, str] = field(default_factory=dict)
    read_versions: Dict[str, int] = field(default_factory=dict)

    def canonical(self) -> str:
        writes = ";".join(f"{k}={v}" for k, v in sorted(self.writes.items()))
        reads = ";".join(f"{k}@{v}" for k, v in sorted(self.read_versions.items()))
        return f"txnresult:{self.txn_id}:{writes}:{reads}"


@dataclass(frozen=True)
class ExecutionResult:
    """The deterministic result of executing a batch against a storage snapshot.

    Per-transaction read versions are recorded so the verifier can run its
    concurrency-control check transaction by transaction and abort only the
    transactions whose reads went stale (Section IV-D and VI-B).
    """

    batch_id: str
    result_digest: str
    txn_results: Tuple[TransactionResult, ...] = ()

    def canonical(self) -> str:
        body = "|".join(result.canonical() for result in self.txn_results)
        return f"result:{self.batch_id}:{self.result_digest}:{body}"

    def result_for(self, txn_id: str) -> Optional[TransactionResult]:
        for result in self.txn_results:
            if result.txn_id == txn_id:
                return result
        return None


def execute_batch(
    batch: TransactionBatch,
    read_values: Mapping[str, str],
    read_versions: Mapping[str, int],
) -> ExecutionResult:
    """Deterministically execute a batch given the values it read.

    Writes derive from the transaction id and the values read, so any two
    honest executors that observed the same storage state produce identical
    :class:`ExecutionResult` objects (and byzantine executors that fabricate
    results will not match them).
    """
    hasher = hashlib.sha256()
    hasher.update(batch.batch_id.encode("utf-8"))
    txn_results: List[TransactionResult] = []
    for txn in batch.transactions:
        writes: Dict[str, str] = {}
        for op in txn.operations:
            current = read_values.get(op.key, "")
            hasher.update(f"{op.key}={current}".encode("utf-8"))
            if op.is_write:
                new_value = f"{op.value}:{txn.txn_id}"
                writes[op.key] = new_value
                hasher.update(new_value.encode("utf-8"))
        observed_versions = {key: read_versions.get(key, 0) for key in txn.keys}
        # The digest covers the observed versions too: VERIFY messages only
        # "match" (Figure 3, Line 23) when the executors saw the same storage
        # state, which is what the verifier's concurrency check relies on.
        for key in sorted(observed_versions):
            hasher.update(f"{key}@{observed_versions[key]}".encode("utf-8"))
        txn_results.append(
            TransactionResult(txn_id=txn.txn_id, writes=writes, read_versions=observed_versions)
        )
    return ExecutionResult(
        batch_id=batch.batch_id,
        result_digest=hasher.hexdigest(),
        txn_results=tuple(txn_results),
    )


def merge_batches(batches: Iterable[TransactionBatch], batch_id: str) -> TransactionBatch:
    """Concatenate several batches into one (used by re-batching utilities)."""
    transactions: List[Transaction] = []
    for batch in batches:
        transactions.extend(batch.transactions)
    return TransactionBatch(batch_id=batch_id, transactions=tuple(transactions))
