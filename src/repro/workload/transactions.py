"""Transaction model.

A transaction is an ordered list of read and write operations over the
on-premise key-value store plus an optional compute phase (the "execution
length" knob of Figure 6 v/vi and Figure 8).  Executors execute transactions
deterministically, so two honest executors always produce identical results
for the same transaction over the same storage state — the property the
verifier's ``f_E + 1`` matching-results quorum relies on.
"""

from __future__ import annotations

import hashlib
from collections import namedtuple
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro import kernel
from repro.perf import PERF


class Operation(namedtuple("_OperationBase", ("key", "is_write", "value"))):
    """One read or write of a single key.

    A namedtuple rather than a frozen dataclass: the workload generator
    allocates one per operation on the hottest path of a run, and the
    generator constructs them via ``tuple.__new__`` entirely in C (no
    per-instance ``__dict__``).  Field access, equality, and keyword
    construction are unchanged for callers; a write without an explicit
    value still normalises it to ``""``.
    """

    __slots__ = ()

    def __new__(cls, key: str, is_write: bool = False, value: Optional[str] = None):
        if is_write and value is None:
            value = ""
        return tuple.__new__(cls, (key, is_write, value))


@dataclass(frozen=True)
class Transaction:
    """A client transaction ``T``.

    ``execution_seconds`` is the synthetic compute time of the transaction's
    expensive phase; ``rw_sets_known`` says whether the shim can see the
    read-write sets before execution (Section VI-C vs VI-B).  ``origin`` and
    ``request_id`` identify the client endpoint awaiting the RESPONSE and the
    client-side request this transaction belongs to.
    """

    txn_id: str
    client_id: str
    operations: Tuple[Operation, ...]
    execution_seconds: float = 0.0
    rw_sets_known: bool = True
    origin: str = ""
    request_id: str = ""

    # The read/write sets and the canonical form of a frozen transaction are
    # immutable, yet they are recomputed on every access across the protocol's
    # hot paths (conflict planning, storage reads, request/batch hashing).
    # They are memoised on the instance; frozen dataclasses still carry a
    # ``__dict__``, so ``object.__setattr__`` works.

    # Operations are namedtuples, so the comprehensions below unpack them
    # directly (C-level) instead of reading attributes one by one.

    @property
    def read_set(self) -> FrozenSet[str]:
        try:
            return self._read_set
        except AttributeError:
            cached = frozenset(key for key, is_write, _value in self.operations if not is_write)
            object.__setattr__(self, "_read_set", cached)
            return cached

    @property
    def write_set(self) -> FrozenSet[str]:
        try:
            return self._write_set
        except AttributeError:
            cached = frozenset(key for key, is_write, _value in self.operations if is_write)
            object.__setattr__(self, "_write_set", cached)
            return cached

    @property
    def keys(self) -> FrozenSet[str]:
        try:
            return self._keys
        except AttributeError:
            # Computed straight from the operations (== read_set | write_set)
            # so the hot execution path doesn't materialise both sub-sets.
            cached = frozenset(key for key, _w, _v in self.operations)
            object.__setattr__(self, "_keys", cached)
            return cached

    @property
    def sorted_keys(self) -> Tuple[str, ...]:
        """The transaction's distinct keys in sorted order.

        What batch execution iterates when recording observed versions —
        identical ordering to ``sorted(self.keys)``, without materialising
        the frozenset on that path.
        """
        try:
            return self._sorted_keys
        except AttributeError:
            cached = tuple(sorted({key for key, _w, _v in self.operations}))
            object.__setattr__(self, "_sorted_keys", cached)
            return cached

    def canonical(self) -> str:
        try:
            return self._canonical
        except AttributeError:
            # Construction is delegated to the active kernel variant (bound
            # at module bottom); both build the identical string.
            cached = _transaction_canonical(self)
            object.__setattr__(self, "_canonical", cached)
            return cached


def transactions_conflict(first: Transaction, second: Transaction) -> bool:
    """Two transactions conflict if they share a key and at least one writes it."""
    if first.write_set & second.keys:
        return True
    if second.write_set & first.keys:
        return True
    return False


@dataclass(frozen=True)
class TransactionBatch:
    """A batch of client transactions ordered together by the shim.

    The paper batches 100 client transactions per consensus by default.
    """

    batch_id: str
    transactions: Tuple[Transaction, ...]

    def __len__(self) -> int:
        return len(self.transactions)

    # Like Transaction, batch-level aggregates are memoised on the instance:
    # every executor spawned for a batch (3+ per commit) re-reads them.

    @property
    def read_set(self) -> FrozenSet[str]:
        cached = self.__dict__.get("_read_set")
        if cached is None:
            keys: set = set()
            for txn in self.transactions:
                keys |= txn.read_set
            cached = frozenset(keys)
            object.__setattr__(self, "_read_set", cached)
        return cached

    @property
    def write_set(self) -> FrozenSet[str]:
        cached = self.__dict__.get("_write_set")
        if cached is None:
            keys: set = set()
            for txn in self.transactions:
                keys |= txn.write_set
            cached = frozenset(keys)
            object.__setattr__(self, "_write_set", cached)
        return cached

    @property
    def keys(self) -> FrozenSet[str]:
        cached = self.__dict__.get("_keys")
        if cached is None:
            # One pass over all operations (== read_set | write_set) without
            # materialising 2 x batch_size intermediate frozensets.
            cached = frozenset(
                op[0] for txn in self.transactions for op in txn.operations
            )
            object.__setattr__(self, "_keys", cached)
        return cached

    @property
    def sorted_keys(self) -> Tuple[str, ...]:
        """The batch's keys in sorted order (the storage-read request shape)."""
        cached = self.__dict__.get("_sorted_keys")
        if cached is None:
            cached = tuple(sorted(self.keys))
            object.__setattr__(self, "_sorted_keys", cached)
        return cached

    @property
    def request_groups(self) -> Tuple[Tuple[Tuple[str, str], Tuple[str, ...]], ...]:
        """Transaction ids grouped by ``(origin, request_id)``, in batch order.

        The verifier replies per client request; the grouping depends only
        on the (frozen) batch, so it is computed once per batch instead of
        once per validated sequence number.
        """
        cached = self.__dict__.get("_request_groups")
        if cached is None:
            groups: Dict[Tuple[str, str], List[str]] = {}
            for txn in self.transactions:
                groups.setdefault((txn.origin, txn.request_id), []).append(txn.txn_id)
            cached = tuple((key, tuple(ids)) for key, ids in groups.items())
            object.__setattr__(self, "_request_groups", cached)
        return cached

    @property
    def operation_count(self) -> int:
        """Total operations across the batch (drives per-operation CPU cost)."""
        cached = self.__dict__.get("_operation_count")
        if cached is None:
            cached = sum(len(txn.operations) for txn in self.transactions)
            object.__setattr__(self, "_operation_count", cached)
        return cached

    @property
    def execution_seconds(self) -> float:
        """Synthetic compute time of the batch's expensive phase.

        The paper's "execution length" knob models one compute-intensive task
        (e.g. an ML inference over the batched sensor data) per invocation,
        so the batch-level cost is the largest per-transaction requirement,
        not the sum.
        """
        cached = self.__dict__.get("_execution_seconds")
        if cached is None:
            if not self.transactions:
                cached = 0.0
            else:
                cached = max(txn.execution_seconds for txn in self.transactions)
            object.__setattr__(self, "_execution_seconds", cached)
        return cached

    @property
    def rw_sets_known(self) -> bool:
        return all(txn.rw_sets_known for txn in self.transactions)

    def conflicts_with(self, other: "TransactionBatch") -> bool:
        if self.write_set & other.keys:
            return True
        if other.write_set & self.keys:
            return True
        return False

    def canonical(self) -> str:
        cached = self.__dict__.get("_canonical")
        if cached is None:
            # Delegated to the active kernel variant (bound at module
            # bottom); both build the identical string, and the compiled
            # path reads/seeds the per-transaction canonical memos directly.
            cached = _batch_canonical(self)
            object.__setattr__(self, "_canonical", cached)
        return cached


@dataclass(frozen=True)
class TransactionResult:
    """The deterministic result of executing one transaction."""

    txn_id: str
    writes: Dict[str, str] = field(default_factory=dict)
    read_versions: Dict[str, int] = field(default_factory=dict)

    def canonical(self) -> str:
        writes = ";".join(f"{k}={v}" for k, v in sorted(self.writes.items()))
        reads = ";".join(f"{k}@{v}" for k, v in sorted(self.read_versions.items()))
        return f"txnresult:{self.txn_id}:{writes}:{reads}"


@dataclass(frozen=True)
class ExecutionResult:
    """The deterministic result of executing a batch against a storage snapshot.

    Per-transaction read versions are recorded so the verifier can run its
    concurrency-control check transaction by transaction and abort only the
    transactions whose reads went stale (Section IV-D and VI-B).
    """

    batch_id: str
    result_digest: str
    txn_results: Tuple[TransactionResult, ...] = ()

    def canonical(self) -> str:
        body = "|".join(result.canonical() for result in self.txn_results)
        return f"result:{self.batch_id}:{self.result_digest}:{body}"

    def result_for(self, txn_id: str) -> Optional[TransactionResult]:
        for result in self.txn_results:
            if result.txn_id == txn_id:
                return result
        return None


def execute_batch_cached(
    batch: TransactionBatch,
    read_values: Mapping[str, str],
    read_versions: Mapping[str, int],
    snapshot_token: int = -1,
) -> ExecutionResult:
    """Memoising wrapper around :func:`execute_batch`.

    Honest execution is a pure function of the batch and the storage state it
    observed, and a key's value is determined by its version (versions bump on
    every write).  The paper spawns ``3f_E + 1`` executors per committed
    batch, so in the common race-free case the same (batch, versions) pair is
    executed several times — the memo, stored on the (shared) batch instance,
    collapses those to one real execution.  Executors that observed *different*
    versions (a racing commit) miss the memo and execute for real, preserving
    the conflict/abort behaviour bit-for-bit.  Byzantine result corruption
    happens *after* this call, so it never pollutes the memo.
    """
    memo = batch.__dict__.get("_execution_memo")
    if memo is None:
        memo = {}
        object.__setattr__(batch, "_execution_memo", memo)
    # Two-level key: a non-negative snapshot token identifies the exact store
    # state the read observed (O(1) hit, no per-key work).  Tokens churn on
    # *any* store write, though, so on a token miss fall back to the observed
    # versions themselves — executors whose reads straddled an unrelated
    # commit still share one execution.  A spurious mismatch merely
    # re-executes, which is always correct.
    if snapshot_token >= 0:
        result = memo.get(snapshot_token)
        if result is not None:
            PERF.batch_execution_cache_hits += 1
            return result
    versions_key = tuple(read_versions.items())
    result = memo.get(versions_key)
    if result is None:
        result = execute_batch(batch, read_values, read_versions)
        memo[versions_key] = result
    else:
        PERF.batch_execution_cache_hits += 1
    if snapshot_token >= 0:
        memo[snapshot_token] = result
        # Host-side freshness hint for the verifier: this (honest) result
        # describes the store state identified by ``snapshot_token`` — also
        # when served from the versions-key memo, since equal observed
        # versions mean the two snapshots agree on every key the batch
        # touches.  Byzantine corruption builds *new* result objects, which
        # never carry the hint, so the verifier's fast path only ever sees
        # honestly produced results.  Not part of the canonical form or any
        # digest.
        current = result.__dict__.get("_observed_token", -1)
        if snapshot_token > current:
            object.__setattr__(result, "_observed_token", snapshot_token)
    return result


def execute_batch(
    batch: TransactionBatch,
    read_values: Mapping[str, str],
    read_versions: Mapping[str, int],
) -> ExecutionResult:
    """Deterministically execute a batch given the values it read.

    Writes derive from the transaction id and the values read, so any two
    honest executors that observed the same storage state produce identical
    :class:`ExecutionResult` objects (and byzantine executors that fabricate
    results will not match them).

    Dispatches to the active kernel variant (see :mod:`repro.kernel`); the
    compiled and pure-Python implementations are bit-identical, gated by
    ``tests/test_kernel.py``.
    """
    return _execute_batch_impl(batch, read_values, read_versions)


def _execute_batch_py(
    batch: TransactionBatch,
    read_values: Mapping[str, str],
    read_versions: Mapping[str, int],
) -> ExecutionResult:
    """The authoritative pure-Python batch execution loop."""
    PERF.batch_executions += 1
    # Digest chunks are accumulated as *strings* and encoded in one pass at
    # the end: UTF-8 encoding distributes over concatenation, so the hashed
    # bytes — and therefore the result digest — are byte-identical to the
    # old chunk-by-chunk encoding.
    chunks: List[str] = [batch.batch_id]
    append_chunk = chunks.append
    values_get = read_values.get
    versions_get = read_versions.get
    result_new = TransactionResult.__new__
    txn_results: List[TransactionResult] = []
    for txn in batch.transactions:
        txn_id = txn.txn_id
        writes: Dict[str, str] = {}
        for key, is_write, value in txn.operations:
            append_chunk(f"{key}={values_get(key, '')}")
            if is_write:
                new_value = f"{value}:{txn_id}"
                writes[key] = new_value
                append_chunk(new_value)
        # The digest covers the observed versions too: VERIFY messages only
        # "match" (Figure 3, Line 23) when the executors saw the same storage
        # state, which is what the verifier's concurrency check relies on.
        observed_versions: Dict[str, int] = {}
        for key in txn.sorted_keys:
            version = versions_get(key, 0)
            observed_versions[key] = version
            append_chunk(f"{key}@{version}")
        # Fast frozen-dataclass construction (see YCSBWorkload): this runs
        # once per transaction per observed snapshot.
        txn_result = result_new(TransactionResult)
        result_dict = txn_result.__dict__
        result_dict["txn_id"] = txn_id
        result_dict["writes"] = writes
        result_dict["read_versions"] = observed_versions
        txn_results.append(txn_result)
    return ExecutionResult(
        batch_id=batch.batch_id,
        result_digest=hashlib.sha256("".join(chunks).encode("utf-8")).hexdigest(),
        txn_results=tuple(txn_results),
    )


def _execute_batch_c(
    batch: TransactionBatch,
    read_values: Mapping[str, str],
    read_versions: Mapping[str, int],
) -> ExecutionResult:
    """Compiled batch execution (bit-identical to :func:`_execute_batch_py`).

    The C loop operates on plain dicts; exotic mappings (none on the hot
    path today) take the authoritative Python loop instead.
    """
    if type(read_values) is not dict or type(read_versions) is not dict:
        return _execute_batch_py(batch, read_values, read_versions)
    PERF.batch_executions += 1
    PERF.ckernel_batches_executed += 1
    digest, txn_results = _c_execute_batch(
        batch.batch_id, batch.transactions, read_values, read_versions
    )
    return ExecutionResult(
        batch_id=batch.batch_id,
        result_digest=digest,
        txn_results=txn_results,
    )


def _transaction_canonical_py(txn: Transaction) -> str:
    """Uncached canonical-string construction (the memo lives in
    :meth:`Transaction.canonical`)."""
    ops = ";".join(
        [
            f"{'W' if is_write else 'R'}:{key}:{value or ''}"
            for key, is_write, value in txn.operations
        ]
    )
    return f"txn:{txn.txn_id}:{txn.client_id}:{ops}:{txn.execution_seconds}"


def _batch_canonical_py(batch: "TransactionBatch") -> str:
    """Uncached batch canonical construction (the memo lives in
    :meth:`TransactionBatch.canonical`)."""
    return f"batch:{batch.batch_id}:" + "|".join(
        [txn.canonical() for txn in batch.transactions]
    )


# --------------------------------------------------------------------------
# Kernel wiring: register this module's types with the chooser and bind the
# hot-floor implementations once, at import (repro.kernel decided the
# variant when *it* was imported).  KER006 keeps all of this routed through
# repro.kernel — nothing here touches repro._ckernel directly.
kernel.configure_types(Operation, Transaction, TransactionResult)
_c_execute_batch = kernel.c_execute_batch()
_execute_batch_impl = _execute_batch_py if _c_execute_batch is None else _execute_batch_c
_transaction_canonical = kernel.c_transaction_canonical() or _transaction_canonical_py
_batch_canonical = kernel.c_batch_canonical() or _batch_canonical_py


def merge_batches(batches: Iterable[TransactionBatch], batch_id: str) -> TransactionBatch:
    """Concatenate several batches into one (used by re-batching utilities)."""
    transactions: List[Transaction] = []
    for batch in batches:
        transactions.extend(batch.transactions)
    return TransactionBatch(batch_id=batch_id, transactions=tuple(transactions))
