"""Workload substrate.

The paper evaluates with YCSB key-value transactions (Blockbench flavour)
over a 600 k-record table, with configurable read/write mix, batching, a
controllable fraction of conflicting transactions, and an optional
"expensive execution" phase emulating compute-intensive edge tasks
(ML inference on UAV data, video analytics, …).
"""

from repro.workload.transactions import (
    ExecutionResult,
    Operation,
    Transaction,
    TransactionBatch,
    TransactionResult,
    execute_batch,
    transactions_conflict,
)
from repro.workload.ycsb import YCSBConfig, YCSBWorkload

__all__ = [
    "ExecutionResult",
    "Operation",
    "Transaction",
    "TransactionBatch",
    "TransactionResult",
    "YCSBConfig",
    "YCSBWorkload",
    "execute_batch",
    "transactions_conflict",
]
