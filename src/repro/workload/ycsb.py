"""YCSB-style workload generator.

Mirrors the paper's benchmark setup (Section IX): key-value transactions
over a 600 k-record table, each transaction performing a small number of
read and write operations, with

* a configurable read/write mix,
* zipfian or uniform key selection,
* a controllable percentage of *conflicting* transactions (Figure 6 xi/xii)
  — conflicting transactions write a small hot set of keys shared by all
  clients, non-conflicting ones touch per-client key partitions so they can
  never overlap,
* an optional synthetic compute phase per transaction ("execution length",
  Figures 6 v/vi and 8), and
* batching of client transactions (Figure 6 iii/iv).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro import kernel
from repro.errors import WorkloadError
from repro.perf import PERF
from repro.sim.rng import DeterministicRNG
from repro.workload.transactions import Operation, Transaction, TransactionBatch


@dataclass(frozen=True)
class YCSBConfig:
    """Parameters of the YCSB-style workload."""

    num_records: int = 600_000
    operations_per_transaction: int = 4
    write_fraction: float = 0.5
    zipfian_theta: float = 0.0
    conflict_fraction: float = 0.0
    hot_keys: int = 16
    clients: int = 16
    execution_seconds: float = 0.0
    rw_sets_known: bool = True
    value_size_bytes: int = 100
    seed: int = 2023

    def __post_init__(self) -> None:
        if self.num_records <= 0:
            raise WorkloadError("num_records must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError("write_fraction must be within [0, 1]")
        if not 0.0 <= self.conflict_fraction <= 1.0:
            raise WorkloadError("conflict_fraction must be within [0, 1]")
        if self.operations_per_transaction <= 0:
            raise WorkloadError("operations_per_transaction must be positive")
        if self.clients <= 0:
            raise WorkloadError("clients must be positive")
        if self.hot_keys <= 0:
            raise WorkloadError("hot_keys must be positive")


class YCSBWorkload:
    """Deterministic transaction/batch generator for one experiment run."""

    def __init__(self, config: YCSBConfig) -> None:
        self._config = config
        self._rng = DeterministicRNG(config.seed).child("ycsb")
        self._txn_counter = itertools.count()
        self._batch_counter = itertools.count()
        # Per-client private key ranges guarantee non-conflicting transactions
        # from different clients never touch the same key.
        self._partition_size = max(1, config.num_records // config.clients)
        # Key-selection is skewed (zipfian / per-client partitions), so the
        # same key strings are formatted over and over; memoise them.
        self._key_strings: dict = {}
        self._client_ids = [f"client-{index}" for index in range(config.clients)]
        # Pre-built samplers for the constant bounds of this workload: each is
        # draw-for-draw identical to randint (see DeterministicRNG), minus the
        # stdlib wrapper frames — next_transaction draws ~6 of these per call.
        # The bounds are recorded alongside the samplers: the compiled kernel
        # re-derives the same rejection loops from them (drawing through the
        # same ``getrandbits``), so C and Python draws stay sequence-identical.
        self._client_bound = config.clients
        self._value_bound = 10**9 + 1
        self._draw_client = self._rng.bounded_int_fn(self._client_bound)
        self._draw_hot = self._rng.bounded_int_fn(config.hot_keys)
        self._draw_offset = self._rng.bounded_int_fn(self._partition_size)
        self._draw_value = self._rng.bounded_int_fn(self._value_bound)
        # Per-transaction constants, hoisted out of the generation loop.
        self._writes_target = round(
            config.operations_per_transaction * config.write_fraction
        )
        self._private_modulus = max(1, config.num_records - config.hot_keys)
        # conflict_fraction == 0 means chance() never draws; skip the call.
        self._has_conflicts = config.conflict_fraction > 0.0
        # With no conflicts and uniform keys the per-transaction dispatch in
        # next_transaction is constant: branch once here, not per call.
        self._uniform_only = not self._has_conflicts and config.zipfian_theta <= 0
        # Key-choice tables and per-transaction attribute hoists: the frozen
        # config never changes after construction, so every per-call config
        # attribute read in the generation loop is precomputable.  None of
        # this changes a single RNG draw — only how the drawn values are
        # turned into keys and transactions.
        self._conflict_fraction = config.conflict_fraction
        self._execution_seconds = config.execution_seconds
        self._rw_sets_known = config.rw_sets_known
        self._num_client_ids = len(self._client_ids)
        self._client_starts = tuple(
            (index * self._partition_size) % config.num_records
            for index in range(config.clients)
        )
        self._write_flags = tuple(
            op_index < self._writes_target
            for op_index in range(config.operations_per_transaction)
        )
        self._chance = self._rng.chance
        self._next_txn_index = self._txn_counter.__next__
        self._next_batch_index = self._batch_counter.__next__
        self._hot_count = config.hot_keys
        self._num_records = config.num_records
        # Compiled generation fast path, bound per instance so tests can
        # force the pure-Python loop (``workload._c_generate = None``) for
        # in-process A/B comparisons.  ``None`` whenever the chooser picked
        # the pure-Python kernel.
        self._c_generate = kernel.c_generate_transactions()

    @property
    def config(self) -> YCSBConfig:
        return self._config

    def initial_value(self) -> str:
        return "v" * self._config.value_size_bytes

    # ------------------------------------------------------------- transactions

    def next_transaction(
        self,
        client_index: Optional[int] = None,
        origin: str = "",
        request_id: str = "",
    ) -> Transaction:
        """Generate the next transaction, optionally pinned to a client.

        ``origin``/``request_id`` let callers stamp the delivery metadata at
        construction time instead of rebuilding the frozen transaction with
        ``dataclasses.replace`` afterwards (the client hot path).
        """
        if client_index is None:
            client_index = self._draw_client()
        if client_index < self._num_client_ids:
            client_id = self._client_ids[client_index]
        else:
            client_id = f"client-{client_index}"
        txn_id = f"txn-{self._next_txn_index()}"
        if self._uniform_only:
            operations = self._build_operations_uniform(client_index)
        else:
            conflicting = self._has_conflicts and self._chance(self._conflict_fraction)
            operations = self._build_operations(client_index, conflicting)
        # Fast frozen-dataclass construction: a generated transaction is the
        # single hottest allocation in a run (batch size x clients per
        # second), and the frozen __init__'s per-field object.__setattr__
        # overhead is measurable.  Filling __dict__ directly is equivalent —
        # dataclass equality/hash read the same attributes.
        txn = object.__new__(Transaction)
        txn_dict = txn.__dict__
        txn_dict["txn_id"] = txn_id
        txn_dict["client_id"] = client_id
        txn_dict["operations"] = operations
        txn_dict["execution_seconds"] = self._execution_seconds
        txn_dict["rw_sets_known"] = self._rw_sets_known
        txn_dict["origin"] = origin
        txn_dict["request_id"] = request_id
        return txn

    def next_transactions(
        self,
        count: int,
        client_index_offset: int = 0,
        origin: str = "",
        request_id: str = "",
    ) -> Tuple[Transaction, ...]:
        """Generate ``count`` transactions pinned to consecutive client slots.

        Draw-for-draw identical to calling :meth:`next_transaction` with
        ``client_index = client_index_offset + slot`` for each slot; the
        hoisted loop serves the client group's request path (one request per
        round trip carrying ``group_size`` transactions), where the
        per-transaction attribute reads of the single-transaction entry
        point are measurable.
        """
        c_generate = self._c_generate
        if c_generate is not None:
            txns = c_generate(self, count, client_index_offset, origin, request_id, False)
            PERF.ckernel_txns_generated += count
            return txns
        uniform_only = self._uniform_only
        build_general = self._build_operations
        has_conflicts = self._has_conflicts
        chance = self._chance
        conflict_fraction = self._conflict_fraction
        client_ids = self._client_ids
        num_ids = self._num_client_ids
        next_index = self._next_txn_index
        execution_seconds = self._execution_seconds
        rw_sets_known = self._rw_sets_known
        txn_new = Transaction.__new__
        # Locals for the inlined uniform-key operation builder (identical
        # draws and results to _build_operations_uniform, minus one call
        # frame and its locals re-binding per transaction).
        write_flags = self._write_flags
        hot_keys = self._hot_count
        modulus = self._private_modulus
        draw_offset = self._draw_offset
        draw_value = self._draw_value
        strings = self._key_strings
        strings_get = strings.get
        starts = self._client_starts
        num_starts = len(starts)
        partition_size = self._partition_size
        num_records = self._num_records
        tuple_new = tuple.__new__
        transactions: List[Transaction] = []
        append = transactions.append
        for slot in range(count):
            client_index = client_index_offset + slot
            if client_index < num_ids:
                client_id = client_ids[client_index]
            else:
                client_id = f"client-{client_index}"
            txn_id = f"txn-{next_index()}"
            if uniform_only:
                if client_index < num_starts:
                    start = starts[client_index]
                else:
                    start = (client_index * partition_size) % num_records
                op_list: List[Operation] = []
                op_append = op_list.append
                for is_write in write_flags:
                    index = hot_keys + (start + draw_offset()) % modulus
                    key = strings_get(index)
                    if key is None:
                        key = f"user{index}"
                        strings[index] = key
                    op_append(
                        tuple_new(
                            Operation,
                            (key, is_write, f"val-{draw_value()}" if is_write else None),
                        )
                    )
                operations = tuple(op_list)
            else:
                conflicting = has_conflicts and chance(conflict_fraction)
                operations = build_general(client_index, conflicting)
            txn = txn_new(Transaction)
            txn_dict = txn.__dict__
            txn_dict["txn_id"] = txn_id
            txn_dict["client_id"] = client_id
            txn_dict["operations"] = operations
            txn_dict["execution_seconds"] = execution_seconds
            txn_dict["rw_sets_known"] = rw_sets_known
            txn_dict["origin"] = origin
            txn_dict["request_id"] = request_id
            append(txn)
        return tuple(transactions)

    def transactions(self, count: int, client_index: Optional[int] = None) -> List[Transaction]:
        next_transaction = self.next_transaction
        return [next_transaction(client_index) for _ in range(count)]

    def transaction_stream(self) -> Iterator[Transaction]:
        while True:
            yield self.next_transaction()

    # ------------------------------------------------------------------ batches

    def next_batch(self, batch_size: int) -> TransactionBatch:
        """Generate a batch of ``batch_size`` transactions (paper default 100)."""
        if batch_size <= 0:
            raise WorkloadError("batch_size must be positive")
        batch_id = f"batch-{self._next_batch_index()}"
        c_generate = self._c_generate
        if c_generate is not None:
            # draw_client=True: the C loop draws the client per transaction,
            # exactly as next_transaction() does below.
            transactions = c_generate(self, batch_size, 0, "", "", True)
            PERF.ckernel_txns_generated += batch_size
            return TransactionBatch(batch_id=batch_id, transactions=transactions)
        next_transaction = self.next_transaction
        return TransactionBatch(
            batch_id=batch_id,
            transactions=tuple(next_transaction() for _ in range(batch_size)),
        )

    def batches(self, count: int, batch_size: int) -> List[TransactionBatch]:
        return [self.next_batch(batch_size) for _ in range(count)]

    # ---------------------------------------------------------------- internals

    def _build_operations(self, client_index: int, conflicting: bool) -> Tuple[Operation, ...]:
        config = self._config
        if not conflicting and config.zipfian_theta <= 0:
            return self._build_operations_uniform(client_index)
        operations: List[Operation] = []
        append = operations.append
        tuple_new = tuple.__new__
        for op_index, is_write in enumerate(self._write_flags):
            if conflicting and op_index == 0:
                # Conflicting transactions contend on the shared hot set, and the
                # contended operation is always a write so any two of them conflict.
                key = self._key_string(self._draw_hot())
                is_write = True
            else:
                key = self._private_key(client_index)
            value = f"val-{self._draw_value()}" if is_write else None
            # C-level namedtuple construction; ycsb always passes a non-None
            # value for writes, so Operation's normalisation is a no-op here.
            append(tuple_new(Operation, (key, is_write, value)))
        return tuple(operations)

    def _build_operations_uniform(self, client_index: int) -> Tuple[Operation, ...]:
        """The non-conflicting uniform-key path, fully inlined.

        Identical draws and results to the general loop above — this is the
        default workload's innermost loop (hundreds of thousands of calls per
        simulated second), so the key-draw helpers are expanded in place.
        """
        operations: List[Operation] = []
        append = operations.append
        starts = self._client_starts
        if client_index < len(starts):
            start = starts[client_index]
        else:
            start = (client_index * self._partition_size) % self._num_records
        hot_keys = self._hot_count
        modulus = self._private_modulus
        draw_offset = self._draw_offset
        draw_value = self._draw_value
        strings = self._key_strings
        strings_get = strings.get
        tuple_new = tuple.__new__
        for is_write in self._write_flags:
            index = hot_keys + (start + draw_offset()) % modulus
            key = strings_get(index)
            if key is None:
                key = f"user{index}"
                strings[index] = key
            append(
                tuple_new(
                    Operation,
                    (key, is_write, f"val-{draw_value()}" if is_write else None),
                )
            )
        return tuple(operations)

    def _key_string(self, index: int) -> str:
        key = self._key_strings.get(index)
        if key is None:
            key = f"user{index}"
            self._key_strings[index] = key
        return key

    def _hot_key(self) -> str:
        return self._key_string(self._draw_hot())

    def _private_key(self, client_index: int) -> str:
        config = self._config
        starts = self._client_starts
        if client_index < len(starts):
            start = starts[client_index]
        else:
            start = (client_index * self._partition_size) % self._num_records
        if config.zipfian_theta > 0:
            offset = self._rng.zipf_index(self._partition_size, config.zipfian_theta)
        else:
            offset = self._draw_offset()
        # Skip the hot range so private keys never collide with hot keys.
        index = self._hot_count + (start + offset) % self._private_modulus
        strings = self._key_strings
        key = strings.get(index)
        if key is None:
            key = f"user{index}"
            strings[index] = key
        return key

    def _rng_value(self) -> str:
        return f"val-{self._draw_value()}"
