"""YCSB-style workload generator.

Mirrors the paper's benchmark setup (Section IX): key-value transactions
over a 600 k-record table, each transaction performing a small number of
read and write operations, with

* a configurable read/write mix,
* zipfian or uniform key selection,
* a controllable percentage of *conflicting* transactions (Figure 6 xi/xii)
  — conflicting transactions write a small hot set of keys shared by all
  clients, non-conflicting ones touch per-client key partitions so they can
  never overlap,
* an optional synthetic compute phase per transaction ("execution length",
  Figures 6 v/vi and 8), and
* batching of client transactions (Figure 6 iii/iv).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import WorkloadError
from repro.sim.rng import DeterministicRNG
from repro.workload.transactions import Operation, Transaction, TransactionBatch


@dataclass(frozen=True)
class YCSBConfig:
    """Parameters of the YCSB-style workload."""

    num_records: int = 600_000
    operations_per_transaction: int = 4
    write_fraction: float = 0.5
    zipfian_theta: float = 0.0
    conflict_fraction: float = 0.0
    hot_keys: int = 16
    clients: int = 16
    execution_seconds: float = 0.0
    rw_sets_known: bool = True
    value_size_bytes: int = 100
    seed: int = 2023

    def __post_init__(self) -> None:
        if self.num_records <= 0:
            raise WorkloadError("num_records must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError("write_fraction must be within [0, 1]")
        if not 0.0 <= self.conflict_fraction <= 1.0:
            raise WorkloadError("conflict_fraction must be within [0, 1]")
        if self.operations_per_transaction <= 0:
            raise WorkloadError("operations_per_transaction must be positive")
        if self.clients <= 0:
            raise WorkloadError("clients must be positive")
        if self.hot_keys <= 0:
            raise WorkloadError("hot_keys must be positive")


class YCSBWorkload:
    """Deterministic transaction/batch generator for one experiment run."""

    def __init__(self, config: YCSBConfig) -> None:
        self._config = config
        self._rng = DeterministicRNG(config.seed).child("ycsb")
        self._txn_counter = itertools.count()
        self._batch_counter = itertools.count()
        # Per-client private key ranges guarantee non-conflicting transactions
        # from different clients never touch the same key.
        self._partition_size = max(1, config.num_records // config.clients)

    @property
    def config(self) -> YCSBConfig:
        return self._config

    def initial_value(self) -> str:
        return "v" * self._config.value_size_bytes

    # ------------------------------------------------------------- transactions

    def next_transaction(self, client_index: Optional[int] = None) -> Transaction:
        """Generate the next transaction, optionally pinned to a client."""
        config = self._config
        if client_index is None:
            client_index = self._rng.randint(0, config.clients - 1)
        client_id = f"client-{client_index}"
        txn_id = f"txn-{next(self._txn_counter)}"
        conflicting = self._rng.chance(config.conflict_fraction)
        operations = self._build_operations(client_index, conflicting)
        return Transaction(
            txn_id=txn_id,
            client_id=client_id,
            operations=tuple(operations),
            execution_seconds=config.execution_seconds,
            rw_sets_known=config.rw_sets_known,
        )

    def transactions(self, count: int, client_index: Optional[int] = None) -> List[Transaction]:
        return [self.next_transaction(client_index) for _ in range(count)]

    def transaction_stream(self) -> Iterator[Transaction]:
        while True:
            yield self.next_transaction()

    # ------------------------------------------------------------------ batches

    def next_batch(self, batch_size: int) -> TransactionBatch:
        """Generate a batch of ``batch_size`` transactions (paper default 100)."""
        if batch_size <= 0:
            raise WorkloadError("batch_size must be positive")
        batch_id = f"batch-{next(self._batch_counter)}"
        return TransactionBatch(
            batch_id=batch_id,
            transactions=tuple(self.next_transaction() for _ in range(batch_size)),
        )

    def batches(self, count: int, batch_size: int) -> List[TransactionBatch]:
        return [self.next_batch(batch_size) for _ in range(count)]

    # ---------------------------------------------------------------- internals

    def _build_operations(self, client_index: int, conflicting: bool) -> List[Operation]:
        config = self._config
        operations: List[Operation] = []
        writes_target = round(config.operations_per_transaction * config.write_fraction)
        for op_index in range(config.operations_per_transaction):
            is_write = op_index < writes_target
            if conflicting and op_index == 0:
                # Conflicting transactions contend on the shared hot set, and the
                # contended operation is always a write so any two of them conflict.
                key = self._hot_key()
                is_write = True
            else:
                key = self._private_key(client_index)
            value = self._rng_value() if is_write else None
            operations.append(Operation(key=key, is_write=is_write, value=value))
        return operations

    def _hot_key(self) -> str:
        index = self._rng.randint(0, self._config.hot_keys - 1)
        return f"user{index}"

    def _private_key(self, client_index: int) -> str:
        config = self._config
        start = (client_index * self._partition_size) % config.num_records
        if config.zipfian_theta > 0:
            offset = self._rng.zipf_index(self._partition_size, config.zipfian_theta)
        else:
            offset = self._rng.randint(0, self._partition_size - 1)
        # Skip the hot range so private keys never collide with hot keys.
        index = config.hot_keys + (start + offset) % max(1, config.num_records - config.hot_keys)
        return f"user{index}"

    def _rng_value(self) -> str:
        return f"val-{self._rng.randint(0, 10**9)}"
