"""The front door: ``run(RunSpec) -> SimulationResult``.

Everything user-facing funnels through here — examples, benches, the sweep
runner, and the CLI all resolve a spec to a plain-JSON dict
(:func:`resolve`), build the deployment through the system registry
(:func:`build_deployment`), and run it.  One resolution path, one
capability-validation path, one construction path: a point simulated by
``repro.api.run`` is bit-identical to the same point simulated by a sweep
worker on another core.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.api.registry import get_system
from repro.api.spec import (
    RunSpec,
    compose_runner_kwargs,
    merge_runner_knob,
    replicate_specs,
    resolve_run,
    split_overrides,
)
from repro.core.config import ConflictMode, ProtocolConfig, SpawnPolicyName
from repro.core.runner import SimulationResult
from repro.crypto.costs import CryptoCostModel
from repro.errors import ConfigurationError
from repro.workload.ycsb import YCSBConfig


# ------------------------------------------------------------------ config rebuilding


def protocol_config_from_dict(payload: Mapping[str, object]) -> ProtocolConfig:
    """Rebuild a :class:`ProtocolConfig` from its JSONified ``asdict`` form."""
    data = dict(payload)
    data["spawn_policy"] = SpawnPolicyName(data["spawn_policy"])
    data["conflict_mode"] = ConflictMode(data["conflict_mode"])
    data["crypto_costs"] = CryptoCostModel(**data["crypto_costs"])  # type: ignore[arg-type]
    if data.get("executor_regions") is not None:
        data["executor_regions"] = list(data["executor_regions"])  # type: ignore[arg-type]
    return ProtocolConfig(**data)  # type: ignore[arg-type]


def workload_config_from_dict(payload: Mapping[str, object]) -> YCSBConfig:
    return YCSBConfig(**dict(payload))  # type: ignore[arg-type]


# ------------------------------------------------------------------ resolve / build / run


def resolve(spec: RunSpec) -> Dict[str, object]:
    """Expand a :class:`RunSpec` into the plain-JSON dict that determines it.

    The resolved dict is the same shape the sweep layer content-addresses,
    so ``repro.crypto.hashing.digest`` of it (minus labels) is the run's
    cache key.
    """
    config_overrides, workload_overrides, _run = split_overrides(spec.overrides)
    return resolve_run(
        base=spec.base,
        system=spec.system,
        consensus_engine=spec.consensus_engine,
        scenarios=spec.scenarios,
        execution_threads=spec.execution_threads,
        duration=spec.duration,
        warmup=spec.warmup,
        seed=int(spec.seed),  # materialised by RunSpec.__post_init__
        config_overrides=config_overrides,
        workload_overrides=workload_overrides,
        labels=spec.labels,
    )


def build_deployment(
    resolved: Mapping[str, object],
    extra_runner_kwargs: Optional[Mapping[str, object]] = None,
    tracer_enabled: bool = False,
):
    """Construct the deployment a resolved run describes (any system kind).

    Scenario runner knobs are built fresh in the executing process and
    merged with ``extra_runner_kwargs`` (bespoke fault objects a caller
    attached directly to its :class:`RunSpec`) under the scenario conflict
    rules: disjoint ``node_behaviours`` merge, any other overlap raises
    :class:`~repro.api.spec.ScenarioConflictError`.  The selected system's
    adapter validates every knob against its declared capabilities before
    construction — the one place unsupported-knob errors come from.
    """
    adapter = get_system(str(resolved["system"]))
    kwargs = compose_runner_kwargs(resolved["scenarios"], resolved)
    sources = {key: "a composed scenario" for key in kwargs}
    for key, value in dict(extra_runner_kwargs or {}).items():
        merge_runner_knob(kwargs, sources, key, value, "the spec's direct fault knobs")

    config = protocol_config_from_dict(resolved["config"])  # type: ignore[arg-type]
    workload = workload_config_from_dict(resolved["workload"])  # type: ignore[arg-type]
    deployment = adapter.build(
        config,
        workload,
        consensus_engine=str(resolved["consensus_engine"]),
        execution_threads=int(resolved["execution_threads"]),  # type: ignore[arg-type]
        tracer_enabled=tracer_enabled,
        **kwargs,
    )

    # Region-aware fault plans need the live endpoint table (executors are
    # spawned dynamically); bind once the network exists.
    plan = kwargs.get("network_fault_plan")
    if plan is not None and hasattr(plan, "bind"):
        plan.bind(deployment.network)
    return deployment


def spec_digest(spec: RunSpec) -> str:
    """The run's content address — the same key the sweep store uses.

    SHA-256 of the fully resolved run (labels excluded), so an ad-hoc
    ``repro.api.run`` and a sweep point with the same resolved configuration
    share one cache entry.  Not to be confused with :func:`result_digest`,
    which fingerprints a finished result's simulated metrics.
    """
    from repro.sweep.spec import point_digest

    return point_digest(resolve(spec))


def run(spec: RunSpec, store=None) -> SimulationResult:
    """Resolve, build, and run one deployment — the single front door.

    ``store`` (any :class:`repro.store.ResultBackend`, or a store URL —
    a JSONL path, ``sqlite://path.db``, or ``shard://dir``) gives ad-hoc
    facade runs the same cache-hit/resume behaviour sweeps already have:
    the run's content address (:func:`spec_digest`) is looked up before
    building anything, and a finished run is appended to the store so the
    next identical ``run`` call never re-simulates.  The backend choice is
    host-side bookkeeping — it never affects the content address or the
    result.

    Bespoke fault objects attached directly to the spec
    (``node_behaviours`` / ``executor_behaviour_factory`` /
    ``network_fault_plan``) are **not** part of the content address, so
    caching them would alias a faulted run with a clean one; such specs are
    rejected when a store is given — register the faults as a scenario
    preset (:func:`repro.sweep.scenarios.register_scenario`) instead.
    """
    if spec.replicates != 1:
        raise ConfigurationError(
            f"spec declares replicates={spec.replicates}; use "
            f"repro.api.run_replicates to run the whole family"
        )
    resolved = resolve(spec)
    direct_kwargs = spec.direct_runner_kwargs()
    digest: Optional[str] = None
    if store is not None:
        if direct_kwargs:
            raise ConfigurationError(
                "a result store cannot cache runs carrying bespoke fault "
                f"objects ({sorted(direct_kwargs)} are not part of the "
                "content address); register the faults as a scenario preset "
                "and name it in RunSpec.scenarios instead"
            )
        from repro.store.url import as_backend
        from repro.sweep.serialization import result_from_dict
        from repro.sweep.spec import point_digest

        store = as_backend(store)
        digest = point_digest(resolved)
        record = store.get(digest)
        if record is not None:
            return result_from_dict(record["result"])
    deployment = build_deployment(
        resolved,
        extra_runner_kwargs=direct_kwargs,
        tracer_enabled=spec.tracer_enabled,
    )
    result = deployment.run(
        duration=float(resolved["duration"]), warmup=float(resolved["warmup"])
    )
    if store is not None and digest is not None:
        from repro.sweep.serialization import result_to_dict

        store.put(digest, resolved, result_to_dict(result), sweep_name="api-run")
    return result


def run_replicates(
    spec: RunSpec,
    store=None,
    workers: int = 0,
    timeout: Optional[float] = None,
) -> List[SimulationResult]:
    """Run every replicate of a spec, in replicate order.

    Expands the spec through :func:`repro.api.spec.replicate_specs` (one
    per-seed spec per replicate) and runs each through :func:`run`, so with
    a ``store`` every replicate is cached and resumed individually — an
    interrupted family picks up where it stopped, and a re-run is a 100%
    cache hit.  ``replicates=1`` is exactly one ordinary :func:`run`.

    ``workers > 1`` fans the uncached replicates out over the *shared warm
    worker pool* (``repro.sweep.pool``): repeated calls in one process —
    and interleaved ``run_sweep`` calls with the same worker count — reuse
    one pool instead of paying interpreter + import start-up per
    invocation.  Results are bit-identical to the serial path (workers
    rebuild the deployment from the fully resolved spec).  ``timeout`` is
    a stall budget like ``run_sweep``'s: if no replicate completes within
    it, the pool's workers are killed, the pool is discarded, and a
    ``TimeoutError`` is raised (finished replicates are already persisted
    to the store).  Specs carrying bespoke fault objects are rejected on
    this path: fault objects are neither addressable nor shipped to workers
    (register a scenario preset instead).  ``tracer_enabled`` *is* honoured:
    workers build traced deployments and the flight-recorder payload rides
    home inside each result dict (``SimulationResult.obs``), so parallel
    trace collection is bit-identical to the serial path.
    """
    if isinstance(store, str):
        # Open the backend once for the whole family, not once per
        # replicate (run() accepts a URL too, but re-opens it each call).
        from repro.store.url import open_store

        store = open_store(store)
    specs = replicate_specs(spec)
    if workers <= 1 or len(specs) <= 1:
        return [run(replicate, store=store) for replicate in specs]

    if spec.direct_runner_kwargs():
        raise ConfigurationError(
            "run_replicates(workers>1) cannot ship bespoke fault objects to "
            "pool workers; register the faults as a scenario preset and name "
            "it in RunSpec.scenarios instead"
        )
    from concurrent.futures import wait
    from repro.api.registry import custom_systems
    from repro.sweep.pool import get_shared_pool
    from repro.sweep.runner import _simulate_point_task
    from repro.sweep.scenarios import custom_scenarios
    from repro.sweep.serialization import result_from_dict
    from repro.sweep.spec import point_digest

    resolved_list = [resolve(replicate) for replicate in specs]
    digests = [point_digest(resolved) for resolved in resolved_list]
    results: List[Optional[SimulationResult]] = [None] * len(specs)
    pending: List[int] = []
    for index, digest in enumerate(digests):
        record = store.get(digest) if store is not None else None
        if record is not None:
            results[index] = result_from_dict(record["result"])
        else:
            pending.append(index)

    if pending:
        from concurrent.futures import FIRST_COMPLETED

        from repro.sweep.pool import discard_shared_pool

        pool = get_shared_pool(workers)
        task_scenarios = custom_scenarios()
        task_systems = custom_systems()
        future_map = {
            pool.submit(
                _simulate_point_task,
                resolved_list[index],
                task_scenarios,
                task_systems,
                spec.tracer_enabled,
            ): index
            for index in pending
        }
        # Harvest in completion order so finished replicates persist even if
        # a later one fails; any worker error surfaces after the store is
        # up to date.  ``timeout`` is a stall budget: no completion within
        # it kills the pool's workers and raises.
        error: Optional[BaseException] = None
        remaining = set(future_map)
        while remaining:
            completed, remaining = wait(
                remaining, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not completed:
                stalled = sorted(future_map[future] for future in remaining)
                discard_shared_pool(terminate=True)
                raise TimeoutError(
                    f"no replicate completed within {timeout:g}s; killed the "
                    f"pool (replicates {stalled} unfinished, completed ones "
                    f"are persisted)"
                )
            for future in completed:
                index = future_map[future]
                try:
                    result_dict, timing = future.result()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    error = error or exc
                    continue
                if store is not None:
                    store.put(
                        digests[index],
                        resolved_list[index],
                        result_dict,
                        sweep_name="api-run",
                        timing=timing,
                    )
                results[index] = result_from_dict(result_dict)
        if error is not None:
            raise error
    return results  # type: ignore[return-value]


def build_system(
    system: str,
    config: ProtocolConfig,
    workload: Optional[YCSBConfig] = None,
    **kwargs,
):
    """Registry-backed construction for callers holding pre-built configs.

    The lower-level sibling of :func:`run`: same adapters, same capability
    validation, no declarative resolution.  Used by the bench harness, whose
    entry point takes :class:`ProtocolConfig` / :class:`YCSBConfig` objects.
    """
    return get_system(system).build(config, workload, **kwargs)


def result_digest(result: SimulationResult) -> str:
    """Content digest of a result's *simulated* metrics.

    Host-speed fields (wall-clock) are excluded, so two runs of the same
    resolved spec — facade or sweep worker, today or next week — must
    produce equal digests.
    """
    from repro.crypto.hashing import digest
    from repro.sweep.serialization import result_to_dict, simulated_fingerprint

    return digest(simulated_fingerprint(result_to_dict(result)))
