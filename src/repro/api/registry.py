"""Pluggable system registry: one uniform way to build any deployment.

Every system variant of the paper's evaluation (``serverless_bft``,
``serverless_cft``, ``pbft_replicated``, ``noshim``) registers a
:class:`SystemAdapter` here: a builder callable returning a deployment
object with ``.run(duration, warmup) -> SimulationResult``, plus the set of
*capabilities* the system supports (which fault knobs it accepts, whether
the consensus engine is selectable, whether it has execution threads).

The registry replaces the hardcoded ``if/elif`` system ladder the sweep
runner used to carry: unsupported-knob errors now come from one validation
path (:meth:`SystemAdapter.build`) instead of ad-hoc raises, and a
third-party system plugs in with one :func:`register_system` call — after
which it is addressable from :func:`repro.api.run`, ``PointSpec(system=...)``
sweeps, and ``python -m repro.sweep`` exactly like the built-ins.

Adapters must be picklable (module-level builder functions) so that
runtime-registered systems can be shipped to spawn-start sweep workers the
same way runtime-registered scenarios are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional

from repro.errors import ConfigurationError

#: The consensus engine assumed when a run spec does not choose one.
DEFAULT_CONSENSUS_ENGINE = "pbft"

#: Capability names an adapter may declare.
CAP_NODE_BEHAVIOURS = "node_behaviours"
CAP_EXECUTOR_FAULTS = "executor_faults"
CAP_NETWORK_FAULTS = "network_faults"
CAP_REGIONS = "regions"
CAP_CONSENSUS_ENGINE = "consensus_engine"
CAP_EXECUTION_THREADS = "execution_threads"

ALL_CAPABILITIES = frozenset(
    {
        CAP_NODE_BEHAVIOURS,
        CAP_EXECUTOR_FAULTS,
        CAP_NETWORK_FAULTS,
        CAP_REGIONS,
        CAP_CONSENSUS_ENGINE,
        CAP_EXECUTION_THREADS,
    }
)

#: Constructor knob -> capability required to accept it.  ``consensus_engine``
#: and ``execution_threads`` are handled separately (they always have a
#: value, so only a non-default / meaningful value is validated).
KNOB_CAPABILITIES: Mapping[str, str] = {
    "node_behaviours": CAP_NODE_BEHAVIOURS,
    "executor_behaviour_factory": CAP_EXECUTOR_FAULTS,
    "network_fault_plan": CAP_NETWORK_FAULTS,
    "regions": CAP_REGIONS,
}


class UnsupportedKnobError(ConfigurationError):
    """A run spec carries a knob the selected system cannot honour."""


@dataclass(frozen=True)
class SystemAdapter:
    """How to build one system variant, and what it supports.

    ``builder`` is called as ``builder(config, workload=..., tracer_enabled=...,
    **knobs)`` where ``knobs`` only ever contains keys the adapter's
    capabilities admit — validation happens in :meth:`build`, so builders
    never need defensive checks of their own.
    """

    name: str
    description: str
    builder: Callable[..., object]
    capabilities: FrozenSet[str] = frozenset()
    #: Label used in experiment tables and figures (e.g. ``SERVERLESSBFT``).
    display_name: str = ""
    #: Matching :class:`repro.perfmodel.model.SystemKind` value, if the
    #: analytical model covers this system (used by the Figure 7 sweep).
    model_kind: Optional[str] = None
    #: Consensus engine the system is hardwired to, if not selectable.
    pinned_consensus: Optional[str] = None
    #: Constructor-specific keyword arguments the builder accepts beyond the
    #: capability-mapped knobs (e.g. ``preload_storage``); passed through
    #: unvalidated, so keep them to plain configuration switches.
    extra_knobs: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a system adapter needs a name")
        unknown = self.capabilities - ALL_CAPABILITIES
        if unknown:
            raise ConfigurationError(
                f"system {self.name!r} declares unknown capabilities {sorted(unknown)}"
            )
        if not self.display_name:
            object.__setattr__(self, "display_name", self.name.upper())

    # ------------------------------------------------------------------ validation

    def unsupported_knobs(
        self,
        knobs: Mapping[str, object],
        consensus_engine: str = DEFAULT_CONSENSUS_ENGINE,
    ) -> List[str]:
        """Names of requested knobs this system cannot honour.

        A knob counts as *requested* only when its value is not ``None``.
        A non-default ``consensus_engine`` is a knob too, unless it names
        the engine the system is pinned to anyway.
        """
        bad = []
        for knob, value in knobs.items():
            if value is None or knob in self.extra_knobs:
                continue
            capability = KNOB_CAPABILITIES.get(knob)
            if capability is None or capability not in self.capabilities:
                bad.append(knob)
        if (
            consensus_engine != DEFAULT_CONSENSUS_ENGINE
            and CAP_CONSENSUS_ENGINE not in self.capabilities
            and consensus_engine != self.pinned_consensus
        ):
            bad.append("consensus_engine")
        return sorted(bad)

    # ------------------------------------------------------------------ building

    def build(
        self,
        config,
        workload=None,
        *,
        consensus_engine: str = DEFAULT_CONSENSUS_ENGINE,
        execution_threads: int = 16,
        tracer_enabled: bool = False,
        **knobs,
    ):
        """Validate the knobs against this system's capabilities and build.

        Raises :class:`UnsupportedKnobError` naming *every* offending knob at
        once.  ``execution_threads`` is a resource knob rather than a fault
        injection: systems without the capability simply have no execution
        thread pool, so the value is dropped instead of rejected (every sweep
        point carries a default).
        """
        unsupported = self.unsupported_knobs(knobs, consensus_engine)
        if unsupported:
            raise UnsupportedKnobError(
                f"system {self.name!r} does not support {unsupported} "
                f"(capabilities: {sorted(self.capabilities)})"
            )
        kwargs = {knob: value for knob, value in knobs.items() if value is not None}
        if CAP_CONSENSUS_ENGINE in self.capabilities:
            kwargs["consensus_engine"] = consensus_engine
        if CAP_EXECUTION_THREADS in self.capabilities:
            kwargs["execution_threads"] = execution_threads
        # Facade-internal construction: the legacy-entry-point deprecation
        # warning must not fire for deployments built through the registry.
        from repro.core.runner import _entry_point_sanction

        with _entry_point_sanction():
            return self.builder(
                config, workload=workload, tracer_enabled=tracer_enabled, **kwargs
            )


# ------------------------------------------------------------------ registry

_REGISTRY: Dict[str, SystemAdapter] = {}


def register_system(adapter: SystemAdapter, replace: bool = False) -> SystemAdapter:
    """Add a system to the registry (``replace=True`` to redefine).

    Registration order is preserved: tables and figure sweeps list systems
    in the order they were registered.
    """
    if adapter.name in _REGISTRY and not replace:
        raise ConfigurationError(f"system {adapter.name!r} is already registered")
    _REGISTRY[adapter.name] = adapter
    return adapter


def get_system(name: str) -> SystemAdapter:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise ConfigurationError(f"unknown system {name!r} (known: {known})")


def system_names() -> List[str]:
    """Registered system names, in registration order."""
    return list(_REGISTRY)


def all_systems() -> List[SystemAdapter]:
    return list(_REGISTRY.values())


# ------------------------------------------------------------------ built-in systems


def _build_serverless_bft(config, workload=None, *, tracer_enabled=False, **kwargs):
    from repro.core.runner import ServerlessBFTSimulation

    return ServerlessBFTSimulation(
        config, workload=workload, tracer_enabled=tracer_enabled, **kwargs
    )


def _build_serverless_cft(config, workload=None, *, tracer_enabled=False, **kwargs):
    from repro.baselines.serverless_cft import build_serverless_cft_simulation

    return build_serverless_cft_simulation(
        config, workload=workload, tracer_enabled=tracer_enabled, **kwargs
    )


def _build_pbft_replicated(config, workload=None, *, tracer_enabled=False, **kwargs):
    from repro.baselines.pbft_replicated import PBFTReplicatedSimulation

    return PBFTReplicatedSimulation(
        config, workload=workload, tracer_enabled=tracer_enabled, **kwargs
    )


def _build_noshim(config, workload=None, *, tracer_enabled=False, **kwargs):
    from repro.baselines.noshim import build_noshim_simulation

    return build_noshim_simulation(
        config, workload=workload, tracer_enabled=tracer_enabled, **kwargs
    )


register_system(SystemAdapter(
    name="serverless_bft",
    description="ServerlessBFT: PBFT shim, serverless executors, trusted verifier.",
    builder=_build_serverless_bft,
    capabilities=frozenset(
        {
            CAP_NODE_BEHAVIOURS,
            CAP_EXECUTOR_FAULTS,
            CAP_NETWORK_FAULTS,
            CAP_REGIONS,
            CAP_CONSENSUS_ENGINE,
        }
    ),
    display_name="SERVERLESSBFT",
    model_kind="serverlessbft",
    extra_knobs=frozenset({"preload_storage"}),
))
register_system(SystemAdapter(
    name="serverless_cft",
    description="Crash-fault-tolerant shim (Paxos, no signatures), same pipeline.",
    builder=_build_serverless_cft,
    capabilities=frozenset(
        {CAP_NODE_BEHAVIOURS, CAP_EXECUTOR_FAULTS, CAP_NETWORK_FAULTS, CAP_REGIONS}
    ),
    display_name="SERVERLESSCFT",
    model_kind="serverlesscft",
    pinned_consensus="paxos",
    extra_knobs=frozenset({"preload_storage"}),
))
register_system(SystemAdapter(
    name="pbft_replicated",
    description="Classic replicated-execution PBFT: no executors, no verifier.",
    builder=_build_pbft_replicated,
    capabilities=frozenset({CAP_NODE_BEHAVIOURS, CAP_EXECUTION_THREADS}),
    display_name="PBFT",
    model_kind="pbft",
    pinned_consensus="pbft",
))
register_system(SystemAdapter(
    name="noshim",
    description="No consensus: one ingest node spawns executors immediately.",
    builder=_build_noshim,
    capabilities=frozenset(
        {CAP_NODE_BEHAVIOURS, CAP_EXECUTOR_FAULTS, CAP_NETWORK_FAULTS, CAP_REGIONS}
    ),
    display_name="NOSHIM",
    model_kind="noshim",
    pinned_consensus="pbft",
    extra_knobs=frozenset({"preload_storage"}),
))

#: Systems registered by this module itself.  Anything beyond these was
#: registered at runtime and must be shipped to spawn-start sweep workers
#: explicitly (see ``repro.sweep.runner``), mirroring the scenario registry.
BUILTIN_SYSTEM_NAMES = frozenset(_REGISTRY)


def custom_systems() -> List[SystemAdapter]:
    """Systems registered after import (not built-ins)."""
    return [
        adapter
        for name, adapter in _REGISTRY.items()
        if name not in BUILTIN_SYSTEM_NAMES
    ]
