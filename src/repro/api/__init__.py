"""One front door for every deployment the repo can simulate.

``repro.api`` is the stable, user-facing surface of the reproduction:

* :class:`~repro.api.spec.RunSpec` — declare a run: system, composable
  scenario list, dotted-key protocol/workload overrides, fault plans,
  seed, duration/warm-up.
* :func:`~repro.api.facade.run` — ``run(RunSpec) -> SimulationResult``.
* :mod:`repro.api.registry` — the pluggable system registry.  Each system
  (``serverless_bft``, ``serverless_cft``, ``pbft_replicated``,
  ``noshim``) is a :class:`~repro.api.registry.SystemAdapter` with
  declared capabilities; third-party systems register in one line, after
  which sweeps, benches, and the CLI can drive them by name.

Example::

    from repro.api import RunSpec, run

    result = run(RunSpec(
        system="serverless_bft",
        scenarios=["region-outage", "skewed-ycsb"],
        overrides={"protocol.batch_size": 25, "workload.write_fraction": 0.9},
        duration=2.0, warmup=0.4,
    ))
    print(result.throughput_txn_per_sec)

See ``API.md`` at the repository root for the full guide.
"""

from repro.api.facade import (
    build_deployment,
    build_system,
    protocol_config_from_dict,
    resolve,
    result_digest,
    run,
    run_replicates,
    spec_digest,
    workload_config_from_dict,
)
from repro.api.registry import (
    DEFAULT_CONSENSUS_ENGINE,
    SystemAdapter,
    UnsupportedKnobError,
    all_systems,
    custom_systems,
    get_system,
    register_system,
    system_names,
)
from repro.api.spec import (
    SPEC_SCHEMA_VERSION,
    ComposedScenarios,
    RunSpec,
    ScenarioConflictError,
    compose_runner_kwargs,
    compose_scenarios,
    normalize_scenarios,
    replicate_specs,
    resolve_run,
    route_key,
    scenario_key,
    split_overrides,
    validate_seed_label,
)

__all__ = [
    "DEFAULT_CONSENSUS_ENGINE",
    "SPEC_SCHEMA_VERSION",
    "ComposedScenarios",
    "RunSpec",
    "ScenarioConflictError",
    "SystemAdapter",
    "UnsupportedKnobError",
    "all_systems",
    "build_deployment",
    "build_system",
    "compose_runner_kwargs",
    "compose_scenarios",
    "custom_systems",
    "get_system",
    "normalize_scenarios",
    "protocol_config_from_dict",
    "register_system",
    "replicate_specs",
    "run_replicates",
    "spec_digest",
    "validate_seed_label",
    "resolve",
    "resolve_run",
    "result_digest",
    "route_key",
    "run",
    "scenario_key",
    "split_overrides",
    "system_names",
    "workload_config_from_dict",
]
