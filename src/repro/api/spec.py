"""Declarative run specifications and the one home of dotted-key resolution.

:class:`RunSpec` describes one deployment run declaratively — which system
to build (resolved through :mod:`repro.api.registry`), a *list* of scenario
presets to compose, dotted-key protocol/workload overrides, fault plans,
seed, and duration/warm-up.  :func:`repro.api.run` turns a ``RunSpec`` into
a :class:`~repro.core.runner.SimulationResult`.

This module is also where dotted-key override resolution lives — the sweep
layer (grid axes, ``--set`` CLI overrides) and the facade route every key
through :func:`route_key` / :func:`split_overrides`, so there is exactly one
definition of what ``protocol.batch_size`` or a bare ``write_fraction``
means.

Scenario *composition* replaces the old one-``scenario``-per-point limit:
a spec may name several presets (``["region-outage", "skewed-ycsb"]``).
They are applied in list order; config/workload/runner-knob contributions
merge, and any two scenarios writing *different values to the same key*
raise :class:`ScenarioConflictError` instead of silently shadowing each
other.  (Point-level overrides still apply on top of whatever the composed
scenarios contributed.)
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.config import ProtocolConfig
from repro.errors import ConfigurationError
from repro.sim.rng import derive_seed
from repro.workload.ycsb import YCSBConfig

#: Bumped whenever the resolved-run layout changes incompatibly, so stale
#: result-store entries can never be mistaken for current ones.
#: (2: scenario lists — resolved runs carry a ``scenarios`` array.)
SPEC_SCHEMA_VERSION = 2


class ScenarioConflictError(ConfigurationError):
    """Two composed scenarios disagree about the same key."""


# ------------------------------------------------------------------ jsonify


def jsonify(value: Any) -> Any:
    """Rewrite ``value`` into pure JSON types (dicts/lists/str/num/bool/None).

    Enum members collapse to their values and tuples to lists so that a
    resolved run hashes identically before and after a JSONL round-trip.
    """
    if isinstance(value, enum.Enum):
        return jsonify(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return jsonify(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): jsonify(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# ------------------------------------------------------------------ dotted-key routing

_CONFIG_FIELDS = frozenset(ProtocolConfig.__dataclass_fields__)
_WORKLOAD_FIELDS = frozenset(YCSBConfig.__dataclass_fields__)

#: Run-level keys (PointSpec / RunSpec fields, not config or workload knobs).
#: ``seed`` is deliberately absent: a bare ``seed`` routes to the protocol
#: config, which the per-point seed derivation has always honoured.
_RUN_FIELDS = frozenset(
    {
        "system",
        "scenario",
        "scenarios",
        "consensus_engine",
        "execution_threads",
        "duration",
        "warmup",
        "replicates",
    }
)

#: Accepted dotted prefixes for explicit routing.
_PREFIX_TARGETS = {"protocol": "config", "config": "config", "workload": "workload"}


def route_key(key: str) -> Tuple[str, str]:
    """Classify one override key: ``(target, field)``.

    ``target`` is ``"config"`` (protocol), ``"workload"``, or ``"run"``.
    Keys may be explicitly prefixed (``protocol.batch_size``,
    ``workload.write_fraction``); bare names are routed by field membership —
    run-level names first, then :class:`ProtocolConfig`, then
    :class:`YCSBConfig` (``seed`` exists in both configs and routes to the
    protocol config, matching the historical sweep-axis behaviour).
    """
    if "." in key:
        prefix, fieldname = key.split(".", 1)
        target = _PREFIX_TARGETS.get(prefix)
        if target is None:
            raise ConfigurationError(
                f"unknown override prefix {prefix!r} in {key!r} "
                f"(expected 'protocol.', 'config.', or 'workload.')"
            )
        known = _CONFIG_FIELDS if target == "config" else _WORKLOAD_FIELDS
        if fieldname not in known:
            kind = "ProtocolConfig" if target == "config" else "YCSBConfig"
            raise ConfigurationError(f"{key!r}: {kind} has no field {fieldname!r}")
        return target, fieldname
    if key in _RUN_FIELDS:
        return "run", "scenario" if key == "scenarios" else key
    if key in _CONFIG_FIELDS:
        return "config", key
    if key in _WORKLOAD_FIELDS:
        return "workload", key
    raise ConfigurationError(
        f"unknown override key {key!r}: not a run-level field, a ProtocolConfig "
        f"field, or a YCSBConfig field (prefix with 'protocol.' or 'workload.' "
        f"to route explicitly)"
    )


def split_overrides(
    overrides: Mapping[str, object],
) -> Tuple[Dict[str, object], Dict[str, object], Dict[str, object]]:
    """Split dotted-key overrides into ``(config, workload, run)`` dicts."""
    config: Dict[str, object] = {}
    workload: Dict[str, object] = {}
    run: Dict[str, object] = {}
    buckets = {"config": config, "workload": workload, "run": run}
    for key, value in overrides.items():
        target, fieldname = route_key(str(key))
        buckets[target][fieldname] = value
    return config, workload, run


# ------------------------------------------------------------------ seed-label hygiene


def validate_seed_label(component: object, what: str) -> object:
    """Reject ``/`` in a component that enters a ``derive_seed`` label path.

    :func:`repro.sim.rng.derive_seed` joins its labels with ``/`` and no
    escaping, so ``("a/b",)`` and ``("a", "b")`` derive the *same* seed.
    Changing the derivation would invalidate every content-addressed result
    store, so instead the components that reach seed derivation (scenario
    names, replicate labels) are validated here: a ``/`` could silently
    alias two distinct RNG streams, which is exactly what replicated runs
    must never do.
    """
    if isinstance(component, str) and "/" in component:
        raise ConfigurationError(
            f"{what} {component!r} must not contain '/': seed derivation joins "
            f"label components with '/', so it would alias another label path "
            f"(e.g. derive_seed(s, 'a/b') == derive_seed(s, 'a', 'b'))"
        )
    return component


# ------------------------------------------------------------------ scenario composition

#: What callers may pass wherever a scenario is expected: nothing (the
#: baseline), one preset name, or an ordered list of presets to compose.
ScenarioSelector = Union[None, str, Sequence[str]]


def normalize_scenarios(scenario: ScenarioSelector) -> Tuple[str, ...]:
    """Canonicalise a scenario selector: str | sequence -> non-empty tuple.

    Scenario names feed per-point seed derivation (via the canonical
    scenario key), so names containing ``/`` are rejected — see
    :func:`validate_seed_label`.
    """
    if scenario is None:
        return ("baseline",)
    if isinstance(scenario, str):
        names: Tuple[str, ...] = (scenario,) if scenario else ("baseline",)
    else:
        names = tuple(str(name) for name in scenario) or ("baseline",)
    for name in names:
        validate_seed_label(name, "scenario name")
    return names


def scenario_key(scenario: ScenarioSelector) -> str:
    """The canonical string form of a scenario selector.

    Single scenarios keep their plain name (so derived per-point seeds are
    unchanged from the one-scenario era); compositions join with ``+`` in
    application order.
    """
    return "+".join(normalize_scenarios(scenario))


@dataclass(frozen=True)
class ComposedScenarios:
    """The merged config/workload contributions of a scenario list."""

    names: Tuple[str, ...]
    config_overrides: Dict[str, object] = field(default_factory=dict)
    workload_overrides: Dict[str, object] = field(default_factory=dict)


def _merge_scenario_layer(
    merged: Dict[str, object],
    sources: Dict[str, str],
    contribution: Mapping[str, object],
    scenario_name: str,
    layer: str,
) -> None:
    for key, value in contribution.items():
        if key in merged and merged[key] != value:
            raise ScenarioConflictError(
                f"scenarios {sources[key]!r} and {scenario_name!r} both set "
                f"{layer} key {key!r} to different values "
                f"({merged[key]!r} vs {value!r}); drop one of them or move the "
                f"knob into an explicit point override"
            )
        merged[key] = value
        sources[key] = scenario_name
    return None


def compose_scenarios(scenario: ScenarioSelector) -> ComposedScenarios:
    """Merge the config/workload overrides of a scenario list, in list order.

    Overlapping keys are allowed only when every contributing scenario
    agrees on the value; otherwise :class:`ScenarioConflictError` names the
    two scenarios and the key.
    """
    from repro.sweep.scenarios import get_scenario

    names = normalize_scenarios(scenario)
    config: Dict[str, object] = {}
    workload: Dict[str, object] = {}
    config_sources: Dict[str, str] = {}
    workload_sources: Dict[str, str] = {}
    for name in names:
        preset = get_scenario(name)
        _merge_scenario_layer(config, config_sources, preset.config_overrides, name, "config")
        _merge_scenario_layer(
            workload, workload_sources, preset.workload_overrides, name, "workload"
        )
    return ComposedScenarios(
        names=names, config_overrides=config, workload_overrides=workload
    )


def merge_runner_knob(
    merged: Dict[str, object],
    sources: Dict[str, str],
    key: str,
    value: object,
    source: str,
) -> None:
    """Merge one runner knob contribution into ``merged`` under conflict rules.

    ``node_behaviours`` dicts merge when they target disjoint nodes; any
    other overlap — two network fault plans, two executor behaviour
    factories, two behaviours for the same node — is a
    :class:`ScenarioConflictError`.  The same rules govern scenario-vs-
    scenario and scenario-vs-direct-spec contributions.
    """
    if key not in merged:
        merged[key] = value
        sources[key] = source
        return
    if key == "node_behaviours":
        existing: Dict[str, object] = dict(merged[key])  # type: ignore[arg-type]
        overlap = sorted(set(existing) & set(value))  # type: ignore[arg-type]
        if overlap:
            raise ScenarioConflictError(
                f"{sources[key]} and {source} both assign behaviours to "
                f"nodes {overlap}"
            )
        existing.update(value)  # type: ignore[arg-type]
        merged[key] = existing
        return
    raise ScenarioConflictError(
        f"{sources[key]} and {source} both set runner knob {key!r}; "
        f"compose contributions that inject disjoint faults"
    )


def compose_runner_kwargs(
    scenario: ScenarioSelector, resolved: Mapping[str, object]
) -> Dict[str, object]:
    """Build and merge the runner knobs of every scenario in the list.

    Each scenario's ``runner_kwargs_factory`` runs in the executing process
    (behaviour objects carry state); contributions merge under
    :func:`merge_runner_knob`'s conflict rules.
    """
    from repro.sweep.scenarios import get_scenario

    merged: Dict[str, object] = {}
    sources: Dict[str, str] = {}
    for name in normalize_scenarios(scenario):
        for key, value in get_scenario(name).runner_kwargs(resolved).items():
            merge_runner_knob(merged, sources, key, value, f"scenario {name!r}")
    return merged


# ------------------------------------------------------------------ base configs


def _base_protocol_config(base: str, overrides: Dict[str, object]) -> ProtocolConfig:
    # Imported lazily: bench.defaults sits above this module in the layering
    # (benches route their grids through the sweep layer, which lands here).
    from repro.bench.defaults import PAPER, SCALE

    if base == "scale":
        return SCALE.protocol_config(**overrides)
    if base == "paper":
        shim_nodes = overrides.pop("shim_nodes", PAPER.medium_shim)
        return PAPER.protocol_config(shim_nodes, **overrides)
    return ProtocolConfig(**overrides)


def _base_workload_config(base: str, overrides: Dict[str, object]) -> YCSBConfig:
    from repro.bench.defaults import PAPER, SCALE

    if base == "scale":
        return SCALE.workload_config(**overrides)
    if base == "paper":
        return PAPER.workload_config(**overrides)
    return YCSBConfig(**overrides)


_KNOWN_BASES = ("scale", "paper", "default")


def validate_base(base: str) -> str:
    if base not in _KNOWN_BASES:
        raise ConfigurationError(
            f"unknown base {base!r} (expected 'scale', 'paper', or 'default')"
        )
    return base


# ------------------------------------------------------------------ RunSpec

#: RunSpec fields captured by :func:`resolve_run` — they enter the resolved
#: dict and therefore the content address.  Together with
#: :data:`NON_ADDRESSED_RUNSPEC_FIELDS` this must partition the dataclass
#: exactly: the DIG002 lint rule cross-checks both lists against the class
#: body, so adding a field forces an explicit decision about whether it
#: changes the content address (``tests/test_lint.py`` also asserts the
#: partition against ``dataclasses.fields`` at runtime).
ADDRESSED_RUNSPEC_FIELDS = (
    "system",
    "scenarios",
    "overrides",
    "base",
    "seed",
    "duration",
    "warmup",
    "consensus_engine",
    "execution_threads",
    "labels",
)

#: RunSpec fields deliberately *outside* the content address, each with its
#: reason: ``replicates`` is expansion-only (every expanded replicate pins a
#: derived seed, which *is* addressed); the three bespoke fault knobs carry
#: live Python objects the facade rejects as non-addressable when a store is
#: in play; ``tracer_enabled`` is a collection flag — traced and untraced
#: runs of the same point must share one digest (PR 7's invariant).
NON_ADDRESSED_RUNSPEC_FIELDS = (
    "replicates",
    "node_behaviours",
    "executor_behaviour_factory",
    "network_fault_plan",
    "tracer_enabled",
)


@dataclass(frozen=True)
class RunSpec:
    """One deployment run, declaratively.

    ``overrides`` accepts dotted keys (``protocol.batch_size``,
    ``workload.write_fraction``) or bare field names routed automatically
    (see :func:`route_key`); run-level knobs (system, duration, ...) are
    proper fields of this class and are rejected inside ``overrides``.

    ``scenarios`` composes any number of presets in order; the direct fault
    knobs (``node_behaviours``/``executor_behaviour_factory``/
    ``network_fault_plan``) let callers inject bespoke fault objects on top,
    subject to the same conflict rules and the system's declared
    capabilities.

    ``seed=None`` uses the ``seed`` override if one was given, else the
    deployment default (1); either way the materialised seed ends up in the
    resolved run, so resolution is always fully pinned.

    ``replicates`` declares how many statistically independent repetitions
    of this run the caller wants: :func:`replicate_specs` expands the spec
    into that many single-replicate specs with per-replicate derived seeds.
    ``replicates=1`` (the default) is the spec itself — resolution and
    content address are bit-identical to a spec without the field.
    """

    system: str = "serverless_bft"
    scenarios: Tuple[str, ...] = ()
    overrides: Mapping[str, object] = field(default_factory=dict)
    base: str = "scale"
    seed: Optional[int] = None
    duration: float = 2.0
    warmup: float = 0.4
    consensus_engine: str = "pbft"
    execution_threads: int = 16
    replicates: int = 1
    node_behaviours: Optional[Mapping[str, object]] = None
    executor_behaviour_factory: Optional[Callable] = None
    network_fault_plan: Optional[object] = None
    labels: Mapping[str, object] = field(default_factory=dict)
    tracer_enabled: bool = False

    def __post_init__(self) -> None:
        from repro.api.registry import get_system

        get_system(self.system)  # raises with the known-system list
        object.__setattr__(self, "scenarios", normalize_scenarios(self.scenarios))
        validate_base(self.base)
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.warmup < 0 or self.warmup >= self.duration:
            raise ConfigurationError("warmup must be inside [0, duration)")
        if self.replicates < 1:
            raise ConfigurationError("replicates must be >= 1")
        config_ov, _workload_ov, run_ov = split_overrides(self.overrides)
        if run_ov:
            raise ConfigurationError(
                f"run-level keys {sorted(run_ov)} belong in RunSpec fields, "
                f"not in overrides"
            )
        if self.seed is None:
            seed = int(config_ov.get("seed", 1))  # type: ignore[arg-type]
            object.__setattr__(self, "seed", seed)

    def direct_runner_kwargs(self) -> Dict[str, object]:
        """The bespoke fault objects attached directly to this spec."""
        kwargs: Dict[str, object] = {}
        if self.node_behaviours is not None:
            kwargs["node_behaviours"] = dict(self.node_behaviours)
        if self.executor_behaviour_factory is not None:
            kwargs["executor_behaviour_factory"] = self.executor_behaviour_factory
        if self.network_fault_plan is not None:
            kwargs["network_fault_plan"] = self.network_fault_plan
        return kwargs


def replicate_fields(
    labels: Mapping[str, object], base_seed: int, index: int
) -> Dict[str, object]:
    """The field changes that turn a spec into its ``index``-th replicate.

    One definition of the family contract — seed chain extended with the
    replicate index, ``replicate`` label recorded, count collapsed to 1 —
    shared by :func:`replicate_specs` (facade) and
    :func:`repro.sweep.spec.expand_replicates` (sweeps), so a facade-run
    replicate and a sweep-run replicate of the same configuration are
    guaranteed the same content address and report group.
    """
    return {
        "replicates": 1,
        "seed": derive_seed(base_seed, "replicate", index),
        "labels": {**dict(labels), "replicate": index},
    }


def replicate_specs(spec: RunSpec) -> Tuple[RunSpec, ...]:
    """Expand a spec into its per-seed replicate runs.

    ``replicates=1`` returns the spec itself unchanged, so resolution and
    content address stay bit-identical to the single-run era.  For
    ``replicates=N`` each replicate ``i`` pins the seed
    ``derive_seed(spec.seed, "replicate", i)`` — the spec's own seed chain
    extended with the replicate index — and records the index in ``labels``
    so result-store records and report tables can group the family back
    together.  Every replicate is a plain ``replicates=1`` spec: it
    resolves, digests, and caches like any other run.
    """
    if spec.replicates == 1:
        return (spec,)
    return tuple(
        dataclasses.replace(
            spec, **replicate_fields(spec.labels, int(spec.seed), index)
        )
        for index in range(spec.replicates)
    )


# ------------------------------------------------------------------ resolution


def resolve_run(
    *,
    base: str,
    system: str,
    consensus_engine: str,
    scenarios: ScenarioSelector,
    execution_threads: int,
    duration: float,
    warmup: float,
    seed: int,
    config_overrides: Mapping[str, object],
    workload_overrides: Mapping[str, object],
    labels: Mapping[str, object],
) -> Dict[str, object]:
    """Expand a run into the plain-JSON dict that fully determines it.

    Composed scenarios contribute config/workload defaults *underneath* the
    explicit overrides, and the seed is materialised into both configs, so
    the resolved dict — and therefore its content address — captures
    everything the simulation will see.
    """
    composed = compose_scenarios(scenarios)

    config_ov: Dict[str, object] = dict(composed.config_overrides)
    config_ov.update(config_overrides)
    config_ov["seed"] = seed

    workload_ov: Dict[str, object] = dict(composed.workload_overrides)
    workload_ov.update(workload_overrides)
    workload_ov.setdefault("seed", derive_seed(seed, "workload"))

    config = _base_protocol_config(validate_base(base), config_ov)
    workload = _base_workload_config(base, workload_ov)

    return {
        "schema": SPEC_SCHEMA_VERSION,
        "system": system,
        "consensus_engine": consensus_engine,
        "scenario": "+".join(composed.names),
        "scenarios": list(composed.names),
        "execution_threads": execution_threads,
        "duration": duration,
        "warmup": warmup,
        "config": jsonify(dataclasses.asdict(config)),
        "workload": jsonify(dataclasses.asdict(workload)),
        "labels": jsonify(dict(labels)),
    }
