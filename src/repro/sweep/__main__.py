"""``python -m repro.sweep`` — see :mod:`repro.sweep.cli`."""

import sys

from repro.sweep.cli import main

sys.exit(main())
