"""Scenario-preset registry: named, reusable workload/fault setups.

A scenario bundles three things under one name:

* protocol-config and workload-config defaults (applied *underneath* a
  point's own overrides, so points can still specialise),
* a factory for the runner-level fault machinery — node behaviours,
  executor behaviour factories, network fault plans — which is invoked
  inside whichever process executes the point (behaviour objects carry
  state and callbacks, so only the scenario *name* travels through specs,
  digests, and worker boundaries),
* a one-line description for ``python -m repro.sweep scenarios``.

Adding a new experiment axis is a one-line :func:`register_scenario` call
(or a ``@scenario`` decorated factory) — every sweep, bench, and CLI run
can then reference it by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.errors import ConfigurationError
from repro.faults.byzantine import (
    DelaySpawningBehaviour,
    DuplicateSpawningBehaviour,
    DuplicateVerifyBehaviour,
    FewerExecutorsBehaviour,
    RequestIgnoranceBehaviour,
    SilentExecutorBehaviour,
    WrongResultBehaviour,
)
from repro.faults.injector import PerBatchExecutorFaults
from repro.sim.network import NetworkFaultPlan


class RegionOutageFaultPlan(NetworkFaultPlan):
    """Drops every message to or from endpoints hosted in a failed region.

    ``NetworkFaultPlan`` partitions are keyed by endpoint *name*, but
    executors are spawned dynamically with generated names, so a region
    outage cannot be expressed as a static name set.  This plan instead
    resolves endpoint regions through the live network once the runner binds
    it (see ``repro.sweep.runner``): any endpoint registered in the outage
    region is unreachable for the whole run.
    """

    def __init__(self, outage_region: str) -> None:
        super().__init__()
        self.outage_region = outage_region
        self._network = None

    def bind(self, network) -> None:
        """Attach the live network so endpoint regions can be resolved."""
        self._network = network

    def is_partitioned(self, src: str, dst: str) -> bool:
        if super().is_partitioned(src, dst):
            return True
        network = self._network
        if network is None:
            return False
        outage = self.outage_region
        for name in (src, dst):
            if network.has_endpoint(name) and network.region_of(name) == outage:
                return True
        return False


@dataclass(frozen=True)
class Scenario:
    """A named workload/fault preset."""

    name: str
    description: str
    config_overrides: Mapping[str, object] = field(default_factory=dict)
    workload_overrides: Mapping[str, object] = field(default_factory=dict)
    #: Builds the runner keyword arguments (``node_behaviours``,
    #: ``executor_behaviour_factory``, ``network_fault_plan``) fresh in the
    #: executing process.  Receives the resolved point dict for context.
    runner_kwargs_factory: Optional[Callable[[Mapping[str, object]], Dict[str, object]]] = None

    def runner_kwargs(self, resolved: Mapping[str, object]) -> Dict[str, object]:
        if self.runner_kwargs_factory is None:
            return {}
        return dict(self.runner_kwargs_factory(resolved))


_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (``replace=True`` to redefine).

    Scenario names enter per-point seed derivation (the canonical scenario
    key is a ``derive_seed`` label component), so names containing ``/``
    are rejected — they would alias another label path.
    """
    from repro.api.spec import validate_seed_label

    validate_seed_label(scenario.name, "scenario name")
    if scenario.name in _REGISTRY and not replace:
        raise ConfigurationError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown scenario {name!r} (known: {known})")


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def all_scenarios() -> List[Scenario]:
    return [_REGISTRY[name] for name in scenario_names()]


# ------------------------------------------------------------------ presets


def _lossy_network_kwargs(resolved: Mapping[str, object]) -> Dict[str, object]:
    return {
        "network_fault_plan": NetworkFaultPlan(
            drop_probability=0.01, duplicate_probability=0.005
        )
    }


def _partition_kwargs(resolved: Mapping[str, object]) -> Dict[str, object]:
    # Isolate the last shim node from its peers (up to f_R = 1 for the
    # 4-node scale deployment): consensus must keep committing without it.
    shim_nodes = int(resolved["config"]["shim_nodes"])  # type: ignore[index]
    plan = NetworkFaultPlan()
    victim = f"node-{shim_nodes - 1}"
    for index in range(shim_nodes - 1):
        plan.partition(victim, f"node-{index}")
    return {"network_fault_plan": plan}


def _region_outage_kwargs(resolved: Mapping[str, object]) -> Dict[str, object]:
    # us-east-2 is the third executor region of the paper's catalog order:
    # executors spawned there never reach the verifier, so the shim's spawn
    # redundancy and the verifier's quorum timeout carry the run.
    return {"network_fault_plan": RegionOutageFaultPlan("us-east-2")}


def _byzantine_executor_kwargs(resolved: Mapping[str, object]) -> Dict[str, object]:
    return {
        "executor_behaviour_factory": PerBatchExecutorFaults(1, WrongResultBehaviour)
    }


def _silent_executor_kwargs(resolved: Mapping[str, object]) -> Dict[str, object]:
    return {
        "executor_behaviour_factory": PerBatchExecutorFaults(1, SilentExecutorBehaviour)
    }


# The byzantine-attack *node* drills (Section V/VI).  Behaviour objects are
# built fresh in the executing process by the factories below, so only the
# scenario name travels through specs and digests — which is what makes the
# drills composable ("request-suppression" + "skewed-ycsb" is one point) and
# content-addressable, unlike bespoke fault objects attached to a RunSpec.

#: Aggressive protocol timers shared by the node drills: detection and view
#: change must fit inside a short drill run.  Scenario defaults sit *under*
#: point/spec overrides, so a caller pinning its own timers wins.
_ATTACK_TIMERS = {
    "client_timeout": 0.4,
    "node_request_timeout": 0.6,
    "retransmission_timeout": 0.4,
    "verifier_quorum_timeout": 0.4,
}


def _request_suppression_kwargs(resolved: Mapping[str, object]) -> Dict[str, object]:
    return {"node_behaviours": {"node-0": RequestIgnoranceBehaviour(drop_every=1)}}


def _fewer_executors_kwargs(resolved: Mapping[str, object]) -> Dict[str, object]:
    return {"node_behaviours": {"node-0": FewerExecutorsBehaviour(spawn_at_most=1)}}


def _duplicate_spawning_kwargs(resolved: Mapping[str, object]) -> Dict[str, object]:
    return {"node_behaviours": {"node-0": DuplicateSpawningBehaviour(extra_per_batch=2)}}


def _delayed_spawning_kwargs(resolved: Mapping[str, object]) -> Dict[str, object]:
    return {
        "node_behaviours": {
            "node-0": DelaySpawningBehaviour(delay_seconds=10.0, delay_every=1)
        }
    }


def _verify_flooding_kwargs(resolved: Mapping[str, object]) -> Dict[str, object]:
    return {
        "executor_behaviour_factory": PerBatchExecutorFaults(
            1, lambda: DuplicateVerifyBehaviour(copies=10)
        )
    }


register_scenario(Scenario(
    name="baseline",
    description="Fault-free run with the deployment's default workload.",
))
register_scenario(Scenario(
    name="lossy-network",
    description="1% message drops and 0.5% duplicate deliveries on every link.",
    runner_kwargs_factory=_lossy_network_kwargs,
))
register_scenario(Scenario(
    name="network-partition",
    description="The last shim node is partitioned from all of its peers.",
    runner_kwargs_factory=_partition_kwargs,
))
register_scenario(Scenario(
    name="region-outage",
    description="Executor region us-east-2 is unreachable for the whole run.",
    runner_kwargs_factory=_region_outage_kwargs,
))
register_scenario(Scenario(
    name="byzantine-executors",
    description="The first executor of every batch returns a fabricated result.",
    runner_kwargs_factory=_byzantine_executor_kwargs,
))
register_scenario(Scenario(
    name="silent-executors",
    description="The first executor of every batch never reports to the verifier.",
    runner_kwargs_factory=_silent_executor_kwargs,
))
register_scenario(Scenario(
    name="shim-crash",
    description="The last shim node is crashed throughout (alias of node-crash at t=0).",
    config_overrides={"fault_timeline": "crash:last@0"},
))
register_scenario(Scenario(
    name="node-crash",
    description="Crash one node mid-run (which/when via the fault_timeline knob).",
    # The generalised form of shim-crash: override fault_timeline to pick the
    # node (literal name, 'primary', or 'last') and the crash/recover times.
    config_overrides={"fault_timeline": "crash:last@0.3"},
))
register_scenario(Scenario(
    name="request-suppression",
    description="Byzantine primary drops every client request until replaced.",
    config_overrides=_ATTACK_TIMERS,
    runner_kwargs_factory=_request_suppression_kwargs,
))
register_scenario(Scenario(
    name="fewer-executors",
    description="Byzantine primary spawns only 1 executor; verifier forces a view change.",
    config_overrides=_ATTACK_TIMERS,
    runner_kwargs_factory=_fewer_executors_kwargs,
))
register_scenario(Scenario(
    name="duplicate-spawning",
    description="Byzantine node spawns redundant executors (self-penalising flooding).",
    config_overrides=_ATTACK_TIMERS,
    runner_kwargs_factory=_duplicate_spawning_kwargs,
))
register_scenario(Scenario(
    name="delayed-spawning",
    description="Byzantine primary delays its own spawns (byzantine-abort attack).",
    config_overrides=_ATTACK_TIMERS,
    runner_kwargs_factory=_delayed_spawning_kwargs,
))
register_scenario(Scenario(
    name="verify-flooding",
    description="The first executor of every batch floods the verifier with duplicate VERIFYs.",
    runner_kwargs_factory=_verify_flooding_kwargs,
))
# Crash–recovery drills (the paper's availability story, Sections V-A4/V-B):
# dynamic fault timelines drive real node lifecycle — crash, checkpoint-based
# catch-up on recovery, view-change escalation.  All use the aggressive
# detection timers so fault, view change, and recovery fit in a short run.
register_scenario(Scenario(
    name="primary-crash",
    description="Primary crashes at 0.3s and recovers at 1.2s; view change carries the run.",
    config_overrides={
        **_ATTACK_TIMERS,
        "fault_timeline": "crash:primary@0.3;recover:primary@1.2",
        "checkpoint_interval": 16,
    },
))
register_scenario(Scenario(
    name="rolling-restart",
    description="Each shim node of the 4-node scale crashes and restarts in turn.",
    config_overrides={
        **_ATTACK_TIMERS,
        "fault_timeline": (
            "crash:node-0@0.2;recover:node-0@0.6;"
            "crash:node-1@0.7;recover:node-1@1.1;"
            "crash:node-2@1.2;recover:node-2@1.6;"
            "crash:node-3@1.7;recover:node-3@2.1"
        ),
        "checkpoint_interval": 8,
    },
))
register_scenario(Scenario(
    name="view-change-storm",
    description="Two consecutive primaries crash; view change must escalate past v+1.",
    config_overrides={
        **_ATTACK_TIMERS,
        "fault_timeline": (
            "crash:node-0@0.2;crash:node-1@0.35;"
            "recover:node-0@1.4;recover:node-1@1.6"
        ),
        "checkpoint_interval": 16,
    },
))
register_scenario(Scenario(
    name="checkpoint-lag",
    description="A node sleeps through many commits and catches up from stable checkpoints.",
    config_overrides={
        **_ATTACK_TIMERS,
        "fault_timeline": "crash:last@0.15;recover:last@0.9",
        "checkpoint_interval": 4,
    },
))
register_scenario(Scenario(
    name="region-outage-heal",
    description="The last shim node is isolated from everyone at 0.3s; the partition heals at 0.9s.",
    config_overrides={
        **_ATTACK_TIMERS,
        "fault_timeline": "partition:last@0.3-0.9",
    },
))
register_scenario(Scenario(
    name="skewed-ycsb",
    description="Zipfian key selection (theta=0.9) instead of uniform keys.",
    workload_overrides={"zipfian_theta": 0.9},
))
register_scenario(Scenario(
    name="write-heavy",
    description="90% of YCSB operations are writes.",
    workload_overrides={"write_fraction": 0.9},
))
register_scenario(Scenario(
    name="conflict-heavy",
    description="30% conflicting transactions with unknown read-write sets.",
    workload_overrides={"conflict_fraction": 0.3, "rw_sets_known": False},
))

#: Presets registered by this module itself.  Anything beyond these was
#: registered at runtime and must be shipped to spawn-start worker processes
#: explicitly (see ``repro.sweep.runner``) — a fresh interpreter importing
#: this module only gets the built-ins.
BUILTIN_SCENARIO_NAMES = frozenset(_REGISTRY)


def custom_scenarios() -> List[Scenario]:
    """Scenarios registered after import (not built-in presets)."""
    return [
        scenario
        for name, scenario in _REGISTRY.items()
        if name not in BUILTIN_SCENARIO_NAMES
    ]
