"""Named sweeps: the paper's measured grids, runnable by name from the CLI.

Each preset is a function returning a :class:`~repro.sweep.spec.SweepSpec`;
``build_sweep(name, ...)`` looks one up and lets the CLI override duration,
warm-up, and seed.  The grids mirror the measured (message-level) points of
the paper's figures at the scaled-down deployment size (see
``repro.bench.defaults.SimulationScale``), with the fast crypto backend —
PR 1's determinism suite proves it simulates bit-identical runs at a
fraction of the host CPU, which is exactly what large sweeps want.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.bench.defaults import SCALE
from repro.errors import ConfigurationError
from repro.sweep.spec import GridSpec, SweepSpec, sweep_from_grid

_REGISTRY: Dict[str, Callable[..., SweepSpec]] = {}

#: Large sweeps default to the fast crypto backend (identical simulated
#: results, much less host CPU); byzantine drills override this to "real".
_FAST = {"crypto_backend": "fast"}


def register_sweep(name: str):
    """Decorator: register a ``(duration, warmup, seed) -> SweepSpec`` factory."""

    def decorate(factory: Callable[..., SweepSpec]) -> Callable[..., SweepSpec]:
        if name in _REGISTRY:
            raise ConfigurationError(f"sweep {name!r} is already registered")
        _REGISTRY[name] = factory
        return factory

    return decorate


def sweep_names() -> List[str]:
    return sorted(_REGISTRY)


def build_sweep(
    name: str,
    duration: Optional[float] = None,
    warmup: Optional[float] = None,
    seed: Optional[int] = None,
) -> SweepSpec:
    """Build a named sweep; non-None duration/warmup/seed override it."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sweep_names())
        raise ConfigurationError(f"unknown sweep {name!r} (known: {known})")
    kwargs = {
        key: value
        for key, value in (("duration", duration), ("warmup", warmup), ("seed", seed))
        if value is not None
    }
    return factory(**kwargs)


@register_sweep("smoke")
def smoke(duration: float = 0.5, warmup: float = 0.1, seed: int = 1) -> SweepSpec:
    """4-point batching x executors grid — the CI smoke sweep."""
    return sweep_from_grid(
        name="smoke",
        grid=GridSpec({"batch_size": (5, 25), "num_executors": (3, 5)}),
        config={**_FAST, "num_clients": 60, "client_groups": 4},
        workload={"clients": 60},
        duration=duration,
        warmup=warmup,
        seed=seed,
    )


@register_sweep("fig6-executors")
def fig6_executors(
    duration: float = SCALE.duration, warmup: float = SCALE.warmup, seed: int = 1
) -> SweepSpec:
    """Figure 6(i,ii)-style 8-point grid: shim size x executor count."""
    return sweep_from_grid(
        name="fig6-executors",
        grid=GridSpec({"shim_nodes": (4, 7), "num_executors": (3, 5, 7, 11)}),
        config={**_FAST, "num_executor_regions": 3},
        duration=duration,
        warmup=warmup,
        seed=seed,
    )


@register_sweep("fig6-batching")
def fig6_batching(
    duration: float = SCALE.duration, warmup: float = SCALE.warmup, seed: int = 1
) -> SweepSpec:
    """Figure 6(iii,iv)-style grid: shim size x client batch size."""
    return sweep_from_grid(
        name="fig6-batching",
        grid=GridSpec({"shim_nodes": (4, 7), "batch_size": (5, 10, 25, 50)}),
        config=_FAST,
        duration=duration,
        warmup=warmup,
        seed=seed,
    )


@register_sweep("fig6-conflicts")
def fig6_conflicts(
    duration: float = SCALE.duration, warmup: float = SCALE.warmup, seed: int = 1
) -> SweepSpec:
    """Figure 6(xi,xii)-style grid: conflict rate under optimistic execution."""
    return sweep_from_grid(
        name="fig6-conflicts",
        grid=GridSpec({"conflict_fraction": (0.0, 0.1, 0.3, 0.5)}),
        config=_FAST,
        workload={"rw_sets_known": False},
        duration=duration,
        warmup=warmup,
        seed=seed,
    )


@register_sweep("fig7-baselines")
def fig7_baselines(
    duration: float = 1.0, warmup: float = 0.2, seed: int = 1
) -> SweepSpec:
    """Figure 7-style comparison: all four system variants, 4-node shim."""
    return sweep_from_grid(
        name="fig7-baselines",
        grid=GridSpec(
            {"system": ("serverless_bft", "serverless_cft", "pbft_replicated", "noshim")}
        ),
        config={**_FAST, "num_clients": 100, "client_groups": 4},
        workload={"clients": 100},
        duration=duration,
        warmup=warmup,
        seed=seed,
    )


@register_sweep("fig8-offloading")
def fig8_offloading(
    duration: float = SCALE.duration, warmup: float = SCALE.warmup, seed: int = 1
) -> SweepSpec:
    """Figure 8-style grid: execution length x system (offloading vs edge-only)."""
    return sweep_from_grid(
        name="fig8-offloading",
        grid=GridSpec(
            {
                "execution_seconds": (0.0, 0.1),
                "system": ("serverless_bft", "pbft_replicated"),
            }
        ),
        config=_FAST,
        duration=duration,
        warmup=warmup,
        seed=seed,
    )


@register_sweep("chaos-drills")
def chaos_drills(
    duration: float = 2.5, warmup: float = 0.0, seed: int = 1
) -> SweepSpec:
    """Crash–recovery timelines x BFT/CFT shim: the fault-timeline presets
    with checkpoint catch-up, view-change escalation, and the liveness
    watchdog's recovery metrics (rendered as extra report columns).

    No warmup: the watchdog's unavailability accounting covers the whole
    run, and the fault events land in the first second.
    """
    return sweep_from_grid(
        name="chaos-drills",
        grid=GridSpec(
            {
                "system": ("serverless_bft", "serverless_cft"),
                "scenario": (
                    "primary-crash",
                    "rolling-restart",
                    "view-change-storm",
                    "checkpoint-lag",
                    "region-outage-heal",
                ),
            }
        ),
        config={"num_clients": 60, "client_groups": 4},
        workload={"clients": 60},
        duration=duration,
        warmup=warmup,
        seed=seed,
    )


@register_sweep("scenario-drills")
def scenario_drills(
    duration: float = 1.0, warmup: float = 0.2, seed: int = 1
) -> SweepSpec:
    """One point per fault/workload scenario preset (real crypto: byzantine
    drills depend on signature verification actually failing)."""
    return sweep_from_grid(
        name="scenario-drills",
        grid=GridSpec(
            {
                "scenario": (
                    "baseline",
                    "lossy-network",
                    "network-partition",
                    "region-outage",
                    "byzantine-executors",
                    "silent-executors",
                    "shim-crash",
                    "skewed-ycsb",
                    "write-heavy",
                    "conflict-heavy",
                    # node-level byzantine drills (scenario presets since the
                    # replication PR; previously reachable only by attaching
                    # bespoke fault objects to a RunSpec)
                    "request-suppression",
                    "fewer-executors",
                    "duplicate-spawning",
                    "verify-flooding",
                )
            }
        ),
        config={"num_clients": 60, "client_groups": 4},
        workload={"clients": 60},
        duration=duration,
        warmup=warmup,
        seed=seed,
    )
