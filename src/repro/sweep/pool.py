"""Warm worker pools for sweep and replicate execution.

A cold ``ProcessPoolExecutor`` pays interpreter start-up plus the full
``repro`` import graph in every worker, for every ``run_sweep`` /
``run_replicates`` call — a fixed tax per *invocation* that the replicate
axis multiplies.  This module keeps one process-global pool alive and hands
it to every caller that asks for the same worker count, so the tax is paid
once per process instead of once per call.

Correctness notes:

* Runtime-registered scenarios and systems are **not** baked into the pool
  at spawn time (a pool created before a ``register_scenario`` call must
  still serve points using it): the task function re-registers them per
  task, which is a handful of idempotent dict writes.
* Workers are warmed by an initializer that imports the deployment stack,
  so the first point scheduled on each worker does not pay the import cost
  inside its measured wall-clock.
* A pool that broke (worker crash) or whose processes were killed by the
  stall-budget timeout is discarded; the next caller gets a fresh spawn.

``pool_spawn_count()`` exposes how many pools this process created — CI
asserts that two back-to-back ``run_replicates`` calls spawn exactly one.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_SPAWNS = 0


def _warm_worker() -> None:
    """Per-worker initializer: pay the import graph once, before any task."""
    import repro.api.facade  # noqa: F401  (pulls core/cloud/crypto/sim/workload)
    import repro.sweep.runner  # noqa: F401
    import repro.sweep.serialization  # noqa: F401


def pool_spawn_count() -> int:
    """How many worker pools this process has spawned so far."""
    return _SPAWNS


def get_shared_pool(workers: int) -> ProcessPoolExecutor:
    """The process-global pool for ``workers`` workers, spawning if needed.

    A live pool with the same worker count is reused; a broken pool or a
    different worker count shuts the old pool down and spawns a fresh one.
    """
    global _POOL, _POOL_WORKERS, _SPAWNS
    pool = _POOL
    if pool is not None:
        if _POOL_WORKERS == workers and not getattr(pool, "_broken", False):
            return pool
        pool.shutdown(wait=False, cancel_futures=True)
        _POOL = None
    pool = ProcessPoolExecutor(max_workers=workers, initializer=_warm_worker)
    _POOL = pool
    _POOL_WORKERS = workers
    _SPAWNS += 1
    return pool


def discard_shared_pool(terminate: bool = False) -> None:
    """Drop the shared pool (e.g. after a stall-budget kill).

    With ``terminate=True`` the pool's worker processes are killed first —
    the caller decided they are stuck; a plain shutdown would block on them.
    """
    global _POOL
    pool = _POOL
    _POOL = None
    if pool is None:
        return
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    if terminate:
        for process in processes:
            process.terminate()


@atexit.register
def _shutdown_at_exit() -> None:  # pragma: no cover - interpreter teardown
    discard_shared_pool()
