"""Command-line entry point: ``python -m repro.sweep``.

Subcommands::

    list                     named sweeps and their point counts
    scenarios                scenario presets and their descriptions
    list-systems             registered systems and their capabilities
    run NAME_OR_FILE         run a named or file-defined (JSON) sweep
    report                   render EXPERIMENTS.md from a result store

``run`` resolves every point to its content address, serves cached points
from the result store (``--store``), simulates the rest with ``--workers``
processes, prints per-point progress and the aggregated experiment table,
and exits non-zero on failed points.  ``--expect-all-cached`` additionally
fails the run if any point had to be simulated — CI uses it to prove the
store actually caches.  Repeatable ``--set key=value`` flags apply ad-hoc
dotted-key overrides (``--set protocol.batch_size=25 --set system=noshim``)
on top of whatever the named sweep pins.  ``--replicates N`` runs every
point under N derived seeds (each an individually cached store entry) so
``report`` can put error bars on the results; ``report`` itself is an
alias for ``python -m repro.report`` and never simulates anything.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Dict, List, Optional

from repro.api.registry import all_systems
from repro.bench.harness import format_table
from repro.errors import ConfigurationError
from repro.sweep.presets import build_sweep, sweep_names
from repro.sweep.runner import print_progress, run_sweep
from repro.sweep.scenarios import all_scenarios
from repro.store.url import open_store
from repro.sweep.spec import (
    SweepSpec,
    apply_overrides,
    expand_replicates,
    sweep_from_dict,
    with_replicates,
)


def _load_sweep(
    target: str,
    duration: Optional[float],
    warmup: Optional[float],
    seed: Optional[int],
) -> SweepSpec:
    if os.path.exists(target) or target.endswith(".json"):
        with open(target, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for key, value in (("duration", duration), ("warmup", warmup), ("seed", seed)):
            if value is not None:
                payload[key] = value
        return sweep_from_dict(payload)
    return build_sweep(target, duration=duration, warmup=warmup, seed=seed)


def _cmd_list(_args: argparse.Namespace) -> int:
    for name in sweep_names():
        sweep = build_sweep(name)
        print(f"{name:<18} {len(sweep):>3} points  base={sweep.base}")
    return 0


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    for scenario in all_scenarios():
        print(f"{scenario.name:<22} {scenario.description}")
    return 0


def _cmd_list_systems(_args: argparse.Namespace) -> int:
    for adapter in all_systems():
        capabilities = ",".join(sorted(adapter.capabilities)) or "-"
        print(f"{adapter.name:<18} {adapter.description}")
        print(f"{'':<18} capabilities: {capabilities}")
    return 0


def _parse_set_overrides(pairs: List[str]) -> Dict[str, object]:
    """Parse repeated ``--set key=value`` flags; values are JSON when possible.

    ``--set batch_size=25`` yields an int, ``--set scenario='["a","b"]'`` a
    list, and anything that is not valid JSON stays a plain string
    (``--set system=noshim``).
    """
    overrides: Dict[str, object] = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            raise ConfigurationError(
                f"--set expects key=value, got {pair!r}"
            )
        try:
            value: object = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        overrides[key] = value
    return overrides


def _grid_shard(sweep: SweepSpec, index: int, count: int) -> SweepSpec:
    """This host's slice of the grid: every ``count``-th expanded point.

    Replicates are expanded *before* slicing, so the replicate axis spreads
    across hosts too; each expanded point is an ordinary pinned-seed point
    whose digest is independent of the slicing, which is what lets the
    merged shards serve the full grid back as 100% cache hits.
    """
    if not 0 <= index < count:
        raise ConfigurationError(
            f"--shard-index must be in [0, {count}), got {index}"
        )
    expanded = expand_replicates(sweep)
    points = expanded.points[index::count]
    if not points:
        raise ConfigurationError(
            f"grid shard {index}/{count} of sweep {sweep.name!r} is empty "
            f"({len(expanded.points)} points total)"
        )
    return dataclasses.replace(expanded, points=points)


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        sweep = _load_sweep(args.sweep, args.duration, args.warmup, args.seed)
        sweep = apply_overrides(sweep, _parse_set_overrides(args.set or []))
        if args.replicates is not None:
            sweep = with_replicates(sweep, args.replicates)
        if args.shard_count > 1:
            sweep = _grid_shard(sweep, args.shard_index, args.shard_count)
    except (ConfigurationError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    store = open_store(args.store) if args.store else None
    report = run_sweep(
        sweep,
        workers=args.workers,
        store=store,
        timeout=args.timeout,
        progress=None if args.quiet else print_progress,
        tracer_enabled=args.trace,
    )
    print()
    print(format_table(report.table(), float_format="{:,.3f}"))
    print()
    print(report.summary())

    if report.failed:
        return 1
    if args.expect_all_cached and report.simulated:
        print(
            f"error: --expect-all-cached but {report.simulated} points were "
            f"simulated (store miss)",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report.cli import main as report_main

    argv: List[str] = ["--store", args.store, "--output", args.output]
    for name in args.sweep or []:
        argv += ["--sweep", name]
    if args.plots:
        argv += ["--plots", args.plots]
    if args.model_presets:
        argv.append("--model-presets")
    if args.fail_empty:
        argv.append("--fail-empty")
    return report_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="named sweeps").set_defaults(func=_cmd_list)
    sub.add_parser("scenarios", help="scenario presets").set_defaults(
        func=_cmd_scenarios
    )
    sub.add_parser(
        "list-systems", help="registered systems and their capabilities"
    ).set_defaults(func=_cmd_list_systems)

    run = sub.add_parser("run", help="run a named or file-defined sweep")
    run.add_argument("sweep", help="sweep name (see 'list') or path to a JSON file")
    run.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="dotted-key override applied to every point (repeatable), e.g. "
        "--set protocol.batch_size=25 --set system=noshim",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (<=1: in-process serial execution)",
    )
    run.add_argument(
        "--store",
        default="",
        help="result-store URL (enables caching and resume): a JSONL path, "
        "sqlite://path.db, or shard://dir for per-worker shards",
    )
    run.add_argument(
        "--shard-index",
        type=int,
        default=0,
        metavar="I",
        help="with --shard-count N: run this host's slice of the grid "
        "(every N-th expanded point, offset I)",
    )
    run.add_argument(
        "--shard-count",
        type=int,
        default=1,
        metavar="N",
        help="split the grid across N hosts (pair with a shard:// store; "
        "merge the shards with 'python -m repro.store merge')",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="stall budget in seconds: fail still-running points if no point "
        "completes for this long (parallel runs only)",
    )
    run.add_argument(
        "--duration", type=float, default=None, help="override virtual duration"
    )
    run.add_argument(
        "--warmup", type=float, default=None, help="override virtual warm-up"
    )
    run.add_argument("--seed", type=int, default=None, help="override the sweep seed")
    run.add_argument(
        "--replicates",
        type=int,
        default=None,
        metavar="N",
        help="run every point under N derived seeds (error bars via 'report'); "
        "each replicate is an individually cached store entry",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="run every simulated point with the flight recorder on "
        "(observability payload stored per point; digests are unchanged)",
    )
    run.add_argument(
        "--expect-all-cached",
        action="store_true",
        help="fail if any point had to be simulated (CI cache check)",
    )
    run.add_argument("--quiet", action="store_true", help="suppress progress lines")
    run.set_defaults(func=_cmd_run)

    report = sub.add_parser(
        "report",
        help="render EXPERIMENTS.md tables/plots from a result store "
        "(alias for python -m repro.report; never simulates)",
    )
    report.add_argument(
        "--store",
        required=True,
        help="result-store URL (JSONL path, sqlite://path.db, or shard://dir)",
    )
    report.add_argument(
        "--output", default="-", help="markdown output path ('-' for stdout)"
    )
    report.add_argument(
        "--sweep", action="append", metavar="NAME", help="filter to the named sweep(s)"
    )
    report.add_argument(
        "--plots", metavar="DIR", default="", help="write error-bar PNGs to DIR"
    )
    report.add_argument(
        "--model-presets", action="store_true", help="append analytical-model tables"
    )
    report.add_argument(
        "--fail-empty", action="store_true", help="fail if no table rows rendered"
    )
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
