"""Declarative sweep specifications.

A sweep is described *declaratively* — a :class:`GridSpec` names the axes
and their values, a :class:`PointSpec` pins one combination down, and a
:class:`SweepSpec` bundles the points with a name, a base deployment scale,
and a root seed.  Resolution turns each point into a plain-JSON dict that
fully determines one simulation run (every ``ProtocolConfig`` and
``YCSBConfig`` field, the system variant, the scenario preset, duration and
warm-up), and the SHA-256 digest of that resolved dict is the point's
*content address*: the result store keys on it, so any change to a knob —
including library-default changes that alter the resolved config — yields a
new address and a fresh simulation, while an unchanged point is served from
the store.

Per-point seeds are *derived*, not positional: unless a point pins a seed
explicitly, its seed is ``derive_seed(sweep.seed, sweep.name, labels)``, so
the same point gets the same RNG streams no matter which worker runs it or
in which order — the property the parallel-determinism tests lock down.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import ProtocolConfig
from repro.crypto.hashing import digest
from repro.errors import ConfigurationError
from repro.sim.rng import derive_seed
from repro.workload.ycsb import YCSBConfig

#: Bumped whenever the resolved-point layout changes incompatibly, so stale
#: store entries can never be mistaken for current ones.
SPEC_SCHEMA_VERSION = 1

#: System variants the sweep runner can drive (Figure 7's comparison set).
SYSTEMS = ("serverless_bft", "serverless_cft", "pbft_replicated", "noshim")


def _jsonify(value):
    """Rewrite ``value`` into pure JSON types (dicts/lists/str/num/bool/None).

    Enum members collapse to their values and tuples to lists so that a
    resolved point hashes identically before and after a JSONL round-trip.
    """
    if isinstance(value, enum.Enum):
        return _jsonify(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonify(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonify(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass(frozen=True)
class GridSpec:
    """An ordered parameter grid: axis name -> sequence of values.

    ``combinations()`` expands the grid in row-major order (first axis
    outermost), matching the nested ``for`` loops the per-figure experiment
    sweeps historically used, so refactoring onto grids preserves row order.
    """

    axes: Tuple[Tuple[str, Tuple[object, ...]], ...]

    def __init__(self, axes) -> None:
        if isinstance(axes, Mapping):
            pairs = tuple((name, tuple(values)) for name, values in axes.items())
        else:
            pairs = tuple((name, tuple(values)) for name, values in axes)
        seen = set()
        for name, values in pairs:
            if name in seen:
                raise ConfigurationError(f"duplicate grid axis {name!r}")
            if not values:
                raise ConfigurationError(f"grid axis {name!r} has no values")
            seen.add(name)
        object.__setattr__(self, "axes", pairs)

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _values in self.axes)

    def __len__(self) -> int:
        total = 1
        for _name, values in self.axes:
            total *= len(values)
        return total

    def combinations(self) -> List[Dict[str, object]]:
        """Expand to one ``{axis: value}`` dict per point, row-major."""
        names = self.axis_names
        value_lists = [values for _name, values in self.axes]
        return [dict(zip(names, combo)) for combo in itertools.product(*value_lists)]


@dataclass(frozen=True)
class PointSpec:
    """One individually addressable simulation point of a sweep.

    ``labels`` carry the human-facing axis values for tables and progress
    lines.  They never enter the content address directly, but for a point
    without a pinned ``seed`` they determine the *derived* seed — which is
    materialised into the resolved config and therefore the digest.  So
    relabelling shares cache entries only for pinned-seed points; for
    derived-seed points different labels deliberately mean different RNG
    streams (two identically-configured points with different labels are
    independent replicates, not duplicates).  ``config`` / ``workload`` are
    overrides applied on top of the sweep's base deployment scale; scenario
    presets may contribute further defaults underneath them.
    """

    labels: Mapping[str, object] = field(default_factory=dict)
    config: Mapping[str, object] = field(default_factory=dict)
    workload: Mapping[str, object] = field(default_factory=dict)
    system: str = "serverless_bft"
    consensus_engine: str = "pbft"
    scenario: str = "baseline"
    execution_threads: int = 16
    duration: float = 2.0
    warmup: float = 0.4
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ConfigurationError(
                f"unknown system {self.system!r} (expected one of {SYSTEMS})"
            )
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.warmup < 0 or self.warmup >= self.duration:
            raise ConfigurationError("warmup must be inside [0, duration)")


@dataclass(frozen=True)
class SweepSpec:
    """A named collection of points sharing a base scale and a root seed."""

    name: str
    points: Tuple[PointSpec, ...]
    base: str = "scale"
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a sweep needs a name")
        if not self.points:
            raise ConfigurationError(f"sweep {self.name!r} has no points")
        if self.base not in ("scale", "paper", "default"):
            raise ConfigurationError(
                f"unknown base {self.base!r} (expected 'scale', 'paper', or 'default')"
            )
        object.__setattr__(self, "points", tuple(self.points))

    def __len__(self) -> int:
        return len(self.points)


# ------------------------------------------------------------------ resolution


def _base_protocol_config(base: str, overrides: Dict[str, object]) -> ProtocolConfig:
    # Imported lazily: bench.experiments routes its model grids through this
    # module, so a module-level import of repro.bench would be circular.
    from repro.bench.defaults import PAPER, SCALE

    if base == "scale":
        return SCALE.protocol_config(**overrides)
    if base == "paper":
        shim_nodes = overrides.pop("shim_nodes", PAPER.medium_shim)
        return PAPER.protocol_config(shim_nodes, **overrides)
    return ProtocolConfig(**overrides)


def _base_workload_config(base: str, overrides: Dict[str, object]) -> YCSBConfig:
    from repro.bench.defaults import PAPER, SCALE

    if base == "scale":
        return SCALE.workload_config(**overrides)
    if base == "paper":
        return PAPER.workload_config(**overrides)
    return YCSBConfig(**overrides)


def point_seed(sweep: SweepSpec, point: PointSpec) -> int:
    """The point's root RNG seed: pinned, or derived from sweep seed + labels.

    Deriving from the (sorted, canonical) labels rather than the point's
    position keeps the seed stable under reordering, filtering, or parallel
    execution of the sweep.
    """
    if point.seed is not None:
        return point.seed
    if "seed" in point.config:
        return int(point.config["seed"])  # type: ignore[arg-type]
    label_blob = json.dumps(_jsonify(dict(point.labels)), sort_keys=True)
    return derive_seed(sweep.seed, sweep.name, point.scenario, point.system, label_blob)


def resolve_point(sweep: SweepSpec, point: PointSpec) -> Dict[str, object]:
    """Expand one point into the plain-JSON dict that fully determines a run.

    Scenario presets contribute config/workload defaults *underneath* the
    point's own overrides, and the per-point seed is materialised into both
    the protocol and workload configs, so the resolved dict — and therefore
    the content address — captures everything the simulation will see.
    """
    from repro.sweep.scenarios import get_scenario  # cycle: scenarios build specs

    scenario = get_scenario(point.scenario)
    seed = point_seed(sweep, point)

    config_overrides: Dict[str, object] = dict(scenario.config_overrides)
    config_overrides.update(point.config)
    config_overrides["seed"] = seed

    workload_overrides: Dict[str, object] = dict(scenario.workload_overrides)
    workload_overrides.update(point.workload)
    workload_overrides.setdefault("seed", derive_seed(seed, "workload"))

    config = _base_protocol_config(sweep.base, config_overrides)
    workload = _base_workload_config(sweep.base, workload_overrides)

    return {
        "schema": SPEC_SCHEMA_VERSION,
        "system": point.system,
        "consensus_engine": point.consensus_engine,
        "scenario": point.scenario,
        "execution_threads": point.execution_threads,
        "duration": point.duration,
        "warmup": point.warmup,
        "config": _jsonify(dataclasses.asdict(config)),
        "workload": _jsonify(dataclasses.asdict(workload)),
        "labels": _jsonify(dict(point.labels)),
    }


def point_digest(resolved: Mapping[str, object]) -> str:
    """Content address of a resolved point.

    Labels are excluded: everything they can influence (the derived seed,
    see :func:`point_seed`) is already materialised into the resolved
    config, so the address covers exactly what the simulation will see and
    nothing presentational.
    """
    addressed = {key: value for key, value in resolved.items() if key != "labels"}
    return digest(addressed)


# ------------------------------------------------------------------ file-defined sweeps

#: Axis names routed to PointSpec fields rather than config/workload overrides.
_POINT_AXES = ("scenario", "system", "consensus_engine", "execution_threads")

_CONFIG_FIELDS = frozenset(ProtocolConfig.__dataclass_fields__)
_WORKLOAD_FIELDS = frozenset(YCSBConfig.__dataclass_fields__)


def _route_axis(name: str):
    """Classify a grid axis name: point field, config field, or workload field."""
    if name in _POINT_AXES:
        return "point"
    if name in _CONFIG_FIELDS:
        return "config"
    if name in _WORKLOAD_FIELDS:
        return "workload"
    raise ConfigurationError(
        f"unknown sweep axis {name!r}: not a PointSpec, ProtocolConfig, "
        f"or YCSBConfig field"
    )


def sweep_from_grid(
    name: str,
    grid: GridSpec,
    base: str = "scale",
    seed: int = 1,
    duration: float = 2.0,
    warmup: float = 0.4,
    config: Optional[Mapping[str, object]] = None,
    workload: Optional[Mapping[str, object]] = None,
    scenario: str = "baseline",
    system: str = "serverless_bft",
) -> SweepSpec:
    """Expand a grid into a :class:`SweepSpec`, routing each axis by name.

    Axes named after ``ProtocolConfig`` fields become protocol overrides,
    ``YCSBConfig`` fields become workload overrides, and ``scenario`` /
    ``system`` / ``consensus_engine`` / ``execution_threads`` select the
    point variant.  ``config`` / ``workload`` supply grid-wide constants.
    """
    shared_config = dict(config or {})
    shared_workload = dict(workload or {})
    # Overlap between shared constants and a grid axis would silently shadow;
    # surface it instead.
    for axis in grid.axis_names:
        if axis in shared_config or axis in shared_workload:
            raise ConfigurationError(f"axis {axis!r} also given as a sweep constant")
    points = []
    for combo in grid.combinations():
        point_fields: Dict[str, object] = {
            "scenario": scenario,
            "system": system,
        }
        config_overrides = dict(shared_config)
        workload_overrides = dict(shared_workload)
        for axis, value in combo.items():
            route = _route_axis(axis)
            if route == "point":
                point_fields[axis] = value
            elif route == "config":
                config_overrides[axis] = value
            else:
                workload_overrides[axis] = value
        points.append(
            PointSpec(
                labels=combo,
                config=config_overrides,
                workload=workload_overrides,
                duration=duration,
                warmup=warmup,
                **point_fields,
            )
        )
    return SweepSpec(name=name, points=tuple(points), base=base, seed=seed)


def sweep_from_dict(payload: Mapping[str, object]) -> SweepSpec:
    """Build a sweep from a JSON-style dict (the ``--file`` CLI format).

    Expected shape::

        {"name": "my-sweep", "base": "scale", "seed": 3,
         "duration": 1.0, "warmup": 0.2,
         "scenario": "baseline", "system": "serverless_bft",
         "config": {"crypto_backend": "fast"},
         "workload": {"write_fraction": 0.5},
         "grid": {"batch_size": [5, 25], "num_executors": [3, 5]}}
    """
    if "grid" not in payload or not payload["grid"]:
        raise ConfigurationError("a sweep file needs a non-empty 'grid' mapping")
    if "name" not in payload:
        raise ConfigurationError("a sweep file needs a 'name'")
    grid = GridSpec(payload["grid"])  # type: ignore[arg-type]
    return sweep_from_grid(
        name=str(payload["name"]),
        grid=grid,
        base=str(payload.get("base", "scale")),
        seed=int(payload.get("seed", 1)),  # type: ignore[arg-type]
        duration=float(payload.get("duration", 2.0)),  # type: ignore[arg-type]
        warmup=float(payload.get("warmup", 0.4)),  # type: ignore[arg-type]
        config=payload.get("config"),  # type: ignore[arg-type]
        workload=payload.get("workload"),  # type: ignore[arg-type]
        scenario=str(payload.get("scenario", "baseline")),
        system=str(payload.get("system", "serverless_bft")),
    )
