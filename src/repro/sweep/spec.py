"""Declarative sweep specifications.

A sweep is described *declaratively* — a :class:`GridSpec` names the axes
and their values, a :class:`PointSpec` pins one combination down, and a
:class:`SweepSpec` bundles the points with a name, a base deployment scale,
and a root seed.  Resolution turns each point into a plain-JSON dict that
fully determines one simulation run (every ``ProtocolConfig`` and
``YCSBConfig`` field, the system variant, the composed scenario presets,
duration and warm-up), and the SHA-256 digest of that resolved dict is the
point's *content address*: the result store keys on it, so any change to a
knob — including library-default changes that alter the resolved config —
yields a new address and a fresh simulation, while an unchanged point is
served from the store.

Per-point seeds are *derived*, not positional: unless a point pins a seed
explicitly, its seed is ``derive_seed(sweep.seed, sweep.name, labels)``, so
the same point gets the same RNG streams no matter which worker runs it or
in which order — the property the parallel-determinism tests lock down.

Since the ``repro.api`` facade landed, this module owns only the sweep
shapes (grids, points, per-point seed derivation); systems come from the
pluggable registry (:mod:`repro.api.registry` — runtime-registered systems
validate like built-ins), dotted-key override routing and scenario
composition live in :mod:`repro.api.spec`, and :func:`resolve_point`
delegates to the same :func:`repro.api.spec.resolve_run` the facade uses.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.spec import (
    SPEC_SCHEMA_VERSION,
    ScenarioSelector,
    jsonify as _jsonify,
    normalize_scenarios,
    replicate_fields,
    resolve_run,
    route_key,
    scenario_key,
    split_overrides,
    validate_base,
)
from repro.crypto.hashing import digest
from repro.errors import ConfigurationError
from repro.sim.rng import derive_seed

__all_dynamic__ = ("SYSTEMS",)


def __getattr__(name: str) -> Tuple[str, ...]:
    # Backwards compatibility: the frozen SYSTEMS tuple became the pluggable
    # registry; reading it now reflects runtime registrations too.
    if name == "SYSTEMS":
        from repro.api.registry import system_names

        return tuple(system_names())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class GridSpec:
    """An ordered parameter grid: axis name -> sequence of values.

    ``combinations()`` expands the grid in row-major order (first axis
    outermost), matching the nested ``for`` loops the per-figure experiment
    sweeps historically used, so refactoring onto grids preserves row order.
    """

    axes: Tuple[Tuple[str, Tuple[object, ...]], ...]

    def __init__(
        self,
        axes: Union[
            Mapping[str, Sequence[object]],
            Iterable[Tuple[str, Sequence[object]]],
        ],
    ) -> None:
        if isinstance(axes, Mapping):
            pairs = tuple((name, tuple(values)) for name, values in axes.items())
        else:
            pairs = tuple((name, tuple(values)) for name, values in axes)
        seen = set()
        for name, values in pairs:
            if name in seen:
                raise ConfigurationError(f"duplicate grid axis {name!r}")
            if not values:
                raise ConfigurationError(f"grid axis {name!r} has no values")
            seen.add(name)
        object.__setattr__(self, "axes", pairs)

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _values in self.axes)

    def __len__(self) -> int:
        total = 1
        for _name, values in self.axes:
            total *= len(values)
        return total

    def combinations(self) -> List[Dict[str, object]]:
        """Expand to one ``{axis: value}`` dict per point, row-major."""
        names = self.axis_names
        value_lists = [values for _name, values in self.axes]
        return [dict(zip(names, combo)) for combo in itertools.product(*value_lists)]


@dataclass(frozen=True)
class PointSpec:
    """One individually addressable simulation point of a sweep.

    ``labels`` carry the human-facing axis values for tables and progress
    lines.  They never enter the content address directly, but for a point
    without a pinned ``seed`` they determine the *derived* seed — which is
    materialised into the resolved config and therefore the digest.  So
    relabelling shares cache entries only for pinned-seed points; for
    derived-seed points different labels deliberately mean different RNG
    streams (two identically-configured points with different labels are
    independent replicates, not duplicates).  ``config`` / ``workload`` are
    overrides applied on top of the sweep's base deployment scale; scenario
    presets may contribute further defaults underneath them.

    ``scenario`` names one preset or a *list* of presets to compose (see
    :func:`repro.api.spec.compose_scenarios` for the merge/conflict rules);
    ``system`` may name any system in the registry, including ones
    registered at runtime.

    ``replicates`` asks for N statistically independent repetitions of this
    point: :func:`expand_replicates` (applied automatically by
    :func:`repro.sweep.runner.run_sweep`) expands the point into N per-seed
    points, each content-addressed individually so the result store caches
    and resumes them like any other point.  ``replicates=1`` leaves the
    point — and therefore its digest — bit-identical to the pre-replicate
    era.
    """

    labels: Mapping[str, object] = field(default_factory=dict)
    config: Mapping[str, object] = field(default_factory=dict)
    workload: Mapping[str, object] = field(default_factory=dict)
    system: str = "serverless_bft"
    consensus_engine: str = "pbft"
    scenario: ScenarioSelector = "baseline"
    execution_threads: int = 16
    duration: float = 2.0
    warmup: float = 0.4
    seed: Optional[int] = None
    replicates: int = 1

    def __post_init__(self) -> None:
        from repro.api.registry import get_system

        get_system(self.system)  # raises with the known-system list
        normalize_scenarios(self.scenario)  # fail fast on malformed selectors
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.warmup < 0 or self.warmup >= self.duration:
            raise ConfigurationError("warmup must be inside [0, duration)")
        if self.replicates < 1:
            raise ConfigurationError("replicates must be >= 1")

    @property
    def scenario_names(self) -> Tuple[str, ...]:
        """The scenario selector as a canonical tuple of preset names."""
        return normalize_scenarios(self.scenario)

    @property
    def scenario_label(self) -> str:
        """Canonical string form (single name, or ``a+b`` for compositions)."""
        return scenario_key(self.scenario)


@dataclass(frozen=True)
class SweepSpec:
    """A named collection of points sharing a base scale and a root seed."""

    name: str
    points: Tuple[PointSpec, ...]
    base: str = "scale"
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a sweep needs a name")
        if not self.points:
            raise ConfigurationError(f"sweep {self.name!r} has no points")
        validate_base(self.base)
        object.__setattr__(self, "points", tuple(self.points))

    def __len__(self) -> int:
        return len(self.points)


# ------------------------------------------------------------------ resolution


def point_seed(sweep: SweepSpec, point: PointSpec) -> int:
    """The point's root RNG seed: pinned, or derived from sweep seed + labels.

    Deriving from the (sorted, canonical) labels rather than the point's
    position keeps the seed stable under reordering, filtering, or parallel
    execution of the sweep.  Single-scenario points derive exactly the seed
    they did before scenario lists existed (the canonical scenario key of
    ``"x"`` is ``"x"``).
    """
    if point.seed is not None:
        return point.seed
    if "seed" in point.config:
        return int(point.config["seed"])  # type: ignore[arg-type]
    label_blob = json.dumps(_jsonify(dict(point.labels)), sort_keys=True)
    return derive_seed(
        sweep.seed, sweep.name, point.scenario_label, point.system, label_blob
    )


def resolve_point(sweep: SweepSpec, point: PointSpec) -> Dict[str, object]:
    """Expand one point into the plain-JSON dict that fully determines a run.

    Delegates to the facade's :func:`repro.api.spec.resolve_run` — the sweep
    layer and ``repro.api.run`` share one resolution path, so a point
    simulated by either is the same simulation.
    """
    return resolve_run(
        base=sweep.base,
        system=point.system,
        consensus_engine=point.consensus_engine,
        scenarios=point.scenario_names,
        execution_threads=point.execution_threads,
        duration=point.duration,
        warmup=point.warmup,
        seed=point_seed(sweep, point),
        config_overrides=point.config,
        workload_overrides=point.workload,
        labels=point.labels,
    )


def point_digest(resolved: Mapping[str, object]) -> str:
    """Content address of a resolved point.

    Labels are excluded: everything they can influence (the derived seed,
    see :func:`point_seed`) is already materialised into the resolved
    config, so the address covers exactly what the simulation will see and
    nothing presentational.
    """
    addressed = {key: value for key, value in resolved.items() if key != "labels"}
    return digest(addressed)


# ------------------------------------------------------------------ replication


def expand_replicates(sweep: SweepSpec) -> SweepSpec:
    """Expand every ``replicates=N`` point into N per-seed single points.

    Replicate ``i`` of a point pins the seed
    ``derive_seed(point_seed(sweep, point), "replicate", i)`` — the point's
    existing seed chain (sweep seed, sweep name, scenario, system, labels,
    or a pinned seed) extended with the replicate index — and adds a
    ``replicate`` label so store records and report tables can group the
    family.  The expansion itself comes from the same
    :func:`repro.api.spec.replicate_fields` the facade uses, so sweep and
    facade replicates of one configuration share content addresses.  Each
    expanded point is an ordinary pinned-seed point: it resolves and
    content-addresses individually, so the result store caches and resumes
    replicates exactly like any other point.  A sweep whose points all have
    ``replicates=1`` is returned unchanged (same object, so digests are
    bit-identical to the pre-replicate era).
    """
    if all(point.replicates == 1 for point in sweep.points):
        return sweep
    expanded: List[PointSpec] = []
    for point in sweep.points:
        if point.replicates == 1:
            expanded.append(point)
            continue
        base_seed = point_seed(sweep, point)
        expanded.extend(
            dataclasses.replace(
                point, **replicate_fields(point.labels, base_seed, index)
            )
            for index in range(point.replicates)
        )
    return dataclasses.replace(sweep, points=tuple(expanded))


def with_replicates(sweep: SweepSpec, replicates: int) -> SweepSpec:
    """Set every point's replicate count (the CLI ``--replicates`` flag)."""
    if replicates < 1:
        raise ConfigurationError("replicates must be >= 1")
    if all(point.replicates == replicates for point in sweep.points):
        return sweep
    points = tuple(
        dataclasses.replace(point, replicates=replicates) for point in sweep.points
    )
    return dataclasses.replace(sweep, points=points)


# ------------------------------------------------------------------ overrides


def apply_overrides(sweep: SweepSpec, overrides: Mapping[str, object]) -> SweepSpec:
    """Apply dotted-key overrides to every point (the CLI ``--set`` flag).

    Keys route through :func:`repro.api.spec.route_key`: config/workload
    keys land in the per-point override dicts (on top of whatever the point
    already pins), run-level keys (``system``, ``scenario``, ``duration``,
    ...) replace the point fields.  Returns a new sweep; digests change
    accordingly, so overridden runs are fresh cache entries.
    """
    if not overrides:
        return sweep
    config_ov, workload_ov, run_ov = split_overrides(overrides)
    points = tuple(
        dataclasses.replace(
            point,
            config={**point.config, **config_ov},
            workload={**point.workload, **workload_ov},
            **run_ov,
        )
        for point in sweep.points
    )
    return dataclasses.replace(sweep, points=points)


# ------------------------------------------------------------------ file-defined sweeps


def sweep_from_grid(
    name: str,
    grid: GridSpec,
    base: str = "scale",
    seed: int = 1,
    duration: float = 2.0,
    warmup: float = 0.4,
    config: Optional[Mapping[str, object]] = None,
    workload: Optional[Mapping[str, object]] = None,
    scenario: ScenarioSelector = "baseline",
    system: str = "serverless_bft",
    replicates: int = 1,
) -> SweepSpec:
    """Expand a grid into a :class:`SweepSpec`, routing each axis by name.

    Axes route through the facade's dotted-key resolver: ``ProtocolConfig``
    fields become protocol overrides, ``YCSBConfig`` fields workload
    overrides, and run-level names (``scenario`` / ``system`` /
    ``consensus_engine`` / ``execution_threads`` / ``duration`` /
    ``warmup`` / ``replicates``) select the point variant.  ``config`` /
    ``workload`` supply grid-wide constants; ``scenario`` may be a preset
    name or a list of presets to compose; ``replicates`` asks for N
    independent seeds per grid point.
    """
    shared_config = dict(config or {})
    shared_workload = dict(workload or {})
    # Overlap between shared constants and a grid axis would silently shadow;
    # surface it instead.
    for axis in grid.axis_names:
        if axis in shared_config or axis in shared_workload:
            raise ConfigurationError(f"axis {axis!r} also given as a sweep constant")
    points = []
    for combo in grid.combinations():
        point_fields: Dict[str, object] = {
            "scenario": scenario,
            "system": system,
            "duration": duration,
            "warmup": warmup,
            "replicates": replicates,
        }
        config_overrides = dict(shared_config)
        workload_overrides = dict(shared_workload)
        for axis, value in combo.items():
            target, fieldname = route_key(axis)
            if target == "run":
                point_fields[fieldname] = value
            elif target == "config":
                config_overrides[fieldname] = value
            else:
                workload_overrides[fieldname] = value
        points.append(
            PointSpec(
                labels=combo,
                config=config_overrides,
                workload=workload_overrides,
                **point_fields,
            )
        )
    return SweepSpec(name=name, points=tuple(points), base=base, seed=seed)


def sweep_from_dict(payload: Mapping[str, object]) -> SweepSpec:
    """Build a sweep from a JSON-style dict (the ``--file`` CLI format).

    Expected shape::

        {"name": "my-sweep", "base": "scale", "seed": 3,
         "duration": 1.0, "warmup": 0.2,
         "scenario": "baseline",              # or a list to compose
         "system": "serverless_bft",
         "replicates": 1,                     # N seeds per grid point

         "config": {"crypto_backend": "fast"},
         "workload": {"write_fraction": 0.5},
         "grid": {"batch_size": [5, 25], "num_executors": [3, 5]}}
    """
    if "grid" not in payload or not payload["grid"]:
        raise ConfigurationError("a sweep file needs a non-empty 'grid' mapping")
    if "name" not in payload:
        raise ConfigurationError("a sweep file needs a 'name'")
    grid = GridSpec(payload["grid"])  # type: ignore[arg-type]
    scenario = payload.get("scenarios", payload.get("scenario", "baseline"))
    return sweep_from_grid(
        name=str(payload["name"]),
        grid=grid,
        base=str(payload.get("base", "scale")),
        seed=int(payload.get("seed", 1)),  # type: ignore[arg-type]
        duration=float(payload.get("duration", 2.0)),  # type: ignore[arg-type]
        warmup=float(payload.get("warmup", 0.4)),  # type: ignore[arg-type]
        config=payload.get("config"),  # type: ignore[arg-type]
        workload=payload.get("workload"),  # type: ignore[arg-type]
        scenario=scenario,
        system=str(payload.get("system", "serverless_bft")),
        replicates=int(payload.get("replicates", 1)),  # type: ignore[arg-type]
    )
