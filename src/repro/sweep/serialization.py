"""SimulationResult <-> plain-dict round-tripping.

Sweep workers run in separate processes and the result store persists
results as JSONL, so a :class:`~repro.core.runner.SimulationResult` must
survive dict/JSON round trips losslessly.  ``simulated_fingerprint``
additionally strips the host-speed fields (wall-clock) so two runs of the
same point can be compared for *simulated* bit-identity regardless of how
fast the host happened to execute them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping

from repro.cloud.billing import BillingReport
from repro.core.runner import SimulationResult
from repro.sim.stats import LatencySummary

# The schema tag — a fingerprint of the result layout derived from the
# dataclass fields, so stale store records register as cache misses
# instead of deserialisation crashes — now lives with the store-record
# schema it stamps (every warehouse backend shares it); re-exported here
# because this module is where result-layout code has always found it.
from repro.store.record import RESULT_SCHEMA_TAG

__all__ = [
    "HOST_SPEED_FIELDS",
    "RESULT_SCHEMA_TAG",
    "SIMULATED_RESULT_FIELDS",
    "result_from_dict",
    "result_to_dict",
    "simulated_fingerprint",
]


def result_to_dict(result: SimulationResult) -> Dict[str, object]:
    """Serialise a result (nested dataclasses included) to JSON-able types."""
    return dataclasses.asdict(result)


def result_from_dict(payload: Mapping[str, object]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_dict` output."""
    data = dict(payload)
    data["latency"] = LatencySummary(**data["latency"])  # type: ignore[arg-type]
    data["billing"] = BillingReport(**data["billing"])  # type: ignore[arg-type]
    return SimulationResult(**data)  # type: ignore[arg-type]


#: Result fields that depend on host speed, not on the simulated run.
#: ``obs`` joins them: the flight-recorder payload carries host-speed
#: perf-counter deltas and exists only when tracing is on, so it must never
#: contribute to a simulated fingerprint (obs on/off digests stay identical).
HOST_SPEED_FIELDS = ("wall_clock_seconds", "obs")

#: Every other :class:`SimulationResult` field — a pure function of the
#: resolved point spec, covered by ``simulated_fingerprint`` and therefore
#: by every serial-vs-pool / crypto-backend / obs-on-off A/B identity suite.
#: The DIG002 lint rule requires ``HOST_SPEED_FIELDS`` and this tuple to
#: partition the dataclass exactly, so a new result field cannot land
#: without deciding which side of the fingerprint it lives on (the bug
#: class PR 7 had to design around when attaching ``obs``).
SIMULATED_RESULT_FIELDS = (
    "duration",
    "warmup",
    "committed_txns",
    "aborted_txns",
    "throughput_txn_per_sec",
    "latency",
    "completed_requests",
    "client_retransmissions",
    "spawned_executors",
    "cloud_invocations",
    "view_changes",
    "verifier_ignored_verify",
    "verifier_replace_sent",
    "verifier_errors_sent",
    "messages_sent",
    "messages_dropped",
    "bytes_sent",
    "events_processed",
    "billing",
    "cents_per_kilo_txn",
    "extra",
)


def simulated_fingerprint(payload: Mapping[str, object]) -> Dict[str, object]:
    """The simulated-time metrics of a result dict, host-speed fields removed.

    Everything left is a pure function of the resolved point spec: two runs
    of the same point — serial or parallel, cached or fresh — must produce
    identical fingerprints (``tests/test_sweep_runner.py`` enforces this).
    """
    return {
        key: value for key, value in payload.items() if key not in HOST_SPEED_FIELDS
    }
