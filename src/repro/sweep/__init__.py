"""Parallel sweep orchestration.

The paper's evaluation is a family of parameter sweeps; this package turns
them into declarative, cacheable, multi-core experiment runs:

* :mod:`repro.sweep.spec` — :class:`GridSpec` / :class:`PointSpec` /
  :class:`SweepSpec` describe a sweep declaratively; each point resolves to
  a content-addressed spec (SHA-256 of the fully resolved configuration).
* :mod:`repro.sweep.runner` — :func:`run_sweep` executes points in-process
  or across CPU cores with bit-identical simulated results either way.
* :mod:`repro.store` — the result warehouse: backends keyed by point
  digest (append-only JSONL, indexed sqlite, per-worker shards with a
  deterministic merge) behind one :class:`~repro.store.ResultBackend`
  protocol, so re-runs skip simulated points and interrupted sweeps
  resume no matter which backend holds the records.  ``ResultStore``
  (re-exported here via :mod:`repro.sweep.store`) *is* the JSONL backend.
* :mod:`repro.sweep.scenarios` — named fault/workload presets (region
  outage, partitions, byzantine executors, skewed YCSB, ...).
* :mod:`repro.sweep.presets` — named sweeps (``fig6-executors``, ...) for
  the CLI: ``python -m repro.sweep run fig6-executors --workers 4``.
"""

from repro.sweep.presets import build_sweep, register_sweep, sweep_names
from repro.sweep.runner import (
    DEFAULT_METRICS,
    PointOutcome,
    SweepReport,
    build_simulation,
    run_sweep,
    simulate_resolved_point,
)
from repro.sweep.scenarios import (
    Scenario,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.sweep.serialization import (
    result_from_dict,
    result_to_dict,
    simulated_fingerprint,
)
from repro.sweep.spec import (
    GridSpec,
    PointSpec,
    SweepSpec,
    apply_overrides,
    expand_replicates,
    point_digest,
    resolve_point,
    sweep_from_dict,
    sweep_from_grid,
    with_replicates,
)
from repro.sweep.store import ResultStore

__all__ = [
    "DEFAULT_METRICS",
    "GridSpec",
    "PointOutcome",
    "PointSpec",
    "ResultStore",
    "Scenario",
    "SweepReport",
    "SweepSpec",
    "all_scenarios",
    "apply_overrides",
    "build_simulation",
    "build_sweep",
    "expand_replicates",
    "get_scenario",
    "point_digest",
    "register_scenario",
    "register_sweep",
    "resolve_point",
    "result_from_dict",
    "result_to_dict",
    "run_sweep",
    "scenario_names",
    "simulate_resolved_point",
    "simulated_fingerprint",
    "sweep_from_dict",
    "sweep_from_grid",
    "sweep_names",
    "with_replicates",
]
