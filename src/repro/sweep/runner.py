"""Sweep execution: in-process or fanned out across CPU cores.

``run_sweep`` resolves every point of a :class:`~repro.sweep.spec.SweepSpec`
to its content address, serves already-simulated points from the result
store (any :class:`~repro.store.backend.ResultBackend` — JSONL file,
sqlite database, or sharded directory), and simulates the rest — serially
in-process (``workers <= 1``) or on a ``ProcessPoolExecutor`` (``workers >
1``).  Results are bit-identical either way: a worker rebuilds the entire
deployment from the resolved point dict (which pins every config field and
the derived per-point seed), so nothing about scheduling, ordering, or
process boundaries can leak into the simulated run.

Parallel runs harvest results in completion order (each finished point is
written to the result store immediately) and accept a stall budget
(``timeout``): if no point completes for that long, the points still
running are recorded as failed and their workers are killed.  Progress is
reported per point through a callback (the CLI prints ``[sweep] 3/8
simulated batch_size=25 ... (1.9s)`` lines).
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.facade import (
    build_deployment,
    protocol_config_from_dict,
    workload_config_from_dict,
)
from repro.api.registry import custom_systems as _custom_systems
from repro.bench.harness import ExperimentTable
from repro.core.runner import SimulationResult
from repro.sweep.pool import discard_shared_pool, get_shared_pool
from repro.sweep.scenarios import custom_scenarios
from repro.sweep.serialization import result_from_dict, result_to_dict
from repro.sweep.spec import (
    PointSpec,
    SweepSpec,
    expand_replicates,
    point_digest,
    resolve_point,
)
from repro.errors import ConfigurationError
from repro.store.backend import ResultBackend

logger = logging.getLogger("repro.sweep")

ProgressCallback = Callable[["PointOutcome", int, int], None]


def _register_worker_state(scenarios, systems) -> None:
    """Make runtime registrations visible inside a worker process.

    Fork-start workers inherit the parent's registries; spawn-start workers
    (macOS/Windows defaults) re-import the registry modules fresh and would
    only know the built-in scenario presets and systems.  Both scenario
    objects and system adapters must be picklable (module-level factories
    and builder functions are).  Called per task rather than per pool spawn
    so a long-lived warm pool also serves scenarios/systems registered
    *after* it was created; re-registration is a few idempotent dict writes.
    """
    from repro.api.registry import register_system
    from repro.sweep.scenarios import register_scenario

    for scenario in scenarios:
        register_scenario(scenario, replace=True)
    for adapter in systems:
        register_system(adapter, replace=True)


# ------------------------------------------------------------------ rebuilding


def build_simulation(resolved: Mapping[str, object], tracer_enabled: bool = False):
    """Construct the deployment a resolved point describes (any system kind).

    Thin alias for :func:`repro.api.facade.build_deployment` — the system
    registry replaced the if/elif ladder that used to live here, so sweep
    workers and ``repro.api.run`` share one construction path.
    """
    return build_deployment(resolved, tracer_enabled=tracer_enabled)


def simulate_resolved_point(
    resolved: Mapping[str, object], tracer_enabled: bool = False
) -> Dict[str, object]:
    """Run one resolved point and return its result dict.

    Module-level so ``ProcessPoolExecutor`` can pickle it; the in-process
    serial path calls the exact same function, which is what makes parallel
    runs bit-identical to serial ones.
    """
    return _timed_simulate(resolved, tracer_enabled=tracer_enabled)[0]


def _timed_simulate(
    resolved: Mapping[str, object], tracer_enabled: bool = False
) -> Tuple[Dict[str, object], Dict[str, float]]:
    """Simulate one resolved point, separating setup from simulation time.

    The timing dict records where the host seconds went: ``setup_seconds``
    (deployment construction), ``simulate_seconds`` (the event loop), and
    ``collect_seconds`` (metric collection + serialisation).  Stored next to
    each result so warm-pool amortisation is measurable from the store.
    """
    # lint: ignore[DET001] host wall-clock accounting (feeds `timing`, never a digest)
    started = time.perf_counter()
    simulation = build_simulation(resolved, tracer_enabled=tracer_enabled)
    setup_seconds = time.perf_counter() - started  # lint: ignore[DET001] host timing
    result = simulation.run(
        duration=float(resolved["duration"]),  # type: ignore[arg-type]
        warmup=float(resolved["warmup"]),  # type: ignore[arg-type]
    )
    result_dict = result_to_dict(result)
    total = time.perf_counter() - started  # lint: ignore[DET001] host timing
    simulate_seconds = result.wall_clock_seconds
    timing = {
        "setup_seconds": setup_seconds,
        "simulate_seconds": simulate_seconds,
        "collect_seconds": max(0.0, total - setup_seconds - simulate_seconds),
    }
    return result_dict, timing


def _simulate_point_task(
    resolved: Mapping[str, object], scenarios, systems, tracer_enabled: bool = False
) -> Tuple[Dict[str, object], Dict[str, float]]:
    """Warm-pool task: re-register runtime state, then simulate with timing.

    ``tracer_enabled`` is a collection flag, not part of the point's content
    address: a traced worker run produces the same simulated fingerprint as
    an untraced one, plus the flight-recorder payload riding home on
    ``result_dict["obs"]``.
    """
    _register_worker_state(scenarios, systems)
    return _timed_simulate(resolved, tracer_enabled=tracer_enabled)


# ------------------------------------------------------------------ outcomes


@dataclass
class PointOutcome:
    """What happened to one point of a sweep run."""

    point: PointSpec
    resolved: Dict[str, object]
    digest: str
    result_dict: Optional[Dict[str, object]] = None
    cached: bool = False
    error: Optional[str] = None
    wall_clock_seconds: float = 0.0
    #: Host-side cost split of a simulated point (setup_seconds /
    #: simulate_seconds / collect_seconds); None for cached/failed points.
    timing: Optional[Dict[str, float]] = None
    #: Worker deaths this point survived (a point whose worker process dies
    #: — as opposed to timing out or raising — is retried once on a fresh
    #: pool before being recorded as failed).
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.result_dict is not None

    @property
    def status(self) -> str:
        if self.error is not None:
            return "failed"
        return "cached" if self.cached else "simulated"

    @property
    def result(self) -> Optional[SimulationResult]:
        if self.result_dict is None:
            return None
        return result_from_dict(self.result_dict)

    def metric(self, path: str):
        """Look up a dotted path (e.g. ``latency.mean``) in the result dict.

        ``abort_rate`` is computed (it is a property, not a stored field).
        """
        if self.result_dict is None:
            return None
        if path == "abort_rate":
            committed = self.result_dict["committed_txns"]
            aborted = self.result_dict["aborted_txns"]
            total = committed + aborted  # type: ignore[operator]
            return aborted / total if total else 0.0  # type: ignore[operator]
        value: object = self.result_dict
        for part in path.split("."):
            value = value[part]  # type: ignore[index]
        return value


#: Default table columns: ``column name -> result-dict metric path``.
DEFAULT_METRICS: Tuple[Tuple[str, str], ...] = (
    ("throughput_txn_s", "throughput_txn_per_sec"),
    ("latency_s", "latency.mean"),
    ("committed", "committed_txns"),
    ("aborted", "aborted_txns"),
)


@dataclass
class SweepReport:
    """All outcomes of one ``run_sweep`` call, in sweep point order."""

    sweep: SweepSpec
    outcomes: List[PointOutcome] = field(default_factory=list)
    wall_clock_seconds: float = 0.0

    @property
    def simulated(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok and not outcome.cached)

    @property
    def cached(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.error is not None)

    def table(
        self, metrics: Sequence[Tuple[str, str]] = DEFAULT_METRICS
    ) -> ExperimentTable:
        """Aggregate the outcomes into an :class:`ExperimentTable`.

        Columns are the union of the points' label keys followed by the
        requested metric columns; failed points are skipped.
        """
        label_columns: List[str] = []
        for outcome in self.outcomes:
            for key in outcome.point.labels:
                if key not in label_columns:
                    label_columns.append(key)
        metric_columns = [name for name, _path in metrics]
        table = ExperimentTable(
            name=self.sweep.name, columns=tuple(label_columns + metric_columns)
        )
        for outcome in self.outcomes:
            if not outcome.ok:
                continue
            row = {key: outcome.point.labels.get(key) for key in label_columns}
            for name, path in metrics:
                row[name] = outcome.metric(path)
            table.add(**row)
        return table

    def summary(self) -> str:
        return (
            f"{self.sweep.name}: {len(self.outcomes)} points — "
            f"simulated={self.simulated} cached={self.cached} failed={self.failed} "
            f"wall={self.wall_clock_seconds:.1f}s"
        )


# ------------------------------------------------------------------ execution

#: Worker-death retries granted per point.
WORKER_RETRY_LIMIT = 1


def _should_retry(exc: BaseException, retries: int, limit: int = WORKER_RETRY_LIMIT) -> bool:
    """Whether a failed point gets another attempt.

    Only a *worker death* (the pool process vanished — OOM kill, segfault,
    interpreter abort — surfacing as :class:`BrokenExecutor`) is retried: the
    point itself may be perfectly fine and merely shared a pool with a
    culprit, since a broken pool poisons every pending future.  A point that
    *raised* is deterministic and would fail again; a stall timeout already
    has its own budget semantics.
    """
    return isinstance(exc, BrokenExecutor) and retries < limit


def _format_labels(point: PointSpec) -> str:
    if not point.labels:
        return "-"
    return " ".join(f"{key}={value}" for key, value in point.labels.items())


def print_progress(outcome: PointOutcome, index: int, total: int) -> None:
    """Default progress reporter: one line per finished point."""
    detail = f" [{outcome.error}]" if outcome.error else ""
    print(
        f"[sweep] {index}/{total} {outcome.status:<9} "
        f"{_format_labels(outcome.point)} digest={outcome.digest[:12]} "
        f"({outcome.wall_clock_seconds:.1f}s){detail}"
    )


def run_sweep(
    sweep: SweepSpec,
    workers: int = 0,
    store: Optional[ResultBackend] = None,
    timeout: Optional[float] = None,
    progress: Optional[ProgressCallback] = None,
    tracer_enabled: bool = False,
) -> SweepReport:
    """Run every point of ``sweep``, skipping points already in ``store``.

    ``workers <= 1`` simulates in-process (serial); ``workers > 1`` fans the
    uncached points out over a process pool and harvests in completion
    order.  ``timeout`` is a stall budget for parallel runs: if no point
    completes within it, the still-running points fail and their workers
    are terminated.  Finished points are written to the store as they
    complete, so an interrupted sweep resumes from where it stopped.

    Points carrying ``replicates=N`` are expanded into N per-seed points
    first (see :func:`repro.sweep.spec.expand_replicates`), so the report's
    outcomes — and the store's records — hold one entry per replicate.

    ``tracer_enabled=True`` runs every simulated point with the flight
    recorder on; the observability payload rides inside each result dict
    (``obs``) across the pool, and the simulated fingerprint — hence the
    store's digest — is unchanged.
    """
    # lint: ignore[DET001] host wall-clock accounting (report wall time, never a digest)
    started = time.perf_counter()
    sweep = expand_replicates(sweep)
    outcomes: List[PointOutcome] = []
    for point in sweep.points:
        try:
            resolved = resolve_point(sweep, point)
        except (ConfigurationError, KeyError, TypeError, ValueError) as exc:
            # Invalid overrides surface as failed points, not a dead sweep:
            # ConfigurationError from validation, Key/Type/ValueError from
            # bad override values reaching the config constructors.
            logger.warning(
                "point %s failed to resolve: %s: %s",
                _format_labels(point), type(exc).__name__, exc,
            )
            outcomes.append(
                PointOutcome(
                    point=point,
                    resolved={},
                    digest="",
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        outcomes.append(
            PointOutcome(point=point, resolved=resolved, digest=point_digest(resolved))
        )

    total = len(outcomes)
    done = 0
    pending: List[PointOutcome] = []
    for outcome in outcomes:
        if outcome.error is not None:
            done += 1
            if progress is not None:
                progress(outcome, done, total)
            continue
        record = store.get(outcome.digest) if store is not None else None
        if record is not None:
            outcome.result_dict = dict(record["result"])
            outcome.cached = True
            done += 1
            if progress is not None:
                progress(outcome, done, total)
        else:
            pending.append(outcome)

    # Points that share a digest are the *same* simulation; execute one
    # representative each and serve the twins from its result (the pinned-
    # seed replicate-alias case — distinct points always differ in digest).
    executable: List[PointOutcome] = []
    representatives: Dict[str, PointOutcome] = {}
    twin_map: Dict[str, List[PointOutcome]] = {}
    for outcome in pending:
        if outcome.digest in representatives:
            twin_map.setdefault(outcome.digest, []).append(outcome)
        else:
            representatives[outcome.digest] = outcome
            executable.append(outcome)

    def finish(outcome: PointOutcome) -> None:
        nonlocal done
        if outcome.ok and store is not None:
            store.put(
                outcome.digest,
                outcome.resolved,
                outcome.result_dict,
                sweep.name,
                timing=outcome.timing,
                retries=outcome.retries,
            )
        done += 1
        if progress is not None:
            progress(outcome, done, total)
        for twin in twin_map.pop(outcome.digest, []):
            if outcome.ok:
                twin.result_dict = dict(outcome.result_dict)
                twin.cached = True
            else:
                twin.error = outcome.error
                twin.wall_clock_seconds = outcome.wall_clock_seconds
            done += 1
            if progress is not None:
                progress(twin, done, total)

    retry_queue: List[PointOutcome] = []

    def harvest(future, outcome: PointOutcome) -> None:
        try:
            outcome.result_dict, outcome.timing = future.result()
        except Exception as exc:
            # Process-boundary catch: a worker can die (BrokenExecutor) or
            # re-raise literally anything the simulation threw.  Never
            # silent — the failure is logged and recorded on the outcome.
            logger.warning(
                "point %s failed in worker: %s: %s",
                _format_labels(outcome.point), type(exc).__name__, exc,
            )
            if _should_retry(exc, outcome.retries):
                # Worker death: the point gets one more attempt on a fresh
                # pool (the broken pool poisons every pending future, so
                # innocent bystander points land here too).
                outcome.retries += 1
                retry_queue.append(outcome)
                return
            outcome.error = f"{type(exc).__name__}: {exc}"
        if outcome.ok:
            outcome.wall_clock_seconds = float(
                outcome.result_dict.get("wall_clock_seconds", 0.0)
            )
        finish(outcome)

    if workers > 1 and executable:
        timed_out = False
        task_scenarios = custom_scenarios()
        task_systems = _custom_systems()

        def drain(future_map) -> bool:
            """Harvest one batch of futures; True if the stall budget hit.

            Harvests in *completion* order so each finished point hits the
            store immediately — an interrupted sweep keeps everything that
            actually completed.  ``timeout`` is a stall budget: if no point
            finishes within it, everything still running is declared failed.
            """
            remaining = set(future_map)
            while remaining:
                completed, remaining = wait(
                    remaining, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not completed:
                    for future in remaining:
                        future.cancel()
                        outcome = future_map[future]
                        if future.done() and not future.cancelled():
                            # Completed in the race window between wait()
                            # returning empty and this loop: keep the result.
                            harvest(future, outcome)
                            continue
                        outcome.error = f"no result within {timeout:g}s"
                        outcome.wall_clock_seconds = float(timeout or 0.0)
                        finish(outcome)
                    return True
                for future in completed:
                    harvest(future, future_map[future])
            return False

        # Warm worker pool: reused across run_sweep / run_replicates calls
        # in this process, so interpreter + import start-up is paid once.
        # Runtime-registered scenarios/systems ship with each task (a warm
        # pool may predate the registration).
        pool = get_shared_pool(workers)
        timed_out = drain({
            pool.submit(
                _simulate_point_task, outcome.resolved, task_scenarios,
                task_systems, tracer_enabled,
            ): outcome
            for outcome in executable
        })
        if retry_queue and not timed_out:
            # A worker died: the shared pool is broken.  Terminate it, spawn
            # a fresh one, and re-run each affected point once (a second
            # death fails the point for good — ``retries`` caps re-queueing).
            discard_shared_pool(terminate=True)
            pool = get_shared_pool(workers)
            retries, retry_queue = retry_queue, []
            timed_out = drain({
                pool.submit(
                    _simulate_point_task, outcome.resolved, task_scenarios,
                    task_systems, tracer_enabled,
                ): outcome
                for outcome in retries
            })
        for outcome in retry_queue:
            # Retry was cut short by a stall timeout (or a second death):
            # close the point out as failed rather than leaving it silent.
            outcome.error = "worker died and retry did not complete"
            finish(outcome)
        if timed_out:
            # A timed-out worker is still executing its point and a plain
            # shutdown would block on it indefinitely; kill the pool's
            # processes and discard it (every live worker belongs to a
            # timed-out point by now) — the next caller spawns fresh.
            discard_shared_pool(terminate=True)
    else:
        for outcome in executable:
            point_started = time.perf_counter()  # lint: ignore[DET001] host timing
            try:
                outcome.result_dict, outcome.timing = _timed_simulate(
                    outcome.resolved, tracer_enabled=tracer_enabled
                )
            except Exception as exc:
                # In-process simulation failure: arbitrary exception type,
                # logged and recorded on the outcome (never swallowed).
                logger.warning(
                    "point %s failed: %s: %s",
                    _format_labels(outcome.point), type(exc).__name__, exc,
                )
                outcome.error = f"{type(exc).__name__}: {exc}"
            # lint: ignore[DET001] wall_clock_seconds is a declared HOST_SPEED_FIELDS field
            outcome.wall_clock_seconds = time.perf_counter() - point_started
            finish(outcome)

    return SweepReport(
        sweep=sweep,
        outcomes=outcomes,
        # lint: ignore[DET001] report wall time is host-side accounting
        wall_clock_seconds=time.perf_counter() - started,
    )
