"""Content-addressed result store (append-only JSONL).

Each record keys a simulation result by the SHA-256 digest of its resolved
point spec (see :func:`repro.sweep.spec.point_digest`).  Re-running a sweep
looks every point up before simulating, so completed points are never
re-simulated and an interrupted sweep resumes where it stopped: records are
appended and flushed one by one as points finish.

The file format is one JSON object per line::

    {"digest": "...", "sweep": "...", "labels": {...}, "result_schema": "...",
     "point": {resolved spec...}, "result": {result dict...}}

Records are durable once reported: every append is flushed *and* fsynced,
so a point the runner has announced as persisted survives a host or
container crash, not just a process exit.  Corrupt or truncated lines (a
run killed mid-write) are skipped on load — wherever they sit in the file,
valid records before and after a torn one still load — and a later append
first repairs a torn tail with a newline so the new record never
concatenates onto the debris.  The digest of a well-formed record is
trusted — it was computed from the stored ``point`` payload by the writer
and is re-derivable from it.
Records whose ``result_schema`` tag does not match the current
:data:`~repro.sweep.serialization.RESULT_SCHEMA_TAG` are ignored: the point
digest only covers the *input* spec, so a result-layout change must turn
old records into cache misses (and a re-simulation), not deserialisation
crashes.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Dict, Iterator, Mapping, Optional

from repro.sweep.serialization import RESULT_SCHEMA_TAG

logger = logging.getLogger("repro.sweep.store")


class ResultStore:
    """Digest-keyed persistent result cache backed by one JSONL file."""

    def __init__(self, path: str) -> None:
        self._path = path
        self._records: Dict[str, dict] = {}
        self._load()

    @property
    def path(self) -> str:
        return self._path

    def _load(self) -> None:
        if not os.path.exists(self._path):
            return
        with open(self._path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Torn write from an interrupted run: skipping it is the
                    # documented recovery path, but never a silent one — a
                    # store that loses lines for any *other* reason must be
                    # diagnosable from the logs.
                    logger.warning(
                        "%s:%d: skipping corrupt/torn record", self._path, lineno
                    )
                    continue
                digest = record.get("digest")
                if (
                    isinstance(digest, str)
                    and "result" in record
                    and record.get("result_schema") == RESULT_SCHEMA_TAG
                ):
                    self._records[digest] = record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, digest: str) -> bool:
        return digest in self._records

    def digests(self) -> Iterator[str]:
        return iter(self._records)

    def get(self, digest: str) -> Optional[dict]:
        """The stored record for ``digest``, or None if never simulated."""
        return self._records.get(digest)

    def _tail_is_torn(self) -> bool:
        """Whether the file ends in a partial line (crash mid-append).

        Appending straight after a torn tail would concatenate the new
        record onto the debris, turning one lost line into two.
        """
        try:
            with open(self._path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except (OSError, ValueError):  # missing or empty file
            return False

    def put(
        self,
        digest: str,
        resolved_point: Mapping[str, object],
        result: Mapping[str, object],
        sweep_name: str = "",
        timing: Optional[Mapping[str, float]] = None,
        retries: int = 0,
    ) -> dict:
        """Record one finished point: append, flush, and fsync.

        The fsync is what makes "persisted" mean persisted: without it a
        host or container crash could lose points the runner already
        reported as cached for the next run.  ``timing`` (optional) records
        the host-side setup/simulate/collect split of the run that produced
        the result, so per-point overhead — and what warm worker pools
        amortise away — stays measurable from the store alone.  ``retries``
        (recorded only when nonzero) counts worker deaths the point survived
        before producing this result.
        """
        record = {
            "digest": digest,
            "sweep": sweep_name,
            "labels": resolved_point.get("labels", {}),
            "result_schema": RESULT_SCHEMA_TAG,
            "point": dict(resolved_point),
            "result": dict(result),
        }
        if timing is not None:
            record["timing"] = dict(timing)
        if retries:
            record["retries"] = int(retries)
        obs = result.get("obs")
        if isinstance(obs, Mapping):
            # Traced run: attach a compact per-point observability summary so
            # phase means and drop counts are greppable from the store alone
            # (the full payload stays inside ``result["obs"]``).
            trace = obs.get("trace", {})
            record["obs_summary"] = {
                "spans": len(obs.get("spans", ())),
                "spans_dropped": obs.get("spans_dropped", 0),
                "trace_events": len(trace.get("events", ())),
                "trace_dropped": trace.get("dropped", 0),
                "phase_mean_seconds": {
                    name: summary.get("mean")
                    for name, summary in obs.get("phases", {}).items()
                },
            }
        directory = os.path.dirname(self._path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        repair_tail = self._tail_is_torn()
        with open(self._path, "a", encoding="utf-8") as handle:
            if repair_tail:
                handle.write("\n")
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._records[digest] = record
        return record
