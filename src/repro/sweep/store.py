"""Compatibility shim — the result store grew into :mod:`repro.store`.

``ResultStore`` was one append-only JSONL file; it is now
:class:`repro.store.jsonl.JsonlBackend`, one of three backends behind the
:class:`repro.store.backend.ResultBackend` protocol (JSONL, indexed
sqlite, sharded directories with deterministic merge).  Existing imports
and existing store files keep working unchanged: the class re-exported
here *is* the JSONL backend, and the file format is byte-for-byte the one
this module always wrote.  New code should import from :mod:`repro.store`
and may accept any backend (or a store URL via
:func:`repro.store.open_store`).
"""

from repro.store.jsonl import JsonlBackend as ResultStore

__all__ = ["ResultStore"]
