"""Cross-validation of the analytical model against the simulator.

The analytical model and the discrete-event simulator share their cost
constants, but the model makes simplifying assumptions (no queueing jitter,
no batching delay, no retransmissions).  ``calibration_ratio`` quantifies the
disagreement on a configuration small enough to simulate, so tests can
assert the two stay within a factor of each other and EXPERIMENTS.md can
report the calibration quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import ProtocolConfig
from repro.perfmodel.model import AnalyticalModel, SystemKind
from repro.workload.ycsb import YCSBConfig


@dataclass(frozen=True)
class CalibrationResult:
    """Simulated and modelled throughput/latency for the same configuration."""

    simulated_throughput: float
    modelled_throughput: float
    simulated_latency: float
    modelled_latency: float

    @property
    def throughput_ratio(self) -> float:
        if self.modelled_throughput == 0:
            return float("inf")
        return self.simulated_throughput / self.modelled_throughput

    @property
    def latency_ratio(self) -> float:
        if self.modelled_latency == 0:
            return float("inf")
        return self.simulated_latency / self.modelled_latency


def calibration_ratio(
    config: ProtocolConfig,
    workload: Optional[YCSBConfig] = None,
    duration: float = 3.0,
    warmup: float = 0.5,
) -> CalibrationResult:
    """Run both the simulator and the model on ``config`` and compare them."""
    from repro.api.facade import build_system  # calibration sits above the facade

    workload = workload or YCSBConfig(clients=config.num_clients, seed=config.seed)
    simulation = build_system(
        "serverless_bft", config, workload, tracer_enabled=False
    )
    result = simulation.run(duration=duration, warmup=warmup)
    model = AnalyticalModel(config, workload, system=SystemKind.SERVERLESS_BFT)
    modelled_throughput, modelled_latency = model.throughput_latency(config.num_clients)
    return CalibrationResult(
        simulated_throughput=result.throughput_txn_per_sec,
        modelled_throughput=modelled_throughput,
        simulated_latency=result.latency.mean,
        modelled_latency=modelled_latency,
    )
