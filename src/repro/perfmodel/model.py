"""Closed-form throughput/latency model of the serverless-edge pipeline.

The model treats the deployment as a pipeline of resources — the primary's
cores, a non-primary replica's cores, the verifier's cores, the serverless
executor pool, and the primary's NIC — each with a per-batch demand derived
from the same cost constants the discrete-event simulator charges
(:class:`repro.crypto.costs.CryptoCostModel`, message sizes, spawn API cost).

* **Maximum throughput** is the reciprocal of the largest per-batch demand
  divided by that resource's capacity (the pipeline bottleneck).
* **Latency under load** follows the closed-loop interactive response-time
  law: with ``N`` clients each keeping one transaction outstanding,
  ``X(N) = min(N / R0, X_max)`` and ``R(N) = max(R0, N / X_max)``.
* **Monetary cost** combines the OCI VM prices for the always-on shim and
  verifier with the AWS Lambda per-invocation prices for executors
  (:mod:`repro.cloud.billing`), yielding the cents-per-kilo-transaction
  metric of Figure 8.

The model intentionally shares its parameters with the simulator so the two
can be cross-validated (see :mod:`repro.perfmodel.calibration`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cloud.billing import LambdaPricing, VmPricing
from repro.cloud.regions import RegionCatalog
from repro.core.config import ConflictMode, ProtocolConfig
from repro.errors import ConfigurationError
from repro.workload.ycsb import YCSBConfig

#: Bytes of PREPREPARE payload per transaction (5392 B for the paper's batch of 100).
_PREPREPARE_BYTES_PER_TXN = 54.0
#: Fixed per-message framing bytes.
_MESSAGE_OVERHEAD_BYTES = 220.0
#: NIC bandwidth of the shim VMs (10 GbE in the paper's setup).
_NIC_BYTES_PER_SEC = 1.25e9
#: Super-linear batch-processing overhead (memory management, copying) per txn²;
#: this is what eventually makes very large batches counter-productive
#: (Figure 6 iii/iv).
_BATCH_QUADRATIC_COST = 5e-10

#: CPU cost of executing one key-value operation locally on a shim node
#: (replicated-execution baseline); remote executors pay the larger
#: ``executor_read_ops_cost`` because they fetch data over the network.
_LOCAL_OPERATION_COST = 5e-6


class SystemKind(str, enum.Enum):
    """Which deployment the model describes."""

    SERVERLESS_BFT = "serverlessbft"
    SERVERLESS_CFT = "serverlesscft"
    PBFT_REPLICATED = "pbft"
    NOSHIM = "noshim"


@dataclass(frozen=True)
class PipelineBreakdown:
    """Per-batch resource demands and the resulting capacity."""

    primary_cpu_seconds: float
    replica_cpu_seconds: float
    verifier_cpu_seconds: float
    executor_seconds: float
    nic_seconds: float
    base_latency_seconds: float
    max_batches_per_second: float
    bottleneck: str

    @property
    def max_txn_per_second(self) -> float:
        return self.max_batches_per_second


class AnalyticalModel:
    """Analytical throughput/latency/cost model for one deployment."""

    def __init__(
        self,
        config: ProtocolConfig,
        workload: Optional[YCSBConfig] = None,
        system: SystemKind = SystemKind.SERVERLESS_BFT,
        execution_threads: int = 16,
        catalog: Optional[RegionCatalog] = None,
        lambda_pricing: Optional[LambdaPricing] = None,
        vm_pricing: Optional[VmPricing] = None,
    ) -> None:
        self.config = config
        self.workload = workload or YCSBConfig(clients=config.num_clients)
        self.system = SystemKind(system)
        self.execution_threads = max(1, execution_threads)
        self.catalog = catalog or RegionCatalog()
        self.lambda_pricing = lambda_pricing or LambdaPricing()
        self.vm_pricing = vm_pricing or VmPricing()

    # ------------------------------------------------------------------ demands

    def breakdown(self) -> PipelineBreakdown:
        """Per-batch demands on every pipeline resource and the bottleneck."""
        config = self.config
        costs = config.crypto_costs
        n = config.shim_nodes if self.system is not SystemKind.NOSHIM else 1
        batch = config.batch_size
        ops = self.workload.operations_per_transaction
        exec_seconds = self.workload.execution_seconds

        batch_bytes = _PREPREPARE_BYTES_PER_TXN * batch + _MESSAGE_OVERHEAD_BYTES
        hash_cost = costs.hash_cost(int(batch_bytes))
        batch_overhead = _BATCH_QUADRATIC_COST * batch * batch

        byzantine = self.system in (SystemKind.SERVERLESS_BFT, SystemKind.PBFT_REPLICATED, SystemKind.NOSHIM)
        # Ingesting the batch's client requests: one signature/MAC check plus the
        # per-transaction ingest cost (parsing and bookkeeping).
        if byzantine:
            ingest = costs.ds_verify + config.txn_ingest_cost * batch
        else:
            # The CFT shim still authenticates every client transaction with a MAC.
            ingest = costs.mac_verify + (config.txn_ingest_cost + costs.mac_verify) * batch

        if byzantine:
            # Three-phase PBFT demands (a one-node NOSHIM shim degenerates to
            # the ingest/hash/spawn terms because every (n-1) factor is zero).
            primary = (
                ingest
                + hash_cost
                + (n - 1) * costs.mac_sign      # PREPREPARE MACs
                + (n - 1) * costs.mac_sign      # own PREPARE broadcast
                + (n - 1) * costs.mac_verify    # PREPARE receipts
                + costs.ds_sign                 # COMMIT signature
                + (n - 1) * costs.ds_verify     # COMMIT receipts
                + batch_overhead
            )
            replica = (
                costs.mac_verify
                + hash_cost
                + (n - 1) * costs.mac_sign
                + (n - 1) * costs.mac_verify
                + costs.ds_sign
                + (n - 1) * costs.ds_verify
                + batch_overhead
            )
        else:
            # Linear Paxos demands (no signatures).
            primary = (
                ingest
                + hash_cost
                + (n - 1) * costs.mac_sign      # ACCEPT
                + (n - 1) * costs.mac_verify    # ACCEPTED
                + (n - 1) * costs.mac_sign      # LEARN
                + batch_overhead
            )
            replica = costs.mac_verify + hash_cost + costs.mac_sign + costs.mac_verify + batch_overhead

        offloads = self.system in (
            SystemKind.SERVERLESS_BFT,
            SystemKind.SERVERLESS_CFT,
            SystemKind.NOSHIM,
        )
        if offloads:
            primary += config.num_executors * config.spawn_api_cost + costs.ds_sign
            verifier = config.num_executors * (costs.ds_verify + 30e-6) + batch * 5e-6
            executor_time = (
                costs.ds_verify * (config.shim_quorum if byzantine else 0)
                + self._storage_rtt()
                + exec_seconds
                + config.executor_read_ops_cost * ops * batch
                + costs.ds_sign
            )
        else:
            verifier = 0.0
            executor_time = 0.0

        # NIC serialisation at the primary: the PREPREPARE goes to n-1 peers,
        # EXECUTE messages to the executors.
        nic = batch_bytes * (n - 1) / _NIC_BYTES_PER_SEC
        if offloads:
            nic += (batch_bytes + 96 * (2 * config.shim_faults + 1)) * config.num_executors / _NIC_BYTES_PER_SEC

        capacities: Dict[str, float] = {}
        capacities["primary-cpu"] = config.shim_cores / primary if primary > 0 else float("inf")
        if n > 1:
            capacities["replica-cpu"] = config.shim_cores / replica if replica > 0 else float("inf")
        if offloads and verifier > 0:
            capacities["verifier-cpu"] = config.verifier_cores / verifier
        if offloads and executor_time > 0:
            pool = config.executor_concurrency_limit * max(1, config.num_executor_regions)
            capacities["executor-pool"] = pool / (config.num_executors * executor_time)
        if not offloads:
            local_exec = exec_seconds + _LOCAL_OPERATION_COST * ops * batch
            if local_exec > 0:
                capacities["execution-threads"] = self.execution_threads / local_exec
        if nic > 0:
            capacities["primary-nic"] = 1.0 / nic

        bottleneck = min(capacities, key=capacities.get)
        max_batches = capacities[bottleneck]
        base_latency = self._base_latency(primary, replica, verifier, executor_time)

        return PipelineBreakdown(
            primary_cpu_seconds=primary,
            replica_cpu_seconds=replica,
            verifier_cpu_seconds=verifier,
            executor_seconds=executor_time,
            nic_seconds=nic,
            base_latency_seconds=base_latency,
            max_batches_per_second=max_batches,
            bottleneck=bottleneck,
        )

    # ------------------------------------------------------------------ latency

    def _storage_rtt(self) -> float:
        """Round trip from the median executor region to the on-premise storage."""
        regions = self.config.regions_for_executors(self.catalog.names)
        if not regions:
            return 0.0
        home = self.config.verifier_region
        latencies = sorted(self.catalog.one_way_latency(region, home) for region in regions)
        quorum_index = min(len(latencies) - 1, self.config.executor_match_quorum - 1)
        return 2.0 * latencies[quorum_index]

    def _base_latency(
        self, primary: float, replica: float, verifier: float, executor_time: float
    ) -> float:
        config = self.config
        intra = self.catalog.one_way_latency(config.shim_region, config.shim_region)
        latency = intra  # client -> primary
        if self.system is not SystemKind.NOSHIM and config.shim_nodes > 1:
            latency += 3 * intra  # PREPREPARE, PREPARE, COMMIT one-way hops
        latency += primary / config.shim_cores
        latency += replica / config.shim_cores
        offloads = self.system in (
            SystemKind.SERVERLESS_BFT,
            SystemKind.SERVERLESS_CFT,
            SystemKind.NOSHIM,
        )
        if offloads:
            regions = config.regions_for_executors(self.catalog.names)
            home = config.verifier_region
            latencies = sorted(self.catalog.one_way_latency(region, home) for region in regions)
            quorum_index = min(len(latencies) - 1, config.executor_match_quorum - 1)
            to_region = latencies[quorum_index]
            latency += config.warm_start_latency + to_region  # spawn + EXECUTE delivery
            latency += executor_time
            latency += to_region  # VERIFY back to the verifier
            latency += verifier / config.verifier_cores
            latency += intra  # RESPONSE to the client
        else:
            latency += self.workload.execution_seconds
            latency += intra  # reply to the client
        return latency

    # ------------------------------------------------------------------ predictions

    def throughput_latency(self, num_clients: Optional[int] = None) -> Tuple[float, float]:
        """Predicted (txn/s, latency seconds) for a closed-loop client population."""
        clients = num_clients if num_clients is not None else self.config.num_clients
        if clients <= 0:
            raise ConfigurationError("num_clients must be positive")
        breakdown = self.breakdown()
        base_latency = breakdown.base_latency_seconds
        x_max_txn = breakdown.max_batches_per_second * self.config.batch_size
        goodput_factor = 1.0 - self._abort_fraction()
        x_unsaturated = clients / base_latency
        throughput = min(x_unsaturated, x_max_txn)
        latency = max(base_latency, clients / x_max_txn)
        return throughput * goodput_factor, latency

    def _abort_fraction(self) -> float:
        """Fraction of transactions aborted because of conflicts (Figure 6 xi)."""
        conflict = self.workload.conflict_fraction
        if conflict <= 0:
            return 0.0
        if self.config.conflict_mode is ConflictMode.CONFLICT_AVOIDANCE:
            # Known read-write sets: the lock map avoids (almost all) aborts.
            return 0.02 * conflict
        # Optimistic execution: a conflicting transaction aborts when it raced
        # with an earlier conflicting one still in flight; with deep pipelines
        # most of them do.
        return 0.85 * conflict

    def sweep_clients(self, client_counts: Iterable[int]) -> List[Dict[str, float]]:
        """Throughput/latency series for a client sweep (Figure 5)."""
        rows = []
        for clients in client_counts:
            throughput, latency = self.throughput_latency(clients)
            rows.append(
                {"clients": float(clients), "throughput": throughput, "latency": latency}
            )
        return rows

    def cost_cents_per_kilo_txn(self, num_clients: Optional[int] = None) -> float:
        """Monetary cost (Figure 8 metric) at the achieved throughput."""
        throughput, _latency = self.throughput_latency(num_clients)
        if throughput <= 0:
            return float("inf")
        config = self.config
        vm_dollars_per_sec = (
            config.shim_nodes
            * self.vm_pricing.vm_cost(config.shim_cores, 16.0, 1.0)
        )
        offloads = self.system in (
            SystemKind.SERVERLESS_BFT,
            SystemKind.SERVERLESS_CFT,
            SystemKind.NOSHIM,
        )
        lambda_dollars_per_sec = 0.0
        if offloads:
            vm_dollars_per_sec += self.vm_pricing.vm_cost(config.verifier_cores, 8.0, 1.0)
            breakdown = self.breakdown()
            batches_per_sec = throughput / config.batch_size
            invocations_per_sec = batches_per_sec * config.num_executors
            lambda_dollars_per_sec = invocations_per_sec * self.lambda_pricing.invocation_cost(
                breakdown.executor_seconds
            )
        dollars_per_txn = (vm_dollars_per_sec + lambda_dollars_per_sec) / throughput
        return dollars_per_txn * 100.0 * 1000.0
