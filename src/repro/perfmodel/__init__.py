"""Analytical performance model.

The paper's evaluation sweeps parameters (up to 88 k clients, 128 shim
nodes, 8 k-transaction batches) that are far beyond what a message-level
Python discrete-event simulation can cover in reasonable time.  This package
provides a closed-form pipeline/queueing model of the same deployment —
using the *same* cost constants as the simulator — so the full sweeps of
Figures 5–8 can be regenerated quickly, and a calibration helper that checks
the model against the simulator on small configurations.
"""

from repro.perfmodel.model import AnalyticalModel, PipelineBreakdown, SystemKind
from repro.perfmodel.calibration import calibration_ratio

__all__ = [
    "AnalyticalModel",
    "PipelineBreakdown",
    "SystemKind",
    "calibration_ratio",
]
