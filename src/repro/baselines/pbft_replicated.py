"""PBFT replicated-execution baseline (no serverless, no verifier).

"We also test our ServerlessBFT protocol against a BFT system (e.g.
ResilientDB) running the PBFT protocol.  In this system, we assume each node
is a replica and executes the request in the agreed order post consensus.
As a result, there are no costs associated with spawning executors and
waiting for the verifier to validate the requests." (Section IX-H.)

Every replica executes each committed batch on its own execution-thread
pool (the ``ET`` knob of Figure 8) against its own copy of the data store;
the primary replies to the clients.  This baseline is used for:

* Figure 7 — throughput/latency versus the number of replicas, and
* Figure 8 — task offloading: with compute-heavy transactions the replicas
  become resource-bounded while ServerlessBFT offloads the work to the
  serverless cloud.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.cloud.billing import CostModel
from repro.cloud.regions import GeoLatencyModel, RegionCatalog
from repro.consensus.log import CommittedEntry
from repro.consensus.pbft import PBFTConfig, PBFTReplica, ReplicaTransport
from repro.core.client import ClientGroup
from repro.core.config import ProtocolConfig
from repro.core.messages import ClientRequestMsg, ResponseMsg
from repro.core.runner import SimulationResult, _warn_legacy_entry_point
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import SignatureService
from repro.errors import ConfigurationError
from repro.faults.byzantine import NodeBehaviour
from repro.obs.context import ObsContext
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.process import CpuResource, SimProcess
from repro.sim.rng import DeterministicRNG
from repro.sim.stats import LatencyRecorder, ThroughputRecorder
from repro.sim.tracing import Tracer
from repro.storage.kvstore import VersionedKVStore
from repro.workload.transactions import Transaction, TransactionBatch, execute_batch
from repro.workload.ycsb import YCSBConfig, YCSBWorkload


class _ReplicaTransport(ReplicaTransport):
    def __init__(self, node: "ReplicatedNode") -> None:
        self._node = node

    def send(self, dst: str, message: Any, size_bytes: int) -> None:
        self._node.network.send(self._node.name, dst, message, size_bytes)

    def broadcast(self, message: Any, size_bytes: int, targets: Optional[List[str]] = None) -> None:
        recipients = targets if targets is not None else self._node.peer_names
        self._node.network.broadcast(self._node.name, recipients, message, size_bytes)


class ReplicatedNode(SimProcess):
    """A classic PBFT replica that orders *and executes* client batches."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        region: str,
        config: ProtocolConfig,
        shim_names: List[str],
        signer: SignatureService,
        execution_threads: int,
        per_operation_cost: float = 5e-6,
        throughput: Optional[ThroughputRecorder] = None,
        behaviour: Optional[NodeBehaviour] = None,
        tracer: Optional[Tracer] = None,
        obs=None,
        batch_flush_timeout: float = 0.02,
    ) -> None:
        super().__init__(sim, name, region, cores=config.shim_cores)
        self._network = network
        self._config = config
        self._shim_names = list(shim_names)
        self._signer = signer
        self._per_operation_cost = per_operation_cost
        self._throughput = throughput
        self._tracer = tracer
        self._obs = obs
        self._behaviour = behaviour
        self._batch_flush_timeout = batch_flush_timeout

        self._execution_pool = CpuResource(sim, execution_threads, name=f"{name}.exec")
        self._store = VersionedKVStore()
        self._pending_txns: Deque[Transaction] = deque()
        self._flush_timer = None
        self._batch_counter = 0
        self._executed_batches = 0
        self._executed_txns = 0

        network.register(name, region, self.on_message)
        self._replica = PBFTReplica(
            replica_id=name,
            replicas=shim_names,
            config=PBFTConfig(
                checkpoint_interval=config.checkpoint_interval,
                request_timeout=config.node_request_timeout,
            ),
            transport=_ReplicaTransport(self),
            signer=signer,
            cost_model=config.crypto_costs,
            host=self,
            on_committed=self._on_committed,
            tracer=tracer,
            obs=obs,
            behaviour=behaviour,
        )

    # ------------------------------------------------------------------ properties

    @property
    def network(self) -> Network:
        return self._network

    @property
    def replica(self) -> PBFTReplica:
        return self._replica

    @property
    def peer_names(self) -> List[str]:
        return [peer for peer in self._shim_names if peer != self.name]

    @property
    def is_primary(self) -> bool:
        return self._replica.is_primary

    @property
    def executed_batches(self) -> int:
        return self._executed_batches

    @property
    def executed_txns(self) -> int:
        return self._executed_txns

    @property
    def store(self) -> VersionedKVStore:
        return self._store

    # ------------------------------------------------------------------ messages

    def on_message(self, message, sender: str) -> None:
        if self._behaviour is not None and self._behaviour.is_crashed():
            return
        if isinstance(message, ClientRequestMsg):
            self._on_client_request(message)
        else:
            self._replica.handle(message, sender)

    def _on_client_request(self, request: ClientRequestMsg) -> None:
        if not self.is_primary:
            self._network.send(self.name, self._replica.primary, request, request.size_bytes)
            return
        verification = (
            self._config.crypto_costs.ds_verify
            + self._config.crypto_costs.hash_cost(request.size_bytes)
            + self._config.txn_ingest_cost * max(1, len(request.transactions))
        )
        self.process_parallel(
            verification, len(request.transactions), lambda: self._enqueue(request)
        )

    def _enqueue(self, request: ClientRequestMsg) -> None:
        self._pending_txns.extend(request.transactions)
        while len(self._pending_txns) >= self._config.batch_size:
            self._propose(self._config.batch_size)
        if self._pending_txns and self._flush_timer is None:
            self._flush_timer = self.set_timer(self._batch_flush_timeout, self._flush)

    def _flush(self) -> None:
        self._flush_timer = None
        if self.is_primary and self._pending_txns:
            self._propose(len(self._pending_txns))

    def _propose(self, size: int) -> None:
        transactions = tuple(self._pending_txns.popleft() for _ in range(size))
        self._batch_counter += 1
        batch = TransactionBatch(
            batch_id=f"{self.name}-b{self._batch_counter}", transactions=transactions
        )
        self._replica.propose(batch)

    # ------------------------------------------------------------------ execution

    def _on_committed(self, entry: CommittedEntry) -> None:
        if entry.batch is None:
            return
        batch: TransactionBatch = entry.batch
        if self._obs is not None:
            self._obs.begin_span("execute", entry.seq, self.now, self.name)
        duration = batch.execution_seconds + self._per_operation_cost * sum(
            len(txn.operations) for txn in batch.transactions
        )
        self._execution_pool.submit(
            max(1e-9, duration), lambda: self._after_execution(entry, batch)
        )

    def _after_execution(self, entry: CommittedEntry, batch: TransactionBatch) -> None:
        reads = self._store.read_many(sorted(batch.keys))
        values = {key: item.value for key, item in reads.values.items()}
        versions = {key: item.version for key, item in reads.values.items()}
        result = execute_batch(batch, values, versions)
        for txn_result in result.txn_results:
            self._store.apply_writes(txn_result.writes)
        self._executed_batches += 1
        self._executed_txns += len(batch)
        if self._tracer is not None:
            self._tracer.record(self.now, "replicated.executed", self.name, seq=entry.seq)
        if self._obs is not None:
            self._obs.end_span("execute", entry.seq, self.now)
        if not self.is_primary:
            return
        if self._throughput is not None:
            self._throughput.record_commit(self.now, len(batch))
        per_request: Dict[Tuple[str, str], List[str]] = {}
        for txn in batch.transactions:
            per_request.setdefault((txn.origin, txn.request_id), []).append(txn.txn_id)
        for (origin, request_id), txn_ids in per_request.items():
            if not origin:
                continue
            response = ResponseMsg(
                request_id=request_id,
                seq=entry.seq,
                digest=entry.digest,
                committed_txn_ids=tuple(txn_ids),
            )
            self._network.send(self.name, origin, response, response.size_bytes)


class PBFTReplicatedSimulation:
    """Deployment runner for the replicated-execution PBFT baseline."""

    def __init__(
        self,
        config: ProtocolConfig,
        workload: Optional[YCSBConfig] = None,
        execution_threads: int = 16,
        node_behaviours: Optional[Dict[str, NodeBehaviour]] = None,
        tracer_enabled: bool = True,
    ) -> None:
        _warn_legacy_entry_point("PBFTReplicatedSimulation")
        if execution_threads < 1:
            raise ConfigurationError("execution_threads must be at least 1")
        if config.fault_timeline:
            raise ConfigurationError(
                "pbft_replicated does not support fault_timeline: its replicas "
                "execute state machines locally and have no checkpoint-based "
                "catch-up path (use serverless_bft/serverless_cft/noshim)"
            )
        self.config = config
        self.execution_threads = execution_threads
        self.workload_config = workload or YCSBConfig(clients=config.num_clients, seed=config.seed)
        node_behaviours = node_behaviours or {}

        self.sim = Simulator()
        self.rng = DeterministicRNG(config.seed)
        self.catalog = RegionCatalog()
        self.obs = ObsContext(enabled=tracer_enabled)
        self.tracer = self.obs.tracer
        # Mirror the serverless runner's None-gating: disabled observability
        # must leave the components without a single new branch on the hot
        # path, so they only ever see a tracer/obs handle when it is live.
        component_tracer = self.tracer if tracer_enabled else None
        component_obs = self.obs.component()
        self.network = Network(self.sim, GeoLatencyModel(self.catalog), self.rng.child("network"))
        self.keystore = KeyStore(deployment_secret=f"replicated-{config.seed}")
        self.cost_model = CostModel()
        self.workload = YCSBWorkload(self.workload_config)
        self.throughput = ThroughputRecorder()
        self.latency = LatencyRecorder()

        shim_names = [f"node-{index}" for index in range(config.shim_nodes)]
        self.nodes: List[ReplicatedNode] = [
            ReplicatedNode(
                sim=self.sim,
                network=self.network,
                name=name,
                region=config.shim_region,
                config=config,
                shim_names=shim_names,
                signer=SignatureService(self.keystore, name),
                execution_threads=execution_threads,
                throughput=self.throughput,
                behaviour=node_behaviours.get(name),
                tracer=component_tracer,
                obs=component_obs,
            )
            for name in shim_names
        ]

        self.clients: List[ClientGroup] = []
        group_size = config.clients_per_group
        for index in range(config.client_groups):
            group = ClientGroup(
                sim=self.sim,
                network=self.network,
                name=f"client-group-{index}",
                region=config.client_region,
                group_size=group_size,
                workload=self.workload,
                signer=SignatureService(self.keystore, f"client-group-{index}"),
                costs=config.crypto_costs,
                primary_name=shim_names[0],
                verifier_name=shim_names[0],
                client_timeout=config.client_timeout,
                latency_recorder=self.latency,
                tracer=component_tracer,
                obs=component_obs,
                client_index_offset=index * group_size,
            )
            self.clients.append(group)

    def run(self, duration: float = 5.0, warmup: float = 0.5) -> SimulationResult:
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        if warmup < 0 or warmup >= duration:
            raise ConfigurationError("warmup must be inside [0, duration)")
        self.throughput._warmup = warmup
        self.latency._warmup = warmup
        for index, group in enumerate(self.clients):
            group._stop_time = duration
            self.sim.schedule(index * 0.001, group.start)
        self.obs.on_run_start()
        # lint: ignore[DET001] wall_clock_seconds is a declared HOST_SPEED_FIELDS field
        started = time.perf_counter()
        self.sim.run(until=duration)
        wall_clock = time.perf_counter() - started  # lint: ignore[DET001] host timing
        window = max(1e-9, duration - warmup)
        committed = self.throughput.completed
        # Edge-only deployment: only the shim VMs are billed.
        self.cost_model.charge_vm_fleet(
            machines=self.config.shim_nodes,
            cores=self.config.shim_cores,
            memory_gb=16.0,
            duration_seconds=duration,
        )
        billing = self.cost_model.report
        result = SimulationResult(
            duration=duration,
            warmup=warmup,
            committed_txns=committed,
            aborted_txns=0,
            throughput_txn_per_sec=committed / window,
            latency=self.latency.summary(),
            completed_requests=sum(group.completed_requests for group in self.clients),
            client_retransmissions=sum(group.retransmissions for group in self.clients),
            spawned_executors=0,
            cloud_invocations=0,
            view_changes=sum(node.replica.view_changes_installed for node in self.nodes),
            verifier_ignored_verify=0,
            verifier_replace_sent=0,
            verifier_errors_sent=0,
            messages_sent=self.network.messages_sent,
            messages_dropped=self.network.messages_dropped,
            bytes_sent=self.network.bytes_sent,
            billing=billing,
            cents_per_kilo_txn=billing.cents_per_kilo_txn(committed),
            wall_clock_seconds=wall_clock,
            events_processed=self.sim.events_processed,
        )
        if self.obs.enabled:
            result.obs = self.obs.finalize(duration, extra=result.extra)
        return result
