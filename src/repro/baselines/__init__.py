"""Baseline systems used in the paper's evaluation (Figures 7 and 8).

* **NOSHIM** — no consensus at all: every client request goes to a single
  node that immediately spawns executors.  Equivalent to a shim of one node,
  which is exactly how :func:`noshim.build_noshim_simulation` builds it.
* **SERVERLESSCFT** — the shim orders requests with a crash-fault-tolerant
  Paxos instead of PBFT (no signatures, linear communication).
* **PBFT** — a classic replicated-execution PBFT deployment: every replica
  executes the transactions itself after ordering them; there are no
  serverless executors and no verifier.  Used both for the Figure 7
  comparison and, with a configurable number of execution threads, for the
  task-offloading study of Figure 8.
"""

from repro.baselines.noshim import build_noshim_simulation
from repro.baselines.serverless_cft import build_serverless_cft_simulation
from repro.baselines.pbft_replicated import PBFTReplicatedSimulation, ReplicatedNode

__all__ = [
    "PBFTReplicatedSimulation",
    "ReplicatedNode",
    "build_noshim_simulation",
    "build_serverless_cft_simulation",
]
