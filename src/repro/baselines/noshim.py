"""NOSHIM baseline.

"Represents the experiment where there is no shim; no BFT consensus takes
place.  All the clients send their requests to a node, which instantaneously
spawns executors." (Section IX-H.)

A shim of exactly one node gives precisely that behaviour in our framework:
with ``n_R = 1`` the PBFT instance has ``f_R = 0`` and a quorum of one, so a
proposal commits immediately and the node spawns executors right away — the
consensus phases degenerate to a single local step, and the executor /
verifier pipeline is unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ProtocolConfig
from repro.core.runner import (
    ServerlessBFTSimulation,
    _entry_point_sanction,
    _warn_legacy_entry_point,
)
from repro.workload.ycsb import YCSBConfig


def build_noshim_simulation(
    config: ProtocolConfig,
    workload: Optional[YCSBConfig] = None,
    **runner_kwargs,
) -> ServerlessBFTSimulation:
    """Build the NOSHIM deployment corresponding to ``config``.

    The returned simulation keeps every parameter of ``config`` except the
    shim size, which collapses to a single node.

    Deprecated as a direct entry point: prefer
    ``repro.api.run(RunSpec(system="noshim", ...))``.
    """
    _warn_legacy_entry_point("build_noshim_simulation")
    noshim_config = config.with_overrides(shim_nodes=1, txn_ingest_cost=15e-6)
    with _entry_point_sanction():
        return ServerlessBFTSimulation(
            noshim_config,
            workload=workload,
            consensus_engine="pbft",
            **runner_kwargs,
        )
