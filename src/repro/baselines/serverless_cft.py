"""SERVERLESSCFT baseline.

"Represents the experiment where the shim nodes employ a crash fault-
tolerant protocol like Paxos for consensus.  As CFT protocols do not protect
against byzantine attacks, they do not require cryptographic signatures,
which in turn reduces the amount of work done per consensus.  Further,
unlike PBFT, Paxos is linear." (Section IX-H.)

The deployment is the regular serverless-edge architecture with the shim's
ordering engine swapped for :class:`repro.consensus.paxos.PaxosReplica`;
executors skip certificate verification because a CFT shim produces no
commit certificates.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ProtocolConfig
from repro.core.runner import (
    ServerlessBFTSimulation,
    _entry_point_sanction,
    _warn_legacy_entry_point,
)
from repro.workload.ycsb import YCSBConfig


def build_serverless_cft_simulation(
    config: ProtocolConfig,
    workload: Optional[YCSBConfig] = None,
    **runner_kwargs,
) -> ServerlessBFTSimulation:
    """Build the SERVERLESSCFT deployment corresponding to ``config``.

    Deprecated as a direct entry point: prefer
    ``repro.api.run(RunSpec(system="serverless_cft", ...))``.
    """
    _warn_legacy_entry_point("build_serverless_cft_simulation")
    cft_config = config.with_overrides(txn_ingest_cost=15e-6)
    with _entry_point_sanction():
        return ServerlessBFTSimulation(
            cft_config,
            workload=workload,
            consensus_engine="paxos",
            **runner_kwargs,
        )
