"""Kernel chooser: compiled fast path vs authoritative pure Python.

The repo's three measured hot floors — ``execute_batch``, YCSB transaction
generation, and canonical-bytes/digest construction — each have two
implementations: the authoritative pure-Python one, and an optional
hand-written C extension (:mod:`repro._ckernel._impl`).  This module is the
single place that decides which one runs:

* ``REPRO_KERNEL=py``    — force pure Python (what ``perf-smoke`` gates).
* ``REPRO_KERNEL=c``     — require the compiled kernel; raise
  :class:`~repro.errors.KernelUnavailableError` if it cannot be used.
* ``REPRO_KERNEL=auto``  — (default, also when unset) use the compiled
  kernel when importable *and* its ``BUILD_TAG`` matches
  :data:`KERNEL_BUILD_TAG`; otherwise warn once and fall back.

Lint rule KER006 enforces that no other module imports ``repro._ckernel``
directly — every compiled-path call-site routes through here, so the
fallback contract (bit-identical results, pure Python always available)
holds everywhere by construction.

The decision is made once, at first import.  Changing ``REPRO_KERNEL``
afterwards has no effect on the running process; tests that need both
variants run subprocesses (see ``tests/test_kernel.py``).
"""

from __future__ import annotations

import hashlib
import os
import warnings
from typing import Any, Optional

from repro.errors import KernelUnavailableError
from repro.perf import PERF

#: Calling-convention tag; must equal ``_impl.BUILD_TAG`` or the extension
#: is treated as absent (stale .so from an older checkout).  Bump both in
#: lockstep whenever the C API between chooser and extension changes.
KERNEL_BUILD_TAG = "repro-ckernel-1"

#: The compiled module when active, else ``None``.  Consumers must treat
#: this as opaque and call :func:`configure_types` etc. through this module.
_impl: Optional[Any] = None

#: Why the compiled kernel is inactive ("" when it is active).
_inactive_reason: str = ""


def _load_compiled() -> "tuple[Optional[Any], str]":
    """Try to import and validate the extension.

    Returns ``(module, "")`` on success or ``(None, reason)`` on failure —
    the caller decides whether the failure warns (auto) or raises (c).
    """
    try:
        from repro._ckernel import _impl as compiled
    except ImportError as exc:
        return None, f"extension not importable ({exc})"
    build_tag = getattr(compiled, "BUILD_TAG", None)
    if build_tag != KERNEL_BUILD_TAG:
        return None, (
            f"build-tag mismatch (extension has {build_tag!r}, "
            f"chooser expects {KERNEL_BUILD_TAG!r}; rebuild with "
            f"'python setup.py build_ext --inplace')"
        )
    return compiled, ""


def _choose() -> "tuple[Optional[Any], str]":
    mode = os.environ.get("REPRO_KERNEL", "auto").strip().lower() or "auto"
    if mode == "py":
        return None, "REPRO_KERNEL=py requested the pure-Python kernel"
    if mode not in ("c", "auto"):
        raise KernelUnavailableError(
            f"REPRO_KERNEL={mode!r} is not a valid kernel mode "
            "(expected 'c', 'py', or 'auto')"
        )
    compiled, reason = _load_compiled()
    if compiled is not None:
        compiled.set_perf(PERF)
        # Digests route through hashlib's vendor-optimised SHA-256 (SHA-NI /
        # AVX2 on x86); the extension's portable sha256.c is only the
        # self-contained fallback and the parity-test subject.
        compiled.configure_sha256(hashlib.sha256)
        return compiled, ""
    if mode == "c":
        raise KernelUnavailableError(
            f"REPRO_KERNEL=c but the compiled kernel is unavailable: {reason}"
        )
    warnings.warn(
        f"compiled kernel unavailable, falling back to pure Python: {reason}",
        RuntimeWarning,
        stacklevel=2,
    )
    return None, reason


_impl, _inactive_reason = _choose()


def active_variant() -> str:
    """``"c"`` when the compiled kernel is serving the hot floors, else ``"py"``."""
    return "c" if _impl is not None else "py"


def inactive_reason() -> str:
    """Why the compiled kernel is off (empty string when it is on)."""
    return _inactive_reason


def compiled_available() -> bool:
    """Whether a usable (importable, tag-matching) extension exists at all."""
    return _load_compiled()[0] is not None


# --------------------------------------------------------------------------
# Configuration relays.  Consumer modules (transactions.py, ycsb.py,
# hashing.py) call these at their own import time; each is a no-op on the
# pure-Python path so call-sites need no variant checks.

def configure_types(operation: type, transaction: type, txn_result: type) -> None:
    """Register the workload types the C kernel constructs directly."""
    if _impl is not None:
        _impl.configure_types(operation, transaction, txn_result)


def configure_hashing(canonical_fallback: Any, digest_attr: str) -> None:
    """Register hashing's JSON fallback and per-object digest memo slot."""
    if _impl is not None:
        _impl.configure_hashing(canonical_fallback, digest_attr)


# --------------------------------------------------------------------------
# Hot-floor entry points.  Each returns the compiled callable when active,
# else ``None`` — consumers bind their pure-Python implementation in that
# case, so the dispatch happens once at import, not per call.

def c_execute_batch() -> Optional[Any]:
    """``(batch_id, txns, read_values, read_versions) -> (digest, results)``."""
    return getattr(_impl, "execute_batch", None)


def c_generate_transactions() -> Optional[Any]:
    """``(workload, count, offset, origin, request_id, draw_client) -> tuple``."""
    return getattr(_impl, "generate_transactions", None)


def c_transaction_canonical() -> Optional[Any]:
    """``(txn) -> str`` — uncached canonical-string construction."""
    return getattr(_impl, "transaction_canonical", None)


def c_batch_canonical() -> Optional[Any]:
    """``(batch) -> str`` — batch canonical string, seeding txn memos."""
    return getattr(_impl, "batch_canonical", None)


def c_canonical_bytes() -> Optional[Any]:
    """``(value) -> bytes`` — canonical serialisation fast path."""
    return getattr(_impl, "canonical_bytes", None)


def c_digest() -> Optional[Any]:
    """``(value) -> str`` — hex SHA-256 of ``canonical_bytes(value)``."""
    return getattr(_impl, "digest", None)


def c_cached_digest() -> Optional[Any]:
    """``(value) -> str`` — memoising digest (same contract as hashing's)."""
    return getattr(_impl, "cached_digest", None)


def c_sha256_hex() -> Optional[Any]:
    """``(bytes | str) -> str`` — parity hook for the SHA-256 tests."""
    return getattr(_impl, "sha256_hex", None)
