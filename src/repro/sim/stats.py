"""Latency and throughput bookkeeping.

The paper reports average throughput (txn/s) over a measured window and the
average client-observed latency.  These recorders mirror that methodology:
a warm-up window is excluded, and percentiles are available for deeper
analysis than the paper's averages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = fraction * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return sorted_values[low]
    weight = rank - low
    value = sorted_values[low] * (1 - weight) + sorted_values[high] * weight
    # Clamp against the neighbouring samples so floating-point interpolation
    # can never step outside the observed range.
    return min(max(value, sorted_values[low]), sorted_values[high])


@dataclass
class LatencySummary:
    """Summary statistics of a latency distribution (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float


class LatencyRecorder:
    """Records per-transaction latency samples.

    Percentiles are exact but maintained *incrementally*: the recorder keeps
    a sorted prefix plus a buffer of samples recorded since the last
    ``summary()`` call, and each summary merges only the new buffer into the
    sorted prefix (sorting the small buffer, then a linear merge).  Callers
    that poll ``summary()`` during a run — progress reporting, adaptive
    experiments — therefore pay for the new samples only, instead of
    re-sorting the full history every time.  Min/max are O(1) streaming
    aggregates.
    """

    def __init__(self, warmup: float = 0.0) -> None:
        self._warmup = warmup
        self._sorted: List[float] = []
        self._unsorted: List[float] = []
        self._min = math.inf
        self._max = -math.inf

    @property
    def warmup(self) -> float:
        return self._warmup

    def record(self, start_time: float, end_time: float) -> None:
        """Record a completed transaction if it started after the warm-up."""
        if start_time < self._warmup:
            return
        self.record_value(end_time - start_time)

    def record_value(self, latency: float) -> None:
        value = latency if latency > 0.0 else 0.0
        self._unsorted.append(value)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def samples(self) -> List[float]:
        return self._sorted + self._unsorted

    def _merged(self) -> List[float]:
        """Fold buffered samples into the sorted prefix and return it."""
        buffered = self._unsorted
        if buffered:
            buffered.sort()
            ordered = self._sorted
            if not ordered or buffered[0] >= ordered[-1]:
                ordered.extend(buffered)
            else:
                merged: List[float] = []
                index = 0
                total = len(ordered)
                for value in buffered:
                    while index < total and ordered[index] <= value:
                        merged.append(ordered[index])
                        index += 1
                    merged.append(value)
                merged.extend(ordered[index:])
                self._sorted = merged
            self._unsorted = []
        return self._sorted

    def summary(self) -> LatencySummary:
        ordered = self._merged()
        if not ordered:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        count = len(ordered)
        return LatencySummary(
            count=count,
            # Summed over the sorted list (not the streaming accumulator) so
            # the mean is bit-identical to the pre-optimisation full re-sort.
            mean=sum(ordered) / count,
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
            minimum=self._min,
            maximum=self._max,
        )


class ThroughputRecorder:
    """Counts completed transactions inside the measurement window."""

    def __init__(self, warmup: float = 0.0) -> None:
        self._warmup = warmup
        self._completed = 0
        self._aborted = 0
        self._first_completion: Optional[float] = None
        self._last_completion: Optional[float] = None
        self._per_second: Dict[int, int] = {}
        self._commit_listener: Optional[Callable[[float, int], None]] = None

    @property
    def completed(self) -> int:
        return self._completed

    @property
    def aborted(self) -> int:
        return self._aborted

    def set_commit_listener(self, listener: Optional[Callable[[float, int], None]]) -> None:
        """Observe every commit, *including* warm-up ones (liveness watchdog)."""
        self._commit_listener = listener

    def record_commit(self, time: float, count: int = 1) -> None:
        if self._commit_listener is not None:
            self._commit_listener(time, count)
        if time < self._warmup:
            return
        self._completed += count
        if self._first_completion is None:
            self._first_completion = time
        self._last_completion = time
        bucket = int(time)
        self._per_second[bucket] = self._per_second.get(bucket, 0) + count

    def record_abort(self, time: float, count: int = 1) -> None:
        if time < self._warmup:
            return
        self._aborted += count

    def throughput(self, duration: Optional[float] = None) -> float:
        """Average committed transactions per second over the window."""
        if self._completed == 0:
            return 0.0
        if duration is not None and duration > 0:
            return self._completed / duration
        if self._first_completion is None or self._last_completion is None:
            return 0.0
        window = self._last_completion - self._first_completion
        if window <= 0:
            return float(self._completed)
        return self._completed / window

    def per_second_series(self) -> Dict[int, int]:
        """Committed transactions bucketed by whole virtual seconds."""
        return dict(self._per_second)

    def abort_rate(self) -> float:
        total = self._completed + self._aborted
        if total == 0:
            return 0.0
        return self._aborted / total
