"""Discrete-event simulation substrate.

The paper evaluates ServerlessBFT on Oracle Cloud VMs plus real AWS Lambda
functions.  This package replaces that testbed with a deterministic
discrete-event simulator: virtual time, an event queue, per-node CPU
resources (so multi-core pipelining matters), and a wide-area network model
with per-region latencies, bandwidth, and fault injection.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import DeterministicRNG
from repro.sim.process import CpuResource, SimProcess
from repro.sim.network import Endpoint, LatencyModel, Network, NetworkFaultPlan, UniformLatencyModel
from repro.sim.tracing import TraceEvent, Tracer
from repro.sim.stats import LatencyRecorder, ThroughputRecorder

__all__ = [
    "CpuResource",
    "DeterministicRNG",
    "Endpoint",
    "Event",
    "LatencyModel",
    "LatencyRecorder",
    "Network",
    "NetworkFaultPlan",
    "SimProcess",
    "Simulator",
    "ThroughputRecorder",
    "TraceEvent",
    "Tracer",
    "UniformLatencyModel",
]
