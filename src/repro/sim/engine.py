"""Event-driven simulation kernel.

The kernel is intentionally small: a priority queue of timestamped events,
a virtual clock, and helpers for timers.  Every component of the
serverless-edge architecture (clients, shim nodes, executors, verifier,
cloud control plane) is driven exclusively by callbacks scheduled here, so
a run is fully deterministic given the same seeds and configuration.

Hot-path layout: heap entries are plain lists ``[time, priority, seq,
callback, args]`` rather than objects, so ``heapq`` compares them with C
list comparison (``seq`` is unique, so the comparison never reaches the
callback).  :meth:`Simulator.schedule_fast` pushes such an entry without
allocating a cancellation handle — the right call for the fire-and-forget
events that dominate a run (message deliveries, CPU job completions).
Cancelled events are marked by nulling the callback slot and are physically
removed in batches once they make up half the queue, so a workload that
cancels many timers (client timeouts, per-request consensus timers) never
degrades into scanning dead entries.

Event coalescing (the second perf overhaul): fire-and-forget events pass
through a one-entry *deferred slot* instead of going straight into the
heap.  The dispatch loop always runs ``min(slot, heap top)`` (the same
``(time, priority, seq)`` total order as before, compared by C list
comparison), so execution order — and therefore every simulated result —
is bit-identical to the heap-only kernel; the A/B suite in
``tests/test_perf_determinism.py`` enforces this.  The payoff is the
back-to-back pattern CPU resources produce under load: a busy core's next
completion is very often the globally next event, and such events are now
scheduled and dispatched without a single ``heappush``/``heappop`` pair
(counted in ``PERF.events_coalesced``; entries demoted from the slot by an
earlier arrival count as ``PERF.events_displaced``).  Disable with
:func:`event_coalescing_disabled` for A/B measurements.
"""

from __future__ import annotations

import contextlib
import gc
import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.perf import PERF

#: Index of the callback slot inside a heap entry; ``None`` marks the entry
#: cancelled.
_CB = 3
#: Compaction triggers when at least this many cancelled entries exist AND
#: they outnumber the live ones.
_COMPACT_MIN_CANCELLED = 256

#: Process-global default for the deferred-slot fast lane.  Read once at
#: ``Simulator`` construction time — deliberately *not* a ProtocolConfig
#: field, because it is a host-side implementation detail that must never
#: enter a point's content address.
_COALESCING_ENABLED = True


def set_event_coalescing(enabled: bool) -> None:
    """Turn the deferred-slot fast lane on or off for new simulators."""
    global _COALESCING_ENABLED
    _COALESCING_ENABLED = bool(enabled)


def event_coalescing_enabled() -> bool:
    return _COALESCING_ENABLED


@contextlib.contextmanager
def event_coalescing_disabled():
    """A/B helper: simulators built inside the block use the heap-only path."""
    previous = _COALESCING_ENABLED
    set_event_coalescing(False)
    try:
        yield
    finally:
        set_event_coalescing(previous)


class Event:
    """A cancellable handle to a scheduled callback.

    Events are ordered by ``(time, priority, seq)``; ``seq`` is a strictly
    increasing tie-breaker so events scheduled earlier run earlier when
    timestamps collide, keeping runs deterministic.  The handle wraps the
    underlying heap entry; cancelling nulls the entry's callback so the
    simulator skips (and eventually compacts) it.
    """

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: list, sim: "Simulator") -> None:
        self._entry = entry
        self._sim = sim

    @property
    def time(self) -> float:
        return self._entry[0]

    @property
    def priority(self) -> int:
        return self._entry[1]

    @property
    def seq(self) -> int:
        return self._entry[2]

    @property
    def cancelled(self) -> bool:
        return self._entry[_CB] is None

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped."""
        entry = self._entry
        if entry[_CB] is not None:
            entry[_CB] = None
            entry[4] = ()
            self._sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        callback = self._entry[_CB]
        name = getattr(callback, "__qualname__", repr(callback))
        return f"Event(t={self._entry[0]:.6f}, cb={name}, cancelled={callback is None})"


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Virtual time is measured in seconds.  The simulator never looks at the
    wall clock; benchmark throughput/latency numbers are derived purely
    from virtual time plus the calibrated cost model.
    """

    def __init__(self) -> None:
        self._queue: List[list] = []
        self._seq = 0
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        self._cancelled = 0
        # Deferred slot: at most one fire-and-forget entry not yet in the
        # heap.  Only schedule_fast entries land here, so a slotted entry can
        # never be cancelled (no Event handle exists for it).
        self._slot: Optional[list] = None
        self._coalesce = _COALESCING_ENABLED

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled and slotted included)."""
        return len(self._queue) + (1 if self._slot is not None else 0)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before the current time t={self._now}"
            )
        self._seq += 1
        entry = [time, priority, self._seq, callback, args]
        heapq.heappush(self._queue, entry)
        return Event(entry, self)

    def schedule_fast(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget scheduling: no cancellation handle allocated.

        The hot path used by the network and CPU resources, whose events are
        never cancelled.  A negative delay would silently rewind the virtual
        clock, so it still fails fast like :meth:`schedule`.

        With coalescing on, the entry is parked in the deferred slot when
        possible: the slot always keeps the *earlier* of its occupant and
        the newcomer (the other is pushed to the heap), and the dispatch
        loop runs ``min(slot, heap top)``, so ordering is exactly the
        heap-only order while back-to-back events skip the heap entirely.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        self._seq += 1
        entry = [self._now + delay, 0, self._seq, callback, args]
        PERF.events_scheduled_fast += 1
        if self._coalesce:
            slot = self._slot
            if slot is None:
                self._slot = entry
                return
            if entry < slot:
                # The newcomer fires first: it takes the slot, the previous
                # occupant is demoted to the heap.
                self._slot = entry
                entry = slot
                PERF.events_displaced += 1
        heapq.heappush(self._queue, entry)

    # ------------------------------------------------------------------ queue upkeep

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Physically remove cancelled entries and re-heapify (batched)."""
        PERF.events_compacted += self._cancelled
        self._queue = [entry for entry in self._queue if entry[_CB] is not None]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def _next_entry(self) -> Optional[list]:
        """Pop and return the next live entry in (time, priority, seq) order."""
        queue = self._queue
        while True:
            slot = self._slot
            if slot is not None and (not queue or slot < queue[0]):
                self._slot = None
                PERF.events_coalesced += 1
                return slot
            if not queue:
                return None
            entry = heapq.heappop(queue)
            if entry[_CB] is None:
                self._cancelled -= 1
                continue
            return entry

    # ------------------------------------------------------------------ running

    def step(self) -> bool:
        """Run the next non-cancelled event.  Returns False if none remain."""
        entry = self._next_entry()
        if entry is None:
            return False
        self._now = entry[0]
        self._events_processed += 1
        callback = entry[_CB]
        args = entry[4]
        entry[_CB] = None  # a late cancel() of this entry must be a no-op
        entry[4] = ()
        callback(*args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the virtual time at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        # The event loop allocates millions of small, mostly-immutable,
        # acyclic objects per simulated second (messages, results, heap
        # entries); cyclic-GC passes over them find nothing yet cost ~25% of
        # the loop.  Reference counting reclaims the garbage either way, so
        # suspend the cyclic collector for the duration of the run and let
        # the normal threshold-driven collector catch any cycles afterwards
        # (no forced collection — see the finally block).  Virtual-time
        # behaviour is unaffected.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                # Select min(slot, heap top) without popping yet: the until
                # bound must leave the next event queued.
                entry = self._slot
                from_slot = True
                if queue and (entry is None or queue[0] < entry):
                    entry = queue[0]
                    from_slot = False
                if entry is None:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                callback = entry[_CB]
                if callback is None:
                    # Only heap entries are cancellable (the slot never holds
                    # an Event-wrapped entry).
                    pop(queue)
                    self._cancelled -= 1
                    continue
                event_time = entry[0]
                if until is not None and event_time > until:
                    self._now = until
                    break
                if from_slot:
                    self._slot = None
                    PERF.events_coalesced += 1
                else:
                    pop(queue)
                self._now = event_time
                self._events_processed += 1
                executed += 1
                args = entry[4]
                entry[_CB] = None  # a late cancel() of this entry must be a no-op
                entry[4] = ()
                callback(*args)
                if queue is not self._queue:  # a callback triggered compaction
                    queue = self._queue
        finally:
            self._running = False
            if gc_was_enabled:
                # No forced collection — and no *immediate* threshold-driven
                # one either: the run left the allocation counters sky-high,
                # so the first allocation after enable() would trigger a full
                # pass over everything the run retained (~0.5s on the default
                # point).  Freezing parks those survivors in the permanent
                # generation and resets the counters; unfreezing right after
                # returns them to the oldest generation, so they are still
                # collected at the *next natural* gen-2 collection instead of
                # right now.  Skipped when the embedding process froze
                # objects of its own (unfreeze would release those too).
                if gc.get_freeze_count() == 0:
                    gc.freeze()
                    gc.enable()
                    gc.unfreeze()
                else:
                    gc.enable()
        return self._now

    def run_until_idle(self, max_events: Optional[int] = None) -> float:
        """Run until no events remain (or ``max_events`` were executed)."""
        return self.run(until=None, max_events=max_events)
