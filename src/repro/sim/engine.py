"""Event-driven simulation kernel.

The kernel is intentionally small: a priority queue of timestamped events,
a virtual clock, and helpers for timers.  Every component of the
serverless-edge architecture (clients, shim nodes, executors, verifier,
cloud control plane) is driven exclusively by callbacks scheduled here, so
a run is fully deterministic given the same seeds and configuration.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, priority, seq)``; ``seq`` is a strictly
    increasing tie-breaker so events scheduled earlier run earlier when
    timestamps collide, keeping runs deterministic.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6f}, cb={name}, cancelled={self.cancelled})"


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Virtual time is measured in seconds.  The simulator never looks at the
    wall clock; benchmark throughput/latency numbers are derived purely
    from virtual time plus the calibrated cost model.
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before the current time t={self._now}"
            )
        event = Event(time, priority, next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Run the next non-cancelled event.  Returns False if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the virtual time at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                self._events_processed += 1
                executed += 1
                event.callback(*event.args)
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_until_idle(self, max_events: Optional[int] = None) -> float:
        """Run until no events remain (or ``max_events`` were executed)."""
        return self.run(until=None, max_events=max_events)
