"""Event-driven simulation kernel.

The kernel is intentionally small: a priority queue of timestamped events,
a virtual clock, and helpers for timers.  Every component of the
serverless-edge architecture (clients, shim nodes, executors, verifier,
cloud control plane) is driven exclusively by callbacks scheduled here, so
a run is fully deterministic given the same seeds and configuration.

Hot-path layout: heap entries are plain lists ``[time, priority, seq,
callback, args]`` rather than objects, so ``heapq`` compares them with C
list comparison (``seq`` is unique, so the comparison never reaches the
callback).  :meth:`Simulator.schedule_fast` pushes such an entry without
allocating a cancellation handle — the right call for the fire-and-forget
events that dominate a run (message deliveries, CPU job completions).
Cancelled events are marked by nulling the callback slot and are physically
removed in batches once they make up half the queue, so a workload that
cancels many timers (client timeouts, per-request consensus timers) never
degrades into scanning dead entries.
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.perf import PERF

#: Index of the callback slot inside a heap entry; ``None`` marks the entry
#: cancelled.
_CB = 3
#: Compaction triggers when at least this many cancelled entries exist AND
#: they outnumber the live ones.
_COMPACT_MIN_CANCELLED = 256


class Event:
    """A cancellable handle to a scheduled callback.

    Events are ordered by ``(time, priority, seq)``; ``seq`` is a strictly
    increasing tie-breaker so events scheduled earlier run earlier when
    timestamps collide, keeping runs deterministic.  The handle wraps the
    underlying heap entry; cancelling nulls the entry's callback so the
    simulator skips (and eventually compacts) it.
    """

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: list, sim: "Simulator") -> None:
        self._entry = entry
        self._sim = sim

    @property
    def time(self) -> float:
        return self._entry[0]

    @property
    def priority(self) -> int:
        return self._entry[1]

    @property
    def seq(self) -> int:
        return self._entry[2]

    @property
    def cancelled(self) -> bool:
        return self._entry[_CB] is None

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped."""
        entry = self._entry
        if entry[_CB] is not None:
            entry[_CB] = None
            entry[4] = ()
            self._sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        callback = self._entry[_CB]
        name = getattr(callback, "__qualname__", repr(callback))
        return f"Event(t={self._entry[0]:.6f}, cb={name}, cancelled={callback is None})"


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Virtual time is measured in seconds.  The simulator never looks at the
    wall clock; benchmark throughput/latency numbers are derived purely
    from virtual time plus the calibrated cost model.
    """

    def __init__(self) -> None:
        self._queue: List[list] = []
        self._seq = 0
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before the current time t={self._now}"
            )
        self._seq += 1
        entry = [time, priority, self._seq, callback, args]
        heapq.heappush(self._queue, entry)
        return Event(entry, self)

    def schedule_fast(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget scheduling: no cancellation handle allocated.

        The hot path used by the network and CPU resources, whose events are
        never cancelled.  A negative delay would silently rewind the virtual
        clock, so it still fails fast like :meth:`schedule`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        self._seq += 1
        heapq.heappush(self._queue, [self._now + delay, 0, self._seq, callback, args])
        PERF.events_scheduled_fast += 1

    # ------------------------------------------------------------------ queue upkeep

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Physically remove cancelled entries and re-heapify (batched)."""
        PERF.events_compacted += self._cancelled
        self._queue = [entry for entry in self._queue if entry[_CB] is not None]
        heapq.heapify(self._queue)
        self._cancelled = 0

    # ------------------------------------------------------------------ running

    def step(self) -> bool:
        """Run the next non-cancelled event.  Returns False if none remain."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            callback = entry[_CB]
            if callback is None:
                self._cancelled -= 1
                continue
            self._now = entry[0]
            self._events_processed += 1
            args = entry[4]
            entry[_CB] = None  # a late cancel() of this entry must be a no-op
            entry[4] = ()
            callback(*args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the virtual time at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        # The event loop allocates millions of small, mostly-immutable,
        # acyclic objects per simulated second (messages, results, heap
        # entries); cyclic-GC passes over them find nothing yet cost ~25% of
        # the loop.  Reference counting reclaims the garbage either way, so
        # suspend the cyclic collector for the duration of the run and let
        # the normal threshold-driven collector catch any cycles afterwards
        # (no forced collection — see the finally block).  Virtual-time
        # behaviour is unaffected.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while queue:
                if max_events is not None and executed >= max_events:
                    break
                entry = queue[0]
                callback = entry[_CB]
                if callback is None:
                    pop(queue)
                    self._cancelled -= 1
                    continue
                event_time = entry[0]
                if until is not None and event_time > until:
                    self._now = until
                    break
                pop(queue)
                self._now = event_time
                self._events_processed += 1
                executed += 1
                args = entry[4]
                entry[_CB] = None  # a late cancel() of this entry must be a no-op
                entry[4] = ()
                callback(*args)
                if queue is not self._queue:  # a callback triggered compaction
                    queue = self._queue
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
            if gc_was_enabled:
                # No forced collection: a full pass over everything the run
                # retained costs ~1s/M objects and the normal threshold-driven
                # collector reclaims any cycles soon enough.
                gc.enable()
        return self._now

    def run_until_idle(self, max_events: Optional[int] = None) -> float:
        """Run until no events remain (or ``max_events`` were executed)."""
        return self.run(until=None, max_events=max_events)
