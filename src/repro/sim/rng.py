"""Deterministic random-number utilities.

Every stochastic decision in the simulation (network jitter, packet drops,
workload key selection, byzantine behaviour) draws from a
:class:`DeterministicRNG` derived from the experiment seed, so results are
reproducible bit-for-bit across runs and platforms.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a child seed from a root seed and a label path.

    Using a hash keeps child streams statistically independent even when the
    labels are sequential integers (e.g. node identifiers).
    """
    digest = hashlib.sha256()
    digest.update(str(root_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class DeterministicRNG:
    """A seeded random stream with the handful of draws the simulation needs."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._random = random.Random(seed)
        # Bind the hottest draws straight to the underlying generator: the
        # workload generator calls randint hundreds of thousands of times per
        # simulated second, and the wrapper frame is pure overhead.  The
        # instance attributes shadow the identically-behaved methods below.
        self.randint = self._random.randint  # type: ignore[method-assign]
        self.random = self._random.random  # type: ignore[method-assign]
        self.uniform = self._random.uniform  # type: ignore[method-assign]
        # The raw bit source, exposed for the compiled kernel's rejection
        # sampler: repro._ckernel draws through this exact bound method so
        # C-generated draw sequences stay bit-identical to bounded_int_fn's.
        self.getrandbits: Callable[[int], int] = self._random.getrandbits

    @property
    def seed(self) -> int:
        return self._seed

    def child(self, *labels: object) -> "DeterministicRNG":
        """Create an independent stream for a sub-component."""
        return DeterministicRNG(derive_seed(self._seed, *labels))

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def random(self) -> float:
        return self._random.random()

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def bounded_int_fn(self, width: int) -> Callable[[], int]:
        """A zero-argument sampler equivalent to ``randint(0, width - 1)``.

        Replicates CPython's ``Random._randbelow_with_getrandbits`` rejection
        loop exactly — the same ``getrandbits`` calls in the same order — so
        the draw *sequence* is bit-identical to calling :meth:`randint`, while
        skipping the three stdlib wrapper frames per draw.  The workload
        generator pre-builds one sampler per constant bound (partition size,
        hot-key count, value range) on its hottest path.
        """
        if width <= 0:
            raise ValueError("width must be positive")
        getrandbits = self._random.getrandbits
        bits = width.bit_length()

        def draw() -> int:
            value = getrandbits(bits)
            while value >= width:
                value = getrandbits(bits)
            return value

        return draw

    def choice(self, options: Sequence[T]) -> T:
        return self._random.choice(options)

    def sample(self, options: Sequence[T], count: int) -> List[T]:
        return self._random.sample(options, count)

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def zipf_index(self, population: int, theta: float) -> int:
        """Draw a Zipfian-distributed index in ``[0, population)``.

        Uses the rejection-inversion method of Hörmann; adequate for the
        YCSB-style skewed key selection used in the workload generator.
        """
        if population <= 0:
            raise ValueError("population must be positive")
        if theta <= 0 or population <= 2:
            # Tiny populations degenerate (the harmonic approximation divides
            # by zero at population 2); uniform choice is exact enough there.
            return self._random.randrange(population)
        # Classic YCSB zipfian via the harmonic approximation.
        zetan = _zeta(population, theta)
        alpha = 1.0 / (1.0 - theta)
        eta = (1 - (2.0 / population) ** (1 - theta)) / (1 - _zeta(2, theta) / zetan)
        u = self._random.random()
        uz = u * zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** theta:
            return 1
        return int(population * (eta * u - eta + 1) ** alpha)


def _zeta(n: int, theta: float, _cache: Dict[Tuple[int, float], float] = {}) -> float:
    """Truncated zeta function used by the zipfian generator (memoised)."""
    key = (n, theta)
    if key not in _cache:
        _cache[key] = sum(1.0 / (i ** theta) for i in range(1, n + 1))
    return _cache[key]


def spread_evenly(items: Sequence[T], buckets: int) -> List[List[T]]:
    """Round-robin ``items`` into ``buckets`` lists (used for region placement)."""
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    result: List[List[T]] = [[] for _ in range(buckets)]
    for index, item in enumerate(items):
        result[index % buckets].append(item)
    return result
