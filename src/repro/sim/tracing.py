"""Structured event tracing for simulations.

The tracer records protocol milestones (consensus started, request committed,
executors spawned, transaction verified, attack detected, view change, …)
with their virtual timestamps.  Tests and examples use the trace to assert
protocol-level properties without poking at component internals.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded milestone."""

    time: float
    category: str
    actor: str
    details: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects :class:`TraceEvent` records during a simulation run.

    A ``capacity`` bounds memory for long traced runs: the first
    ``capacity`` events are kept (the keep-first semantics tests rely on)
    and everything past it is *counted* in :attr:`dropped` rather than
    silently discarded — the count travels in the exported trace header,
    and the first drop emits a one-time warning.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self._enabled = enabled
        self._capacity = capacity
        self._events: List[TraceEvent] = []
        self._dropped = 0

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Events discarded because the trace was already at capacity."""
        return self._dropped

    def record(self, time: float, category: str, actor: str, **details: Any) -> None:
        if not self._enabled:
            return
        if self._capacity is not None and len(self._events) >= self._capacity:
            if self._dropped == 0:
                warnings.warn(
                    f"trace capacity {self._capacity} reached; further events "
                    f"are dropped (counted in Tracer.dropped)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self._dropped += 1
            return
        self._events.append(TraceEvent(time=time, category=category, actor=actor, details=details))

    def events(self, category: Optional[str] = None, actor: Optional[str] = None) -> List[TraceEvent]:
        """Return recorded events, optionally filtered by category and actor."""
        result = self._events
        if category is not None:
            result = [event for event in result if event.category == category]
        if actor is not None:
            result = [event for event in result if event.actor == actor]
        return list(result)

    def count(self, category: str) -> int:
        return sum(1 for event in self._events if event.category == category)

    def last(self, category: str) -> Optional[TraceEvent]:
        for event in reversed(self._events):
            if event.category == category:
                return event
        return None

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)
