"""Wide-area network model.

Messages between components travel over a simulated network with:

* propagation latency taken from a per-region round-trip table
  (``repro.cloud.regions``) or any other :class:`LatencyModel`;
* serialisation delay proportional to the message size (the paper reports
  exact message sizes: PREPREPARE 5392 B, PREPARE 216 B, COMMIT 220 B,
  EXECUTE 3320 B, RESPONSE 2270 B);
* optional fault injection — drops, duplicates, extra delay, and partitions —
  used by the byzantine-attack tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRNG


class LatencyModel:
    """Interface for one-way latency between two endpoints."""

    def one_way_delay(
        self,
        src_region: str,
        dst_region: str,
        size_bytes: int,
        rng: DeterministicRNG,
    ) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class UniformLatencyModel(LatencyModel):
    """Flat latency model: a base delay plus jitter plus bandwidth delay.

    Useful for unit tests and for single-region deployments where all
    components sit in the same data centre.
    """

    def __init__(
        self,
        base_delay: float = 0.0005,
        jitter: float = 0.0001,
        bandwidth_bytes_per_sec: float = 1.25e9,
    ) -> None:
        self.base_delay = base_delay
        self.jitter = jitter
        self.bandwidth_bytes_per_sec = bandwidth_bytes_per_sec

    def one_way_delay(
        self,
        src_region: str,
        dst_region: str,
        size_bytes: int,
        rng: DeterministicRNG,
    ) -> float:
        delay = self.base_delay
        if self.jitter > 0:
            delay += rng.uniform(0.0, self.jitter)
        if self.bandwidth_bytes_per_sec > 0 and size_bytes > 0:
            delay += size_bytes / self.bandwidth_bytes_per_sec
        return delay


@dataclass
class NetworkFaultPlan:
    """Describes network-level faults to inject.

    ``drop_probability`` / ``duplicate_probability`` apply to every message;
    ``extra_delay`` adds a fixed delay; ``partitions`` is a set of directed
    ``(src, dst)`` endpoint-name pairs whose messages are silently dropped,
    and ``muted_endpoints`` silences a sender entirely (crash emulation).
    """

    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    extra_delay: float = 0.0
    partitions: Set[Tuple[str, str]] = field(default_factory=set)
    muted_endpoints: Set[str] = field(default_factory=set)

    def is_partitioned(self, src: str, dst: str) -> bool:
        return (src, dst) in self.partitions or src in self.muted_endpoints

    def partition(self, src: str, dst: str, bidirectional: bool = True) -> None:
        self.partitions.add((src, dst))
        if bidirectional:
            self.partitions.add((dst, src))

    def heal(self) -> None:
        """Remove all partitions and muted endpoints."""
        self.partitions.clear()
        self.muted_endpoints.clear()


@dataclass
class Endpoint:
    """A network-attached component."""

    name: str
    region: str
    handler: Callable[[Any, str], None]


class Network:
    """Message transport between simulated endpoints."""

    #: Minimum extra delay of a fault-injected duplicate delivery beyond the
    #: original one.  Without it a zero-latency link would schedule the
    #: duplicate at exactly the original delivery time (``0 * 1.5 == 0``),
    #: making the "late duplicate" indistinguishable from a double-send.
    MIN_DUPLICATE_OFFSET = 1e-6

    def __init__(
        self,
        sim: Simulator,
        latency_model: LatencyModel,
        rng: DeterministicRNG,
        fault_plan: Optional[NetworkFaultPlan] = None,
    ) -> None:
        self._sim = sim
        self._schedule_fast = sim.schedule_fast
        self._latency = latency_model
        self._rng = rng
        self._faults = fault_plan or NetworkFaultPlan()
        # Subclasses (e.g. the region-outage plan) may decide partitioning
        # dynamically: the base-class empty-set short-circuit in send() only
        # applies to a plain NetworkFaultPlan.
        self._faults_subclassed = type(self._faults) is not NetworkFaultPlan
        # Dynamic lifecycle faults (fault timelines): endpoints currently
        # down and directed links currently cut.  Kept separate from the
        # fault plan so crash/recover/partition-heal events can flip them
        # mid-run without perturbing a scenario's static plan.  The boolean
        # gate keeps the fault-free send() hot path to one falsy check.
        self._down: Set[str] = set()
        self._cut_links: Set[Tuple[str, str]] = set()
        self._lifecycle_faults = False
        self._endpoints: Dict[str, Endpoint] = {}
        self._messages_sent = 0
        self._messages_delivered = 0
        self._messages_dropped = 0
        self._bytes_sent = 0

    @property
    def fault_plan(self) -> NetworkFaultPlan:
        return self._faults

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    @property
    def messages_delivered(self) -> int:
        return self._messages_delivered

    @property
    def messages_dropped(self) -> int:
        return self._messages_dropped

    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent

    def register(self, name: str, region: str, handler: Callable[[Any, str], None]) -> Endpoint:
        """Attach an endpoint.  Re-registering a name replaces its handler."""
        endpoint = Endpoint(name=name, region=region, handler=handler)
        self._endpoints[name] = endpoint
        return endpoint

    def unregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def has_endpoint(self, name: str) -> bool:
        return name in self._endpoints

    def region_of(self, name: str) -> str:
        try:
            return self._endpoints[name].region
        except KeyError:
            raise SimulationError(f"unknown network endpoint {name!r}")

    def set_endpoint_down(self, name: str, down: bool = True) -> None:
        """Mark an endpoint down (crashed): all its traffic is dropped.

        Unlike :meth:`unregister`, the endpoint stays registered — late
        sends from its in-flight callbacks are silently dropped instead of
        raising, and flipping it back up restores connectivity instantly.
        """
        if down:
            self._down.add(name)
        else:
            self._down.discard(name)
        self._lifecycle_faults = bool(self._down or self._cut_links)

    def is_endpoint_down(self, name: str) -> bool:
        return name in self._down

    def cut_links(self, pairs) -> None:
        """Cut the given directed ``(src, dst)`` links (dynamic partition)."""
        self._cut_links.update(pairs)
        self._lifecycle_faults = bool(self._down or self._cut_links)

    def heal_links(self, pairs) -> None:
        for pair in pairs:
            self._cut_links.discard(pair)
        self._lifecycle_faults = bool(self._down or self._cut_links)

    def send(self, src: str, dst: str, payload: Any, size_bytes: int = 0) -> None:
        """Send ``payload`` from ``src`` to ``dst`` applying the fault plan."""
        endpoints = self._endpoints
        sender = endpoints.get(src)
        if sender is None:
            raise SimulationError(f"unknown sender endpoint {src!r}")
        self._messages_sent += 1
        self._bytes_sent += size_bytes
        receiver = endpoints.get(dst)
        if receiver is None:
            # The destination crashed or was never registered: the message is lost.
            self._messages_dropped += 1
            return
        if self._lifecycle_faults and (
            src in self._down or dst in self._down or (src, dst) in self._cut_links
        ):
            self._messages_dropped += 1
            return
        # Fault checks are gated on the plan actually being active: the
        # gates draw nothing (``chance(0)`` never draws either), so the RNG
        # stream — and every simulated result — is unchanged.
        faults = self._faults
        if (
            self._faults_subclassed or faults.partitions or faults.muted_endpoints
        ) and faults.is_partitioned(src, dst):
            self._messages_dropped += 1
            return
        if faults.drop_probability and self._rng.chance(faults.drop_probability):
            self._messages_dropped += 1
            return
        delay = self._latency.one_way_delay(sender.region, receiver.region, size_bytes, self._rng)
        delay += faults.extra_delay
        self._schedule_fast(delay, self._deliver, src, dst, payload)
        if faults.duplicate_probability and self._rng.chance(faults.duplicate_probability):
            # The duplicate travels the wire too: schedule it strictly after
            # the original delivery and account for its bytes.
            duplicate_delay = max(delay * 1.5, delay + self.MIN_DUPLICATE_OFFSET)
            self._bytes_sent += size_bytes
            self._schedule_fast(duplicate_delay, self._deliver, src, dst, payload)

    def broadcast(self, src: str, dsts, payload: Any, size_bytes: int = 0) -> None:
        """Send the same payload to every destination in ``dsts``."""
        for dst in dsts:
            if dst == src:
                continue
            self.send(src, dst, payload, size_bytes)

    def _deliver(self, src: str, dst: str, payload: Any) -> None:
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            self._messages_dropped += 1
            return
        self._messages_delivered += 1
        endpoint.handler(payload, src)
